//! End-to-end tests of the `loopmem` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_loopmem"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn analyze_reports_example8_numbers() {
    let (ok, stdout, _) = run(&["analyze", "kernels/example8.loop"]);
    assert!(ok);
    assert!(stdout.contains("declared storage : 200 words"), "{stdout}");
    assert!(stdout.contains("exact MWS        : 44 words"), "{stdout}");
}

#[test]
fn optimize_reaches_21_and_prints_the_transformed_loop() {
    let (ok, stdout, _) = run(&["optimize", "kernels/example8.loop"]);
    assert!(ok);
    assert!(stdout.contains("MWS 44 -> 21"), "{stdout}");
    assert!(stdout.contains("for t1 ="), "{stdout}");
}

#[test]
fn deps_lists_paper_distances() {
    let (ok, stdout, _) = run(&["deps", "kernels/example8.loop"]);
    assert!(ok);
    assert!(stdout.contains("[3, -2]"), "{stdout}");
    assert!(stdout.contains("flow"), "{stdout}");
}

#[test]
fn print_applies_a_transform() {
    let (ok, stdout, _) = run(&["print", "kernels/example8.loop", "--transform", "2,3,1,1"]);
    assert!(ok);
    assert!(stdout.contains("max("), "{stdout}");
}

#[test]
fn formulas_prints_symbolic_output() {
    let (ok, stdout, _) = run(&["formulas", "kernels/matmult.loop"]);
    assert!(ok);
    assert!(stdout.contains("A_d(B) = N2*N3"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (ok, _, stderr) = run(&["analyze", "/nonexistent.loop"]);
    assert!(!ok);
    assert!(stderr.contains("nonexistent"), "{stderr}");
    let (ok, _, stderr) = run(&["optimize", "kernels/example8.loop", "--mode", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("bad --mode"), "{stderr}");
}

#[test]
fn simulate_profile_renders_bars() {
    let (ok, stdout, _) = run(&["simulate", "kernels/sor.loop", "--profile"]);
    assert!(ok);
    assert!(stdout.contains("window profile"), "{stdout}");
    assert!(stdout.contains("total MWS  : 60"), "{stdout}");
}

#[test]
fn li_pingali_mode_reports_failure_on_example8() {
    let (ok, _, stderr) = run(&["optimize", "kernels/example8.loop", "--mode", "li-pingali"]);
    assert!(!ok);
    assert!(stderr.contains("no legal transformation"), "{stderr}");
}

#[test]
fn pipeline_reports_boundary_and_fusion() {
    let (ok, stdout, _) = run(&["pipeline", "kernels/pipeline.loop"]);
    assert!(ok);
    assert!(
        stdout.contains("boundary 0->1      : 256 words live"),
        "{stdout}"
    );
    assert!(stdout.contains("fusable (try --fuse 0)"), "{stdout}");
    let (ok, stdout, _) = run(&["pipeline", "kernels/pipeline.loop", "--fuse", "0"]);
    assert!(ok);
    assert!(stdout.contains("whole-program MWS : 0 words"), "{stdout}");
}

#[test]
fn pipeline_batch_flags_are_thread_count_invariant() {
    let (ok, one, _) = run(&["pipeline", "kernels/pipeline.loop", "--threads", "1"]);
    assert!(ok);
    assert!(one.contains("(1 worker threads)"), "{one}");
    let (ok, four, _) = run(&["pipeline", "kernels/pipeline.loop", "--threads", "4"]);
    assert!(ok);
    // Same analysis modulo the reported worker count: the sharded engine
    // is bit-identical for every thread count.
    assert_eq!(
        one.replace("(1 worker threads)", ""),
        four.replace("(4 worker threads)", "")
    );
    assert!(one.contains("nest0"), "per-nest MWS table missing: {one}");

    let (ok, stdout, _) = run(&[
        "pipeline",
        "kernels/pipeline.loop",
        "--threads",
        "2",
        "--optimize",
    ]);
    assert!(ok);
    assert!(stdout.contains("batch optimize"), "{stdout}");

    let (ok, _, stderr) = run(&["pipeline", "kernels/pipeline.loop", "--threads", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--threads needs a positive count"),
        "{stderr}"
    );
}

#[test]
fn check_prints_span_anchored_hint_for_matmult() {
    let (ok, stdout, _) = run(&["check", "kernels/matmult.loop"]);
    assert!(ok, "hints alone must not fail the run");
    assert!(stdout.contains("hint[LM0002]"), "{stdout}");
    assert!(stdout.contains("--> kernels/matmult.loop:8:"), "{stdout}");
    assert!(
        stdout.contains("^^^^^^^"),
        "caret underline missing: {stdout}"
    );
    assert!(stdout.contains("null-space vector (0, 0, 1)"), "{stdout}");
    assert!(
        stdout.contains("kernels/matmult.loop: 0 errors, 0 warnings, 3 hints"),
        "{stdout}"
    );
}

#[test]
fn check_deny_warnings_fails_on_overflow_and_volume() {
    // An error-severity lint fails the run even without --deny.
    let (ok, stdout, _) = run(&["check", "tests/robustness/overflow_coeffs.loop"]);
    assert!(!ok);
    assert!(stdout.contains("error[LM0009]"), "{stdout}");

    // Warnings only fail under --deny warnings.
    let file = "tests/robustness/huge_iteration_space.loop";
    let (ok, stdout, _) = run(&["check", file]);
    assert!(ok, "warnings alone pass by default: {stdout}");
    let (ok, stdout, _) = run(&["check", file, "--deny", "warnings"]);
    assert!(!ok);
    assert!(stdout.contains("warning[LM0010]"), "{stdout}");
}

#[test]
fn check_json_emits_schema_conforming_ndjson() {
    use loopmem::analyze::{parse_json, Json};
    let (ok, stdout, _) = run(&[
        "check",
        "kernels/matmult.loop",
        "kernels/sor.loop",
        "--format",
        "json",
        "--sanitize",
    ]);
    assert!(ok);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "3 hints, nothing from clean sor: {stdout}");
    for line in lines {
        let v = parse_json(line).unwrap_or_else(|| panic!("bad JSON: {line}"));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("LM0002"));
        assert_eq!(v.get("severity").and_then(Json::as_str), Some("hint"));
        assert_eq!(
            v.get("file").and_then(Json::as_str),
            Some("kernels/matmult.loop")
        );
        assert!(
            v.get("span").and_then(|s| s.get("start")).is_some(),
            "{line}"
        );
    }
}

#[test]
fn check_reports_parse_errors_in_band_with_a_caret() {
    let dir = std::env::temp_dir().join("loopmem-check-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.loop");
    std::fs::write(&bad, "array A[10]\nfor i = 1 to { A[i]; }\n").unwrap();
    let bad = bad.to_str().unwrap().to_string();

    let (ok, stdout, _) = run(&["check", &bad]);
    assert!(!ok, "parse errors must fail the run");
    assert!(stdout.contains("error[LM0000]: parse error"), "{stdout}");
    assert!(stdout.contains('^'), "caret missing: {stdout}");

    let (ok, stdout, _) = run(&["check", &bad, "--format", "json"]);
    assert!(!ok);
    use loopmem::analyze::{parse_json, Json};
    let v = parse_json(stdout.lines().next().unwrap()).expect("one JSON object");
    assert_eq!(v.get("code").and_then(Json::as_str), Some("LM0000"));
    assert_eq!(v.get("line").and_then(Json::as_i64), Some(2));
}

#[test]
fn zero_budgets_degrade_to_typed_outcomes_without_panicking() {
    // A zero iteration cap trips at the very first poll; a zero timeout
    // trips before the sweep starts. Both must exit 0 with a typed
    // outcome line and analytic bounds, never a panic.
    for flags in [["--max-iters", "0"], ["--timeout-ms", "0"]] {
        let (ok, stdout, stderr) = run(&["simulate", "kernels/example8.loop", flags[0], flags[1]]);
        assert!(ok, "governed degradation must exit 0: {stderr}");
        assert!(stdout.contains("outcome    : bounded"), "{stdout}");
        assert!(stdout.contains("budget exhausted"), "{stdout}");
        assert!(!stderr.contains("panicked"), "{stderr}");
    }
}

#[test]
fn verify_passes_kernels_and_rejects_tampered_certificates() {
    let (ok, stdout, _) = run(&["verify", "kernels/example8.loop"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("6 certificates, 0 violations"), "{stdout}");

    let dir = std::env::temp_dir().join("loopmem-verify-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let certs = dir.join("ex8.ndjson").to_str().unwrap().to_string();
    let (ok, _, _) = run(&["verify", "kernels/example8.loop", "--emit-cert", &certs]);
    assert!(ok);

    // The emitted stream checks clean when replayed from disk.
    let (ok, stdout, _) = run(&["verify", "kernels/example8.loop", "--cert", &certs]);
    assert!(ok, "{stdout}");

    // Tampering one claim makes the checker reject with a caret-rendered
    // LM7xxx diagnostic.
    let stream = std::fs::read_to_string(&certs).unwrap();
    assert!(stream.contains("\"mws_after\":21"), "{stream}");
    let bad = dir.join("ex8-bad.ndjson").to_str().unwrap().to_string();
    std::fs::write(&bad, stream.replace("\"mws_after\":21", "\"mws_after\":20")).unwrap();
    let (ok, stdout, _) = run(&["verify", "kernels/example8.loop", "--cert", &bad]);
    assert!(!ok, "tampered certificate must fail: {stdout}");
    assert!(stdout.contains("error[LM7004]"), "{stdout}");
    assert!(stdout.contains("^^^"), "caret underline missing: {stdout}");

    // A stream that does not parse is a malformed-certificate violation.
    let junk = dir.join("junk.ndjson").to_str().unwrap().to_string();
    std::fs::write(&junk, "{\"cert\":\"bogus\"}\n").unwrap();
    let (ok, stdout, _) = run(&["verify", "kernels/example8.loop", "--cert", &junk]);
    assert!(!ok);
    assert!(stdout.contains("error[LM7007]"), "{stdout}");
}

#[test]
fn verify_degrades_to_checkable_bounds_on_the_robustness_corpus() {
    let dir = std::env::temp_dir().join("loopmem-verify-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    for file in [
        "tests/robustness/overflow_coeffs.loop",
        "tests/robustness/panicking_program.loop",
    ] {
        let certs = dir
            .join(file.rsplit('/').next().unwrap().replace(".loop", ".ndjson"))
            .to_str()
            .unwrap()
            .to_string();
        let (ok, stdout, stderr) = run(&["verify", file, "--emit-cert", &certs]);
        assert!(ok, "{file}: {stdout}{stderr}");
        assert!(stdout.contains("0 violations"), "{file}: {stdout}");
        // A degraded run must emit bounds certificates, not silence.
        let stream = std::fs::read_to_string(&certs).unwrap();
        assert!(
            stream.contains("\"cert\":\"bounds\""),
            "{file}: no bounds certificate in {stream}"
        );
    }
}

#[test]
fn pipeline_and_scratchpad_emit_checkable_certificates() {
    let dir = std::env::temp_dir().join("loopmem-verify-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let certs = dir.join("pipe.ndjson").to_str().unwrap().to_string();
    let (ok, stdout, _) = run(&["pipeline", "kernels/pipeline.loop", "--emit-cert", &certs]);
    assert!(ok);
    assert!(stdout.contains("written to"), "{stdout}");
    let (ok, stdout, _) = run(&["verify", "kernels/pipeline.loop", "--cert", &certs]);
    assert!(ok, "pipeline certificates must check clean: {stdout}");

    let certs = dir.join("pad.ndjson").to_str().unwrap().to_string();
    let (ok, _, _) = run(&[
        "scratchpad",
        "kernels/pipeline.loop",
        "--fuse",
        "--emit-cert",
        &certs,
    ]);
    assert!(ok);
    let stream = std::fs::read_to_string(&certs).unwrap();
    assert!(stream.contains("\"cert\":\"sizing\""), "{stream}");
    assert!(stream.contains("\"cert\":\"fusion\""), "{stream}");
    let (ok, stdout, _) = run(&["verify", "kernels/pipeline.loop", "--cert", &certs]);
    assert!(ok, "scratchpad certificates must check clean: {stdout}");
}

#[test]
fn chaos_subcommand_reports_a_clean_sweep() {
    let (ok, stdout, stderr) = run(&["chaos", "kernels/example8.loop", "--seed", "5"]);
    assert!(ok, "chaos sweep must pass on a healthy kernel: {stderr}");
    assert!(stdout.contains("violations : 0"), "{stdout}");
    assert!(stdout.contains("28 cases"), "{stdout}");
}
