//! End-to-end tests of the `loopmem` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_loopmem"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn analyze_reports_example8_numbers() {
    let (ok, stdout, _) = run(&["analyze", "kernels/example8.loop"]);
    assert!(ok);
    assert!(stdout.contains("declared storage : 200 words"), "{stdout}");
    assert!(stdout.contains("exact MWS        : 44 words"), "{stdout}");
}

#[test]
fn optimize_reaches_21_and_prints_the_transformed_loop() {
    let (ok, stdout, _) = run(&["optimize", "kernels/example8.loop"]);
    assert!(ok);
    assert!(stdout.contains("MWS 44 -> 21"), "{stdout}");
    assert!(stdout.contains("for t1 ="), "{stdout}");
}

#[test]
fn deps_lists_paper_distances() {
    let (ok, stdout, _) = run(&["deps", "kernels/example8.loop"]);
    assert!(ok);
    assert!(stdout.contains("[3, -2]"), "{stdout}");
    assert!(stdout.contains("flow"), "{stdout}");
}

#[test]
fn print_applies_a_transform() {
    let (ok, stdout, _) = run(&["print", "kernels/example8.loop", "--transform", "2,3,1,1"]);
    assert!(ok);
    assert!(stdout.contains("max("), "{stdout}");
}

#[test]
fn formulas_prints_symbolic_output() {
    let (ok, stdout, _) = run(&["formulas", "kernels/matmult.loop"]);
    assert!(ok);
    assert!(stdout.contains("A_d(B) = N2*N3"), "{stdout}");
}

#[test]
fn bad_usage_fails_with_usage_text() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
    let (ok, _, stderr) = run(&["analyze", "/nonexistent.loop"]);
    assert!(!ok);
    assert!(stderr.contains("nonexistent"), "{stderr}");
    let (ok, _, stderr) = run(&["optimize", "kernels/example8.loop", "--mode", "bogus"]);
    assert!(!ok);
    assert!(stderr.contains("bad --mode"), "{stderr}");
}

#[test]
fn simulate_profile_renders_bars() {
    let (ok, stdout, _) = run(&["simulate", "kernels/sor.loop", "--profile"]);
    assert!(ok);
    assert!(stdout.contains("window profile"), "{stdout}");
    assert!(stdout.contains("total MWS  : 60"), "{stdout}");
}

#[test]
fn li_pingali_mode_reports_failure_on_example8() {
    let (ok, _, stderr) = run(&["optimize", "kernels/example8.loop", "--mode", "li-pingali"]);
    assert!(!ok);
    assert!(stderr.contains("no legal transformation"), "{stderr}");
}

#[test]
fn pipeline_reports_boundary_and_fusion() {
    let (ok, stdout, _) = run(&["pipeline", "kernels/pipeline.loop"]);
    assert!(ok);
    assert!(
        stdout.contains("boundary 0->1      : 256 words live"),
        "{stdout}"
    );
    assert!(stdout.contains("fusable (try --fuse 0)"), "{stdout}");
    let (ok, stdout, _) = run(&["pipeline", "kernels/pipeline.loop", "--fuse", "0"]);
    assert!(ok);
    assert!(stdout.contains("whole-program MWS : 0 words"), "{stdout}");
}

#[test]
fn pipeline_batch_flags_are_thread_count_invariant() {
    let (ok, one, _) = run(&["pipeline", "kernels/pipeline.loop", "--threads", "1"]);
    assert!(ok);
    assert!(one.contains("(1 worker threads)"), "{one}");
    let (ok, four, _) = run(&["pipeline", "kernels/pipeline.loop", "--threads", "4"]);
    assert!(ok);
    // Same analysis modulo the reported worker count: the sharded engine
    // is bit-identical for every thread count.
    assert_eq!(
        one.replace("(1 worker threads)", ""),
        four.replace("(4 worker threads)", "")
    );
    assert!(one.contains("nest0"), "per-nest MWS table missing: {one}");

    let (ok, stdout, _) = run(&[
        "pipeline",
        "kernels/pipeline.loop",
        "--threads",
        "2",
        "--optimize",
    ]);
    assert!(ok);
    assert!(stdout.contains("batch optimize"), "{stdout}");

    let (ok, _, stderr) = run(&["pipeline", "kernels/pipeline.loop", "--threads", "0"]);
    assert!(!ok);
    assert!(
        stderr.contains("--threads needs a positive count"),
        "{stderr}"
    );
}
