//! Invariants of the Figure 2 reproduction (the full experiment is run by
//! `cargo run -p loopmem-bench --bin fig2_table`; this test pins the cells
//! that the paper's scan preserves and the structural properties of the
//! rest).

use loopmem_bench::experiments::figure2;

#[test]
fn figure2_reproduction() {
    let fig2 = figure2();
    assert_eq!(fig2.rows.len(), 7);
    let row = |name: &str| {
        fig2.rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("row {name} missing"))
    };

    // Defaults (rasta_flt's 5,152 is legible in the paper; matmult's 768
    // is pinned by the 64.4% / 273 cells).
    assert_eq!(row("2_point").default_words, 4096);
    assert_eq!(row("matmult").default_words, 768);
    assert_eq!(row("rasta_flt").default_words, 5152);

    // matmult: MWS 273 in both columns (no unimodular reordering helps) —
    // exactly the paper's identical 64.4% cells.
    assert_eq!(row("matmult").mws_unopt, 273);
    assert_eq!(row("matmult").mws_opt, 273);
    assert!((row("matmult").pct_unopt() - 64.4).abs() < 0.5);

    // 2_point: unoptimized reduction is the paper's 98.4%.
    assert!((row("2_point").pct_unopt() - 98.4).abs() < 0.2);

    // Structure: optimization never regresses, and every row reduces
    // memory versus the declared arrays.
    for r in &fig2.rows {
        assert!(r.mws_opt <= r.mws_unopt, "{}", r.name);
        assert!(
            (r.mws_unopt as i64) < r.default_words,
            "{}: window {} vs default {}",
            r.name,
            r.mws_unopt,
            r.default_words
        );
        assert!(r.transform.is_unimodular(), "{}", r.name);
    }

    // Averages land in the paper's regime: ~82% before, more after.
    assert!(fig2.avg_unopt() > 60.0 && fig2.avg_unopt() < 99.0);
    assert!(fig2.avg_opt() >= fig2.avg_unopt());

    // Kernels where a transformation exists see a real win.
    assert!(row("2_point").mws_opt <= 3);
    assert!(row("3_point").mws_opt <= 3);
    assert!(row("rasta_flt").mws_opt <= 10);
}

#[test]
fn accuracy_claim() {
    // §5: "except for rasta_flt, our estimations were exact". In our
    // reconstruction the closed forms cover the stencil kernels exactly;
    // kernels with multi-reference rank-deficient accesses fall back to
    // exact enumeration (estimate == exact by construction); estimates
    // never undercount.
    for r in loopmem_bench::experiments::accuracy_table() {
        assert!(
            r.estimate >= r.exact as i64,
            "{}: estimate {} under exact {}",
            r.name,
            r.estimate,
            r.exact
        );
        let err = (r.estimate as f64 - r.exact as f64) / r.exact as f64;
        assert!(err < 0.35, "{}: error {:.2} too large", r.name, err);
        // Our inclusion-exclusion extension is exact on every kernel.
        assert_eq!(
            r.estimate_exact, r.exact as i64,
            "{}: improved estimator must be exact",
            r.name
        );
    }
}
