//! Integration coverage of the extension APIs through the facade:
//! symbolic formulas, inclusion–exclusion counting, programs, fusion,
//! tiling, direction vectors, and the replacement/layout machinery.

use loopmem::core::optimize::SearchMode;
use loopmem::core::{
    analyze_program, distinct_formulas, estimate_distinct, estimate_distinct_exact,
    estimate_nest_mws, fuse, optimize_program, tile,
};
use loopmem::dep::{direction_vector, Direction};
use loopmem::ir::{parse, parse_program, print_program, ArrayId};
use loopmem::sim::{
    line_analysis, min_perfect_capacity, simulate, simulate_program, Layout, Policy,
    ReuseHistogram, Trace,
};
use std::collections::HashMap;

#[test]
fn improved_estimator_fixes_example3() {
    let nest = parse(
        "array A[11][11]\nfor i = 1 to 10 { for j = 1 to 10 {\
           A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1]; } }",
    )
    .unwrap();
    let paper = estimate_distinct(&nest)[&ArrayId(0)];
    let improved = estimate_distinct_exact(&nest)[&ArrayId(0)];
    assert_eq!(paper.value(), Some(139));
    assert_eq!(improved.value(), Some(121));
    assert_eq!(improved.method, loopmem::core::Method::InclusionExclusion);
}

#[test]
fn symbolic_formula_predicts_unseen_sizes() {
    let nest =
        parse("array A[99][99]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-2][j+1]; } }")
            .unwrap();
    let est = distinct_formulas(&nest).remove(&ArrayId(0)).unwrap();
    // Check against a freshly parsed instance at a different size.
    let bigger =
        parse("array A[99][99]\nfor i = 1 to 30 { for j = 1 to 17 { A[i][j] = A[i-2][j+1]; } }")
            .unwrap();
    let values: HashMap<String, i64> = [("N1".to_string(), 30i64), ("N2".to_string(), 17)].into();
    assert_eq!(
        est.formula.eval(&values),
        estimate_distinct(&bigger)[&ArrayId(0)].upper
    );
}

#[test]
fn program_roundtrip_and_printing() {
    let src = "array A[8][8]\narray B[8][8]\n\
               for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i][j] + 1; } }\n\
               for i = 1 to 8 { for j = 1 to 8 { B[i][j] = A[i][j]; } }";
    let p = parse_program(src).unwrap();
    let printed = print_program(&p);
    // Declarations appear once, both nests present.
    assert_eq!(printed.matches("array A[8][8]").count(), 1);
    assert_eq!(printed.matches("for i = 1 to 8 {").count(), 2);
    let reparsed = parse_program(&printed).unwrap();
    assert_eq!(reparsed, p);
}

#[test]
fn fusion_then_program_optimization_compose() {
    let p = parse_program(
        "array A[12][12]\narray B[12][12]\narray C[12][12]\n\
         for i = 2 to 12 { for j = 1 to 12 { A[i][j] = A[i-1][j] + B[i][j]; } }\n\
         for i = 2 to 12 { for j = 1 to 12 { C[i][j] = A[i][j]; } }",
    )
    .unwrap();
    let before = analyze_program(&p);
    // Nests conform (2..12 x 1..12) and A flows forward: fusable.
    let fused = fuse(&p, 0).unwrap();
    let mid = analyze_program(&fused);
    assert!(mid.mws_exact <= before.mws_exact);
    // Per-nest optimization still applies to the fused program.
    let opt = optimize_program(&fused, SearchMode::default()).unwrap();
    assert!(opt.mws_after <= opt.mws_before);
}

#[test]
fn direction_vectors_on_transposed_pipeline() {
    let nest = parse("array M[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { M[i][j] = M[j][i]; } }")
        .unwrap();
    let refs: Vec<_> = nest.refs().collect();
    let dv = direction_vector(&nest, refs[0], refs[1]).expect("transposed refs collide");
    assert_eq!(dv.0, vec![Direction::Star, Direction::Star]);
}

#[test]
fn tiled_nest_is_still_analyzable_end_to_end() {
    let nest = parse(
        "array A[18][18]\nfor i = 2 to 16 { for j = 2 to 16 { A[i][j] = A[i-1][j] + A[i][j-1]; } }",
    )
    .unwrap();
    let tiled = tile(&nest, &[5, 5]).unwrap();
    // Simulator, estimators, and trace tools all accept the tiled nest.
    let s = simulate(&tiled);
    assert_eq!(s.distinct_total(), simulate(&nest).distinct_total());
    let t = Trace::from_nest(&tiled);
    let h = ReuseHistogram::from_trace(&t);
    assert_eq!(h.cold(), t.distinct() as u64);
    assert!(min_perfect_capacity(&t, Policy::Opt) >= 1);
}

#[test]
fn layout_analysis_for_a_program_nest() {
    let nest =
        parse("array A[16][16]\nfor i = 1 to 16 { for j = 1 to 16 { A[i][j] = A[i][j] + 1; } }")
            .unwrap();
    let (rm, _) = line_analysis(&nest, &[Layout::RowMajor], 4);
    assert_eq!(rm.distinct_lines, 64);
    assert!(rm.mws_lines <= 2, "streaming rows: at most one line live");
}

#[test]
fn closed_form_nest_mws_covers_the_kernel_suite() {
    for k in loopmem_bench::all_kernels() {
        let nest = k.nest();
        let est = estimate_nest_mws(&nest).expect("kernels are rectangular");
        let exact = simulate_program_of(&nest) as i64;
        // The closed form is an *estimate*: per-group terms ignore the
        // inter-group interleaving, so it sits close to the exact value
        // for the paper's derived shapes (2-level / 3-level groups) and
        // degenerates to a loose upper bound for deep multi-group nests
        // (3step_log's lexicographic-delay path). Pin the usable
        // direction: never more than ~10% below exact.
        assert!(
            10 * est >= 9 * exact,
            "{}: estimate {} far below exact {}",
            k.name,
            est,
            exact
        );
    }
}

fn simulate_program_of(nest: &loopmem::ir::LoopNest) -> u64 {
    // Exercise the program path even for single nests.
    let p = loopmem::ir::Program::new(vec![nest.clone()]).unwrap();
    simulate_program(&p).mws_total
}
