//! Property-based cross-validation of the three independent measurement
//! paths: closed-form estimators (`loopmem-core`), polyhedral enumeration
//! (`loopmem-poly`), and trace simulation (`loopmem-sim`).

use loopmem::core::estimate_distinct;
use loopmem::ir::{parse, ArrayId};
use loopmem::poly::count::distinct_accesses_for;
use loopmem::sim::simulate;
use proptest::prelude::*;

/// Random single-reference 1-D access `A[p*i + q*j + c]` over a random box.
fn nullspace_case() -> impl Strategy<Value = (String, i64, i64)> {
    (1i64..=6, -6i64..=6, 0i64..=9, 4i64..=14, 4i64..=14).prop_map(|(p, q, c, n1, n2)| {
        // Ensure the subscript stays within a generous declaration.
        let max_idx = p.abs() * n1 + q.abs() * n2 + c + 50;
        let qterm = if q >= 0 {
            format!("+ {q}*j")
        } else {
            format!("- {}*j", -q)
        };
        let src = format!(
            "array A[{max_idx}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ A[{p}*i {qterm} + {cc}]; }} }}",
            cc = c + 49,
        );
        (src, n1, n2)
    })
}

/// Random two-reference full-rank case `A[i+o1][j+o2] = A[i+o3][j+o4]`.
fn full_rank_case() -> impl Strategy<Value = String> {
    (
        4i64..=12,
        4i64..=12,
        -3i64..=3,
        -3i64..=3,
        -3i64..=3,
        -3i64..=3,
    )
        .prop_map(|(n1, n2, o1, o2, o3, o4)| {
            format!(
                "array A[{}][{}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ \
                 A[i + {a}][j + {b}] = A[i + {c}][j + {d}]; }} }}",
                n1 + 8,
                n2 + 8,
                a = o1 + 4,
                b = o2 + 4,
                c = o3 + 4,
                d = o4 + 4,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nullspace_formula_matches_enumeration((src, _n1, _n2) in nullspace_case()) {
        let nest = parse(&src).expect("generated source parses");
        let est = estimate_distinct(&nest)[&ArrayId(0)];
        let exact = distinct_accesses_for(&nest, ArrayId(0)) as i64;
        prop_assert!(est.is_exact(), "single uniformly generated ref is exact");
        prop_assert_eq!(est.value().unwrap(), exact, "{}", src);
    }

    #[test]
    fn nullspace_formula_matches_simulator((src, _n1, _n2) in nullspace_case()) {
        let nest = parse(&src).expect("generated source parses");
        let est = estimate_distinct(&nest)[&ArrayId(0)];
        let sim = simulate(&nest);
        prop_assert_eq!(est.value().unwrap() as u64, sim.distinct_total(), "{}", src);
    }

    #[test]
    fn two_ref_full_rank_formula_is_exact(src in full_rank_case()) {
        // §3.1 with r = 2 has no higher-order overlap, so the formula is
        // genuinely exact; all three paths must agree.
        let nest = parse(&src).expect("generated source parses");
        let est = estimate_distinct(&nest)[&ArrayId(0)];
        let exact = distinct_accesses_for(&nest, ArrayId(0)) as i64;
        prop_assert_eq!(est.value().unwrap(), exact, "{}", src);
        prop_assert_eq!(exact as u64, simulate(&nest).distinct_total(), "{}", src);
    }

    #[test]
    fn window_never_exceeds_distinct(src in full_rank_case()) {
        let nest = parse(&src).expect("generated source parses");
        let sim = simulate(&nest);
        prop_assert!(sim.mws_total <= sim.distinct_total());
        for stats in sim.per_array.values() {
            prop_assert!(stats.mws <= stats.distinct);
            prop_assert!(stats.distinct <= stats.accesses);
        }
    }

    #[test]
    fn enumeration_and_simulation_always_agree(src in full_rank_case()) {
        let nest = parse(&src).expect("generated source parses");
        let by_poly = distinct_accesses_for(&nest, ArrayId(0));
        let by_sim = simulate(&nest).array(ArrayId(0)).distinct;
        prop_assert_eq!(by_poly, by_sim);
    }
}
