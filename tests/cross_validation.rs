//! Cross-validation of the three independent measurement paths:
//! closed-form estimators (`loopmem-core`), polyhedral enumeration
//! (`loopmem-poly`), and trace simulation (`loopmem-sim`). Deterministic
//! (seeded `Lcg`), no external dependencies.

use loopmem::core::estimate_distinct;
use loopmem::ir::{parse, ArrayId};
use loopmem::linalg::Lcg;
use loopmem::poly::count::distinct_accesses_for;
use loopmem::sim::simulate;

/// Random single-reference 1-D access `A[p*i + q*j + c]` over a random box.
fn nullspace_case(rng: &mut Lcg) -> String {
    let p = rng.range_i64(1, 6);
    let q = rng.range_i64(-6, 6);
    let c = rng.range_i64(0, 9);
    let n1 = rng.range_i64(4, 14);
    let n2 = rng.range_i64(4, 14);
    // Ensure the subscript stays within a generous declaration.
    let max_idx = p.abs() * n1 + q.abs() * n2 + c + 50;
    let qterm = if q >= 0 {
        format!("+ {q}*j")
    } else {
        format!("- {}*j", -q)
    };
    format!(
        "array A[{max_idx}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ A[{p}*i {qterm} + {cc}]; }} }}",
        cc = c + 49,
    )
}

/// Random two-reference full-rank case `A[i+o1][j+o2] = A[i+o3][j+o4]`.
fn full_rank_case(rng: &mut Lcg) -> String {
    let n1 = rng.range_i64(4, 12);
    let n2 = rng.range_i64(4, 12);
    let o: Vec<i64> = (0..4).map(|_| rng.range_i64(-3, 3)).collect();
    format!(
        "array A[{}][{}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ \
         A[i + {a}][j + {b}] = A[i + {c}][j + {d}]; }} }}",
        n1 + 8,
        n2 + 8,
        a = o[0] + 4,
        b = o[1] + 4,
        c = o[2] + 4,
        d = o[3] + 4,
    )
}

#[test]
fn nullspace_formula_matches_enumeration() {
    let mut rng = Lcg::new(0x71);
    for _ in 0..64 {
        let src = nullspace_case(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let est = estimate_distinct(&nest)[&ArrayId(0)];
        let exact = distinct_accesses_for(&nest, ArrayId(0)) as i64;
        assert!(est.is_exact(), "single uniformly generated ref is exact");
        assert_eq!(est.value().unwrap(), exact, "{src}");
    }
}

#[test]
fn nullspace_formula_matches_simulator() {
    let mut rng = Lcg::new(0x72);
    for _ in 0..64 {
        let src = nullspace_case(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let est = estimate_distinct(&nest)[&ArrayId(0)];
        let sim = simulate(&nest);
        assert_eq!(est.value().unwrap() as u64, sim.distinct_total(), "{src}");
    }
}

#[test]
fn two_ref_full_rank_formula_is_exact() {
    let mut rng = Lcg::new(0x73);
    for _ in 0..64 {
        let src = full_rank_case(&mut rng);
        // §3.1 with r = 2 has no higher-order overlap, so the formula is
        // genuinely exact; all three paths must agree.
        let nest = parse(&src).expect("generated source parses");
        let est = estimate_distinct(&nest)[&ArrayId(0)];
        let exact = distinct_accesses_for(&nest, ArrayId(0)) as i64;
        assert_eq!(est.value().unwrap(), exact, "{src}");
        assert_eq!(exact as u64, simulate(&nest).distinct_total(), "{src}");
    }
}

#[test]
fn window_never_exceeds_distinct() {
    let mut rng = Lcg::new(0x74);
    for _ in 0..64 {
        let src = full_rank_case(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let sim = simulate(&nest);
        assert!(sim.mws_total <= sim.distinct_total(), "{src}");
        for stats in sim.per_array.values() {
            assert!(stats.mws <= stats.distinct, "{src}");
            assert!(stats.distinct <= stats.accesses, "{src}");
        }
    }
}

#[test]
fn enumeration_and_simulation_always_agree() {
    let mut rng = Lcg::new(0x75);
    for _ in 0..64 {
        let src = full_rank_case(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let by_poly = distinct_accesses_for(&nest, ArrayId(0));
        let by_sim = simulate(&nest).array(ArrayId(0)).distinct;
        assert_eq!(by_poly, by_sim, "{src}");
    }
}
