//! The `kernels/*.loop` files shipped for the CLI stay valid and keep the
//! properties their comments advertise.

use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::ir::parse;
use loopmem::sim::simulate;
use std::fs;

fn load(name: &str) -> loopmem::ir::LoopNest {
    let path = format!("{}/kernels/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn all_kernel_files_parse() {
    let dir = format!("{}/kernels", env!("CARGO_MANIFEST_DIR"));
    let mut count = 0;
    for entry in fs::read_dir(&dir).expect("kernels directory exists") {
        let path = entry.expect("directory entry").path();
        if path.extension().is_some_and(|e| e == "loop") {
            let src = fs::read_to_string(&path).expect("readable");
            // parse_program accepts both single nests and sequences.
            loopmem::ir::parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            count += 1;
        }
    }
    assert!(
        count >= 4,
        "expected the shipped kernel files, found {count}"
    );
}

#[test]
fn example8_file_matches_its_comment() {
    let nest = load("example8.loop");
    assert_eq!(simulate(&nest).mws_total, 44);
    let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
    assert_eq!(opt.mws_after, 21);
    assert_eq!(opt.transform.row(0), &[2, 3]);
}

#[test]
fn matmult_file_matches_its_comment() {
    let nest = load("matmult.loop");
    assert_eq!(simulate(&nest).mws_total, 273);
}

#[test]
fn rasta_file_improves_64x() {
    let nest = load("rasta_flt.loop");
    let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
    assert!(opt.mws_before >= 64 * opt.mws_after);
}
