//! Parser/printer round-trip guarantees over generated programs.

use loopmem::ir::{parse, print_nest};
use proptest::prelude::*;

/// Random rectangular 2-deep nest with 1–3 statements of uniformly
/// generated references.
fn random_source() -> impl Strategy<Value = String> {
    let stmt = (-3i64..=3, -3i64..=3, -3i64..=3, -3i64..=3).prop_map(|(a, b, c, d)| {
        format!(
            "A[i + {}][j + {}] = A[i + {}][j + {}];",
            a + 4,
            b + 4,
            c + 4,
            d + 4
        )
    });
    (2i64..=20, 2i64..=20, proptest::collection::vec(stmt, 1..4)).prop_map(
        |(n1, n2, stmts)| {
            format!(
                "array A[{}][{}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ {} }} }}",
                n1 + 8,
                n2 + 8,
                stmts.join(" ")
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_roundtrip(src in random_source()) {
        let nest = parse(&src).expect("generated source parses");
        let printed = print_nest(&nest);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        prop_assert_eq!(nest, reparsed, "{}", printed);
    }

    #[test]
    fn parsing_is_deterministic(src in random_source()) {
        prop_assert_eq!(parse(&src).unwrap(), parse(&src).unwrap());
    }
}

#[test]
fn kernel_sources_roundtrip() {
    for k in loopmem_bench::all_kernels() {
        let nest = k.nest();
        let printed = print_nest(&nest);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", k.name));
        assert_eq!(nest, reparsed, "{}", k.name);
    }
}

#[test]
fn transformed_nests_print_readably() {
    // A transformed nest has max/min/ceil/floor bounds; the printer must
    // render them without panicking and mention each construct.
    let nest = parse(
        "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap();
    let t = loopmem::linalg::IMat::from_rows(&[vec![2, 3], vec![1, 1]]);
    let out = loopmem::core::apply_transform(&nest, &t).unwrap();
    let printed = print_nest(&out);
    assert!(printed.contains("max("), "{printed}");
    assert!(printed.contains("min("), "{printed}");
    assert!(printed.contains("t1"), "{printed}");
}
