//! Parser/printer round-trip guarantees over generated programs.
//! Deterministic (seeded `Lcg`), no external dependencies.

use loopmem::ir::{parse, print_nest};
use loopmem::linalg::Lcg;

/// Random rectangular 2-deep nest with 1–3 statements of uniformly
/// generated references.
fn random_source(rng: &mut Lcg) -> String {
    let n1 = rng.range_i64(2, 20);
    let n2 = rng.range_i64(2, 20);
    let nstmt = rng.range_usize(1, 3);
    let stmts: Vec<String> = (0..nstmt)
        .map(|_| {
            format!(
                "A[i + {}][j + {}] = A[i + {}][j + {}];",
                rng.range_i64(-3, 3) + 4,
                rng.range_i64(-3, 3) + 4,
                rng.range_i64(-3, 3) + 4,
                rng.range_i64(-3, 3) + 4,
            )
        })
        .collect();
    format!(
        "array A[{}][{}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ {} }} }}",
        n1 + 8,
        n2 + 8,
        stmts.join(" ")
    )
}

#[test]
fn print_parse_roundtrip() {
    let mut rng = Lcg::new(0x91);
    for _ in 0..64 {
        let src = random_source(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let printed = print_nest(&nest);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        assert_eq!(nest, reparsed, "{printed}");
    }
}

#[test]
fn parsing_is_deterministic() {
    let mut rng = Lcg::new(0x92);
    for _ in 0..64 {
        let src = random_source(&mut rng);
        assert_eq!(parse(&src).unwrap(), parse(&src).unwrap());
    }
}

#[test]
fn kernel_sources_roundtrip() {
    for k in loopmem_bench::all_kernels() {
        let nest = k.nest();
        let printed = print_nest(&nest);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", k.name));
        assert_eq!(nest, reparsed, "{}", k.name);
    }
}

#[test]
fn transformed_nests_print_readably() {
    // A transformed nest has max/min/ceil/floor bounds; the printer must
    // render them without panicking and mention each construct.
    let nest = parse(
        "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap();
    let t = loopmem::linalg::IMat::from_rows(&[vec![2, 3], vec![1, 1]]);
    let out = loopmem::core::apply_transform(&nest, &t).unwrap();
    let printed = print_nest(&out);
    assert!(printed.contains("max("), "{printed}");
    assert!(printed.contains("min("), "{printed}");
    assert!(printed.contains("t1"), "{printed}");
}
