//! Semantic guarantees of the transformation machinery: a unimodular
//! transformation permutes the iteration order without changing the set of
//! accesses, and the optimizer never regresses. Deterministic (seeded
//! `Lcg`), no external dependencies.

use loopmem::core::apply_transform;
use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::dep::{analyze, is_legal};
use loopmem::ir::parse;
use loopmem::linalg::{IMat, Lcg};
use loopmem::sim::{count_iterations, simulate};

/// Random 2×2 unimodular matrices via products of elementary generators
/// (skews and the signed swap), so every sample is exactly unimodular.
fn unimodular2(rng: &mut Lcg) -> IMat {
    let mut m = IMat::identity(2);
    for _ in 0..rng.range_usize(1, 4) {
        let k = rng.range_i64(-2, 2);
        let g = match rng.range_usize(0, 2) {
            0 => IMat::from_rows(&[vec![1, k], vec![0, 1]]),
            1 => IMat::from_rows(&[vec![1, 0], vec![k, 1]]),
            _ => IMat::from_rows(&[vec![0, 1], vec![-1, 0]]),
        };
        m = &g * &m;
    }
    m
}

fn small_nest(rng: &mut Lcg) -> String {
    let n1 = rng.range_i64(3, 8);
    let n2 = rng.range_i64(3, 8);
    let d1 = rng.range_i64(-2, 2);
    let d2 = rng.range_i64(-2, 2);
    format!(
        "array A[{}][{}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ \
         A[i + 3][j + 3] = A[i + {a}][j + {b}]; }} }}",
        n1 + 6,
        n2 + 6,
        a = d1 + 3,
        b = d2 + 3,
    )
}

#[test]
fn transformation_preserves_access_sets() {
    let mut rng = Lcg::new(0x81);
    for _ in 0..48 {
        let src = small_nest(&mut rng);
        let t = unimodular2(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        assert!(t.is_unimodular());
        let out = apply_transform(&nest, &t).expect("unimodular transforms apply");
        assert_eq!(count_iterations(&out), count_iterations(&nest), "{src}");
        let (a, b) = (simulate(&nest), simulate(&out));
        assert_eq!(a.distinct_total(), b.distinct_total(), "{src}");
        // Per-array access counts are preserved too (same multiset of work).
        for (id, sa) in &a.per_array {
            assert_eq!(sa.accesses, b.per_array[id].accesses, "{src}");
            assert_eq!(sa.distinct, b.per_array[id].distinct, "{src}");
        }
    }
}

#[test]
fn roundtrip_through_inverse_is_identity() {
    let mut rng = Lcg::new(0x82);
    for _ in 0..48 {
        let src = small_nest(&mut rng);
        let t = unimodular2(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let fwd = apply_transform(&nest, &t).expect("forward");
        let back = apply_transform(&fwd, &t.unimodular_inverse().unwrap()).expect("inverse");
        assert_eq!(
            simulate(&back).mws_total,
            simulate(&nest).mws_total,
            "{src}"
        );
    }
}

#[test]
fn optimizer_never_regresses() {
    let mut rng = Lcg::new(0x83);
    for _ in 0..24 {
        let src = small_nest(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let opt = minimize_mws(&nest, SearchMode::default()).expect("identity is a candidate");
        assert!(opt.mws_after <= opt.mws_before, "{src}");
        // The reported transformation is legal and reproduces mws_after.
        let deps = analyze(&nest);
        assert!(is_legal(&opt.transform, &deps), "{src}");
        let redo = apply_transform(&nest, &opt.transform).expect("reported T applies");
        assert_eq!(simulate(&redo).mws_total, opt.mws_after, "{src}");
    }
}

#[test]
fn interchange_reversal_is_never_better_than_compound() {
    let mut rng = Lcg::new(0x84);
    for _ in 0..24 {
        let src = small_nest(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let compound = minimize_mws(&nest, SearchMode::default()).expect("compound");
        let baseline = minimize_mws(&nest, SearchMode::InterchangeReversal).expect("baseline");
        assert!(
            compound.mws_after <= baseline.mws_after,
            "compound {} vs baseline {} for {src}",
            compound.mws_after,
            baseline.mws_after,
        );
    }
}

#[test]
fn illegal_transformation_is_rejected_by_legality_not_by_apply() {
    // apply_transform is mechanical; legality lives in loopmem-dep.
    let nest =
        parse("array A[20][20]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }")
            .unwrap();
    let deps = analyze(&nest);
    let interchange = IMat::from_rows(&[vec![0, 1], vec![1, 0]]);
    assert!(!is_legal(&interchange, &deps));
    // It still applies (measuring an illegal order is allowed) …
    let out = apply_transform(&nest, &interchange).unwrap();
    // … and preserves the access set even though it breaks dataflow order.
    assert_eq!(
        simulate(&out).distinct_total(),
        simulate(&nest).distinct_total()
    );
}
