//! End-to-end reproduction of every worked example in the paper, driven
//! through the `loopmem` facade exactly as a downstream user would.

use loopmem::core::optimize::{minimize_mws, OptimizeError, SearchMode};
use loopmem::core::{
    analyze_memory, apply_transform, estimate_distinct, three_level_estimate, two_level_estimate,
    two_level_objective,
};
use loopmem::dep::{analyze, reuse_vectors};
use loopmem::ir::{parse, ArrayId};
use loopmem::linalg::{IMat, Rational};
use loopmem::poly::count::distinct_accesses_for;
use loopmem::sim::simulate;

#[test]
fn example_1_reuse_area_is_56() {
    // Both 1(a) (2-D array) and 1(b) (1-D array) share dependence (3,2)
    // and reuse area (10-3)(10-2) = 56.
    let a =
        parse("array A[14][14]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-3][j+2]; } }")
            .unwrap();
    let b = parse("array A[51]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i + 3j]; } }").unwrap();
    // 1(a): 2 refs, one dependence: accesses - distinct = reuse.
    let sa = simulate(&a);
    assert_eq!(200 - sa.distinct_total(), 56);
    // 1(b): 1 ref: iterations - distinct = reuse.
    let sb = simulate(&b);
    assert_eq!(100 - sb.distinct_total(), 56);
}

#[test]
fn example_2_formula_and_truth_agree() {
    let nest =
        parse("array A[12][14]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }")
            .unwrap();
    let est = estimate_distinct(&nest)[&ArrayId(0)];
    assert_eq!(est.value(), Some(2 * 100 - 9 * 8));
    assert_eq!(
        est.value().unwrap() as u64,
        distinct_accesses_for(&nest, ArrayId(0))
    );
}

#[test]
fn example_3_paper_formula_vs_exact() {
    let nest = parse(
        "array A[11][11]\nfor i = 1 to 10 { for j = 1 to 10 {\
           A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1]; } }",
    )
    .unwrap();
    let est = estimate_distinct(&nest)[&ArrayId(0)];
    assert_eq!(est.value(), Some(139), "the paper's formula value");
    assert_eq!(
        distinct_accesses_for(&nest, ArrayId(0)),
        121,
        "the true union of four shifted squares"
    );
}

#[test]
fn examples_4_and_5_nullspace_formula_is_exact() {
    let e4 =
        parse("array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }").unwrap();
    assert_eq!(estimate_distinct(&e4)[&ArrayId(0)].value(), Some(80));
    assert_eq!(distinct_accesses_for(&e4, ArrayId(0)), 80);
    assert_eq!(simulate(&e4).distinct_total(), 80);

    let e5 = parse(
        "array A[61][51]\n\
         for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
    )
    .unwrap();
    assert_eq!(estimate_distinct(&e5)[&ArrayId(0)].value(), Some(1869));
    assert_eq!(distinct_accesses_for(&e5, ArrayId(0)), 1869);
}

#[test]
fn example_6_bounds_bracket_the_truth() {
    let nest = parse(
        "array A[200]\n\
         for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
    )
    .unwrap();
    let est = estimate_distinct(&nest)[&ArrayId(0)];
    assert_eq!((est.lower, est.upper), (179, 191), "the paper's bounds");
    let exact = distinct_accesses_for(&nest, ArrayId(0)) as i64;
    assert_eq!(exact, 182, "brute force (the paper prints 181)");
    assert!(est.lower <= exact && exact <= est.upper);
}

#[test]
fn example_7_compound_beats_interchange_and_reversal() {
    let nest = parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap();
    // Eq. (2) estimates for the four elementary orders (paper: 89/41/86/36
    // under the Eisenbeis cost metric).
    assert_eq!(two_level_estimate((2, -3), (1, 0), (20, 30)), 90);
    assert_eq!(two_level_estimate((2, -3), (0, 1), (20, 30)), 40);
    // Exact values.
    assert_eq!(simulate(&nest).mws_total, 86);
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    assert_eq!(opt.mws_after, 1, "paper: the cost can be reduced to 1");
    let baseline = minimize_mws(&nest, SearchMode::InterchangeReversal).unwrap();
    assert_eq!(baseline.mws_after, 34, "best elementary order");
    assert!(opt.mws_after < baseline.mws_after);
}

#[test]
fn example_8_full_study() {
    let nest = parse(
        "array X[200]\n\
         for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap();
    // Dependences (§4): flow (3,-2), anti (2,0), output (5,-2).
    let deps = analyze(&nest);
    let mut d = deps.distances(true);
    d.sort();
    assert_eq!(d, vec![vec![2, 0], vec![3, -2], vec![5, -2]]);

    // §4.2: objective at the optimum (a,b) = (2,3) is 22; actual MWS 21.
    assert_eq!(
        two_level_objective((2, 5), (2, 3), (25, 10)),
        Rational::from(22)
    );
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    assert_eq!(opt.mws_after, 21);
    assert_eq!(opt.transform.row(0), &[2, 3], "the paper's leading row");

    // Li–Pingali cannot complete a legal transformation here.
    assert_eq!(
        minimize_mws(&nest, SearchMode::LiPingali).unwrap_err(),
        OptimizeError::NoLegalTransform
    );
    // Interchange/reversal cannot improve at all.
    let ir = minimize_mws(&nest, SearchMode::InterchangeReversal).unwrap();
    assert_eq!(ir.mws_after, ir.mws_before);
}

#[test]
fn example_9_eq2_tracks_simulated_windows() {
    // Sweep transformations of a uniformly generated 1-D access and check
    // eq. (2) is a (close) upper estimate of the exact window.
    let nest = parse(
        "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap();
    for rows in [
        vec![vec![1, 0], vec![0, 1]],
        vec![vec![0, 1], vec![1, 0]],
        vec![vec![1, 1], vec![0, 1]],
        vec![vec![2, 3], vec![1, 1]],
        vec![vec![1, 2], vec![0, 1]],
    ] {
        let t = IMat::from_rows(&rows);
        let est = two_level_estimate((2, 5), (t[(0, 0)], t[(0, 1)]), (25, 10));
        let exact = simulate(&apply_transform(&nest, &t).unwrap()).mws_total as i64;
        assert!(
            exact <= est + 4,
            "estimate {est} far below exact {exact} for {rows:?}"
        );
        assert!(
            est <= 3 * exact + 6,
            "estimate {est} far above exact {exact} for {rows:?}"
        );
    }
}

#[test]
fn example_10_three_level_window() {
    let nest = parse(
        "array A[61][51]\n\
         for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
    )
    .unwrap();
    let rv = reuse_vectors(&nest);
    assert_eq!(rv.len(), 1);
    let v = &rv[0].1;
    assert_eq!(v.iter().map(|x| x.abs()).collect::<Vec<_>>(), vec![1, 3, 3]);
    assert_eq!(three_level_estimate((v[0], v[1], v[2]), (10, 20, 30)), 540);
    // §4.3: the access-matrix transformation collapses the window to 1.
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    assert_eq!(opt.mws_after, 1);
    // The memory analysis ties it together.
    let m = analyze_memory(&nest);
    assert_eq!(m.distinct_exact_total, 1869);
    assert!(m.mws_exact <= 540, "closed form is an upper estimate");
}

#[test]
fn section_2_3_uniformly_generated_example() {
    // The §2.3 example loop with X and Y: all references uniformly
    // generated, two groups.
    let nest = parse(
        "array X[200]\narray Y[100]\n\
         for i = 1 to 10 { for j = 1 to 10 {\n\
           X[2i + 3j + 2] = Y[i + j];\n\
           Y[i + j + 1] = X[2i + 3j + 3];\n\
         } }",
    )
    .unwrap();
    assert!(loopmem::dep::uniform::is_uniformly_generated(&nest));
    let m = analyze_memory(&nest);
    assert!(m.mws_exact > 0);
    // Every element of Y is reused (read then written shifted by one).
    assert!(m.mws_per_array[&nest.array_by_name("Y").unwrap()] >= 1);
}
