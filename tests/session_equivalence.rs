//! Pins every legacy entry point to its `Session` equivalent: the
//! governed `try_*` / `*_with_threads` zoo now delegates to
//! [`loopmem::Session`], and these tests keep that delegation honest by
//! asserting bit-identical results against a hand-built session. The
//! ungoverned fast paths (which a `Session` with the default unlimited
//! budget replaces) are pinned too, modulo the optimizer's process-wide
//! memo (`cache_hits` is 0 on every governed path by contract).

use loopmem::core::{
    minimize_mws_with_threads, optimize_program_with_threads, scratchpad_program_with_threads,
    scratchpad_with_fusion, try_minimize_mws, try_minimize_mws_with_threads, try_optimize_program,
    try_optimize_program_with_threads, try_scratchpad_program, try_scratchpad_program_with_threads,
    try_scratchpad_with_fusion, SearchMode,
};
use loopmem::ir::{parse, parse_program, ArrayId, LoopNest, Program};
use loopmem::sim::{
    simulate_program_with_threads, simulate_with_threads, try_simulate, try_simulate_program,
    try_simulate_program_with_threads, try_simulate_with_threads, AnalysisBudget, ArrayStats,
    GovernedProgramSim, ProgramSimResult, SimResult,
};
use loopmem::Session;
use std::collections::BTreeMap;

fn example8() -> LoopNest {
    parse(
        "array X[200]\n\
         for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap()
}

fn three_nest_program() -> Program {
    parse_program(
        "array A[24][24]\narray X[200]\n\
         for i = 2 to 24 { for j = 1 to 24 { A[i][j] = A[i-1][j] + A[i][j]; } }\n\
         for i = 1 to 24 { for j = i to 24 { A[i][j] = A[j][i]; } }\n\
         for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap()
}

fn fusion_program() -> Program {
    parse_program(
        "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
         for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
         for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
    )
    .unwrap()
}

fn budget() -> AnalysisBudget {
    AnalysisBudget::unlimited().with_max_iterations(1_000_000)
}

/// `SimResult` holds a `HashMap`, whose `Debug` order is unstable —
/// compare through a sorted projection instead of the raw `Debug` string.
fn sim_key(sim: &SimResult) -> (u64, u64, BTreeMap<ArrayId, ArrayStats>) {
    (
        sim.iterations,
        sim.mws_total,
        sim.per_array.iter().map(|(k, v)| (*k, v.clone())).collect(),
    )
}

/// Same story for `ProgramSimResult::distinct`: sort the per-array map,
/// keep everything else as its (stable) `Debug` rendering.
fn program_sim_key(sim: &ProgramSimResult) -> (String, BTreeMap<ArrayId, u64>) {
    let sorted: BTreeMap<ArrayId, u64> = sim.distinct.iter().map(|(k, v)| (*k, *v)).collect();
    let rest = format!(
        "{:?} {:?} {:?} {:?} {:?} {:?}",
        sim.per_nest_iterations,
        sim.mws_total,
        sim.boundary_live,
        sim.peak_nest,
        sim.per_nest_mws,
        sim.live_through
    );
    (rest, sorted)
}

fn governed_program_key(gov: &GovernedProgramSim) -> (String, (String, BTreeMap<ArrayId, u64>)) {
    (
        format!("{:?} {:?}", gov.per_nest, gov.mws_bounds),
        program_sim_key(&gov.sim),
    )
}

#[test]
fn wrapper_try_simulate_matches_session() {
    let nest = example8();
    let b = budget();
    let legacy = try_simulate(&nest, &b).unwrap();
    let session = Session::new().budget(b.clone()).simulate(&nest).unwrap();
    assert_eq!(sim_key(&legacy), sim_key(&session));
}

#[test]
fn wrapper_try_simulate_with_threads_matches_session() {
    let nest = example8();
    let b = budget();
    for t in [1, 2, 4] {
        let legacy = try_simulate_with_threads(&nest, false, t, &b).unwrap();
        let session = Session::new()
            .threads(t)
            .budget(b.clone())
            .simulate(&nest)
            .unwrap();
        assert_eq!(sim_key(&legacy), sim_key(&session), "threads={t}");
    }
}

#[test]
fn ungoverned_simulate_matches_default_session() {
    let nest = example8();
    for t in [1, 2, 4] {
        let legacy = simulate_with_threads(&nest, false, t);
        let session = Session::new().threads(t).simulate(&nest).unwrap();
        assert_eq!(sim_key(&legacy), sim_key(&session), "threads={t}");
    }
}

#[test]
fn wrapper_try_simulate_program_matches_session() {
    let program = three_nest_program();
    let b = budget();
    let legacy = try_simulate_program(&program, &b).unwrap();
    let session = Session::new()
        .budget(b.clone())
        .simulate_program(&program)
        .unwrap();
    assert_eq!(
        governed_program_key(&legacy),
        governed_program_key(&session)
    );
}

#[test]
fn wrapper_try_simulate_program_with_threads_matches_session() {
    let program = three_nest_program();
    let b = budget();
    for t in [1, 2, 4] {
        let legacy = try_simulate_program_with_threads(&program, t, &b).unwrap();
        let session = Session::new()
            .threads(t)
            .budget(b.clone())
            .simulate_program(&program)
            .unwrap();
        assert_eq!(
            governed_program_key(&legacy),
            governed_program_key(&session),
            "threads={t}"
        );
    }
}

#[test]
fn ungoverned_simulate_program_matches_default_session() {
    let program = three_nest_program();
    let legacy = simulate_program_with_threads(&program, 2);
    let session = Session::new()
        .threads(2)
        .simulate_program(&program)
        .unwrap();
    assert!(session.all_exact());
    assert_eq!(program_sim_key(&legacy), program_sim_key(&session.sim));
}

#[test]
fn wrapper_try_minimize_mws_matches_session() {
    let nest = example8();
    let b = budget();
    let legacy = try_minimize_mws(&nest, SearchMode::default(), &b).unwrap();
    let session = Session::new().budget(b.clone()).optimize(&nest).unwrap();
    assert_eq!(format!("{legacy:?}"), format!("{session:?}"));
}

#[test]
fn wrapper_try_minimize_mws_with_threads_matches_session() {
    let nest = example8();
    let b = budget();
    for t in [1, 2, 4] {
        let legacy = try_minimize_mws_with_threads(&nest, SearchMode::default(), t, &b).unwrap();
        let session = Session::new()
            .threads(t)
            .budget(b.clone())
            .optimize(&nest)
            .unwrap();
        assert_eq!(format!("{legacy:?}"), format!("{session:?}"), "threads={t}");
    }
}

#[test]
fn ungoverned_minimize_mws_matches_default_session_modulo_memo() {
    let nest = example8();
    let legacy = minimize_mws_with_threads(&nest, SearchMode::default(), 2).unwrap();
    let session = Session::new().threads(2).optimize(&nest).unwrap();
    // The ungoverned path consults the process-wide memo (cache_hits may
    // be non-zero); the governed path skips it by contract. Everything
    // the caller acts on is identical.
    assert_eq!(legacy.transform, session.transform);
    assert_eq!(legacy.transformed, session.transformed);
    assert_eq!(legacy.mws_before, session.mws_before);
    assert_eq!(legacy.mws_after, session.mws_after);
    assert_eq!(legacy.candidates_considered, session.candidates_considered);
    assert_eq!(legacy.evaluated, session.evaluated);
    assert_eq!(session.cache_hits, 0);
}

#[test]
fn wrapper_try_optimize_program_matches_session() {
    let program = three_nest_program();
    let b = budget();
    let legacy = try_optimize_program(&program, SearchMode::default(), &b).unwrap();
    let session = Session::new()
        .budget(b.clone())
        .optimize_program(&program)
        .unwrap();
    assert_eq!(format!("{legacy:?}"), format!("{session:?}"));
}

#[test]
fn wrapper_try_optimize_program_with_threads_matches_session() {
    let program = three_nest_program();
    let b = budget();
    for t in [1, 2] {
        let legacy =
            try_optimize_program_with_threads(&program, SearchMode::default(), t, &b).unwrap();
        let session = Session::new()
            .threads(t)
            .budget(b.clone())
            .optimize_program(&program)
            .unwrap();
        assert_eq!(format!("{legacy:?}"), format!("{session:?}"), "threads={t}");
    }
}

#[test]
fn ungoverned_optimize_program_matches_default_session() {
    let program = three_nest_program();
    let legacy = optimize_program_with_threads(&program, SearchMode::default(), 2).unwrap();
    let session = Session::new()
        .threads(2)
        .optimize_program(&program)
        .unwrap();
    assert_eq!(legacy.transformed, session.transformed);
    assert_eq!(legacy.mws_before, session.mws_before.lower);
    assert_eq!(legacy.mws_before, session.mws_before.upper);
    assert_eq!(legacy.mws_after, session.mws_after.lower);
    assert_eq!(legacy.mws_after, session.mws_after.upper);
    let governed_per_nest: Vec<(u64, u64)> = session
        .per_nest
        .iter()
        .map(|r| *r.as_ref().expect("unlimited budget cannot degrade"))
        .collect();
    assert_eq!(legacy.per_nest, governed_per_nest);
}

#[test]
fn wrapper_try_scratchpad_program_matches_session() {
    let program = fusion_program();
    let b = budget();
    let legacy = try_scratchpad_program(&program, &b).unwrap();
    let session = Session::new()
        .budget(b.clone())
        .scratchpad_sizing(&program)
        .unwrap();
    assert_eq!(format!("{legacy:?}"), format!("{session:?}"));
}

#[test]
fn wrapper_try_scratchpad_program_with_threads_matches_session() {
    let program = fusion_program();
    let b = budget();
    for t in [1, 2, 4] {
        let legacy = try_scratchpad_program_with_threads(&program, t, &b).unwrap();
        let session = Session::new()
            .threads(t)
            .budget(b.clone())
            .scratchpad_sizing(&program)
            .unwrap();
        assert_eq!(format!("{legacy:?}"), format!("{session:?}"), "threads={t}");
    }
}

#[test]
fn ungoverned_scratchpad_program_matches_default_session() {
    let program = fusion_program();
    let legacy = scratchpad_program_with_threads(&program, 2);
    let session = Session::new()
        .threads(2)
        .scratchpad_sizing(&program)
        .unwrap();
    assert!(session.all_exact());
    assert_eq!(format!("{legacy:?}"), format!("{:?}", session.sizing));
}

#[test]
fn wrapper_try_scratchpad_with_fusion_matches_session() {
    let program = fusion_program();
    let b = budget();
    for t in [1, 2] {
        let legacy = try_scratchpad_with_fusion(&program, t, &b).unwrap();
        let session = Session::new()
            .threads(t)
            .budget(b.clone())
            .scratchpad(&program)
            .unwrap();
        assert_eq!(format!("{legacy:?}"), format!("{session:?}"), "threads={t}");
    }
}

#[test]
fn ungoverned_scratchpad_with_fusion_matches_default_session() {
    let program = fusion_program();
    let legacy = scratchpad_with_fusion(&program, 1);
    let (_, plan) = Session::new().threads(1).scratchpad(&program).unwrap();
    let plan = plan.expect("exact baseline runs the fusion search");
    assert_eq!(format!("{legacy:?}"), format!("{plan:?}"));
}
