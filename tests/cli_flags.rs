//! Flag-matrix tests for the shared `CommonOpts` parser: every
//! subcommand that takes the cross-cutting flags (`--threads`,
//! `--timeout-ms`, `--max-iters`, `--trace`, `--emit-cert`, `--format`)
//! must accept the same syntax and reject bad values with the same
//! message, regardless of which subcommand the flag rode in on.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_loopmem"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The first stderr line carries the parse error; the rest is usage text.
fn parse_error(args: &[&str]) -> String {
    let (ok, _, stderr) = run(args);
    assert!(!ok, "expected a parse failure for {args:?}");
    stderr.lines().next().unwrap_or_default().to_owned()
}

const KERNEL: &str = "kernels/example8.loop";

/// The subcommands swept by the matrix. Two is the contract minimum;
/// `verify` and `trace` ride along since they share the parser too.
const SUBCOMMANDS: [&str; 4] = ["pipeline", "scratchpad", "verify", "trace"];

/// Each bad flag value must produce the identical first-line error on
/// every subcommand in the matrix.
#[test]
fn bad_flag_values_fail_identically_across_subcommands() {
    let cases: [(&[&str], &str); 6] = [
        (
            &["--threads", "0"],
            "loopmem: --threads needs a positive count",
        ),
        (&["--threads"], "loopmem: --threads needs a positive count"),
        (
            &["--timeout-ms", "abc"],
            "loopmem: --timeout-ms: invalid digit found in string",
        ),
        (
            &["--max-iters"],
            "loopmem: --max-iters needs an iteration count",
        ),
        (&["--trace"], "loopmem: --trace needs an output path"),
        (
            &["--emit-cert"],
            "loopmem: --emit-cert needs an output path",
        ),
    ];
    for (flags, want) in cases {
        for cmd in SUBCOMMANDS {
            let mut args = vec![cmd, KERNEL];
            args.extend_from_slice(flags);
            assert_eq!(parse_error(&args), want, "{cmd} {flags:?}");
        }
    }
}

#[test]
fn bad_format_fails_identically_where_format_is_accepted() {
    // `pipeline`/`scratchpad` ignore --format today, so sweep the
    // subcommands that honor it.
    for cmd in ["check", "verify", "trace"] {
        assert_eq!(
            parse_error(&[cmd, KERNEL, "--format", "yaml"]),
            "loopmem: bad --format Some(\"yaml\") (expected text or json)",
            "{cmd}"
        );
    }
}

/// Good values succeed on every subcommand and `--trace` writes the same
/// NDJSON header everywhere.
#[test]
fn trace_flag_writes_ndjson_on_every_subcommand() {
    let dir = std::env::temp_dir();
    for cmd in SUBCOMMANDS {
        let path = dir.join(format!(
            "loopmem_cli_flags_{cmd}_{}.ndjson",
            std::process::id()
        ));
        let path_str = path.to_str().unwrap();
        // `trace` spells its output flag --out; the others use --trace.
        let flag = if cmd == "trace" { "--out" } else { "--trace" };
        let (ok, _, stderr) = run(&[cmd, KERNEL, "--threads", "2", flag, path_str]);
        assert!(ok, "{cmd}: {stderr}");
        let written = std::fs::read_to_string(&path).expect("trace file written");
        assert!(
            written.starts_with("{\"suite\":\"loopmem-trace\",\"version\":1,"),
            "{cmd}: {written}"
        );
        let _ = std::fs::remove_file(&path);
    }
}

/// Budget flags select the governed path and still exit 0 (a degraded
/// answer is an answer) on both contract subcommands.
#[test]
fn budget_flags_parse_identically_and_keep_exit_zero() {
    for cmd in ["pipeline", "scratchpad"] {
        let (ok, stdout, stderr) = run(&[
            cmd,
            KERNEL,
            "--timeout-ms",
            "10000",
            "--max-iters",
            "100000",
        ]);
        assert!(ok, "{cmd}: {stderr}");
        assert!(stdout.contains("outcome"), "{cmd}: {stdout}");
    }
}
