#!/usr/bin/env bash
# Offline CI: tier-1 build/test plus a smoke run of the performance suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: build =="
cargo build --release --offline

echo "== tier-1: test =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --offline --workspace

echo "== perfsuite (smoke) =="
rm -f BENCH_loopmem.json
cargo run -q --release --offline -p loopmem-bench --bin perfsuite -- --smoke

echo "== BENCH_loopmem.json well-formed =="
test -s BENCH_loopmem.json
python3 - <<'EOF'
import json
with open("BENCH_loopmem.json") as f:
    d = json.load(f)
assert d["suite"] == "loopmem-perfsuite", d.get("suite")
assert isinstance(d["threads_default"], int) and d["threads_default"] >= 1
assert d["results"], "no results recorded"
for r in d["results"]:
    assert {"bench", "subject", "threads", "millis", "iterations"} <= r.keys(), r
assert any(k.endswith("dense1t_vs_hashmap") for k in d["speedups"]), d["speedups"]
print(f"ok: {len(d['results'])} results, {len(d['speedups'])} speedups")
EOF

echo "== ci passed =="
