#!/usr/bin/env bash
# Offline CI: tier-1 build/test plus a smoke run of the performance suite
# and a robustness gate over pathological inputs.
#
# `./ci.sh robustness` builds the release CLI and runs only the
# robustness step; `./ci.sh check` likewise runs only the static-analysis
# gate (`loopmem check` over every kernel and pathological input);
# `./ci.sh scratchpad` runs only the shared-scratchpad sizing gate;
# `./ci.sh chaos` runs only the fault-injection chaos-differential gate;
# `./ci.sh verify` runs only the proof-carrying certificate gate
# (`loopmem verify` over every kernel and pathological input, plus a
# tampered-certificate rejection check);
# `./ci.sh trace` runs only the observability gate (`loopmem trace` over
# kernels and the pathological corpus: every NDJSON stream must pass the
# independent tracecheck recount and be byte-identical across thread
# counts);
# `./ci.sh bench-multicore` runs the perfsuite smoke and requires the
# host to be multi-core (the GitHub-runner bench matrix job).
set -euo pipefail
cd "$(dirname "$0")"

# Runs the governed CLI on one pathological input and asserts (a) exit 0
# and (b) an expected token in stdout. Every input here would hang,
# overflow, or panic an ungoverned run.
robustness_case() {
    local expect="$1"
    shift
    local out
    if ! out="$(./target/release/loopmem "$@" 2>&1)"; then
        echo "FAIL (exit): loopmem $*"
        echo "$out"
        return 1
    fi
    if ! grep -qF "$expect" <<<"$out"; then
        echo "FAIL (missing '$expect'): loopmem $*"
        echo "$out"
        return 1
    fi
    echo "ok   loopmem $* => '$expect'"
}

robustness_step() {
    echo "== robustness: governed CLI on pathological corpus =="
    local start
    start=$(date +%s)
    local c=tests/robustness
    # ~10^12-iteration stencil: iteration cap degrades to bounds.
    robustness_case "outcome    : bounded" simulate "$c/huge_iteration_space.loop" --max-iters 100000
    # Subscript coefficients near i64::MAX: typed overflow, no abort.
    robustness_case "outcome    : overflow" simulate "$c/overflow_coeffs.loop" --timeout-ms 5000
    # Empty iteration space: still exact under a budget.
    robustness_case "outcome    : exact" simulate "$c/empty_nest.loop" --timeout-ms 5000
    # Rank-deficient access over a huge span: deadline degrades to bounds.
    robustness_case "outcome    : bounded" simulate "$c/rank_deficient.loop" --timeout-ms 500
    # Program whose middle nest panics (bound overflow): only that nest
    # fails, the rest stay exact and the program answer is bounded.
    robustness_case "nest1 : failed" pipeline "$c/panicking_program.loop" --timeout-ms 5000
    robustness_case "nest0 : exact" pipeline "$c/panicking_program.loop" --timeout-ms 5000
    robustness_case "outcome           : bounded" pipeline "$c/panicking_program.loop" --timeout-ms 5000
    # Loop bound near i64::MAX: iteration cap trips instead of hanging.
    robustness_case "outcome    : bounded" simulate "$c/near_max_bounds.loop" --max-iters 1000
    # Governed optimizer search on the unsimulatable nest.
    robustness_case "outcome    : bounded" optimize "$c/huge_iteration_space.loop" --max-iters 100000
    local elapsed=$(( $(date +%s) - start ))
    echo "robustness corpus completed in ${elapsed}s"
    if [ "$elapsed" -ge 10 ]; then
        echo "FAIL: robustness corpus took ${elapsed}s (budget: <10s)"
        return 1
    fi
}

# Runs `loopmem check --deny warnings --format json` on one file and
# asserts (a) the exact exit code and (b) the exact sorted set of distinct
# diagnostic codes it emits ('' for a clean file). This pins the static
# classification of every kernel and pathological input: the robustness
# corpus is triaged without simulating a single iteration.
check_case() {
    local file="$1" want_exit="$2" want_codes="$3"
    local out code codes
    set +e
    out="$(./target/release/loopmem check "$file" --deny warnings --format json 2>&1)"
    code=$?
    set -e
    if [ "$code" -ne "$want_exit" ]; then
        echo "FAIL (exit $code, want $want_exit): loopmem check $file"
        echo "$out"
        return 1
    fi
    codes="$(grep -o '"code":"LM[0-9]*"' <<<"$out" | cut -d'"' -f4 | sort -u | paste -sd, - || true)"
    if [ "$codes" != "$want_codes" ]; then
        echo "FAIL (codes '$codes', want '$want_codes'): loopmem check $file"
        echo "$out"
        return 1
    fi
    echo "ok   loopmem check $file => exit $want_exit, codes '${want_codes:-clean}'"
}

check_step() {
    echo "== static analysis: loopmem check over kernels + robustness corpus =="
    local start
    start=$(date +%s)
    check_case kernels/matmult.loop     0 "LM0002"
    check_case kernels/sor.loop         0 ""
    check_case kernels/example8.loop    0 "LM0002"
    check_case kernels/rasta_flt.loop   0 "LM0002"
    check_case kernels/example6.loop    1 "LM0003"
    check_case kernels/pipeline.loop    1 "LM0008,LM0011"
    local c=tests/robustness
    # Every pathological input is classified statically — the lint pass
    # predicts, without running them, exactly why each one needs the
    # governed engine (volume, overflow, emptiness).
    check_case "$c/empty_nest.loop"           1 "LM0005,LM0006"
    check_case "$c/huge_iteration_space.loop" 1 "LM0002,LM0010"
    check_case "$c/near_max_bounds.loop"      1 "LM0005,LM0010"
    check_case "$c/overflow_coeffs.loop"      1 "LM0009"
    check_case "$c/panicking_program.loop"    1 "LM0005,LM0009"
    check_case "$c/rank_deficient.loop"       1 "LM0002,LM0010"
    echo "-- differential sanitizer over all kernels --"
    local out
    out="$(./target/release/loopmem check kernels/*.loop --sanitize --format json)" || true
    if grep -q '"code":"LM9' <<<"$out"; then
        echo "FAIL: estimator/simulator disagreement (LM9xxx)"
        echo "$out"
        return 1
    fi
    echo "ok   sanitizer: estimators and simulator agree on every kernel"
    local elapsed=$(( $(date +%s) - start ))
    echo "check step completed in ${elapsed}s"
    if [ "$elapsed" -ge 30 ]; then
        echo "FAIL: check step took ${elapsed}s (budget: <30s)"
        return 1
    fi
}

# The shared-scratchpad sizing gate: every kernel must size exactly, the
# pathological corpus must degrade to bounds (never crash), and fusing
# the producer/consumer pipeline must strictly shrink the scratchpad.
scratchpad_step() {
    echo "== scratchpad: shared-buffer sizing over kernels + robustness corpus =="
    local start
    start=$(date +%s)
    local k
    for k in kernels/*.loop; do
        robustness_case "outcome           : exact" scratchpad "$k"
    done
    local c=tests/robustness
    robustness_case "outcome           : bounded" scratchpad "$c/huge_iteration_space.loop" --max-iters 100000
    robustness_case "outcome           : bounded" scratchpad "$c/overflow_coeffs.loop" --timeout-ms 5000 --max-iters 1000000
    robustness_case "outcome           : exact" scratchpad "$c/empty_nest.loop" --timeout-ms 5000
    robustness_case "outcome           : bounded" scratchpad "$c/rank_deficient.loop" --timeout-ms 5000 --max-iters 1000000
    robustness_case "outcome           : bounded" scratchpad "$c/near_max_bounds.loop" --timeout-ms 5000 --max-iters 1000000
    # The panicking middle nest is contained: its neighbours stay exact
    # and the program-level answer degrades to an interval.
    robustness_case "nest1 : failed" scratchpad "$c/panicking_program.loop" --timeout-ms 5000
    robustness_case "outcome           : bounded" scratchpad "$c/panicking_program.loop" --timeout-ms 5000
    # Cross-nest buffer reuse: --fuse must strictly shrink the pipeline.
    local out unfused fused
    out="$(./target/release/loopmem scratchpad kernels/pipeline.loop --fuse)"
    unfused="$(awk '$1 == "scratchpad" && $2 == ":" {print $3}' <<<"$out")"
    fused="$(awk '$1 == "scratchpad" && $2 == "fused" {print $4}' <<<"$out")"
    if [ -z "$unfused" ] || [ -z "$fused" ] || [ "$fused" -ge "$unfused" ]; then
        echo "FAIL: --fuse did not shrink pipeline.loop (${unfused:-?} -> ${fused:-?} words)"
        echo "$out"
        return 1
    fi
    echo "ok   loopmem scratchpad kernels/pipeline.loop --fuse => $unfused -> $fused words"
    local elapsed=$(( $(date +%s) - start ))
    echo "scratchpad step completed in ${elapsed}s"
    if [ "$elapsed" -ge 10 ]; then
        echo "FAIL: scratchpad step took ${elapsed}s (budget: <10s)"
        return 1
    fi
}

# The chaos-differential gate: every governed entry point under a seeded
# deterministic fault matrix (budget trips, cancellation, table
# rejection, u32 overflow, injected panics) at t in {1, 2, 4}, checked
# against the six oracles of DESIGN.md §13/§15. Zero violations required;
# salvage must engage at least once so the salvaged-prefix path is
# provably exercised, not just compiled. The trace oracle re-runs every
# case with a collecting sink attached (answers and rendered trace bytes
# must match the untraced run at every thread count), which roughly
# doubles the sweep — hence the larger time budget than the other steps.
chaos_step() {
    echo "== chaos: fault-injection sweep over kernels + robustness corpus =="
    local start
    start=$(date +%s)
    local out
    if ! out="$(./target/release/chaossuite kernels/*.loop tests/robustness/*.loop --seed 1)"; then
        echo "$out"
        echo "FAIL: chaossuite reported oracle violations"
        return 1
    fi
    echo "$out"
    if ! grep -q "^violations : 0$" <<<"$out"; then
        echo "FAIL: expected 'violations : 0' in chaossuite summary"
        return 1
    fi
    if grep -q "^salvaged   : 0$" <<<"$out"; then
        echo "FAIL: no run produced a salvaged-prefix bound tighter than analytic"
        return 1
    fi
    local elapsed=$(( $(date +%s) - start ))
    echo "chaos step completed in ${elapsed}s"
    if [ "$elapsed" -ge 25 ]; then
        echo "FAIL: chaos step took ${elapsed}s (budget: <25s)"
        return 1
    fi
}

# The proof-carrying certificate gate: every kernel and every
# pathological input must emit a certificate stream that the independent
# checker accepts (degraded outcomes must yield valid bounds
# certificates, never silence), and a tampered certificate must be
# rejected — the checker is not a rubber stamp.
verify_step() {
    echo "== verify: proof-carrying certificates over kernels + robustness corpus =="
    local start
    start=$(date +%s)
    local tmp
    tmp="$(mktemp -d)"
    local f out
    for f in kernels/*.loop tests/robustness/*.loop; do
        if ! out="$(./target/release/loopmem verify "$f" --emit-cert "$tmp/certs.ndjson" 2>&1)"; then
            echo "FAIL (exit): loopmem verify $f"
            echo "$out"
            rm -rf "$tmp"
            return 1
        fi
        if ! grep -qF ", 0 violations" <<<"$out"; then
            echo "FAIL (missing ', 0 violations'): loopmem verify $f"
            echo "$out"
            rm -rf "$tmp"
            return 1
        fi
        if ! grep -q '"cert":' "$tmp/certs.ndjson"; then
            echo "FAIL: loopmem verify $f emitted an empty certificate stream"
            rm -rf "$tmp"
            return 1
        fi
        case "$f" in
        tests/robustness/*)
            # Degraded analyses still certify: each pathological file
            # must carry at least one checkable bounds certificate.
            if ! grep -q '"cert":"bounds"' "$tmp/certs.ndjson"; then
                echo "FAIL: $f carries no bounds certificate"
                cat "$tmp/certs.ndjson"
                rm -rf "$tmp"
                return 1
            fi
            ;;
        esac
        echo "ok   loopmem verify $f => 0 violations"
    done
    ./target/release/loopmem verify kernels/example8.loop \
        --emit-cert "$tmp/ex8.ndjson" > /dev/null
    sed 's/"mws_after":21/"mws_after":20/' "$tmp/ex8.ndjson" > "$tmp/ex8-tampered.ndjson"
    if cmp -s "$tmp/ex8.ndjson" "$tmp/ex8-tampered.ndjson"; then
        echo "FAIL: tamper sed matched nothing in example8's certificate stream"
        rm -rf "$tmp"
        return 1
    fi
    set +e
    out="$(./target/release/loopmem verify kernels/example8.loop \
        --cert "$tmp/ex8-tampered.ndjson" 2>&1)"
    local code=$?
    set -e
    rm -rf "$tmp"
    if [ "$code" -eq 0 ] || ! grep -q "LM7004" <<<"$out"; then
        echo "FAIL (exit $code): tampered optimality certificate was not rejected with LM7004"
        echo "$out"
        return 1
    fi
    echo "ok   tampered certificate rejected => exit $code, LM7004"
    local elapsed=$(( $(date +%s) - start ))
    echo "verify step completed in ${elapsed}s"
    if [ "$elapsed" -ge 10 ]; then
        echo "FAIL: verify step took ${elapsed}s (budget: <10s)"
        return 1
    fi
}

# The observability gate: `loopmem trace` must produce a stream that the
# independent tracecheck recount accepts on every kernel and every
# pathological input (catch_unwind containment — a panicking nest still
# yields a checkable trace), and the stream's bytes must not depend on
# the worker-thread count.
trace_step() {
    echo "== trace: deterministic observability over kernels + robustness corpus =="
    local start
    start=$(date +%s)
    local tmp
    tmp="$(mktemp -d)"
    local f out
    for f in kernels/*.loop tests/robustness/*.loop; do
        if ! out="$(./target/release/loopmem trace "$f" --out "$tmp/t1.ndjson" 2>&1)"; then
            echo "FAIL (exit): loopmem trace $f"
            echo "$out"
            rm -rf "$tmp"
            return 1
        fi
        if ! ./target/release/tracecheck "$tmp/t1.ndjson"; then
            echo "FAIL: tracecheck rejected the stream for $f"
            rm -rf "$tmp"
            return 1
        fi
        # The canonical stream is schedule-independent: re-running at a
        # different worker-thread count must reproduce it byte for byte.
        ./target/release/loopmem trace "$f" --threads 4 --out "$tmp/t4.ndjson" > /dev/null 2>&1
        if ! cmp -s "$tmp/t1.ndjson" "$tmp/t4.ndjson"; then
            echo "FAIL: trace bytes differ between --threads default and --threads 4 for $f"
            rm -rf "$tmp"
            return 1
        fi
    done
    echo "ok   every trace stream checked and thread-count invariant"
    # A mangled counters line must be rejected — the recount is not a
    # rubber stamp.
    ./target/release/loopmem trace kernels/example8.loop --out "$tmp/ex8.ndjson" > /dev/null
    sed 's/"memo_hits":1/"memo_hits":2/' "$tmp/ex8.ndjson" > "$tmp/ex8-tampered.ndjson"
    if cmp -s "$tmp/ex8.ndjson" "$tmp/ex8-tampered.ndjson"; then
        echo "FAIL: tamper sed matched nothing in example8's trace stream"
        rm -rf "$tmp"
        return 1
    fi
    if ./target/release/tracecheck "$tmp/ex8-tampered.ndjson" > /dev/null; then
        echo "FAIL: tampered trace counters were not rejected"
        rm -rf "$tmp"
        return 1
    fi
    echo "ok   tampered trace counters rejected"
    rm -rf "$tmp"
    local elapsed=$(( $(date +%s) - start ))
    echo "trace step completed in ${elapsed}s"
    # Every file is traced twice (byte-identity re-run at --threads 4),
    # so this step gets a wider budget than the single-pass gates.
    if [ "$elapsed" -ge 20 ]; then
        echo "FAIL: trace step took ${elapsed}s (budget: <20s)"
        return 1
    fi
}

if [ "${1:-}" = "robustness" ]; then
    cargo build --release --offline -p loopmem
    robustness_step
    echo "== ci (robustness only) passed =="
    exit 0
fi

if [ "${1:-}" = "check" ]; then
    cargo build --release --offline -p loopmem
    check_step
    echo "== ci (check only) passed =="
    exit 0
fi

if [ "${1:-}" = "scratchpad" ]; then
    cargo build --release --offline -p loopmem
    scratchpad_step
    echo "== ci (scratchpad only) passed =="
    exit 0
fi

if [ "${1:-}" = "chaos" ]; then
    cargo build --release --offline -p loopmem-bench --bin chaossuite
    chaos_step
    echo "== ci (chaos only) passed =="
    exit 0
fi

if [ "${1:-}" = "verify" ]; then
    cargo build --release --offline -p loopmem
    verify_step
    echo "== ci (verify only) passed =="
    exit 0
fi

if [ "${1:-}" = "trace" ]; then
    cargo build --release --offline -p loopmem
    cargo build --release --offline -p loopmem-bench --bin tracecheck
    trace_step
    echo "== ci (trace only) passed =="
    exit 0
fi

# The multi-core bench matrix: a perfsuite smoke run that must record the
# t in {2, 4} sweep rows (bit-identical answers, bounded wall time) —
# meaningful only on a multi-core host such as a GitHub runner.
if [ "${1:-}" = "bench-multicore" ]; then
    echo "== perfsuite (smoke, multi-core sweep) =="
    rm -f BENCH_loopmem.json
    cargo run -q --release --offline -p loopmem-bench --bin perfsuite -- --smoke
    echo "== bench-multicore gate =="
    cargo run -q --release --offline -p loopmem-bench --bin benchcheck -- \
        BENCH_loopmem.json --require-multicore
    echo "== ci (bench-multicore only) passed =="
    exit 0
fi

echo "== tier-1: build =="
cargo build --release --offline

echo "== tier-1: test =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --offline --workspace

robustness_step

check_step

scratchpad_step

chaos_step

verify_step

cargo build --release --offline -p loopmem-bench --bin tracecheck
trace_step

echo "== perfsuite (smoke) =="
rm -f BENCH_loopmem.json
cargo run -q --release --offline -p loopmem-bench --bin perfsuite -- --smoke

echo "== bench reports well-formed (in-tree parser) =="
test -s BENCH_loopmem.json
# benchcheck parses with the workspace's own JSON parser (which rejects
# NaN/Infinity by construction) and pins the report schema: required row
# keys, known outcome tokens, governed/pass1/scratchpad sections present,
# every speedup finite and strictly positive.
cargo run -q --release --offline -p loopmem-bench --bin benchcheck -- \
    BENCH_loopmem.json ci/bench_baseline.json

echo "== bench-regression gate =="
# The fresh smoke run's dense-vs-hashmap speedups — and the lane-split
# pass-1 kernels' speedups over the legacy interleaved inner loop — must
# stay within 0.8x of the committed baseline (ci/bench_baseline.json,
# also a smoke run). The baseline holds the minimum ratio observed across
# repeated runs, so an honest regression has to eat the measurement slack
# *and* the 0.8 factor.
python3 - <<'EOF'
import json, sys
fresh = json.load(open("BENCH_loopmem.json"))["speedups"]
base = json.load(open("ci/bench_baseline.json"))["speedups"]
# trace_overhead sits at ~1.0x by construction (a disabled NullSink takes
# the identical fast path), so it gets a tighter 0.9 factor than the big
# engine-comparison ratios.
gated = {
    k: (0.9 if k == "trace_overhead" else 0.8)
    for k in base
    if k.endswith("dense1t_vs_hashmap")
    or k.endswith("lanesplit_vs_interleaved")
    or k == "trace_overhead"
}
assert gated, "baseline has no gated speedups"
assert any(k.endswith("dense1t_vs_hashmap") for k in gated), gated
assert any(k.endswith("lanesplit_vs_interleaved") for k in gated), gated
assert "trace_overhead" in gated, gated
failed = False
for k, factor in gated.items():
    if k not in fresh:
        print(f"FAIL {k}: missing from fresh BENCH_loopmem.json")
        failed = True
        continue
    floor = factor * base[k]
    verdict = "ok  " if fresh[k] >= floor else "FAIL"
    failed = failed or fresh[k] < floor
    print(f"{verdict} {k}: {fresh[k]:.2f}x (floor {floor:.2f}x = {factor} * baseline {base[k]:.2f}x)")
sys.exit(1 if failed else 0)
EOF

echo "== ci passed =="
