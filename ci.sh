#!/usr/bin/env bash
# Offline CI: tier-1 build/test plus a smoke run of the performance suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== tier-1: build =="
cargo build --release --offline

echo "== tier-1: test =="
cargo test -q --offline

echo "== workspace tests =="
cargo test -q --offline --workspace

echo "== perfsuite (smoke) =="
rm -f BENCH_loopmem.json
cargo run -q --release --offline -p loopmem-bench --bin perfsuite -- --smoke

echo "== BENCH_loopmem.json well-formed =="
test -s BENCH_loopmem.json
python3 - <<'EOF'
import json
with open("BENCH_loopmem.json") as f:
    d = json.load(f)
assert d["suite"] == "loopmem-perfsuite", d.get("suite")
assert isinstance(d["threads_default"], int) and d["threads_default"] >= 1
assert d["results"], "no results recorded"
for r in d["results"]:
    assert {"bench", "subject", "threads", "millis", "iterations"} <= r.keys(), r
assert any(k.endswith("dense1t_vs_hashmap") for k in d["speedups"]), d["speedups"]
print(f"ok: {len(d['results'])} results, {len(d['speedups'])} speedups")
EOF

echo "== bench-regression gate =="
# The fresh smoke run's dense-vs-hashmap speedups must stay within 0.8x of
# the committed baseline (ci/bench_baseline.json, also a smoke run). The
# baseline holds the minimum ratio observed across repeated runs, so an
# honest regression has to eat the measurement slack *and* the 0.8 factor.
python3 - <<'EOF'
import json, sys
fresh = json.load(open("BENCH_loopmem.json"))["speedups"]
base = json.load(open("ci/bench_baseline.json"))["speedups"]
gated = [k for k in base if k.endswith("dense1t_vs_hashmap")]
assert gated, "baseline has no dense1t_vs_hashmap speedups"
failed = False
for k in gated:
    if k not in fresh:
        print(f"FAIL {k}: missing from fresh BENCH_loopmem.json")
        failed = True
        continue
    floor = 0.8 * base[k]
    verdict = "ok  " if fresh[k] >= floor else "FAIL"
    failed = failed or fresh[k] < floor
    print(f"{verdict} {k}: {fresh[k]:.2f}x (floor {floor:.2f}x = 0.8 * baseline {base[k]:.2f}x)")
sys.exit(1 if failed else 0)
EOF

echo "== ci passed =="
