//! Quickstart: parse a nest, estimate its memory needs, optimize it, and
//! verify the result with the exact simulator.
//!
//! Run with `cargo run --example quickstart`.

use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::core::{analyze_memory, apply_transform};
use loopmem::ir::{parse, print_nest};
use loopmem::sim::simulate;

fn main() {
    // Example 8 of the paper: a 1-D signal accessed along a skewed
    // direction, so consecutive iterations touch far-apart elements.
    let nest = parse(
        "array X[200]\n\
         for i = 1 to 25 {\n\
           for j = 1 to 10 {\n\
             X[2i + 5j + 1] = X[2i + 5j + 5];\n\
           }\n\
         }",
    )
    .expect("the kernel is valid DSL");

    println!("== input nest ==\n{}", print_nest(&nest));

    // 1. Estimate: how much memory does this loop actually need?
    let analysis = analyze_memory(&nest);
    println!("declared storage      : {} words", analysis.default_words);
    println!("distinct elements     : {}", analysis.distinct_exact_total);
    println!(
        "max window size (MWS) : {} words  <- minimum buffer capturing all reuse",
        analysis.mws_exact
    );

    // 2. Optimize: find a legal unimodular transformation minimizing MWS.
    let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
    println!(
        "\n== after compound transformation (searched {} candidates) ==",
        opt.candidates_considered
    );
    println!("T =\n{}", opt.transform);
    println!("{}", print_nest(&opt.transformed));
    println!("MWS {} -> {}", opt.mws_before, opt.mws_after);

    // 3. Verify: the transformed nest performs the same accesses.
    let reapplied = apply_transform(&nest, &opt.transform).expect("transformation applies");
    let (a, b) = (simulate(&nest), simulate(&reapplied));
    assert_eq!(a.distinct_total(), b.distinct_total());
    assert_eq!(b.mws_total, opt.mws_after);
    println!(
        "verified: same {} distinct elements, window shrank {:.1}x",
        a.distinct_total(),
        opt.mws_before as f64 / opt.mws_after as f64
    );
}
