//! Walking through the optimizer's reasoning on a stencil.
//!
//! Shows the §4 pipeline in slow motion: dependence analysis, legality and
//! tiling filters on candidate leading rows, the closed-form objective,
//! and the exact before/after windows — comparing the compound search
//! against the interchange+reversal baseline.
//!
//! Run with `cargo run --example stencil_optimizer`.

use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::core::two_level_estimate;
use loopmem::dep::analyze;
use loopmem::dep::legality::row_tileable;
use loopmem::ir::{parse, print_nest};
use loopmem::sim::simulate;

fn main() {
    // The 2-point vertical stencil of Figure 2: the outer loop carries
    // the dependence, keeping an entire image row live.
    let nest = parse(
        "array A[64][64]\n\
         for i = 2 to 64 {\n\
           for j = 1 to 64 {\n\
             A[i][j] = A[i-1][j] + A[i][j];\n\
           }\n\
         }",
    )
    .expect("kernel parses");
    println!("== input stencil ==\n{}", print_nest(&nest));

    // 1. Dependences.
    let deps = analyze(&nest);
    println!("dependences:");
    for d in deps.iter() {
        println!("  {:?}  {} (level {})", d.distance, d.kind, d.level());
    }

    // 2. Candidate leading rows and their legality/objective.
    println!("\ncandidate leading rows (a, b):");
    for row in [(1i64, 0i64), (0, 1), (1, 1), (0, -1), (1, -1)] {
        let tileable = row_tileable(&[row.0, row.1], &deps);
        // The stencil is a 2-D array; eq. (2) applies per column family, so
        // use the generic objective printed by the search instead. Here we
        // show eq. (2) on the column access function alpha = (1, 0).
        let est = two_level_estimate((1, 0), row, (63, 64));
        println!(
            "  ({:>2},{:>2})  tileable: {:<5}  eq.(2) estimate: {}",
            row.0, row.1, tileable, est
        );
    }

    // 3. Full searches.
    let compound = minimize_mws(&nest, SearchMode::default()).expect("compound search");
    let baseline = minimize_mws(&nest, SearchMode::InterchangeReversal).expect("baseline search");
    println!("\n== results ==");
    println!(
        "original MWS: {}  (simulator: {})",
        compound.mws_before,
        simulate(&nest).mws_total
    );
    println!(
        "interchange+reversal: MWS {} with T =\n{}",
        baseline.mws_after, baseline.transform
    );
    println!(
        "compound search     : MWS {} with T =\n{}",
        compound.mws_after, compound.transform
    );
    println!("transformed nest:\n{}", print_nest(&compound.transformed));
}
