//! A guided tour of every worked example in the paper, computed live.
//!
//! Run with `cargo run --release --example paper_tour`.

use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::core::{
    branch_and_bound, estimate_distinct, three_level_estimate, two_level_estimate,
};
use loopmem::dep::{analyze, reuse_vectors};
use loopmem::ir::{parse, ArrayId};
use loopmem::poly::count::distinct_accesses_for;
use loopmem::sim::simulate;

fn heading(s: &str) {
    println!("\n=== {s} ===");
}

fn main() {
    heading("§2.2, Examples 1(a)/1(b): reuse induced by dependence (3,2)");
    let e1b = parse("array A[51]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i + 3j]; } }")
        .expect("kernel parses");
    let s = simulate(&e1b);
    println!(
        "A[2i+3j] over 10x10: {} accesses, {} distinct -> reuse {} (paper: 56)",
        s.iterations,
        s.distinct_total(),
        s.iterations - s.distinct_total()
    );

    heading("§3.1, Example 2: A[i][j] = A[i-1][j+2]");
    let e2 =
        parse("array A[12][14]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }")
            .expect("kernel parses");
    let est = estimate_distinct(&e2)[&ArrayId(0)];
    println!(
        "formula A_d = 2N1N2 - (N1-1)(N2-2) = {} ; exact = {}",
        est.upper,
        distinct_accesses_for(&e2, ArrayId(0))
    );

    heading("§3.1, Example 3: four uniformly generated references");
    let e3 = parse(
        "array A[11][11]\nfor i = 1 to 10 { for j = 1 to 10 {\
           A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1]; } }",
    )
    .expect("kernel parses");
    let est = estimate_distinct(&e3)[&ArrayId(0)];
    println!(
        "paper's formula: {} ; true union: {} (the formula ignores overlap of overlaps)",
        est.upper,
        distinct_accesses_for(&e3, ArrayId(0))
    );

    heading("§3.2, Examples 4 & 5: reuse along the null space");
    let e4 = parse("array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }")
        .expect("kernel parses");
    println!(
        "A[2i+5j+1], 20x10: reuse vector {:?}, A_d = {} (paper: 80)",
        reuse_vectors(&e4)[0].1,
        estimate_distinct(&e4)[&ArrayId(0)].upper
    );
    let e5 = parse(
        "array A[61][51]\n\
         for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
    )
    .expect("kernel parses");
    println!(
        "A[3i+k][j+k], 10x20x30: reuse vector {:?}, A_d = {} (paper: 1869)",
        reuse_vectors(&e5)[0].1,
        estimate_distinct(&e5)[&ArrayId(0)].upper
    );

    heading("§3.2, Example 6: non-uniformly generated bounds");
    let e6 = parse(
        "array A[200]\nfor i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
    )
    .expect("kernel parses");
    let est = estimate_distinct(&e6)[&ArrayId(0)];
    println!(
        "bounds [{}, {}] (paper: [179, 191]); exact {} (paper prints 181 — off by one)",
        est.lower,
        est.upper,
        distinct_accesses_for(&e6, ArrayId(0))
    );

    heading("§4, Example 7: compound transformation vs interchange/reversal");
    let e7 = parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }")
        .expect("kernel parses");
    println!(
        "eq.(2) estimates: original {}, interchange {} (paper costs 89/41)",
        two_level_estimate((2, -3), (1, 0), (20, 30)),
        two_level_estimate((2, -3), (0, 1), (20, 30)),
    );
    let best = minimize_mws(&e7, SearchMode::default()).expect("search succeeds");
    let baseline = minimize_mws(&e7, SearchMode::InterchangeReversal).expect("search succeeds");
    println!(
        "exact MWS: original {}, best elementary {}, compound {} (paper: ... -> 1)",
        best.mws_before, baseline.mws_after, best.mws_after
    );

    heading("§4.2, Example 8: branch and bound + Li-Pingali");
    let e8 = parse(
        "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .expect("kernel parses");
    let deps = analyze(&e8);
    println!(
        "distances: {:?} (paper: (3,-2), (2,0), (5,-2))",
        deps.distances(true)
    );
    let bnb = branch_and_bound((2, 5), &deps, (25, 10), 6).expect("feasible");
    println!(
        "branch & bound: row {:?}, objective {} (paper: (2,3) with 22), {} nodes / {} pruned",
        bnb.row, bnb.objective, bnb.nodes_explored, bnb.nodes_pruned
    );
    let opt = minimize_mws(&e8, SearchMode::default()).expect("search succeeds");
    println!(
        "compound search: MWS {} -> {} (paper: actual 21)",
        opt.mws_before, opt.mws_after
    );
    match minimize_mws(&e8, SearchMode::LiPingali) {
        Err(e) => println!("Li-Pingali: {e} (paper: no legal completion)"),
        Ok(o) => println!("Li-Pingali unexpectedly reached {}", o.mws_after),
    }

    heading("§4.3, Example 10: three-deep window and its collapse");
    let rv = &reuse_vectors(&e5)[0].1;
    println!(
        "reuse vector {:?}: MWS formula {} (paper: 540), exact {}",
        rv,
        three_level_estimate((rv[0], rv[1], rv[2]), (10, 20, 30)),
        simulate(&e5).mws_total
    );
    let opt10 = minimize_mws(&e5, SearchMode::default()).expect("search succeeds");
    println!(
        "after access-matrix transformation: MWS {} (paper: 1)",
        opt10.mws_after
    );
    println!("\nTour complete — every number above is recomputed, not hard-coded.");
}
