//! Whole-program analysis of a small image pipeline (multi-nest
//! extension): blur, then downsample, then histogram-like accumulate.
//!
//! Shows what single-nest analysis cannot: the values that stay live
//! *between* loop nests, and how the peak window moves across phases.
//!
//! Run with `cargo run --release --example image_pipeline`.

use loopmem::core::optimize::SearchMode;
use loopmem::core::{analyze_program, optimize_program};
use loopmem::ir::parse_program;

fn main() {
    let program = parse_program(
        "array IN[34][34]\narray BLUR[32][32]\narray SMALL[16][16]\narray HIST[16]\n\
         # phase 1: 3x3 blur\n\
         for i = 1 to 32 {\n\
           for j = 1 to 32 {\n\
             for ki = 1 to 3 {\n\
               for kj = 1 to 3 {\n\
                 BLUR[i][j] = BLUR[i][j] + IN[i + ki - 1][j + kj - 1];\n\
               }\n\
             }\n\
           }\n\
         }\n\
         # phase 2: 2x downsample\n\
         for i = 1 to 16 {\n\
           for j = 1 to 16 {\n\
             SMALL[i][j] = BLUR[2i - 1][2j - 1] + BLUR[2i][2j];\n\
           }\n\
         }\n\
         # phase 3: row accumulation\n\
         for i = 1 to 16 {\n\
           for j = 1 to 16 {\n\
             HIST[i] = HIST[i] + SMALL[i][j];\n\
           }\n\
         }",
    )
    .expect("pipeline parses");

    let a = analyze_program(&program);
    println!("== image pipeline: blur -> downsample -> accumulate ==");
    println!("declared arrays     : {} words", a.default_words);
    println!(
        "distinct touched    : {} words",
        a.distinct.values().sum::<u64>()
    );
    println!(
        "whole-program MWS   : {} words (peak inside phase {})",
        a.mws_exact,
        a.peak_nest + 1
    );
    for (k, live) in a.boundary_live.iter().enumerate() {
        println!("live across boundary {}->{}: {} words", k + 1, k + 2, live);
    }

    let opt = optimize_program(&program, SearchMode::default()).expect("optimization succeeds");
    println!("\nper-nest windows (before -> after the §4 search):");
    for (k, (b, aa)) in opt.per_nest.iter().enumerate() {
        println!("  phase {}: {} -> {}", k + 1, b, aa);
    }
    println!("whole-program MWS: {} -> {}", opt.mws_before, opt.mws_after);
    println!(
        "\nnote: the {}-word boundary sets are untouchable by loop reordering —\n\
         shrinking them needs loop *fusion* (our extension; the paper's future work).",
        a.boundary_live.iter().max().copied().unwrap_or(0)
    );

    // Phases 2 and 3 are conformable (both 16x16): fuse them.
    let fused = loopmem::core::fuse(&program, 1).expect("phases 2+3 fuse legally");
    let fa = analyze_program(&fused);
    println!("\n== after fusing downsample + accumulate ==");
    println!("whole-program MWS   : {} words", fa.mws_exact);
    for (k, live) in fa.boundary_live.iter().enumerate() {
        println!("live across boundary {}->{}: {} words", k + 1, k + 2, live);
    }
    println!(
        "the SMALL boundary ({} words) is gone: each downsampled pixel is\n\
         consumed in the very iteration that produces it.",
        a.boundary_live[1]
    );
}
