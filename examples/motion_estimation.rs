//! Sizing the on-chip buffer of a motion-estimation accelerator.
//!
//! Full-search block matching is the workload the paper's introduction
//! motivates: large frames, heavy reuse, and an embedded memory that
//! should be sized to the *working set*, not the declared arrays. This
//! example analyzes the full-search kernel, optimizes it, and prices the
//! resulting scratchpad with the synthetic memory model.
//!
//! Run with `cargo run --example motion_estimation`.

use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::core::{analyze_memory, estimate_distinct};
use loopmem::ir::parse;
use loopmem::sim::ScratchpadModel;

fn main() {
    // An 8x8 current block matched against every candidate of a +/-16
    // search area inside a 40x40 reference window.
    let nest = parse(
        "array R[40][40]\narray C[8][8]\narray S[32][32]\n\
         for dy = 1 to 32 {\n\
           for dx = 1 to 32 {\n\
             for py = 1 to 8 {\n\
               for px = 1 to 8 {\n\
                 S[dy][dx] = S[dy][dx] + R[dy + py][dx + px] + C[py][px];\n\
               }\n\
             }\n\
           }\n\
         }",
    )
    .expect("kernel parses");

    let m = analyze_memory(&nest);
    println!("== full-search motion estimation ==");
    println!("declared arrays : {} words (R + C + S)", m.default_words);
    println!("distinct touched: {} words", m.distinct_exact_total);
    println!("exact MWS       : {} words", m.mws_exact);
    for (id, est) in estimate_distinct(&nest) {
        let decl = nest.array(id);
        println!(
            "  {:<2} declared {:>5}, distinct in [{}, {}] ({:?})",
            decl.name,
            decl.size(),
            est.lower,
            est.upper,
            est.method
        );
    }

    let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
    println!(
        "\noptimizer: MWS {} -> {} over {} candidates",
        opt.mws_before, opt.mws_after, opt.candidates_considered
    );

    // Price three sizing policies with the synthetic scratchpad model.
    let model = ScratchpadModel::new();
    println!("\n== scratchpad sizing (synthetic CACTI-shaped model) ==");
    for (label, words) in [
        ("declared arrays", m.default_words as u64),
        ("distinct accesses", m.distinct_exact_total),
        ("optimized MWS", opt.mws_after),
    ] {
        println!("  {:<18} {}", label, model.report(words));
    }
    println!(
        "\nenergy saving of MWS-sized vs. declared-sized memory: {:.2}x per access",
        model.energy_saving_factor(m.default_words as u64, opt.mws_after)
    );
}
