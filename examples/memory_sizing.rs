//! §1 motivation quantified: sweep memory capacities for every benchmark
//! kernel and show what sizing to the optimized window saves.
//!
//! Run with `cargo run --example memory_sizing`.

use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::sim::{simulate_with_profile, ScratchpadModel};
use loopmem_bench::all_kernels;

fn main() {
    let model = ScratchpadModel::new();
    println!(
        "{:<12} {:>8} {:>8} {:>12} {:>12} {:>9}",
        "kernel", "default", "MWS_opt", "pJ (default)", "pJ (sized)", "saving"
    );
    for k in all_kernels() {
        let nest = k.nest();
        let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
        let default = nest.default_memory() as u64;
        let sized = opt.mws_after.max(1);
        let (big, small) = (model.report(default), model.report(sized));
        println!(
            "{:<12} {:>8} {:>8} {:>12.1} {:>12.1} {:>8.2}x",
            k.name,
            default,
            sized,
            big.energy_per_access_pj,
            small.energy_per_access_pj,
            big.energy_per_access_pj / small.energy_per_access_pj
        );
    }

    // Show one window profile: how the live set evolves over execution.
    let k = loopmem_bench::kernel_by_name("rasta_flt").expect("kernel exists");
    let s = simulate_with_profile(&k.nest());
    let profile = s.profile.expect("profile requested");
    println!("\nrasta_flt window profile (live words after each iteration, downsampled):");
    let step = (profile.len() / 20).max(1);
    for (t, w) in profile.iter().enumerate().step_by(step) {
        println!(
            "  t={t:>6}  {:<60} {w}",
            "#".repeat((*w as usize / 4).min(60))
        );
    }
    println!("  peak = {} words (the MWS)", s.mws_total);
}
