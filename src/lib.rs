#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Facade crate re-exporting the whole `loopmem` workspace.
#![doc = include_str!("../README.md")]
pub use loopmem_analyze as analyze;
pub use loopmem_core as core;
pub use loopmem_dep as dep;
pub use loopmem_ir as ir;
pub use loopmem_linalg as linalg;
pub use loopmem_obs as obs;
pub use loopmem_poly as poly;
pub use loopmem_sim as sim;
pub use loopmem_verify as verify;

pub use loopmem_core::Session;
