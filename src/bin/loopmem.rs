#![forbid(unsafe_code)]
//! `loopmem` — command-line driver for the loop-nest memory analyzer.
//!
//! ```text
//! loopmem analyze  <file.loop>             estimate + exact memory analysis
//! loopmem check    <file.loop>... [--format text|json] [--deny warnings] [--sanitize]
//! loopmem deps     <file.loop>             dependence/reuse report
//! loopmem optimize <file.loop> [--mode M]  search for a window-minimizing T
//! loopmem simulate <file.loop> [--profile] exact window simulation
//! loopmem formulas <file.loop>             symbolic distinct-access formulas
//! loopmem pipeline <file.loop> [--fuse k] [--threads N] [--optimize]
//! loopmem scratchpad <file.loop> [--fuse] [--threads N]
//! loopmem verify   <file.loop> [--emit-cert out] [--cert in] [--format text|json]
//! loopmem chaos    <file.loop>... [--seed N]
//! loopmem trace    <file.loop> [--format text|json] [--out trace.ndjson]
//! loopmem print    <file.loop> [--transform a,b,c,d]
//! ```
//!
//! Modes: `compound` (default), `interchange`, `li-pingali`.
//! `pipeline` analyzes a multi-nest program with the sharded batch engine
//! (`--threads N` pins the worker count; default: available parallelism);
//! `--optimize` additionally runs the batch window-minimizing search over
//! every nest. Kernel files use the DSL documented in
//! `loopmem_ir::parser`.
//!
//! `scratchpad` sizes one shared scratchpad over the whole program
//! (`max_k (MWS_k + live-through_k)`, see `loopmem_core::scratchpad`);
//! bare `--fuse` additionally runs the greedy fusion search and reports
//! the plan.
//!
//! `check` runs the span-aware static lint pass (`loopmem-analyze`) over
//! one or more files: rustc-style caret diagnostics (or NDJSON with
//! `--format json`), exit 1 on any error — and on warnings too under
//! `--deny warnings`. `--sanitize` additionally cross-checks the closed-form
//! estimators against the dense simulator on small nests.
//!
//! `verify` runs the proof-carrying layer end to end: every answer the
//! optimizer would hand the user (per-nest minimization, cone pruning,
//! scratchpad sizing, fusion) is converted into a structured certificate
//! (`loopmem_core::cert`) and replayed by the *independent* checker in
//! `loopmem-verify`, which re-derives each claim from the source program
//! alone. `--emit-cert out.ndjson` writes the certificate stream;
//! `--cert in.ndjson` checks a previously emitted stream instead of
//! generating one (so a tampered certificate is rejected). Violations are
//! rendered as `LM7xxx` diagnostics with the same caret machinery as
//! `check`; exit 1 on any violation. The run is governed by default —
//! a nest too large to simulate degrades to a checkable bounds
//! certificate rather than silence.
//!
//! `chaos` runs the deterministic fault-injection sweep
//! (`loopmem_core::chaos`) over one or more files: every governed entry
//! point × every injected fault kind × several timings × thread counts
//! 1/2/4, checking that nothing panics, every returned interval contains
//! the fault-free exact answer, and the same logical fault point gives
//! bit-identical results for every thread count. Exit 1 on any oracle
//! violation.
//!
//! `simulate`, `optimize`, and `pipeline` accept resource budgets:
//! `--timeout-ms N` caps wall-clock time, `--max-iters N` caps swept
//! iterations. With a budget the run is *governed* — it never crashes, and
//! when a budget trips the analysis degrades to guaranteed analytical
//! bounds (`outcome : bounded`) instead of an exact answer; the process
//! still exits 0 because a degraded answer is a result, not an error.
//!
//! `trace` runs the whole governed surface (program simulation,
//! scratchpad sizing + fusion, per-nest §4 searches, cone prunes,
//! certificate emission) with a collecting `loopmem-obs` sink attached
//! and renders the deterministic trace: per-phase totals with `--format
//! text` (default), the canonical NDJSON stream with `--format json`;
//! `--out trace.ndjson` writes the NDJSON to a file either way. The
//! NDJSON bytes are bit-identical for every `--threads` value.
//! `pipeline`, `scratchpad`, `chaos`, and `verify` accept `--trace
//! out.ndjson` to capture the same stream for their own runs (on
//! `pipeline`/`scratchpad` this selects the governed path, with an
//! unlimited budget unless budget flags say otherwise; on `chaos` it
//! captures the fault-free traced baseline of each file).

use loopmem::analyze::{check_source, CheckOptions, Diagnostic, Severity};
use loopmem::core::optimize::{minimize_mws, SearchMode};
use loopmem::core::{analyze_memory, apply_transform, estimate_distinct};
use loopmem::dep::analyze;
use loopmem::ir::{parse, print_nest, AnalysisError, LoopNest};
use loopmem::linalg::IMat;
use loopmem::obs::{CollectingSink, TraceSink};
use loopmem::sim::{simulate, simulate_with_profile, AnalysisBudget, ScratchpadModel};
use loopmem::Session;
use std::process::ExitCode;
use std::sync::Arc;

/// Set once budget flags are parsed: governed runs contain panics with
/// `catch_unwind` and report them as per-nest outcomes, so the panic hook
/// must not splatter the already-reported message on stderr.
static GOVERNED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn main() -> ExitCode {
    // Dying on a closed pipe (`loopmem ... | head`) is expected CLI
    // behaviour, not a crash: exit quietly instead of panicking.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().cloned();
        if msg.as_deref().is_some_and(|m| m.contains("Broken pipe")) {
            std::process::exit(0);
        }
        if GOVERNED.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        default_hook(info);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("loopmem: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  loopmem analyze  <file.loop>
  loopmem check    <file.loop>... [--format text|json] [--deny warnings] [--sanitize]
  loopmem deps     <file.loop>
  loopmem optimize <file.loop> [--mode compound|interchange|li-pingali] [budget]
  loopmem simulate <file.loop> [--profile] [budget]
  loopmem formulas <file.loop>
  loopmem pipeline <file.loop> [--fuse k] [--threads N] [--optimize [--mode M]] [--emit-cert out] [--trace out] [budget]
  loopmem scratchpad <file.loop> [--fuse] [--threads N] [--emit-cert out] [--trace out] [budget]
  loopmem verify   <file.loop> [--emit-cert out] [--cert in] [--format text|json] [--trace out] [budget]
  loopmem chaos    <file.loop>... [--seed N] [--trace out]
  loopmem trace    <file.loop> [--threads N] [--format text|json] [--out trace.ndjson] [budget]
  loopmem print    <file.loop> [--transform a,b,c,d]

budget flags (governed run; degrades to analytical bounds, never crashes):
  --timeout-ms N   wall-clock deadline in milliseconds
  --max-iters N    cap on total swept loop iterations";

/// Flags whose following argument is a value, not a file path.
const VALUE_FLAGS: &[&str] = &[
    "--mode",
    "--transform",
    "--threads",
    "--fuse",
    "--timeout-ms",
    "--max-iters",
    "--format",
    "--deny",
    "--seed",
    "--emit-cert",
    "--cert",
    "--trace",
    "--out",
];

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (cmd, rest) = args.split_first().ok_or("missing subcommand")?;
    if cmd == "check" {
        return cmd_check(rest);
    }
    if cmd == "chaos" {
        return cmd_chaos(rest);
    }
    if cmd == "verify" {
        return cmd_verify(rest);
    }
    if cmd == "trace" {
        return cmd_trace(rest);
    }
    let r = match cmd.as_str() {
        "analyze" => cmd_analyze(&load(rest)?),
        "deps" => cmd_deps(&load(rest)?),
        "optimize" => cmd_optimize(&load(rest)?, parse_mode(rest)?, parse_budget(rest)?),
        "simulate" => cmd_simulate(
            &load(rest)?,
            rest.iter().any(|a| a == "--profile"),
            parse_budget(rest)?,
        ),
        "formulas" => cmd_formulas(&load(rest)?),
        "pipeline" => cmd_pipeline(rest),
        "scratchpad" => cmd_scratchpad(rest),
        "print" => cmd_print(&load(rest)?, parse_transform(rest)?),
        other => Err(format!("unknown subcommand '{other}'")),
    };
    r.map(|()| ExitCode::SUCCESS)
}

/// First argument that is neither a flag nor a flag's value.
fn positional(rest: &[String]) -> Option<&String> {
    positionals(rest).into_iter().next()
}

/// Every argument that is neither a flag nor a flag's value, in order.
fn positionals(rest: &[String]) -> Vec<&String> {
    positionals_with(rest, VALUE_FLAGS)
}

/// [`positionals`] with an explicit value-flag table — commands where a
/// flag's arity differs (`scratchpad`'s bare `--fuse` vs `pipeline`'s
/// `--fuse k`) pass their own.
fn positionals_with<'a>(rest: &'a [String], value_flags: &[&str]) -> Vec<&'a String> {
    let mut out = Vec::new();
    let mut skip_value = false;
    for a in rest {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a.starts_with("--") {
            skip_value = value_flags.contains(&a.as_str());
            continue;
        }
        out.push(a);
    }
    out
}

/// The cross-cutting flags every subcommand understands, parsed by one
/// shared routine so `--threads` (and the rest) accept the same syntax
/// and fail with the same message everywhere.
struct CommonOpts {
    /// `--threads N`, defaulting to available parallelism.
    threads: usize,
    /// `--timeout-ms` / `--max-iters` combined; `None` when neither was
    /// given (the run is ungoverned unless something else demands a
    /// budget, e.g. `--trace`).
    budget: Option<AnalysisBudget>,
    /// `--trace out.ndjson`: capture the run's deterministic trace.
    trace: Option<String>,
    /// `--emit-cert out.ndjson`: write the certificate stream.
    emit_cert: Option<String>,
    /// `--format json` (default is text).
    json: bool,
}

impl CommonOpts {
    fn parse(rest: &[String]) -> Result<Self, String> {
        let threads = match rest.iter().position(|a| a == "--threads") {
            None => loopmem::sim::thread_count(),
            Some(pos) => rest
                .get(pos + 1)
                .ok_or("--threads needs a positive count")?
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or("--threads needs a positive count")?,
        };
        let mut budget = AnalysisBudget::unlimited();
        let mut any = false;
        if let Some(pos) = rest.iter().position(|a| a == "--timeout-ms") {
            let ms: u64 = rest
                .get(pos + 1)
                .ok_or("--timeout-ms needs a millisecond count")?
                .parse()
                .map_err(|e| format!("--timeout-ms: {e}"))?;
            budget = budget.with_timeout(std::time::Duration::from_millis(ms));
            any = true;
        }
        if let Some(pos) = rest.iter().position(|a| a == "--max-iters") {
            let n: u64 = rest
                .get(pos + 1)
                .ok_or("--max-iters needs an iteration count")?
                .parse()
                .map_err(|e| format!("--max-iters: {e}"))?;
            budget = budget.with_max_iterations(n);
            any = true;
        }
        let trace = Self::path_flag(rest, "--trace")?;
        let emit_cert = Self::path_flag(rest, "--emit-cert")?;
        let json = match rest.iter().position(|a| a == "--format") {
            None => false,
            Some(pos) => match rest.get(pos + 1).map(String::as_str) {
                Some("text") => false,
                Some("json") => true,
                other => return Err(format!("bad --format {other:?} (expected text or json)")),
            },
        };
        if any || trace.is_some() {
            // Governed and traced runs both contain panics in-band.
            GOVERNED.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(CommonOpts {
            threads,
            budget: any.then_some(budget),
            trace,
            emit_cert,
            json,
        })
    }

    fn path_flag(rest: &[String], flag: &str) -> Result<Option<String>, String> {
        match rest.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(pos) => rest
                .get(pos + 1)
                .cloned()
                .map(Some)
                .ok_or_else(|| format!("{flag} needs an output path")),
        }
    }

    /// The collecting sink backing `--trace`, when requested.
    fn trace_sink(&self) -> Option<Arc<CollectingSink>> {
        self.trace.as_ref().map(|_| Arc::new(CollectingSink::new()))
    }

    /// Drain `sink` and write its NDJSON stream to the `--trace` path.
    fn write_trace(&self, sink: &Arc<CollectingSink>) -> Result<(), String> {
        let Some(path) = &self.trace else {
            return Ok(());
        };
        let report = sink.drain();
        std::fs::write(path, report.render_ndjson()).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "trace             : {} events written to {path}",
            report.events.len()
        );
        Ok(())
    }
}

fn load(rest: &[String]) -> Result<LoopNest, String> {
    let path = positional(rest).ok_or("missing <file.loop> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}: {e}"))
}

fn parse_budget(rest: &[String]) -> Result<Option<AnalysisBudget>, String> {
    Ok(CommonOpts::parse(rest)?.budget)
}

/// Report a governed run that could not finish exactly. A tripped budget or
/// a contained failure is a *result*, not a usage error, so the process
/// exits 0 — callers distinguish outcomes by the `outcome` line.
fn report_governed_failure(e: &AnalysisError) -> Result<(), String> {
    match e {
        AnalysisError::Exhausted { reason, partial } => {
            println!("outcome    : bounded");
            println!("total MWS  : in {partial}");
            println!("detail     : budget exhausted ({reason})");
        }
        AnalysisError::Overflow { .. } => {
            println!("outcome    : overflow");
            println!("detail     : {e}");
        }
        _ => {
            println!("outcome    : failed");
            println!("detail     : {e}");
        }
    }
    Ok(())
}

fn parse_mode(rest: &[String]) -> Result<SearchMode, String> {
    let Some(pos) = rest.iter().position(|a| a == "--mode") else {
        return Ok(SearchMode::default());
    };
    match rest.get(pos + 1).map(String::as_str) {
        Some("compound") => Ok(SearchMode::default()),
        Some("interchange") => Ok(SearchMode::InterchangeReversal),
        Some("li-pingali") => Ok(SearchMode::LiPingali),
        other => Err(format!("bad --mode {other:?}")),
    }
}

fn parse_transform(rest: &[String]) -> Result<Option<IMat>, String> {
    let Some(pos) = rest.iter().position(|a| a == "--transform") else {
        return Ok(None);
    };
    let spec = rest.get(pos + 1).ok_or("--transform needs a,b,c,d")?;
    let nums: Result<Vec<i64>, _> = spec.split(',').map(|s| s.trim().parse()).collect();
    let nums = nums.map_err(|e| format!("--transform: {e}"))?;
    let n = (nums.len() as f64).sqrt() as usize;
    if n * n != nums.len() || n == 0 {
        return Err(format!(
            "--transform needs a square matrix, got {} entries",
            nums.len()
        ));
    }
    let rows: Vec<Vec<i64>> = nums.chunks(n).map(|c| c.to_vec()).collect();
    Ok(Some(IMat::from_rows(&rows)))
}

/// `loopmem check`: span-aware static diagnostics over one or more `.loop`
/// files. Exits 1 when any file fails to parse or reports an error-severity
/// diagnostic; `--deny warnings` also fails the run on warnings. A clean
/// run (hints only, or nothing) exits 0.
fn cmd_check(rest: &[String]) -> Result<ExitCode, String> {
    let json = CommonOpts::parse(rest)?.json;
    let deny_warnings = match rest.iter().position(|a| a == "--deny") {
        None => false,
        Some(pos) => match rest.get(pos + 1).map(String::as_str) {
            Some("warnings") => true,
            other => return Err(format!("bad --deny {other:?} (expected warnings)")),
        },
    };
    let opts = CheckOptions {
        sanitize: rest.iter().any(|a| a == "--sanitize"),
        ..CheckOptions::default()
    };
    let files = positionals(rest);
    if files.is_empty() {
        return Err("missing <file.loop> argument".into());
    }
    let mut failed = false;
    for path in files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        match check_source(&src, &opts) {
            Err(e) => {
                failed = true;
                // A file that does not parse is reported in-band, with the
                // same span machinery as the lints (code LM0000).
                let d = Diagnostic {
                    code: "LM0000",
                    severity: Severity::Error,
                    message: format!("parse error: {}", e.message),
                    notes: Vec::new(),
                    span: e.span,
                    nest: None,
                };
                if json {
                    println!("{}", d.render_json(&src, Some(path)));
                } else {
                    println!("{}", d.render_text(&src, Some(path)));
                    println!("{path}: 1 error (did not parse)");
                }
            }
            Ok(report) => {
                if report.has_errors() || (deny_warnings && report.has_warnings()) {
                    failed = true;
                }
                if json {
                    print!("{}", report.render_json(&src, Some(path)));
                } else {
                    let text = report.render_text(&src, Some(path));
                    if !text.is_empty() {
                        print!("{text}");
                        println!();
                    }
                    let (e, w, h) = report.counts();
                    println!("{path}: {e} errors, {w} warnings, {h} hints");
                }
            }
        }
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `loopmem chaos`: deterministic fault-injection sweep over one or more
/// `.loop` files (`loopmem_core::chaos`). Prints one line per file and a
/// `violations : N` summary; exits 1 when any oracle was violated or a
/// file failed to load. Injected panics are contained by the engines, so
/// the panic hook is quieted like any governed run.
fn cmd_chaos(rest: &[String]) -> Result<ExitCode, String> {
    GOVERNED.store(true, std::sync::atomic::Ordering::Relaxed);
    let opts = CommonOpts::parse(rest)?;
    let seed: u64 = match rest.iter().position(|a| a == "--seed") {
        None => 0xC0FFEE,
        Some(pos) => rest
            .get(pos + 1)
            .ok_or("--seed needs an integer")?
            .parse()
            .map_err(|e| format!("--seed: {e}"))?,
    };
    let files = positionals(rest);
    if files.is_empty() {
        return Err("missing <file.loop> argument".into());
    }
    let trace_sink = opts.trace_sink();
    let mut violations = 0usize;
    let mut salvaged = 0usize;
    for path in files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        if let Some(sink) = &trace_sink {
            // `--trace` captures the fault-free traced baseline of each
            // file — the same stream chaos oracle 6 pins byte-identical
            // across thread counts — one epoch per file.
            let dyn_sink: Arc<dyn TraceSink> = sink.clone();
            dyn_sink.begin_epoch();
            if let Ok(program) = loopmem::ir::parse_program(&src) {
                let budget = AnalysisBudget::unlimited()
                    .with_max_iterations(2_000_000)
                    .with_trace(dyn_sink.clone());
                let _ = loopmem::sim::try_simulate_program_with_threads(&program, 1, &budget);
            }
        }
        let report = loopmem::core::chaos_source(path, &src, seed).map_err(|e| e.to_string())?;
        println!(
            "{path}: {} cases, {} runs, {} violations, {} salvaged-tighter",
            report.cases,
            report.runs,
            report.violations.len(),
            report.salvaged_tighter
        );
        for v in &report.violations {
            println!("  VIOLATION {v}");
        }
        violations += report.violations.len();
        salvaged += report.salvaged_tighter;
    }
    if let Some(sink) = &trace_sink {
        opts.write_trace(sink)?;
    }
    println!("seed       : {seed}");
    println!("salvaged   : {salvaged}");
    println!("violations : {violations}");
    Ok(if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `loopmem verify`: generate (or load) certificates for every answer the
/// optimizer gives on this program and replay them through the independent
/// checker in `loopmem-verify`. Exit 1 on any `LM7xxx` violation; a
/// degraded answer still yields a checkable bounds certificate, so the
/// robustness corpus verifies rather than timing out.
fn cmd_verify(rest: &[String]) -> Result<ExitCode, String> {
    // Generation replays governed searches; contained failures are
    // reported as degraded certificates, not stack traces.
    GOVERNED.store(true, std::sync::atomic::Ordering::Relaxed);
    let opts = CommonOpts::parse(rest)?;
    let json = opts.json;
    let path = positional(rest).ok_or("missing <file.loop> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (program, spans) =
        loopmem::ir::parse_program_spanned(&src).map_err(|e| format!("{path}: {e}"))?;
    // Governed by default: a nest too large to simulate within the budget
    // degrades to a bounds certificate instead of hanging the gate. The
    // default is an iteration cap, not a timeout, so whether a run
    // verifies exactly or via bounds is machine-independent.
    let mut budget = opts
        .budget
        .clone()
        .unwrap_or_else(|| AnalysisBudget::unlimited().with_max_iterations(2_000_000));
    let trace_sink = opts.trace_sink();
    if let Some(sink) = &trace_sink {
        budget = budget.with_trace(sink.clone() as Arc<dyn TraceSink>);
    }
    let certs = match rest.iter().position(|a| a == "--cert") {
        Some(pos) => {
            let cert_path = rest.get(pos + 1).ok_or("--cert needs an input path")?;
            let stream =
                std::fs::read_to_string(cert_path).map_err(|e| format!("{cert_path}: {e}"))?;
            match loopmem::verify::parse_certificates(&stream) {
                Ok(certs) => certs,
                Err((line, why)) => {
                    // A stream that does not parse is itself a violation:
                    // report it with the malformed-certificate code.
                    let d = Diagnostic {
                        code: "LM7007",
                        severity: Severity::Error,
                        message: format!("{cert_path}:{line}: malformed certificate: {why}"),
                        notes: Vec::new(),
                        span: loopmem::ir::Span::point(0),
                        nest: None,
                    };
                    if json {
                        println!("{}", d.render_json(&src, Some(path)));
                    } else {
                        println!("{}", d.render_text(&src, Some(path)));
                        println!("{path}: 0 certificates, 1 violation (stream did not parse)");
                    }
                    return Ok(ExitCode::FAILURE);
                }
            }
        }
        None => generate_certificates(&program, opts.threads, &budget),
    };
    emit_certs(opts.emit_cert.as_deref(), &certs)?;
    if let Some(sink) = &trace_sink {
        // The trace accounts for every certificate this run settled on,
        // loaded or generated.
        let dyn_sink: Arc<dyn TraceSink> = sink.clone();
        dyn_sink.begin_epoch();
        loopmem::core::trace_certificates(&dyn_sink, &certs);
        opts.write_trace(sink)?;
    }
    let violations = loopmem::verify::check_certificates(&program, &certs);
    for v in &violations {
        // Anchor each violation at the loop header of the nest it indicts;
        // program-level certificates point at the top of the file.
        let span = v
            .nest
            .and_then(|k| spans.get(k))
            .map(|s| s.loops.first().copied().unwrap_or(s.nest))
            .unwrap_or_else(|| loopmem::ir::Span::point(0));
        let d = Diagnostic {
            code: v.code,
            severity: Severity::Error,
            message: v.message.clone(),
            notes: v.notes.clone(),
            span,
            nest: v.nest,
        };
        if json {
            println!("{}", d.render_json(&src, Some(path)));
        } else {
            println!("{}", d.render_text(&src, Some(path)));
        }
    }
    if !json {
        println!(
            "{path}: {} certificates, {} violations",
            certs.len(),
            violations.len()
        );
    }
    Ok(if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `loopmem trace`: run the whole governed analysis surface over the
/// program — simulation, scratchpad sizing + fusion, per-nest §4
/// searches (with a serial memoized replay for memo events), cone-prune
/// scans, certificate emission — with a collecting `loopmem-obs` sink
/// attached, and render the deterministic trace. `--format text`
/// (default) prints per-phase totals; `--format json` prints the
/// canonical NDJSON stream, whose bytes are identical for every
/// `--threads` value; `--out` writes the NDJSON to a file either way.
fn cmd_trace(rest: &[String]) -> Result<ExitCode, String> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    /// Coefficient box half-width for the cone-prune stage (matches
    /// `verify`).
    const BNB_BOUND: i64 = 6;
    GOVERNED.store(true, std::sync::atomic::Ordering::Relaxed);
    let opts = CommonOpts::parse(rest)?;
    let out_path = CommonOpts::path_flag(rest, "--out")?;
    let path = positional(rest).ok_or("missing <file.loop> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = loopmem::ir::parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
    let sink = Arc::new(CollectingSink::new());
    let dyn_sink: Arc<dyn TraceSink> = sink.clone();
    // Governed by default (like `verify`): a robustness-corpus nest trips
    // the iteration cap and degrades instead of hanging the trace.
    let budget = opts
        .budget
        .clone()
        .unwrap_or_else(|| AnalysisBudget::unlimited().with_max_iterations(2_000_000))
        .with_trace(dyn_sink.clone());
    let session = Session::new()
        .threads(opts.threads)
        .budget(budget.clone())
        .certify(true);

    // Stage 1: governed program simulation + scratchpad sizing + fusion
    // (pass-1/pass-2 spans, polls, chunk commits, sizing terms, fusion
    // steps, certificates).
    dyn_sink.begin_epoch();
    let _ = catch_unwind(AssertUnwindSafe(|| session.scratchpad(&program)));

    // Stage 2: per-nest §4 searches, one epoch each. The governed search
    // contributes the search span and its certificates; when it completes
    // within budget, the serial memoized search replays for memo hit/miss
    // events (nests that trip the budget skip the replay).
    for nest in program.nests() {
        dyn_sink.begin_epoch();
        let searched = catch_unwind(AssertUnwindSafe(|| session.optimize(nest)));
        if matches!(searched, Ok(Ok(_))) {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                loopmem::core::minimize_mws_traced(nest, SearchMode::default(), &dyn_sink)
            }));
        }
    }

    // Stage 3: cone-prune scans for 2-deep nests (the same scan `verify`
    // certifies), one epoch each.
    for nest in program.nests() {
        dyn_sink.begin_epoch();
        let _ = catch_unwind(AssertUnwindSafe(|| cone_scan(nest, &budget, BNB_BOUND)));
    }

    let report = sink.drain();
    if let Some(out) = &out_path {
        std::fs::write(out, report.render_ndjson()).map_err(|e| format!("{out}: {e}"))?;
        // Stderr, so a piped `--format json` stdout stays pure NDJSON.
        eprintln!("trace: {} events written to {out}", report.events.len());
    }
    if opts.json {
        print!("{}", report.render_ndjson());
    } else {
        print!("{}", report.render_text());
    }
    Ok(ExitCode::SUCCESS)
}

/// Branch-and-bound cone-prune scan over a 2-deep rectangular nest:
/// `None` when the nest has the wrong shape, the extents degenerate, the
/// run trips `budget`, or the dependence cone never collapsed to a line.
/// Emits `cone-prune` trace events when `budget` carries a sink.
fn cone_scan(
    nest: &LoopNest,
    budget: &AnalysisBudget,
    bound: i64,
) -> Option<loopmem::core::BnbResult> {
    if nest.depth() != 2 {
        return None;
    }
    let vr = nest.var_ranges()?;
    let extents = (
        vr[0].1.checked_sub(vr[0].0)?.checked_add(1)?,
        vr[1].1.checked_sub(vr[1].0)?.checked_add(1)?,
    );
    if extents.0 <= 1 || extents.1 <= 1 {
        return None;
    }
    let deps = analyze(nest);
    loopmem::core::try_branch_and_bound(leading_alpha(nest), &deps, extents, bound, budget).ok()?
}

/// The §4.2 leading access row `(α₁, α₂)` used to weight the
/// branch-and-bound objective: the first nonzero access-matrix row in the
/// nest, falling back to `(1, 0)`.
fn leading_alpha(nest: &LoopNest) -> (i64, i64) {
    nest.refs()
        .find_map(|r| {
            let row = r.matrix.rows_iter().next()?;
            (row.len() == 2 && (row[0] != 0 || row[1] != 0)).then(|| (row[0], row[1]))
        })
        .unwrap_or((1, 0))
}

/// Runs the whole governed optimizer surface over `program` and converts
/// every answer into certificates: legality/optimality/exact bounds for
/// each minimized nest (degraded bounds when the budget trips), cone-prune
/// evidence for 2-deep nests, and sizing/fusion certificates for the
/// shared scratchpad.
fn generate_certificates(
    program: &loopmem::ir::Program,
    threads: usize,
    budget: &AnalysisBudget,
) -> Vec<loopmem::verify::Certificate> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    /// Coefficient box half-width certified by the cone-prune run.
    const BNB_BOUND: i64 = 6;
    let mut certs = Vec::new();
    for (k, nest) in program.nests().iter().enumerate() {
        // The robustness corpus deliberately overflows ungoverned
        // arithmetic; like the chaos harness, contain the panic and
        // degrade to a bounds certificate rather than crash.
        let nest_certs = catch_unwind(AssertUnwindSafe(|| {
            let mut out = Vec::new();
            match loopmem::core::try_minimize_mws(nest, SearchMode::default(), budget) {
                Ok(opt) => out.extend(loopmem::core::certify_optimization(k, nest, &opt)),
                Err(e) => out.push(loopmem::core::certify_degraded(k, nest, &e)),
            }
            out
        }))
        .or_else(|_| {
            catch_unwind(AssertUnwindSafe(|| {
                let b = loopmem::sim::analytic_nest_bounds(nest);
                vec![loopmem::core::certify_bounds(
                    Some(k),
                    "nest-mws",
                    &b,
                    "analysis panicked; analytic enclosure",
                )]
            }))
        })
        .unwrap_or_else(|_| {
            // Even the analytic ladder panicked: the vacuous enclosure is
            // still a sound, checkable claim.
            vec![loopmem::core::certify_bounds(
                Some(k),
                "nest-mws",
                &loopmem::ir::Bounds {
                    lower: 0,
                    upper: u64::MAX,
                    method: loopmem::ir::BoundsMethod::UnionBox,
                },
                "analysis panicked; vacuous enclosure",
            )]
        });
        certs.extend(nest_certs);
        let cone = catch_unwind(AssertUnwindSafe(|| {
            if nest.depth() != 2 {
                return None;
            }
            let vr = nest.var_ranges()?;
            let extents = (
                vr[0].1.checked_sub(vr[0].0)?.checked_add(1)?,
                vr[1].1.checked_sub(vr[1].0)?.checked_add(1)?,
            );
            if extents.0 <= 1 || extents.1 <= 1 {
                return None;
            }
            let deps = analyze(nest);
            let r = loopmem::core::try_branch_and_bound(
                leading_alpha(nest),
                &deps,
                extents,
                BNB_BOUND,
                budget,
            )
            .ok()??;
            loopmem::core::certify_bnb(k, BNB_BOUND, &r)
        }))
        .unwrap_or(None);
        certs.extend(cone);
    }
    let scratchpad = catch_unwind(AssertUnwindSafe(|| {
        match loopmem::core::try_scratchpad_with_fusion(program, threads, budget) {
            Ok((gov, plan)) => {
                let mut out = loopmem::core::certify_governed_scratchpad(&gov);
                if let Some(p) = plan {
                    out.push(loopmem::core::certify_fusion(&p));
                }
                out
            }
            // A whole-program scratchpad failure is already visible
            // through the per-nest degraded certificates above.
            Err(_) => Vec::new(),
        }
    }))
    .unwrap_or_default();
    certs.extend(scratchpad);
    certs
}

/// Honors `--emit-cert out.ndjson`: writes one certificate per line in the
/// deterministic wire format. A no-op when the flag is absent.
fn emit_certs(path: Option<&str>, certs: &[loopmem::verify::Certificate]) -> Result<(), String> {
    let Some(path) = path else {
        return Ok(());
    };
    let mut out = String::new();
    for c in certs {
        out.push_str(&c.to_json_line());
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("{path}: {e}"))?;
    println!("certificates      : {} written to {path}", certs.len());
    Ok(())
}

fn cmd_analyze(nest: &LoopNest) -> Result<(), String> {
    let m = analyze_memory(nest);
    println!("declared storage : {} words", m.default_words);
    println!("distinct touched : {} words", m.distinct_exact_total);
    println!("exact MWS        : {} words", m.mws_exact);
    if let Some(est) = loopmem::core::estimate_nest_mws(nest) {
        println!("MWS closed form  : {est} words (paper formulas; upper estimate)");
    }
    println!();
    println!(
        "{:<12} {:>9} {:>16} {:>8}  method",
        "array", "declared", "distinct", "MWS"
    );
    for (id, est) in estimate_distinct(nest) {
        let decl = nest.array(id);
        let distinct = if est.is_exact() {
            format!("{}", est.lower)
        } else {
            format!("[{}, {}]", est.lower, est.upper)
        };
        let mws = m.mws_per_array.get(&id).copied().unwrap_or(0);
        println!(
            "{:<12} {:>9} {:>16} {:>8}  {:?}",
            decl.name,
            decl.size(),
            distinct,
            mws,
            est.method
        );
    }
    let model = ScratchpadModel::new();
    println!();
    println!(
        "scratchpad sized to declared arrays: {}",
        model.report(m.default_words.max(1) as u64)
    );
    println!(
        "scratchpad sized to exact MWS      : {}",
        model.report(m.mws_exact.max(1))
    );
    Ok(())
}

fn cmd_deps(nest: &LoopNest) -> Result<(), String> {
    let deps = analyze(nest);
    println!(
        "{} dependences, {} non-uniform pairs",
        deps.len(),
        deps.nonuniform_pair_count()
    );
    for d in deps.iter() {
        let endpoints = format!("S{}#{} to S{}#{}", d.src.0, d.src.1, d.dst.0, d.dst.1);
        println!(
            "  {:<22} {:<7} level {}  {} -> {}",
            format!("{:?}", d.distance),
            d.kind.to_string(),
            d.level(),
            nest.array(d.array).name,
            endpoints,
        );
    }
    println!("\nreuse vectors (null spaces):");
    for (id, v) in loopmem::dep::reuse_vectors(nest) {
        println!("  {:<8} {:?}", nest.array(id).name, v);
    }
    // Direction vectors for non-uniformly generated pairs (rectangular
    // nests only).
    if deps.nonuniform_pair_count() > 0 && nest.is_rectangular() {
        println!("\ndirection vectors (non-uniform pairs):");
        let refs: Vec<_> = nest.refs().collect();
        for (i, a) in refs.iter().enumerate() {
            for b in &refs[i + 1..] {
                if a.array == b.array && !a.uniformly_generated_with(b) {
                    match loopmem::dep::direction_vector(nest, a, b) {
                        Some(dv) => println!("  {:<8} {}", nest.array(a.array).name, dv),
                        None => println!("  {:<8} independent", nest.array(a.array).name),
                    }
                }
            }
        }
    }
    Ok(())
}

fn cmd_optimize(
    nest: &LoopNest,
    mode: SearchMode,
    budget: Option<AnalysisBudget>,
) -> Result<(), String> {
    let opt = match budget {
        None => minimize_mws(nest, mode).map_err(|e| e.to_string())?,
        Some(b) => match loopmem::core::try_minimize_mws(nest, mode, &b) {
            Ok(opt) => {
                println!("outcome    : exact");
                opt
            }
            Err(e) => return report_governed_failure(&e),
        },
    };
    println!(
        "MWS {} -> {}  ({} candidates considered)",
        opt.mws_before, opt.mws_after, opt.candidates_considered
    );
    println!("\nT =\n{}", opt.transform);
    println!("\n{}", print_nest(&opt.transformed));
    Ok(())
}

fn cmd_simulate(
    nest: &LoopNest,
    profile: bool,
    budget: Option<AnalysisBudget>,
) -> Result<(), String> {
    let s = match budget {
        None => {
            if profile {
                simulate_with_profile(nest)
            } else {
                simulate(nest)
            }
        }
        Some(b) => {
            let r = loopmem::sim::try_simulate_with_threads(
                nest,
                profile,
                loopmem::sim::thread_count(),
                &b,
            );
            match r {
                Ok(s) => {
                    println!("outcome    : exact");
                    s
                }
                Err(e) => return report_governed_failure(&e),
            }
        }
    };
    println!("iterations : {}", s.iterations);
    println!("total MWS  : {}", s.mws_total);
    println!(
        "{:<12} {:>10} {:>10} {:>8}",
        "array", "accesses", "distinct", "MWS"
    );
    let mut ids: Vec<_> = s.per_array.keys().copied().collect();
    ids.sort();
    for id in ids {
        let st = &s.per_array[&id];
        println!(
            "{:<12} {:>10} {:>10} {:>8}",
            nest.array(id).name,
            st.accesses,
            st.distinct,
            st.mws
        );
    }
    if let Some(p) = s.profile {
        println!("\nwindow profile (live words after each iteration, downsampled):");
        let step = (p.len() / 24).max(1);
        for (t, w) in p.iter().enumerate().step_by(step) {
            let bar = "#".repeat(((*w as usize) * 50 / (s.mws_total.max(1) as usize)).min(50));
            println!("  t={t:>7}  {bar:<50} {w}");
        }
    }
    Ok(())
}

fn cmd_formulas(nest: &LoopNest) -> Result<(), String> {
    let formulas = loopmem::core::distinct_formulas(nest);
    if formulas.is_empty() {
        println!("no closed-form distinct-access formula applies (bounds/enumeration cases)");
        return Ok(());
    }
    println!(
        "distinct-access formulas over the loop extents N1..N{}:",
        nest.depth()
    );
    let mut ids: Vec<_> = formulas.keys().copied().collect();
    ids.sort();
    for id in ids {
        let est = &formulas[&id];
        println!(
            "  A_d({}) = {}    [{:?}]",
            nest.array(id).name,
            est.formula,
            est.method
        );
    }
    if let Some(values) = loopmem::core::symbolic::extent_values(nest) {
        let mut pairs: Vec<_> = values.iter().collect();
        pairs.sort();
        let shown: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!("  at this nest's sizes ({}):", shown.join(", "));
        let mut ids: Vec<_> = formulas.keys().copied().collect();
        ids.sort();
        for id in ids {
            println!(
                "    {} -> {}",
                nest.array(id).name,
                formulas[&id].formula.eval(&values)
            );
        }
    }
    Ok(())
}

fn cmd_pipeline(rest: &[String]) -> Result<(), String> {
    let opts = CommonOpts::parse(rest)?;
    let path = positional(rest).ok_or("missing <file.loop> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut program = loopmem::ir::parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
    let threads = opts.threads;
    if let Some(pos) = rest.iter().position(|a| a == "--fuse") {
        let k: usize = rest
            .get(pos + 1)
            .ok_or("--fuse needs a nest index")?
            .parse()
            .map_err(|e| format!("--fuse: {e}"))?;
        program = loopmem::core::fuse(&program, k).map_err(|e| e.to_string())?;
        println!("fused nests {k} and {}:", k + 1);
        println!("{}", loopmem::ir::print_program(&program));
    }
    // `--trace` needs a budget to carry the sink, so it selects the
    // governed path even without budget flags.
    if opts.budget.is_some() || opts.trace.is_some() {
        let mut budget = opts
            .budget
            .clone()
            .unwrap_or_else(AnalysisBudget::unlimited);
        let trace_sink = opts.trace_sink();
        if let Some(sink) = &trace_sink {
            budget = budget.with_trace(sink.clone() as Arc<dyn TraceSink>);
        }
        cmd_pipeline_governed(&program, threads, &budget, rest)?;
        if let Some(sink) = &trace_sink {
            opts.write_trace(sink)?;
        }
        return Ok(());
    }
    // Batch analysis: pass 1 shards across nests on `threads` workers;
    // results are bit-identical for every worker count.
    let sim = loopmem::sim::simulate_program_with_threads(&program, threads);
    println!(
        "nests             : {} ({} worker threads)",
        program.len(),
        threads
    );
    println!("declared storage  : {} words", program.default_memory());
    println!(
        "distinct touched  : {} words",
        sim.distinct.values().sum::<u64>()
    );
    println!(
        "whole-program MWS : {} words (peak inside nest {})",
        sim.mws_total, sim.peak_nest
    );
    for (k, live) in sim.boundary_live.iter().enumerate() {
        println!("boundary {}->{}      : {} words live", k, k + 1, live);
    }
    println!("\n{:<7} {:>12} {:>10}", "nest", "iterations", "MWS");
    let mut certs = Vec::new();
    for (k, nest) in program.nests().iter().enumerate() {
        // Memoized: a kernel repeated across the pipeline (even under
        // renamed loop variables) is simulated once.
        let mws = loopmem::core::nest_mws_memoized(nest);
        certs.push(loopmem::core::certify_bounds(
            Some(k),
            "nest-mws",
            &loopmem::ir::Bounds::exact(mws),
            "exact simulation (pipeline pass 1)",
        ));
        println!(
            "{:<7} {:>12} {:>10}",
            format!("nest{k}"),
            sim.per_nest_iterations[k],
            mws
        );
    }
    emit_certs(opts.emit_cert.as_deref(), &certs)?;
    // Point out fusable adjacent pairs.
    for k in 0..program.len().saturating_sub(1) {
        match loopmem::core::fuse(&program, k) {
            Ok(_) => println!("nests {k}+{}: fusable (try --fuse {k})", k + 1),
            Err(e) => println!("nests {k}+{}: not fusable ({e})", k + 1),
        }
    }
    if rest.iter().any(|a| a == "--optimize") {
        let mode = parse_mode(rest)?;
        let opt = loopmem::core::optimize_program_with_threads(&program, mode, threads)
            .map_err(|e| e.to_string())?;
        println!();
        println!(
            "batch optimize    : whole-program MWS {} -> {}",
            opt.mws_before, opt.mws_after
        );
        for (k, (before, after)) in opt.per_nest.iter().enumerate() {
            println!("  nest{k}: single-nest MWS {before} -> {after}");
        }
    }
    Ok(())
}

/// Budgeted pipeline analysis: every nest reports an outcome
/// (exact / bounded / failed) and the whole run shares one deadline and
/// one cumulative iteration budget. Always exits 0 — a degraded answer
/// is still an answer.
fn cmd_pipeline_governed(
    program: &loopmem::ir::Program,
    threads: usize,
    budget: &AnalysisBudget,
    rest: &[String],
) -> Result<(), String> {
    println!(
        "nests             : {} ({} worker threads, governed)",
        program.len(),
        threads
    );
    println!("declared storage  : {} words", program.default_memory());
    let gov = match loopmem::sim::try_simulate_program_with_threads(program, threads, budget) {
        Ok(gov) => gov,
        Err(e) => return report_governed_failure(&e),
    };
    if gov.mws_bounds.is_exact() {
        println!("outcome           : exact");
        println!("whole-program MWS : {} words", gov.mws_bounds.lower);
    } else {
        println!("outcome           : bounded");
        println!("whole-program MWS : in {}", gov.mws_bounds);
    }
    let emit_cert = CommonOpts::path_flag(rest, "--emit-cert")?;
    let want_certs = emit_cert.is_some();
    let mut certs = Vec::new();
    for (k, r) in gov.per_nest.iter().enumerate() {
        match r {
            Ok(iters) => {
                println!("  nest{k} : exact ({iters} iterations)");
                if want_certs {
                    // The nest simulated within budget, so re-deriving its
                    // MWS through the memo is affordable.
                    let mws = loopmem::core::nest_mws_memoized(&program.nests()[k]);
                    certs.push(loopmem::core::certify_bounds(
                        Some(k),
                        "nest-mws",
                        &loopmem::ir::Bounds::exact(mws),
                        "exact simulation (governed pipeline)",
                    ));
                }
            }
            Err(e) => {
                match e {
                    AnalysisError::Exhausted { reason, partial } => {
                        println!("  nest{k} : bounded {partial}; budget exhausted ({reason})");
                    }
                    AnalysisError::Overflow { .. } => println!("  nest{k} : overflow; {e}"),
                    _ => println!("  nest{k} : failed; {e}"),
                }
                if want_certs {
                    certs.push(loopmem::core::certify_degraded(k, &program.nests()[k], e));
                }
            }
        }
    }
    emit_certs(emit_cert.as_deref(), &certs)?;
    if rest.iter().any(|a| a == "--optimize") {
        let mode = parse_mode(rest)?;
        println!();
        if let Some(sink) = budget.trace() {
            // A fresh epoch keeps the optimize stage's events ordered
            // after the simulation's in the drained stream.
            sink.begin_epoch();
        }
        match loopmem::core::try_optimize_program_with_threads(program, mode, threads, budget) {
            Ok(opt) => {
                println!(
                    "batch optimize    : whole-program MWS {} -> {}",
                    opt.mws_before, opt.mws_after
                );
                for (k, r) in opt.per_nest.iter().enumerate() {
                    match r {
                        Ok((before, after)) => {
                            println!("  nest{k}: single-nest MWS {before} -> {after}");
                        }
                        Err(e) => println!("  nest{k}: kept original ({e})"),
                    }
                }
            }
            Err(e) => return report_governed_failure(&e),
        }
    }
    Ok(())
}

/// `loopmem scratchpad`: size one shared scratchpad over the whole
/// program (`loopmem_core::scratchpad`). Bare `--fuse` runs the greedy
/// fusion search; budget flags make the run governed, degrading to a
/// size interval (`outcome : bounded`) instead of crashing.
fn cmd_scratchpad(rest: &[String]) -> Result<(), String> {
    let opts = CommonOpts::parse(rest)?;
    // `--fuse` is a bare switch here, unlike pipeline's `--fuse k`.
    let value_flags: Vec<&str> = VALUE_FLAGS
        .iter()
        .copied()
        .filter(|f| *f != "--fuse")
        .collect();
    let path = positionals_with(rest, &value_flags)
        .into_iter()
        .next()
        .ok_or("missing <file.loop> argument")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = loopmem::ir::parse_program(&src).map_err(|e| format!("{path}: {e}"))?;
    let threads = opts.threads;
    let want_fuse = rest.iter().any(|a| a == "--fuse");
    println!(
        "nests             : {} ({} worker threads)",
        program.len(),
        threads
    );
    println!("declared storage  : {} words", program.default_memory());

    if opts.budget.is_some() || opts.trace.is_some() {
        let mut budget = opts
            .budget
            .clone()
            .unwrap_or_else(AnalysisBudget::unlimited);
        let trace_sink = opts.trace_sink();
        if let Some(sink) = &trace_sink {
            budget = budget.with_trace(sink.clone() as Arc<dyn TraceSink>);
        }
        let r = if want_fuse {
            loopmem::core::try_scratchpad_with_fusion(&program, threads, &budget)
        } else {
            loopmem::core::try_scratchpad_program_with_threads(&program, threads, &budget)
                .map(|g| (g, None))
        };
        let (gov, plan) = match r {
            Ok(x) => x,
            Err(e) => return report_governed_failure(&e),
        };
        if gov.all_exact() {
            println!("outcome           : exact");
            print_scratchpad_sizing(&gov.sizing);
        } else {
            println!("outcome           : bounded");
            println!(
                "scratchpad        : <= {} words (slack {}; in {})",
                gov.words.upper,
                gov.words.slack(),
                gov.words
            );
            println!("whole-program MWS : >= {} words", gov.sizing.program_mws);
            for (k, r) in gov.per_nest.iter().enumerate() {
                match r {
                    Ok(t) => println!(
                        "  nest{k} : mws {} + live-through {} = {}",
                        t.mws,
                        t.live_through,
                        t.words()
                    ),
                    Err(AnalysisError::Exhausted { reason, partial }) => {
                        println!("  nest{k} : bounded {partial}; budget exhausted ({reason})");
                    }
                    Err(e @ AnalysisError::Overflow { .. }) => {
                        println!("  nest{k} : overflow; {e}")
                    }
                    Err(e) => println!("  nest{k} : failed; {e}"),
                }
            }
        }
        if want_fuse {
            match &plan {
                Some(p) => print_scratchpad_plan(p),
                None => println!("fusion            : skipped (baseline not exact)"),
            }
        }
        let mut certs = loopmem::core::certify_governed_scratchpad(&gov);
        if let Some(p) = &plan {
            certs.push(loopmem::core::certify_fusion(p));
        }
        emit_certs(opts.emit_cert.as_deref(), &certs)?;
        if let Some(sink) = &trace_sink {
            opts.write_trace(sink)?;
        }
        return Ok(());
    }

    let sizing = loopmem::core::scratchpad_program_with_threads(&program, threads);
    println!("outcome           : exact");
    print_scratchpad_sizing(&sizing);
    let mut certs = vec![loopmem::core::certify_sizing(&sizing)];
    if want_fuse {
        let plan = loopmem::core::scratchpad_with_fusion(&program, threads);
        print_scratchpad_plan(&plan);
        certs.push(loopmem::core::certify_fusion(&plan));
    }
    emit_certs(opts.emit_cert.as_deref(), &certs)?;
    Ok(())
}

fn print_scratchpad_sizing(s: &loopmem::core::ScratchpadSizing) {
    println!(
        "scratchpad        : {} words (peak term in nest {})",
        s.words, s.peak_nest
    );
    println!("whole-program MWS : {} words", s.program_mws);
    for (k, t) in s.per_nest.iter().enumerate() {
        println!(
            "  nest{k} : mws {} + live-through {} = {}",
            t.mws,
            t.live_through,
            t.words()
        );
    }
    for (k, live) in s.boundary_live.iter().enumerate() {
        println!("boundary {}->{}      : {} words live", k, k + 1, live);
    }
}

fn print_scratchpad_plan(p: &loopmem::core::ScratchpadPlan) {
    println!(
        "fusion            : {} accepted, {} -> {} nests",
        p.steps.len(),
        p.unfused.per_nest.len(),
        p.fused.per_nest.len()
    );
    for (i, st) in p.steps.iter().enumerate() {
        println!(
            "  step {} : fuse at boundary {}, {} -> {} words",
            i + 1,
            st.at,
            st.words_before,
            st.words_after
        );
    }
    for (k, g) in p.groups.iter().enumerate() {
        if g.len() > 1 {
            println!("  fused nest{k} = original nests {g:?}");
        }
    }
    println!("scratchpad fused  : {} words", p.fused.words);
}

fn cmd_print(nest: &LoopNest, transform: Option<IMat>) -> Result<(), String> {
    match transform {
        None => print!("{}", print_nest(nest)),
        Some(t) => {
            let out = apply_transform(nest, &t).map_err(|e| e.to_string())?;
            print!("{}", print_nest(&out));
        }
    }
    Ok(())
}
