//! Property-style tests: dependence analysis against brute-force collision
//! detection. Deterministic (seeded `Lcg`), no external dependencies.

use loopmem_dep::{analyze, lex_positive};
use loopmem_ir::parse;
use loopmem_linalg::Lcg;
use std::collections::HashSet;

/// Random two-reference uniformly generated nest over a small box.
fn uniform_pair(rng: &mut Lcg) -> (String, i64, i64, i64, i64, i64, i64) {
    let n1 = rng.range_i64(3, 8);
    let n2 = rng.range_i64(3, 8);
    let p = rng.range_i64(1, 4);
    let q = rng.range_i64(-4, 4);
    let c1 = rng.range_i64(0, 6);
    let c2 = rng.range_i64(0, 6);
    let qterm = if q >= 0 {
        format!("+ {q}*j")
    } else {
        format!("- {}*j", -q)
    };
    let base = 40; // keep subscripts positive
    let src = format!(
        "array A[200]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ \
         A[{p}*i {qterm} + {o1}] = A[{p}*i {qterm} + {o2}]; }} }}",
        o1 = base + c1,
        o2 = base + c2,
    );
    (src, n1, n2, p, q, c1, c2)
}

/// Brute-force set of positive collision distances between any two
/// accesses of the nest (same element, distinct iterations).
fn brute_distances(n1: i64, n2: i64, p: i64, q: i64, c1: i64, c2: i64) -> HashSet<Vec<i64>> {
    let f = |i: i64, j: i64, c: i64| p * i + q * j + c;
    let mut out = HashSet::new();
    for i1 in 1..=n1 {
        for j1 in 1..=n2 {
            for i2 in 1..=n1 {
                for j2 in 1..=n2 {
                    let d = vec![i2 - i1, j2 - j1];
                    if !lex_positive(&d) {
                        continue;
                    }
                    for ca in [c1, c2] {
                        for cb in [c1, c2] {
                            if f(i1, j1, ca) == f(i2, j2, cb) {
                                out.insert(d.clone());
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[test]
fn reported_distances_are_real() {
    let mut rng = Lcg::new(0x41);
    for _ in 0..96 {
        let (src, n1, n2, p, q, c1, c2) = uniform_pair(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let deps = analyze(&nest);
        let truth = brute_distances(n1, n2, p, q, c1, c2);
        for d in deps.iter() {
            assert!(
                truth.contains(&d.distance),
                "analysis reported {:?} but no collision exists ({src})",
                d.distance
            );
            assert!(lex_positive(&d.distance));
        }
    }
}

#[test]
fn lex_min_collision_is_reported() {
    let mut rng = Lcg::new(0x42);
    for _ in 0..96 {
        let (src, n1, n2, p, q, c1, c2) = uniform_pair(&mut rng);
        // The analysis records at least the lexicographically smallest
        // true distance (the §4.2 "dependence vector of interest").
        let nest = parse(&src).expect("generated source parses");
        let deps = analyze(&nest);
        let truth = brute_distances(n1, n2, p, q, c1, c2);
        if let Some(min_true) = truth.iter().min() {
            let reported: Vec<&Vec<i64>> = deps.iter().map(|d| &d.distance).collect();
            assert!(
                reported.contains(&min_true),
                "lex-min collision {min_true:?} missing from {reported:?} ({src})"
            );
        }
    }
}

#[test]
fn no_dependence_means_no_collision() {
    let mut rng = Lcg::new(0x43);
    for _ in 0..96 {
        let (src, n1, n2, p, q, c1, c2) = uniform_pair(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        let deps = analyze(&nest);
        if deps.is_empty() {
            let truth = brute_distances(n1, n2, p, q, c1, c2);
            assert!(truth.is_empty(), "missed collisions {truth:?} ({src})");
        }
    }
}

#[test]
fn levels_are_consistent() {
    let mut rng = Lcg::new(0x44);
    for _ in 0..96 {
        let (src, ..) = uniform_pair(&mut rng);
        let nest = parse(&src).expect("generated source parses");
        for d in analyze(&nest).iter() {
            let lvl = d.level();
            assert!((1..=2).contains(&lvl), "{src}");
            assert!(d.distance[..lvl - 1].iter().all(|&x| x == 0), "{src}");
            assert!(d.distance[lvl - 1] > 0, "{src}");
        }
    }
}
