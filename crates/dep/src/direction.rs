//! Direction vectors for non-uniformly generated reference pairs.
//!
//! When two references have different access matrices, their collisions
//! are not separated by a constant distance — the paper (§3.2) notes such
//! pairs have *direction* dependences. This module computes them exactly:
//! the collision set `{(I, J) : A₁·I + c₁ = A₂·J + c₂, both in bounds}` is
//! a polyhedron over `2n` variables, and the sign of each component
//! `J_k − I_k` is probed with Fourier–Motzkin feasibility tests.

use loopmem_ir::{ArrayRef, LoopNest};
use loopmem_poly::{Constraint, Polyhedron};
use std::fmt;

/// Per-component direction of a dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `J_k > I_k` only (the paper's `<` direction, "forward").
    Less,
    /// `J_k == I_k` only.
    Equal,
    /// `J_k < I_k` only.
    Greater,
    /// Multiple signs are feasible.
    Star,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::Less => "<",
            Direction::Equal => "=",
            Direction::Greater => ">",
            Direction::Star => "*",
        };
        f.write_str(s)
    }
}

/// A direction vector, one [`Direction`] per loop level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectionVector(pub Vec<Direction>);

impl fmt::Display for DirectionVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

/// Computes the direction vector between two references of a rectangular
/// nest, or `None` when they can never collide (proved by the rational
/// emptiness of the collision polyhedron — a stronger test than the GCD
/// test, since it uses the loop bounds).
///
/// The vector describes collisions `I → J` with `I` at `a` and `J` at
/// `b`; conservative: a component is a specific sign only when *every*
/// rational collision has that sign.
///
/// # Panics
///
/// Panics if the references disagree on rank/depth or the nest is not
/// rectangular.
pub fn direction_vector(nest: &LoopNest, a: &ArrayRef, b: &ArrayRef) -> Option<DirectionVector> {
    assert_eq!(a.rank(), b.rank(), "rank mismatch");
    let n = nest.depth();
    assert_eq!(a.depth(), n, "depth mismatch");
    if a.array != b.array {
        return None;
    }
    let ranges = nest
        .rectangular_ranges()
        .expect("direction analysis needs rectangular bounds");

    // Variables: (I_0..I_{n-1}, J_0..J_{n-1}).
    let mut p = Polyhedron::universe(2 * n);
    for (k, &(lo, hi)) in ranges.iter().enumerate() {
        for base in [k, n + k] {
            let mut c_lo = vec![0i64; 2 * n];
            c_lo[base] = 1;
            p.add(Constraint::new(c_lo, -lo));
            let mut c_hi = vec![0i64; 2 * n];
            c_hi[base] = -1;
            p.add(Constraint::new(c_hi, hi));
        }
    }
    // Collision equalities per array dimension: A_a·I + c_a = A_b·J + c_b.
    for dim in 0..a.rank() {
        let mut coeffs = vec![0i64; 2 * n];
        coeffs[..n].copy_from_slice(a.matrix.row(dim));
        for (j, &v) in b.matrix.row(dim).iter().enumerate() {
            coeffs[n + j] = -v;
        }
        let constant = a.offset[dim] - b.offset[dim];
        p.add(Constraint::new(coeffs.clone(), constant));
        p.add(Constraint::new(
            coeffs.iter().map(|&x| -x).collect(),
            -constant,
        ));
    }
    if p.is_rationally_empty() {
        return None;
    }

    let feasible_with = |k: usize, sign: i64| -> bool {
        // sign > 0: J_k - I_k >= 1 ; sign < 0: I_k - J_k >= 1 ;
        // sign == 0: both J_k - I_k >= 0 and <= 0.
        let mut q = p.clone();
        let mut c = vec![0i64; 2 * n];
        match sign.cmp(&0) {
            std::cmp::Ordering::Greater => {
                c[n + k] = 1;
                c[k] = -1;
                q.add(Constraint::new(c, -1));
            }
            std::cmp::Ordering::Less => {
                c[k] = 1;
                c[n + k] = -1;
                q.add(Constraint::new(c, -1));
            }
            std::cmp::Ordering::Equal => {
                c[n + k] = 1;
                c[k] = -1;
                q.add(Constraint::new(c.clone(), 0));
                q.add(Constraint::new(c.iter().map(|&x| -x).collect(), 0));
            }
        }
        !q.is_rationally_empty()
    };

    let mut dirs = Vec::with_capacity(n);
    for k in 0..n {
        let pos = feasible_with(k, 1);
        let zero = feasible_with(k, 0);
        let neg = feasible_with(k, -1);
        dirs.push(match (pos, zero, neg) {
            (true, false, false) => Direction::Less,
            (false, true, false) => Direction::Equal,
            (false, false, true) => Direction::Greater,
            _ => Direction::Star,
        });
    }
    Some(DirectionVector(dirs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn example6_directions_are_star() {
        // A[3i+7j-10] vs A[4i-3j+60]: collisions scatter in every
        // direction.
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        let dv = direction_vector(&nest, refs[0], refs[1]).expect("they collide");
        assert_eq!(dv.to_string(), "(*, *)");
    }

    #[test]
    fn uniform_shift_gives_fixed_directions() {
        // A[i][j] -> A[i-1][j]: collision iff J = I + (1, 0).
        let nest =
            parse("array A[20][20]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j]; } }")
                .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        // I at the write (A[i][j]), J at the read of the same element.
        let dv = direction_vector(&nest, refs[0], refs[1]).expect("they collide");
        assert_eq!(dv.0, vec![Direction::Less, Direction::Equal]);
    }

    #[test]
    fn disjoint_parities_proved_independent() {
        let nest =
            parse("array A[100]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i] = A[2j + 41]; } }")
                .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        // 2i is even, 2j+41 is odd — rationally they could meet at
        // half-integers, but the bounds make even the rational test fail
        // here only if ranges are disjoint; use value-disjoint ranges:
        // 2i in [2,20], 2j+41 in [43,61].
        assert_eq!(direction_vector(&nest, refs[0], refs[1]), None);
    }

    #[test]
    fn transposed_access_directions() {
        // B[j][i] vs B[i][j] self-collisions: I=(i,j) and J=(j,i) touch
        // the same element; both signs possible off-diagonal.
        let nest =
            parse("array B[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { B[j][i] = B[i][j]; } }")
                .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        let dv = direction_vector(&nest, refs[0], refs[1]).expect("they collide");
        assert_eq!(dv.0, vec![Direction::Star, Direction::Star]);
    }

    #[test]
    fn different_arrays_never_collide() {
        let nest = parse("array A[10]\narray B[10]\nfor i = 1 to 10 { A[i] = B[i]; }").unwrap();
        let refs: Vec<_> = nest.refs().collect();
        assert_eq!(direction_vector(&nest, refs[0], refs[1]), None);
    }
}
