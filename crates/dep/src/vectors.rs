//! Distance/reuse vector utilities.

use loopmem_ir::{ArrayId, LoopNest};
use loopmem_linalg::integer_nullspace;

/// `true` when the vector is lexicographically positive: its first non-zero
/// component is positive (§2.1). The zero vector is *not* positive.
///
/// ```
/// use loopmem_dep::lex_positive;
/// assert!(lex_positive(&[0, 3, -1]));
/// assert!(!lex_positive(&[-1, 5]));
/// assert!(!lex_positive(&[0, 0]));
/// ```
pub fn lex_positive(v: &[i64]) -> bool {
    match v.iter().find(|&&x| x != 0) {
        Some(&x) => x > 0,
        None => false,
    }
}

/// The *level* of a dependence/reuse vector: the 1-based index of its first
/// non-zero component (§2.1); `None` for the zero vector.
///
/// ```
/// use loopmem_dep::level;
/// assert_eq!(level(&[0, 0, 1]), Some(3));
/// assert_eq!(level(&[1, 3, 3]), Some(1));
/// assert_eq!(level(&[0, 0]), None);
/// ```
pub fn level(v: &[i64]) -> Option<usize> {
    v.iter().position(|&x| x != 0).map(|p| p + 1)
}

/// Negates into lexicographic positivity; the zero vector stays zero.
pub fn make_lex_positive(v: &[i64]) -> Vec<i64> {
    if lex_positive(v) || v.iter().all(|&x| x == 0) {
        v.to_vec()
    } else {
        v.iter().map(|&x| -x).collect()
    }
}

/// Reuse vectors of every array in the nest (§3.2): the primitive,
/// lexicographically positive generators of each reference's access-matrix
/// kernel. An array with full-rank accesses contributes nothing (its reuse
/// comes only from offset differences between multiple references).
///
/// Distinct references with different access matrices each contribute their
/// own kernels; duplicates are removed.
pub fn reuse_vectors(nest: &LoopNest) -> Vec<(ArrayId, Vec<i64>)> {
    let mut out: Vec<(ArrayId, Vec<i64>)> = Vec::new();
    for r in nest.refs() {
        for v in integer_nullspace(&r.matrix) {
            let v = make_lex_positive(&v);
            if !out.iter().any(|(id, w)| *id == r.array && *w == v) {
                out.push((r.array, v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn lex_positive_cases() {
        assert!(lex_positive(&[1]));
        assert!(lex_positive(&[0, 0, 2, -9]));
        assert!(!lex_positive(&[0, -1, 5]));
        assert!(!lex_positive(&[]));
    }

    #[test]
    fn make_positive() {
        assert_eq!(make_lex_positive(&[-3, 2]), vec![3, -2]);
        assert_eq!(make_lex_positive(&[3, -2]), vec![3, -2]);
        assert_eq!(make_lex_positive(&[0, 0]), vec![0, 0]);
    }

    #[test]
    fn example4_reuse() {
        let nest =
            parse("array A[200]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }").unwrap();
        let rv = reuse_vectors(&nest);
        assert_eq!(rv.len(), 1);
        assert_eq!(rv[0].1, vec![5, -2]);
    }

    #[test]
    fn example5_reuse() {
        let nest = parse(
            "array A[61][51]\n\
             for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        )
        .unwrap();
        let rv = reuse_vectors(&nest);
        assert_eq!(rv.len(), 1);
        // Paper's reuse vector (1, 3, 3) up to component signs: the kernel
        // of [[3,0,1],[0,1,1]] is spanned by (1, 3, -3).
        assert_eq!(rv[0].1, vec![1, 3, -3]);
    }

    #[test]
    fn full_rank_access_has_no_kernel_reuse() {
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j]; } }")
                .unwrap();
        assert!(reuse_vectors(&nest).is_empty());
    }

    #[test]
    fn duplicate_kernels_deduplicated() {
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        let rv = reuse_vectors(&nest);
        assert_eq!(rv.len(), 1);
        assert_eq!(rv[0].1, vec![5, -2]);
    }
}
