//! Grouping references into uniformly generated classes (§2.3).

use loopmem_ir::{AccessKind, ArrayId, LoopNest};
use loopmem_linalg::IMat;

/// Position of a reference inside a nest: `(statement index, ref index)`.
pub type RefPos = (usize, usize);

/// A maximal set of references to one array sharing an access matrix —
/// the paper's *uniformly generated* class. All exact estimation formulas
/// operate per group.
#[derive(Clone, Debug)]
pub struct UniformGroup {
    /// The referenced array.
    pub array: ArrayId,
    /// The shared access matrix.
    pub matrix: IMat,
    /// Members: position, offset vector, and access kind.
    pub members: Vec<(RefPos, Vec<i64>, AccessKind)>,
}

impl UniformGroup {
    /// Number of references `r` in the group.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the group has no members (never produced by
    /// [`uniform_groups`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Distinct offset vectors of the group.
    pub fn offsets(&self) -> Vec<&[i64]> {
        self.members.iter().map(|(_, o, _)| o.as_slice()).collect()
    }

    /// `true` when any member writes.
    pub fn has_write(&self) -> bool {
        self.members.iter().any(|(_, _, k)| *k == AccessKind::Write)
    }
}

/// Partitions every reference of the nest into uniformly generated groups,
/// in first-appearance order.
pub fn uniform_groups(nest: &LoopNest) -> Vec<UniformGroup> {
    let mut groups: Vec<UniformGroup> = Vec::new();
    for (si, stmt) in nest.statements().iter().enumerate() {
        for (ri, r) in stmt.refs().iter().enumerate() {
            let member = ((si, ri), r.offset.clone(), r.kind);
            match groups
                .iter_mut()
                .find(|g| g.array == r.array && g.matrix == r.matrix)
            {
                Some(g) => g.members.push(member),
                None => groups.push(UniformGroup {
                    array: r.array,
                    matrix: r.matrix.clone(),
                    members: vec![member],
                }),
            }
        }
    }
    groups
}

/// `true` when every pair of references to the same array shares one access
/// matrix — the hypothesis of the paper's exact formulas. Example 6
/// (`A[3i+7j-10]` vs `A[4i-3j+60]`) returns `false`.
pub fn is_uniformly_generated(nest: &LoopNest) -> bool {
    let groups = uniform_groups(nest);
    for (i, a) in groups.iter().enumerate() {
        for b in &groups[i + 1..] {
            if a.array == b.array {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn example3_single_group_of_four() {
        let nest = parse(
            "array A[11][11]\n\
             for i = 1 to 10 { for j = 1 to 10 {\n\
               A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1];\n\
             } }",
        )
        .unwrap();
        let gs = uniform_groups(&nest);
        assert_eq!(gs.len(), 1);
        assert_eq!(gs[0].len(), 4);
        assert!(gs[0].has_write());
        assert!(is_uniformly_generated(&nest));
    }

    #[test]
    fn example6_two_groups_same_array() {
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let gs = uniform_groups(&nest);
        assert_eq!(gs.len(), 2);
        assert!(!is_uniformly_generated(&nest));
    }

    #[test]
    fn different_arrays_do_not_collide() {
        let nest = parse(
            "array X[100]\narray Y[100]\n\
             for i = 1 to 10 { for j = 1 to 10 {\n\
               X[2i + 3j + 2] = Y[i + j];\n\
               Y[i + j + 1] = X[2i + 3j + 3];\n\
             } }",
        )
        .unwrap();
        // §2.3's example loop: X's two refs form one group, Y's two another.
        let gs = uniform_groups(&nest);
        assert_eq!(gs.len(), 2);
        assert!(gs.iter().all(|g| g.len() == 2));
        assert!(is_uniformly_generated(&nest));
    }
}
