#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Data-dependence and reuse analysis for affine loop nests.
//!
//! This crate computes the paper's central abstraction (§2.1): *dependence
//! distance vectors* between uniformly generated references, *reuse vectors*
//! from rank-deficient access matrices, and the legality predicates that
//! gate loop transformations:
//!
//! * [`analyze`] — the full dependence set of a nest (flow / anti / output /
//!   input, with distances and levels);
//! * [`reuse_vectors`] — primitive null-space reuse directions (§3.2);
//! * [`legality`] — lexicographic legality `T·δ ≻ 0` and the stricter
//!   tiling legality `T·δ ≥ 0` of §4 (full permutability, Irigoin–Triolet);
//! * [`gcd_test`] — the classic may-alias test for non-uniformly generated
//!   pairs, where exact distances do not exist (§3.2, Example 6).
//!
//! # Example
//!
//! Example 8's dependence set:
//!
//! ```
//! let nest = loopmem_ir::parse(r#"
//!     array X[200]
//!     for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }
//! "#).unwrap();
//! let deps = loopmem_dep::analyze(&nest);
//! let mut distances: Vec<Vec<i64>> =
//!     deps.iter().map(|d| d.distance.clone()).collect();
//! distances.sort();
//! distances.dedup();
//! // The paper's three direct dependences (§4): flow (3,-2),
//! // anti (2,0), output (5,-2).
//! assert!(distances.contains(&vec![3, -2]));
//! assert!(distances.contains(&vec![2, 0]));
//! assert!(distances.contains(&vec![5, -2]));
//! ```

pub mod analysis;
pub mod cone;
pub mod direction;
pub mod gcd_test;
pub mod legality;
pub mod uniform;
pub mod vectors;

pub use analysis::{analyze, DepKind, Dependence, DependenceSet, RefIdx};
pub use cone::{constraining_distances, tileable_row_rank, MAX_CONE_DEPTH};
pub use direction::{direction_vector, Direction, DirectionVector};
pub use legality::{is_legal, is_tileable, row_tileable};
pub use uniform::{uniform_groups, UniformGroup};
pub use vectors::{level, lex_positive, reuse_vectors};
