//! The classic GCD may-alias test for non-uniformly generated pairs.
//!
//! When two references to the same array have different access matrices
//! (Example 6), no constant distance vector exists; the paper falls back to
//! value-range bounding. The GCD test answers the prerequisite question:
//! can the two references touch the same element at all?

use loopmem_ir::ArrayRef;
use loopmem_linalg::gcd::gcd_i64;

/// `true` when references `a` (at iteration `I`) and `b` (at iteration `J`)
/// *may* access a common element: for every dimension, the Diophantine
/// equation `a_row·I − b_row·J = c_b − c_a` passes the GCD divisibility
/// test. A `false` answer proves independence; `true` is conservative (the
/// test ignores loop bounds).
///
/// # Panics
///
/// Panics if the references have different ranks or depths.
pub fn may_alias(a: &ArrayRef, b: &ArrayRef) -> bool {
    assert_eq!(a.rank(), b.rank(), "rank mismatch");
    assert_eq!(a.depth(), b.depth(), "depth mismatch");
    if a.array != b.array {
        return false;
    }
    for dim in 0..a.rank() {
        let mut g = 0i64;
        for &c in a.matrix.row(dim) {
            g = gcd_i64(g, c);
        }
        for &c in b.matrix.row(dim) {
            g = gcd_i64(g, c);
        }
        let rhs = b.offset[dim] - a.offset[dim];
        if g == 0 {
            if rhs != 0 {
                return false; // constant subscripts that differ
            }
        } else if rhs % g != 0 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn example6_may_alias() {
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        assert!(may_alias(refs[0], refs[1]));
    }

    #[test]
    fn parity_split_proves_independence() {
        // A[2i] vs A[2j + 1]: gcd(2,2) = 2 does not divide 1.
        let nest =
            parse("array A[100]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i] = A[2j + 1]; } }")
                .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        assert!(!may_alias(refs[0], refs[1]));
    }

    #[test]
    fn different_arrays_never_alias() {
        let nest = parse(
            "array A[100]\narray B[100]\n\
             for i = 1 to 10 { for j = 1 to 10 { A[i] = B[j]; } }",
        )
        .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        assert!(!may_alias(refs[0], refs[1]));
    }

    #[test]
    fn constant_dimension_mismatch_is_independent() {
        // A[i][1] vs A[j][2]: second dimension constants differ, no
        // variables involved.
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][1] = A[j][2]; } }")
                .unwrap();
        let refs: Vec<_> = nest.refs().collect();
        assert!(!may_alias(refs[0], refs[1]));
    }
}
