//! Dependence-cone queries for static transform-feasibility checks.
//!
//! §4.2 searches for a unimodular `T` whose rows all satisfy the tiling
//! condition `row · δ ≥ 0` against every legality-constraining dependence
//! distance `δ`. Before spending any search effort, a static analyzer can
//! ask a cheaper structural question: *within a small coefficient box, how
//! many linearly independent tileable rows exist at all?* If that rank is
//! below the nest depth, no fully-permutable (tileable) transformation can
//! be assembled from rows in the searched family, and MWS minimization is
//! stuck at (at best) lexicographic-only transforms — the analyzer's
//! `no-legal-transform` lint. The branch-and-bound search consumes the
//! same fact as a certificate: a sub-depth cone rank prunes the tileable
//! search tree up front, reported through `BnbResult::cone_pruned`
//! (see DESIGN.md §11).

use crate::analysis::DependenceSet;
use crate::legality::row_tileable;
use loopmem_linalg::IMat;

/// Maximum nest depth for which [`tileable_row_rank`] enumerates the
/// coefficient box; deeper nests return `None` (query declined, not a
/// verdict) to keep the pass cheap and total.
pub const MAX_CONE_DEPTH: usize = 4;

/// The deduplicated, sorted set of legality-constraining dependence
/// distances (flow/anti/output; input dependences never constrain).
pub fn constraining_distances(deps: &DependenceSet) -> Vec<Vec<i64>> {
    let mut out: Vec<Vec<i64>> = deps
        .iter()
        .filter(|d| d.kind.constrains_legality())
        .map(|d| d.distance.clone())
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Rank of the set of tileable rows within the coefficient box
/// `[-bound, bound]^n`, or `None` when `n` is 0, exceeds
/// [`MAX_CONE_DEPTH`], or `bound < 1` (query declined).
///
/// A returned rank `< n` proves that no full-rank fully-permutable
/// transformation exists with all coefficients in the box: every candidate
/// row violating `row · δ ≥ 0` for some constraining `δ` is excluded, and
/// the survivors span a proper subspace. A rank of `n` means such rows
/// exist (though a *unimodular* completion is not guaranteed by this test
/// alone).
pub fn tileable_row_rank(deps: &DependenceSet, n: usize, bound: i64) -> Option<usize> {
    tileable_row_basis(deps, n, bound).map(|b| b.len())
}

/// The linearly independent tileable rows behind [`tileable_row_rank`]'s
/// verdict: scans the coefficient box `[-bound, bound]^n` in a fixed
/// order and greedily collects rows that satisfy `row · δ ≥ 0` for every
/// constraining distance `δ` *and* extend the rank, stopping as soon as
/// the rank reaches `n`. Returns `None` exactly when
/// [`tileable_row_rank`] declines the query.
///
/// A basis of length `r < n` certifies that *every* tileable row in the
/// box lies in the `r`-dimensional span of the returned rows: when a
/// tileable row was scanned, the basis so far was a subset of the final
/// basis, so a row independent of the final basis would have been
/// independent of that subset too — and been collected. For `r == 1`,
/// normalizing the single basis vector by its gcd makes it primitive,
/// and the tileable rows in the box are exactly its integer multiples —
/// the certificate the §4.2 branch-and-bound search uses to discard
/// whole candidate boxes off that line.
pub fn tileable_row_basis(deps: &DependenceSet, n: usize, bound: i64) -> Option<Vec<Vec<i64>>> {
    if n == 0 || n > MAX_CONE_DEPTH || bound < 1 {
        return None;
    }
    let width = (2 * bound + 1) as usize;
    let total = width.checked_pow(n as u32)?;
    let mut basis: Vec<Vec<i64>> = Vec::with_capacity(n);
    let mut row = vec![-bound; n];
    for idx in 0..total {
        // Decode idx into the box (mixed-radix counter).
        let mut rem = idx;
        for slot in row.iter_mut() {
            *slot = (rem % width) as i64 - bound;
            rem /= width;
        }
        if row.iter().all(|&x| x == 0) || !row_tileable(&row, deps) {
            continue;
        }
        let mut candidate = basis.clone();
        candidate.push(row.clone());
        if IMat::from_rows(&candidate).rank() == candidate.len() {
            basis = candidate;
            if basis.len() == n {
                return Some(basis);
            }
        }
    }
    Some(basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use loopmem_ir::parse;

    #[test]
    fn example8_cone_admits_full_rank() {
        // §4.2: rows (2,3) and (1,1) are both tileable, so the cone admits
        // a rank-2 tileable family (and indeed a unimodular T exists).
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        assert_eq!(tileable_row_rank(&deps, 2, 2), Some(2));
        let d = constraining_distances(&deps);
        assert!(d.contains(&vec![3, -2]), "{d:?}");
        assert!(d.contains(&vec![2, 0]));
        assert!(d.contains(&vec![5, -2]));
    }

    #[test]
    fn opposed_skews_collapse_the_cone() {
        // Distances (1,-3) and (1,3): a tileable row needs r1 >= 3|r2|,
        // so inside [-2,2]^2 only multiples of (1,0) survive — rank 1.
        let nest = parse(
            "array A[100][100]\n\
             for i = 2 to 99 {\n\
               for j = 4 to 97 {\n\
                 A[i][j] = A[i-1][j+3] + A[i-1][j-3];\n\
               }\n\
             }",
        )
        .unwrap();
        let deps = analyze(&nest);
        assert_eq!(tileable_row_rank(&deps, 2, 2), Some(1));
    }

    #[test]
    fn rank1_basis_spans_all_tileable_rows_in_the_box() {
        let nest = parse(
            "array A[100][100]\n\
             for i = 2 to 99 {\n\
               for j = 4 to 97 {\n\
                 A[i][j] = A[i-1][j+3] + A[i-1][j-3];\n\
               }\n\
             }",
        )
        .unwrap();
        let deps = analyze(&nest);
        let basis = tileable_row_basis(&deps, 2, 2).unwrap();
        assert_eq!(basis.len(), 1);
        // The certificate's promise: every tileable row in the box is
        // collinear with the single basis row.
        for a in -2i64..=2 {
            for b in -2i64..=2 {
                if (a, b) == (0, 0) || !row_tileable(&[a, b], &deps) {
                    continue;
                }
                assert_eq!(
                    a * basis[0][1],
                    b * basis[0][0],
                    "tileable row ({a},{b}) off the certified line {basis:?}"
                );
            }
        }
    }

    #[test]
    fn no_dependences_means_every_row_is_tileable() {
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j]; } }").unwrap();
        let deps = analyze(&nest);
        // Only an input self-dependence at distance 0 (if any); nothing
        // constrains, so the whole box survives.
        assert_eq!(tileable_row_rank(&deps, 2, 1), Some(2));
        assert!(constraining_distances(&deps).is_empty());
    }

    #[test]
    fn declines_out_of_family_queries() {
        let nest = parse("array A[10]\nfor i = 1 to 10 { A[i]; }").unwrap();
        let deps = analyze(&nest);
        assert_eq!(tileable_row_rank(&deps, 0, 2), None);
        assert_eq!(tileable_row_rank(&deps, 5, 2), None);
        assert_eq!(tileable_row_rank(&deps, 1, 0), None);
    }
}
