//! Transformation legality predicates (§2.1, §4.2).

use crate::analysis::DependenceSet;
use crate::vectors::lex_positive;
use loopmem_linalg::IMat;

/// `true` when `t` is a legal transformation for the dependence set: every
/// legality-constraining distance `δ` maps to a lexicographically positive
/// `T·δ` (§2.1). Input (read-read) dependences never constrain legality.
///
/// # Panics
///
/// Panics if `t` is not square or its size differs from the distances.
pub fn is_legal(t: &IMat, deps: &DependenceSet) -> bool {
    assert_eq!(t.nrows(), t.ncols(), "transformations are square");
    deps.iter()
        .filter(|d| d.kind.constrains_legality())
        .all(|d| lex_positive(&t.mul_vec(&d.distance)))
}

/// `true` when `t` additionally leaves the nest *tileable*: every
/// legality-constraining distance maps to a component-wise non-negative
/// vector (full permutability, §4.2's `a·d₁ + b·d₂ ≥ 0` conditions after
/// Irigoin–Triolet). Tiling legality implies lexicographic legality for
/// unimodular `t` (a non-negative non-zero vector is lex-positive, and
/// `T·δ ≠ 0` because `T` is invertible and `δ ≠ 0`).
pub fn is_tileable(t: &IMat, deps: &DependenceSet) -> bool {
    assert_eq!(t.nrows(), t.ncols(), "transformations are square");
    deps.iter()
        .filter(|d| d.kind.constrains_legality())
        .all(|d| t.mul_vec(&d.distance).iter().all(|&x| x >= 0))
}

/// Tiling legality for a single row of a prospective transformation:
/// `row · δ ≥ 0` for every constraining distance. The §4.2 optimizer uses
/// this to prune `(a, b)` candidates before completing them to a full
/// matrix.
pub fn row_tileable(row: &[i64], deps: &DependenceSet) -> bool {
    deps.iter()
        .filter(|d| d.kind.constrains_legality())
        .all(|d| {
            row.iter()
                .zip(&d.distance)
                .map(|(&r, &x)| (r as i128) * (x as i128))
                .sum::<i128>()
                >= 0
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use loopmem_ir::parse;

    fn example8() -> DependenceSet {
        analyze(
            &parse(
                "array X[200]\n\
                 for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
            )
            .unwrap(),
        )
    }

    #[test]
    fn identity_is_legal_and_tileable_for_example8() {
        let deps = example8();
        let id = IMat::identity(2);
        assert!(is_legal(&id, &deps));
        // Distances (3,-2) and (5,-2) have negative second components, so
        // the identity is NOT tileable (skewing would be needed).
        assert!(!is_tileable(&id, &deps));
    }

    #[test]
    fn paper_4_2_transformation_is_tileable() {
        // §4.2's optimum has first row (2,3). The paper prints the
        // completion "c=1, d=2", but that row violates its own constraint
        // 3c - 2d >= 0 (it maps the flow distance (3,-2) to (0,-1), which
        // is not even lexicographically legal). The consistent completion
        // is (c,d) = (1,1): it satisfies all six constraints and
        // reproduces the paper's "actual minimum MWS = 21".
        let deps = example8();
        let good = IMat::from_rows(&[vec![2, 3], vec![1, 1]]);
        assert!(is_tileable(&good, &deps));
        assert!(is_legal(&good, &deps));
        let printed = IMat::from_rows(&[vec![2, 3], vec![1, 2]]);
        assert!(!is_legal(&printed, &deps));
    }

    #[test]
    fn li_pingali_rows_are_illegal_for_example8() {
        // §4: any T with first row (2,5) violates (3,-2); first row
        // (-2,-5) (the paper's "(−2,5)" with the sign convention of its
        // inner product) violates (2,0).
        let deps = example8();
        assert!(!row_tileable(&[2, 5], &deps)); // (2,5)·(3,-2) = -4 < 0
        assert!(!row_tileable(&[-2, -5], &deps)); // ·(2,0) = -4 < 0
        assert!(row_tileable(&[2, 3], &deps));
        assert!(row_tileable(&[1, 1], &deps));
        assert!(!row_tileable(&[1, 2], &deps)); // (1,2)·(3,-2) = -1
        assert!(row_tileable(&[1, 0], &deps));
    }

    #[test]
    fn input_dependences_do_not_constrain() {
        // Example 7: only an input dependence (3,2); loop reversal of both
        // axes is still "legal" since no flow/anti/output exists.
        let nest =
            parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap();
        let deps = analyze(&nest);
        let reversal = IMat::from_rows(&[vec![-1, 0], vec![0, -1]]);
        assert!(is_legal(&reversal, &deps));
        assert!(is_tileable(&reversal, &deps));
    }

    #[test]
    fn interchange_legality_depends_on_distances() {
        // Dependence (1, -2): interchange maps it to (-2, 1), lex negative.
        let nest = parse(
            "array A[100][100]\n\
             for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        let interchange = IMat::from_rows(&[vec![0, 1], vec![1, 0]]);
        assert!(!is_legal(&interchange, &deps));
        assert!(is_legal(&IMat::identity(2), &deps));
    }
}
