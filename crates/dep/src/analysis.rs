//! Dependence-set computation for uniformly generated references.

use crate::uniform::{uniform_groups, RefPos};
use crate::vectors::{level, lex_positive};
use loopmem_ir::{AccessKind, ArrayId, LoopNest};
use loopmem_linalg::hnf::solve_diophantine;
use loopmem_poly::Polyhedron;
use std::fmt;

/// Position of a reference inside a nest: `(statement index, ref index)`.
pub type RefIdx = RefPos;

/// Classification of a dependence by its endpoint kinds (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Write before read (true dependence).
    Flow,
    /// Read before write.
    Anti,
    /// Write before write.
    Output,
    /// Read before read (pure reuse; does not constrain legality).
    Input,
}

impl DepKind {
    fn classify(src: AccessKind, dst: AccessKind) -> DepKind {
        match (src, dst) {
            (AccessKind::Write, AccessKind::Read) => DepKind::Flow,
            (AccessKind::Read, AccessKind::Write) => DepKind::Anti,
            (AccessKind::Write, AccessKind::Write) => DepKind::Output,
            (AccessKind::Read, AccessKind::Read) => DepKind::Input,
        }
    }

    /// `true` for the kinds that constrain transformation legality
    /// (everything except [`DepKind::Input`]).
    pub fn constrains_legality(&self) -> bool {
        !matches!(self, DepKind::Input)
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Input => "input",
        };
        f.write_str(s)
    }
}

/// One dependence: the source reference executes at iteration `I`, the
/// destination at `I + distance`, and both touch the same element of
/// `array`. `distance` is lexicographically positive and non-zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dependence {
    /// Array both endpoints reference.
    pub array: ArrayId,
    /// `(statement, ref)` of the earlier access.
    pub src: RefIdx,
    /// `(statement, ref)` of the later access.
    pub dst: RefIdx,
    /// The distance vector `J − I`.
    pub distance: Vec<i64>,
    /// Flow / anti / output / input.
    pub kind: DepKind,
}

impl Dependence {
    /// 1-based level: index of the first non-zero distance component.
    pub fn level(&self) -> usize {
        level(&self.distance).expect("dependence distances are non-zero")
    }
}

/// The dependences of a nest, plus bookkeeping about what could not be
/// represented exactly.
#[derive(Clone, Debug, Default)]
pub struct DependenceSet {
    deps: Vec<Dependence>,
    nonuniform_pairs: usize,
}

impl DependenceSet {
    /// Iterator over the dependences.
    pub fn iter(&self) -> impl Iterator<Item = &Dependence> {
        self.deps.iter()
    }

    /// Number of dependences.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// `true` when no dependences were found.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Deduplicated distance vectors, optionally restricted to
    /// legality-constraining kinds.
    pub fn distances(&self, legality_only: bool) -> Vec<Vec<i64>> {
        let mut out: Vec<Vec<i64>> = Vec::new();
        for d in &self.deps {
            if legality_only && !d.kind.constrains_legality() {
                continue;
            }
            if !out.contains(&d.distance) {
                out.push(d.distance.clone());
            }
        }
        out
    }

    /// Number of reference pairs sharing an array but not an access matrix;
    /// such pairs have direction (not distance) dependences and are handled
    /// by the bounding path (`gcd_test`, §3.2 Example 6) instead.
    pub fn nonuniform_pair_count(&self) -> usize {
        self.nonuniform_pairs
    }
}

impl<'a> IntoIterator for &'a DependenceSet {
    type Item = &'a Dependence;
    type IntoIter = std::slice::Iter<'a, Dependence>;
    fn into_iter(self) -> Self::IntoIter {
        self.deps.iter()
    }
}

/// Per-loop spans `hi − lo` (the largest magnitude a distance component can
/// have). Rectangular nests read them off the bounds; transformed nests
/// fall back to the polyhedral projection.
fn loop_spans(nest: &LoopNest) -> Vec<i64> {
    if let Some(ranges) = nest.rectangular_ranges() {
        return ranges.iter().map(|&(lo, hi)| (hi - lo).max(0)).collect();
    }
    let p = Polyhedron::from_nest(nest);
    (0..nest.depth())
        .map(|k| p.var_range(k).map_or(0, |(lo, hi)| (hi - lo).max(0)))
        .collect()
}

/// Computes the dependence set of a nest.
///
/// For every ordered pair of uniformly generated references (including a
/// reference with itself), the Diophantine system `A·δ = c_src − c_dst` is
/// solved exactly:
///
/// * a zero-dimensional solution family records its single in-range,
///   lexicographically positive distance (full-rank access matrices);
/// * a one-dimensional family records the lexicographically smallest
///   positive in-range member (the paper's "dependence vector of
///   interest", §4.2) — the family's direction itself is recorded through
///   the self-pair, whose solutions are the kernel multiples;
/// * higher-dimensional families enumerate all in-range positive members
///   (bounded; only tiny coefficient-array accesses produce them).
///
/// Pairs of references to the same array with *different* access matrices
/// (non-uniformly generated) are counted in
/// [`DependenceSet::nonuniform_pair_count`] and otherwise skipped, exactly
/// as the paper's framework does.
pub fn analyze(nest: &LoopNest) -> DependenceSet {
    // An empty iteration space executes nothing and carries no
    // dependences. Bail out before the distance enumeration: its span
    // windows assume at least one executed iteration, and a constant
    // subscript inside an empty nest would otherwise send the
    // multi-dimensional family walk over the full (never-executed)
    // inner ranges.
    if nest.var_ranges().is_none() {
        return DependenceSet::default();
    }
    let spans = loop_spans(nest);
    let groups = uniform_groups(nest);
    let mut set = DependenceSet::default();

    // Count non-uniform same-array pairs across groups.
    for (i, a) in groups.iter().enumerate() {
        for b in &groups[i + 1..] {
            if a.array == b.array {
                set.nonuniform_pairs += a.len() * b.len();
            }
        }
    }

    for g in &groups {
        for (src_pos, src_off, src_kind) in &g.members {
            for (dst_pos, dst_off, dst_kind) in &g.members {
                let self_pair = src_pos == dst_pos;
                // A·δ = c_src − c_dst.
                let rhs: Vec<i64> = src_off.iter().zip(dst_off).map(|(&a, &b)| a - b).collect();
                let Some(sol) = solve_diophantine(&g.matrix, &rhs) else {
                    continue;
                };
                let kind = DepKind::classify(*src_kind, *dst_kind);
                for distance in positive_members(&sol.particular, &sol.kernel, &spans, self_pair) {
                    let dep = Dependence {
                        array: g.array,
                        src: *src_pos,
                        dst: *dst_pos,
                        distance,
                        kind,
                    };
                    if !set.deps.contains(&dep) {
                        set.deps.push(dep);
                    }
                }
            }
        }
    }
    set
}

/// In-range, lexicographically positive members of the solution family.
///
/// * kernel dimension 0 → the particular solution (if positive/in range);
/// * dimension 1 → the lex-min positive member only (plus, for self
///   pairs, the primitive kernel direction is that very member);
/// * dimension ≥ 2 → bounded exhaustive enumeration.
fn positive_members(
    particular: &[i64],
    kernel: &[Vec<i64>],
    spans: &[i64],
    self_pair: bool,
) -> Vec<Vec<i64>> {
    let in_range = |v: &[i64]| v.iter().zip(spans).all(|(&x, &s)| x.abs() <= s);
    match kernel.len() {
        0 => {
            if !self_pair && lex_positive(particular) && in_range(particular) {
                vec![particular.to_vec()]
            } else {
                Vec::new()
            }
        }
        1 => {
            let k = &kernel[0];
            // Walk t over the feasible window and take the lex-min
            // positive in-range member. The window is bounded by the first
            // component with a non-zero kernel entry.
            let (mut lo, mut hi) = (i64::MIN, i64::MAX);
            for ((&kj, &s), &pj) in k.iter().zip(spans).zip(particular) {
                if kj == 0 {
                    continue;
                }
                // |pj + t*kj| <= s, i.e. -s-pj <= t*kj <= s-pj.
                let (a, b) = if kj > 0 {
                    (
                        loopmem_linalg::gcd::div_ceil(-s - pj, kj),
                        loopmem_linalg::gcd::div_floor(s - pj, kj),
                    )
                } else {
                    (
                        loopmem_linalg::gcd::div_ceil(s - pj, kj),
                        loopmem_linalg::gcd::div_floor(-s - pj, kj),
                    )
                };
                lo = lo.max(a);
                hi = hi.min(b);
            }
            let mut best: Option<Vec<i64>> = None;
            let mut t = lo;
            while t <= hi {
                let cand: Vec<i64> = particular
                    .iter()
                    .zip(k)
                    .map(|(&p, &kk)| p + t * kk)
                    .collect();
                if lex_positive(&cand) && in_range(&cand) {
                    let better = match &best {
                        None => true,
                        Some(b) => cand < *b,
                    };
                    if better {
                        best = Some(cand);
                    }
                }
                t += 1;
                if hi - lo > 1_000_000 {
                    break; // degenerate window; spans bound real nests
                }
            }
            best.into_iter().collect()
        }
        _ => {
            // Multi-dimensional family: bounded exhaustive enumeration.
            let mut out = Vec::new();
            let bound: i64 = spans.iter().copied().max().unwrap_or(0);
            let mut coeffs = vec![0i64; kernel.len()];
            enumerate_multi(particular, kernel, spans, bound, 0, &mut coeffs, &mut out);
            out.retain(|v| lex_positive(v));
            out.sort();
            out.dedup();
            out
        }
    }
}

fn enumerate_multi(
    particular: &[i64],
    kernel: &[Vec<i64>],
    spans: &[i64],
    bound: i64,
    depth: usize,
    coeffs: &mut Vec<i64>,
    out: &mut Vec<Vec<i64>>,
) {
    const CAP: usize = 1 << 17;
    if out.len() >= CAP {
        return;
    }
    if depth == kernel.len() {
        let v: Vec<i64> = (0..particular.len())
            .map(|j| {
                particular[j]
                    + kernel
                        .iter()
                        .zip(coeffs.iter())
                        .map(|(k, &t)| t * k[j])
                        .sum::<i64>()
            })
            .collect();
        if v.iter().zip(spans).all(|(&x, &s)| x.abs() <= s) {
            out.push(v);
        }
        return;
    }
    for t in -bound..=bound {
        coeffs[depth] = t;
        enumerate_multi(particular, kernel, spans, bound, depth + 1, coeffs, out);
        if out.len() >= CAP {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn empty_nest_has_no_dependences() {
        // Regression: a constant subscript inside an empty nest used to
        // send the multi-dimensional family enumeration over the full
        // (never-executed) inner range — an effectively unbounded walk.
        let nest = parse(
            "array X[10]\n\
             for i = 5 to 4 { for j = 1 to 1000000 { X[1]; } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        assert_eq!(deps.len(), 0);
        assert_eq!(deps.nonuniform_pair_count(), 0);
    }

    #[test]
    fn example2_single_flow_dependence() {
        let nest = parse(
            "array A[100][100]\n\
             for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        assert_eq!(deps.len(), 1);
        let d = deps.iter().next().unwrap();
        assert_eq!(d.distance, vec![1, -2]);
        assert_eq!(d.kind, DepKind::Flow);
        assert_eq!(d.level(), 1);
    }

    #[test]
    fn example3_dependences_from_sink() {
        let nest = parse(
            "array A[11][11]\n\
             for i = 1 to 10 { for j = 1 to 10 {\n\
               A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1];\n\
             } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        let distances = deps.distances(false);
        // Paper: (1,0), (0,1), (1,1) from S1 to the reads; the read-read
        // differences (0,1)-(1,0) etc. also appear as input deps.
        for want in [vec![1, 0], vec![0, 1], vec![1, 1]] {
            assert!(
                distances.contains(&want),
                "missing {want:?} in {distances:?}"
            );
        }
        // All flow distances are exactly those three.
        let flows: Vec<_> = deps
            .iter()
            .filter(|d| d.kind == DepKind::Flow)
            .map(|d| d.distance.clone())
            .collect();
        assert_eq!(flows.len(), 3);
    }

    #[test]
    fn example7_kernel_dependence() {
        let nest =
            parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap();
        let deps = analyze(&nest);
        assert_eq!(deps.len(), 1);
        let d = deps.iter().next().unwrap();
        assert_eq!(d.distance, vec![3, 2]);
        assert_eq!(d.kind, DepKind::Input);
        assert!(!d.kind.constrains_legality());
    }

    #[test]
    fn example8_three_direct_dependences() {
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        let legality = deps.distances(true);
        assert!(
            legality.contains(&vec![3, -2]),
            "flow missing: {legality:?}"
        );
        assert!(legality.contains(&vec![2, 0]), "anti missing: {legality:?}");
        assert!(
            legality.contains(&vec![5, -2]),
            "output missing: {legality:?}"
        );
        assert_eq!(legality.len(), 3);
        // Kinds match the paper's classification.
        for d in deps.iter() {
            match d.distance.as_slice() {
                [3, -2] => assert_eq!(d.kind, DepKind::Flow),
                [2, 0] => assert_eq!(d.kind, DepKind::Anti),
                [5, -2] => assert!(
                    d.kind == DepKind::Output || d.kind == DepKind::Input,
                    "kernel self-distance is output (write) or input (read)"
                ),
                _ => {}
            }
        }
    }

    #[test]
    fn nonuniform_pairs_are_counted_not_analyzed() {
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        assert_eq!(deps.nonuniform_pair_count(), 1);
    }

    #[test]
    fn out_of_range_distance_excluded() {
        // A[i][j] vs A[i-50][j]: distance (50, 0) exceeds the 10-iteration
        // span, so no dependence exists inside the nest.
        let nest = parse(
            "array A[100][100]\n\
             for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-50][j]; } }",
        )
        .unwrap();
        assert!(analyze(&nest).is_empty());
    }

    #[test]
    fn no_dependence_when_gcd_fails() {
        // 2·δ = 1 has no integer solution: accesses interleave, never collide.
        let nest =
            parse("array A[100]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i] = A[2i + 1]; } }")
                .unwrap();
        let deps = analyze(&nest);
        // Only self-reuse along j (kernel (0,1)) appears.
        assert!(deps.iter().all(|d| d.distance == vec![0, 1]));
    }

    #[test]
    fn multi_dimensional_kernel_enumerates() {
        // C[k] in a 3-deep nest: kernel dimension 2 over (i, j).
        let nest = parse(
            "array C[4]\n\
             for i = 1 to 3 { for j = 1 to 3 { for k = 1 to 4 { C[k]; } } }",
        )
        .unwrap();
        let deps = analyze(&nest);
        assert!(!deps.is_empty());
        // Every distance annihilates the access row (0,0,1): third
        // component zero; and is lex positive.
        for d in deps.iter() {
            assert_eq!(d.distance[2], 0);
            assert!(lex_positive(&d.distance));
            assert_eq!(d.kind, DepKind::Input);
        }
        // (1, -2, 0) is a genuine in-range member that a cone of basis
        // vectors alone would miss.
        assert!(deps.iter().any(|d| d.distance == vec![1, -2, 0]));
    }
}
