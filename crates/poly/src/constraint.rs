//! Affine constraint systems over iteration vectors.

use loopmem_ir::LoopNest;
use loopmem_linalg::gcd::gcd_slice;
use std::fmt;

/// One affine inequality `coeffs · x + constant ≥ 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Per-variable coefficients.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub constant: i64,
}

impl Constraint {
    /// Creates a constraint `coeffs · x + constant ≥ 0`.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        Constraint { coeffs, constant }
    }

    /// Evaluates the left-hand side at `x`.
    pub fn eval(&self, x: &[i64]) -> i64 {
        assert_eq!(x.len(), self.coeffs.len(), "point arity mismatch");
        let acc: i128 = self
            .coeffs
            .iter()
            .zip(x)
            .map(|(&c, &v)| (c as i128) * (v as i128))
            .sum::<i128>()
            + self.constant as i128;
        acc.try_into().expect("constraint eval overflow")
    }

    /// `true` when `x` satisfies the inequality.
    pub fn satisfied_by(&self, x: &[i64]) -> bool {
        self.eval(x) >= 0
    }

    /// Divides through by the gcd of the coefficients, tightening the
    /// constant with a floor (valid over the integers).
    pub fn normalize(&mut self) {
        let g = gcd_slice(&self.coeffs);
        if g > 1 {
            for c in &mut self.coeffs {
                *c /= g;
            }
            self.constant = loopmem_linalg::gcd::div_floor(self.constant, g);
        }
    }

    /// `true` if no variable appears (the constraint is `constant ≥ 0`).
    pub fn is_trivial(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

impl fmt::Debug for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}·x + {} >= 0", self.coeffs, self.constant)
    }
}

/// A conjunction of affine inequalities: `{x ∈ ℤⁿ : ∀c, c(x) ≥ 0}`.
///
/// Iteration spaces of rectangular and transformed nests are polyhedra; the
/// enumeration and counting routines in this crate are exact on the integer
/// points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polyhedron {
    nvars: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universe polyhedron over `nvars` variables (no constraints).
    pub fn universe(nvars: usize) -> Self {
        Polyhedron {
            nvars,
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The constraint list.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a constraint (normalized and deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if the constraint arity differs from the polyhedron's.
    pub fn add(&mut self, mut c: Constraint) {
        assert_eq!(c.coeffs.len(), self.nvars, "constraint arity mismatch");
        c.normalize();
        if c.is_trivial() && c.constant >= 0 {
            return; // always true
        }
        if !self.constraints.contains(&c) {
            self.constraints.push(c);
        }
    }

    /// Builds the iteration-space polyhedron of a nest.
    ///
    /// Bound pieces with divisor `d` translate exactly: a lower bound
    /// `v ≥ ceil(e/d)` becomes `d·v − e ≥ 0`, an upper bound
    /// `v ≤ floor(e/d)` becomes `e − d·v ≥ 0` (both exact for integer `v`
    /// and positive `d`).
    pub fn from_nest(nest: &LoopNest) -> Self {
        let n = nest.depth();
        let mut p = Polyhedron::universe(n);
        for (k, l) in nest.loops().iter().enumerate() {
            for piece in l.lower.pieces() {
                // d·v_k - e >= 0
                let mut coeffs: Vec<i64> = piece.expr.coeffs().iter().map(|&c| -c).collect();
                coeffs[k] += piece.div;
                p.add(Constraint::new(coeffs, -piece.expr.constant_term()));
            }
            for piece in l.upper.pieces() {
                // e - d·v_k >= 0
                let mut coeffs: Vec<i64> = piece.expr.coeffs().to_vec();
                coeffs[k] -= piece.div;
                p.add(Constraint::new(coeffs, piece.expr.constant_term()));
            }
        }
        p
    }

    /// `true` when `x` satisfies every constraint.
    pub fn contains(&self, x: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(x))
    }

    /// `true` when the constraint system is syntactically infeasible after
    /// eliminating every variable (exact over the rationals; an
    /// integer-empty but rational-nonempty system reports `false`).
    pub fn is_rationally_empty(&self) -> bool {
        let mut p = self.clone();
        for k in (0..self.nvars).rev() {
            p = crate::fm::eliminate(&p, k);
        }
        p.constraints.iter().any(|c| c.constant < 0)
    }

    /// Range `(lo, hi)` of variable `k` over the polyhedron, from the full
    /// projection onto that variable. `None` if unbounded on either side or
    /// rationally empty.
    pub fn var_range(&self, k: usize) -> Option<(i64, i64)> {
        let mut p = self.clone();
        for v in (0..self.nvars).rev() {
            if v != k {
                p = crate::fm::eliminate(&p, v);
            }
        }
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for c in &p.constraints {
            let a = c.coeffs[k];
            if a > 0 {
                // a·v + const >= 0  =>  v >= ceil(-const / a)
                let b = loopmem_linalg::gcd::div_ceil(-c.constant, a);
                lo = Some(lo.map_or(b, |x: i64| x.max(b)));
            } else if a < 0 {
                let b = loopmem_linalg::gcd::div_floor(c.constant, -a);
                hi = Some(hi.map_or(b, |x: i64| x.min(b)));
            } else if c.constant < 0 {
                return None; // infeasible projection
            }
        }
        match (lo, hi) {
            (Some(lo), Some(hi)) if lo <= hi => Some((lo, hi)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    fn box_2d(n1: i64, n2: i64) -> Polyhedron {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], -1)); // i >= 1
        p.add(Constraint::new(vec![-1, 0], n1)); // i <= n1
        p.add(Constraint::new(vec![0, 1], -1));
        p.add(Constraint::new(vec![0, -1], n2));
        p
    }

    #[test]
    fn membership() {
        let p = box_2d(10, 20);
        assert!(p.contains(&[1, 1]));
        assert!(p.contains(&[10, 20]));
        assert!(!p.contains(&[0, 1]));
        assert!(!p.contains(&[11, 1]));
    }

    #[test]
    fn normalization_tightens() {
        // 2i - 3 >= 0  =>  i >= 2 after integer tightening (i - 2 >= 0).
        let mut c = Constraint::new(vec![2], -3);
        c.normalize();
        assert_eq!(c.coeffs, vec![1]);
        assert_eq!(c.constant, -2);
        assert!(c.satisfied_by(&[2]));
        assert!(!c.satisfied_by(&[1]));
    }

    #[test]
    fn trivially_true_constraints_dropped() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::new(vec![0], 5));
        assert!(p.constraints().is_empty());
        p.add(Constraint::new(vec![0], -5));
        assert_eq!(p.constraints().len(), 1);
        assert!(p.is_rationally_empty());
    }

    #[test]
    fn from_nest_matches_manual_box() {
        let nest =
            parse("array A[10][20]\nfor i = 1 to 10 { for j = 1 to 20 { A[i][j]; } }").unwrap();
        let p = Polyhedron::from_nest(&nest);
        for (pt, expect) in [
            ([1, 1], true),
            ([10, 20], true),
            ([0, 5], false),
            ([5, 21], false),
        ] {
            assert_eq!(p.contains(&pt), expect, "{pt:?}");
        }
    }

    #[test]
    fn var_range_of_box() {
        let p = box_2d(10, 20);
        assert_eq!(p.var_range(0), Some((1, 10)));
        assert_eq!(p.var_range(1), Some((1, 20)));
    }

    #[test]
    fn var_range_triangular() {
        // i in 1..=10, j in i..=10: j's full range is 1..=10, i's is 1..=10.
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = i to 10 { A[i][j]; } }").unwrap();
        let p = Polyhedron::from_nest(&nest);
        assert_eq!(p.var_range(0), Some((1, 10)));
        assert_eq!(p.var_range(1), Some((1, 10)));
    }

    #[test]
    fn empty_detection() {
        let mut p = box_2d(10, 10);
        p.add(Constraint::new(vec![1, 1], -25)); // i + j >= 25 impossible
        assert!(p.is_rationally_empty());
        assert!(!box_2d(10, 10).is_rationally_empty());
    }
}
