#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Integer polyhedra for loop-nest analysis.
//!
//! This crate plays the role the paper assigns to the *exact but expensive*
//! counting techniques of Clauss \[3\] and Pugh \[15\]: ground truth for the
//! fast dependence-based estimators of `loopmem-core`. It also provides the
//! Fourier–Motzkin machinery that regenerates loop bounds after a unimodular
//! transformation (§4's code generation step).
//!
//! * [`Constraint`] / [`Polyhedron`] — systems of affine inequalities
//!   `a·x + c ≥ 0` over the iteration vector;
//! * [`fm`] — exact Fourier–Motzkin elimination with redundancy pruning;
//! * [`enumerate`] — lexicographic lattice-point enumeration (holes
//!   introduced by projection are filtered against the original system, so
//!   enumeration is exact);
//! * [`count`] — exact distinct-access counting for whole nests;
//! * [`bounds_gen`] — loop-bound regeneration from a projected polyhedron.
//!
//! # Example
//!
//! Counting the distinct elements of Example 4 (`A[2i+5j+1]`, 20×10):
//!
//! ```
//! let nest = loopmem_ir::parse(r#"
//!     array A[111]
//!     for i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }
//! "#).unwrap();
//! let exact = loopmem_poly::count::distinct_accesses(&nest);
//! assert_eq!(exact[&loopmem_ir::ArrayId(0)], 80); // the paper's A_d
//! ```

pub mod bounds_gen;
pub mod constraint;
pub mod count;
pub mod enumerate;
pub mod fm;

pub use bounds_gen::{regenerate_loops, BoundsGenError};
pub use constraint::{Constraint, Polyhedron};
pub use count::{count_points, distinct_accesses};
pub use enumerate::for_each_point;
