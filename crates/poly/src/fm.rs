//! Fourier–Motzkin elimination.
//!
//! Eliminating variable `k` from `{L: a·x + c ≥ 0, a_k > 0}` (lower bounds)
//! and `{U: b·x + d ≥ 0, b_k < 0}` (upper bounds) produces one combined
//! constraint per (L, U) pair: `a_k·U + (−b_k)·L`. The result is the exact
//! rational shadow; integer holes are handled downstream by re-checking
//! enumerated points against the original system.

use crate::constraint::{Constraint, Polyhedron};

/// Eliminates variable `k`, returning the shadow polyhedron (same arity;
/// the eliminated variable simply no longer appears in any constraint).
///
/// # Panics
///
/// Panics if `k` is out of range.
pub fn eliminate(p: &Polyhedron, k: usize) -> Polyhedron {
    assert!(k < p.nvars(), "variable index out of range");
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    let mut rest = Vec::new();
    for c in p.constraints() {
        match c.coeffs[k].cmp(&0) {
            std::cmp::Ordering::Greater => lowers.push(c.clone()),
            std::cmp::Ordering::Less => uppers.push(c.clone()),
            std::cmp::Ordering::Equal => rest.push(c.clone()),
        }
    }
    let mut out = Polyhedron::universe(p.nvars());
    for c in rest {
        out.add(c);
    }
    for l in &lowers {
        for u in &uppers {
            let a = l.coeffs[k]; // > 0
            let b = -u.coeffs[k]; // > 0
            let coeffs: Vec<i64> = l
                .coeffs
                .iter()
                .zip(&u.coeffs)
                .map(|(&lc, &uc)| combine(b, lc, a, uc))
                .collect();
            let constant = combine(b, l.constant, a, u.constant);
            debug_assert_eq!(coeffs[k], 0);
            out.add(Constraint::new(coeffs, constant));
        }
    }
    out
}

fn combine(b: i64, lc: i64, a: i64, uc: i64) -> i64 {
    let v = (b as i128) * (lc as i128) + (a as i128) * (uc as i128);
    v.try_into().expect("fourier-motzkin overflow")
}

/// Eliminates every variable with index `>= keep`, leaving constraints over
/// the `keep`-variable prefix only. Eliminating innermost-first keeps the
/// intermediate systems small and matches loop-bound generation order.
pub fn project_prefix(p: &Polyhedron, keep: usize) -> Polyhedron {
    let mut out = p.clone();
    for k in (keep..p.nvars()).rev() {
        out = eliminate(&out, k);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> Polyhedron {
        // i in 1..=10, j in i..=10.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], -1));
        p.add(Constraint::new(vec![-1, 0], 10));
        p.add(Constraint::new(vec![-1, 1], 0)); // j >= i
        p.add(Constraint::new(vec![0, -1], 10));
        p
    }

    #[test]
    fn eliminate_inner_of_triangle() {
        let shadow = eliminate(&tri(), 1);
        // Shadow on i: 1 <= i <= 10 (j's existence needs i <= 10, implied).
        assert!(shadow.constraints().iter().all(|c| c.coeffs[1] == 0));
        assert!(shadow.contains(&[1, 999]));
        assert!(shadow.contains(&[10, -5]));
        assert!(!shadow.contains(&[11, 0]));
        assert!(!shadow.contains(&[0, 0]));
    }

    #[test]
    fn shadow_is_projection_for_boxes() {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], -2));
        p.add(Constraint::new(vec![-1, 0], 7));
        p.add(Constraint::new(vec![0, 1], 4));
        p.add(Constraint::new(vec![0, -1], 9));
        let s = eliminate(&p, 0);
        // j constraints survive untouched; i constraints vanish pairwise.
        assert!(s.contains(&[0, 0]));
        assert!(!s.contains(&[0, -5]));
        assert!(!s.contains(&[0, 10]));
    }

    #[test]
    fn skewed_projection() {
        // u = i + j with i,j in 1..=3: u ranges over 2..=6.
        // Variables: (u, i); j = u - i gives 1 <= u - i <= 3, 1 <= i <= 3.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![0, 1], -1));
        p.add(Constraint::new(vec![0, -1], 3));
        p.add(Constraint::new(vec![1, -1], -1));
        p.add(Constraint::new(vec![-1, 1], 3));
        let shadow = project_prefix(&p, 1);
        assert_eq!(shadow.var_range(0), Some((2, 6)));
    }

    #[test]
    fn projection_detects_emptiness() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::new(vec![1], -10)); // x >= 10
        p.add(Constraint::new(vec![-1], 5)); // x <= 5
        let s = eliminate(&p, 0);
        assert!(s
            .constraints()
            .iter()
            .any(|c| c.is_trivial() && c.constant < 0));
    }
}
