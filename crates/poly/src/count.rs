//! Exact counting: lattice points and distinct array accesses.
//!
//! This is the reproduction's stand-in for Clauss \[3\] / Pugh \[15\]:
//! exact answers obtained by enumeration rather than closed-form Ehrhart
//! polynomials. It is deliberately the *slow* path — the paper's point is
//! that its dependence-based estimates match these numbers at a fraction of
//! the cost, which `loopmem-bench`'s criterion benches quantify.

use crate::constraint::Polyhedron;
use crate::enumerate::for_each_point;
use loopmem_ir::{ArrayId, LoopNest};
use std::collections::{HashMap, HashSet};

/// Number of integer points of `p`.
///
/// # Panics
///
/// Panics if `p` is unbounded.
pub fn count_points(p: &Polyhedron) -> u64 {
    let mut n = 0u64;
    for_each_point(p, |_| n += 1);
    n
}

/// Exact number of distinct elements referenced per array over the whole
/// nest, by enumeration of the iteration space.
///
/// Works for both rectangular and transformed (skewed-bound) nests because
/// the iteration polyhedron is built from the actual bounds.
pub fn distinct_accesses(nest: &LoopNest) -> HashMap<ArrayId, u64> {
    let p = Polyhedron::from_nest(nest);
    let mut sets: HashMap<ArrayId, HashSet<Vec<i64>>> = HashMap::new();
    for r in nest.refs() {
        sets.entry(r.array).or_default();
    }
    for_each_point(&p, |pt| {
        for r in nest.refs() {
            sets.get_mut(&r.array)
                .expect("preinitialized")
                .insert(r.index_at(pt));
        }
    });
    sets.into_iter().map(|(k, v)| (k, v.len() as u64)).collect()
}

/// Exact number of distinct elements for a single array.
///
/// # Panics
///
/// Panics if the nest never references `array`.
pub fn distinct_accesses_for(nest: &LoopNest, array: ArrayId) -> u64 {
    *distinct_accesses(nest)
        .get(&array)
        .expect("array is not referenced by the nest")
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn count_box() {
        let nest =
            parse("array A[10][20]\nfor i = 1 to 10 { for j = 1 to 20 { A[i][j]; } }").unwrap();
        assert_eq!(count_points(&Polyhedron::from_nest(&nest)), 200);
    }

    #[test]
    fn example4_exact_count_is_80() {
        // A[2i+5j+1] over 20x10: the paper's formula says A_d = 80 and
        // claims exactness for uniformly generated references.
        let nest =
            parse("array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }").unwrap();
        assert_eq!(distinct_accesses_for(&nest, ArrayId(0)), 80);
    }

    #[test]
    fn example5_exact_count_is_1869() {
        let nest = parse(
            "array A[61][51]\n\
             for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        )
        .unwrap();
        assert_eq!(distinct_accesses_for(&nest, ArrayId(0)), 1869);
    }

    #[test]
    fn example2_exact_count() {
        // A[i][j] and A[i-1][j+2] over N1=10, N2=10:
        // A_d = 2*100 - (10-1)(10-2) = 128.
        let nest = parse(
            "array A[12][12]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
        )
        .unwrap();
        assert_eq!(distinct_accesses_for(&nest, ArrayId(0)), 128);
    }

    #[test]
    fn example3_exact_count_is_121() {
        // Four shifted 10x10 squares: the true union is 11x11 = 121
        // (the paper's formula reports 139; see DESIGN.md).
        let nest = parse(
            "array A[11][11]\n\
             for i = 1 to 10 { for j = 1 to 10 {\n\
               A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1];\n\
             } }",
        )
        .unwrap();
        assert_eq!(distinct_accesses_for(&nest, ArrayId(0)), 121);
    }

    #[test]
    fn example6_exact_count() {
        // Non-uniformly generated references. The paper reports the actual
        // count as 181; independent brute force gives 182 (the paper is off
        // by one — see EXPERIMENTS.md). Its bounds 179 <= actual <= 191
        // hold either way.
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let actual = distinct_accesses_for(&nest, ArrayId(0));
        assert_eq!(actual, 182);
        assert!((179..=191).contains(&actual));
    }

    #[test]
    fn multiple_arrays_counted_separately() {
        let nest = parse(
            "array A[10][10]\narray B[10]\n\
             for i = 1 to 10 { for j = 1 to 10 { A[i][j] = B[i]; } }",
        )
        .unwrap();
        let counts = distinct_accesses(&nest);
        assert_eq!(counts[&ArrayId(0)], 100);
        assert_eq!(counts[&ArrayId(1)], 10);
    }
}
