//! Exact lexicographic enumeration of the integer points of a polyhedron.
//!
//! Enumeration walks variables outermost-first using per-level bounds
//! derived from the Fourier–Motzkin projections, then re-checks every leaf
//! against the *original* constraint system. Projection over-approximates
//! integer shadows, so the re-check is what makes enumeration exact: a hole
//! merely wastes a bounds evaluation.

use crate::constraint::Polyhedron;
use crate::fm::project_prefix;
use loopmem_linalg::gcd::{div_ceil, div_floor};

/// Calls `f` for every integer point of `p`, in lexicographic order.
///
/// # Panics
///
/// Panics if any variable is unbounded over the polyhedron (infinite
/// enumeration); iteration spaces of valid nests are always bounded.
pub fn for_each_point<F: FnMut(&[i64])>(p: &Polyhedron, mut f: F) {
    let n = p.nvars();
    if n == 0 {
        return;
    }
    // Projection chain: levels[k] constrains variables 0..=k only.
    let levels: Vec<Polyhedron> = (0..n).map(|k| project_prefix(p, k + 1)).collect();
    let mut point = vec![0i64; n];
    descend(p, &levels, &mut point, 0, &mut f);
}

fn descend<F: FnMut(&[i64])>(
    full: &Polyhedron,
    levels: &[Polyhedron],
    point: &mut Vec<i64>,
    k: usize,
    f: &mut F,
) {
    let n = full.nvars();
    let Some((lo, hi)) = level_range(&levels[k], point, k) else {
        return; // empty slice at this prefix
    };
    for v in lo..=hi {
        point[k] = v;
        if k + 1 == n {
            if full.contains(point) {
                f(point);
            }
        } else {
            descend(full, levels, point, k + 1, f);
        }
    }
}

/// Bounds of variable `k` given the fixed prefix `point[0..k]`.
fn level_range(level: &Polyhedron, point: &[i64], k: usize) -> Option<(i64, i64)> {
    let mut lo: Option<i64> = None;
    let mut hi: Option<i64> = None;
    for c in level.constraints() {
        let a = c.coeffs[k];
        // Partial evaluation over the fixed prefix.
        let fixed: i128 = c.coeffs[..k]
            .iter()
            .zip(&point[..k])
            .map(|(&cc, &v)| (cc as i128) * (v as i128))
            .sum::<i128>()
            + c.constant as i128;
        let fixed = i64::try_from(fixed).expect("enumeration overflow");
        if a > 0 {
            let b = div_ceil(-fixed, a);
            lo = Some(lo.map_or(b, |x: i64| x.max(b)));
        } else if a < 0 {
            let b = div_floor(fixed, -a);
            hi = Some(hi.map_or(b, |x: i64| x.min(b)));
        } else if fixed < 0 {
            return None;
        }
    }
    match (lo, hi) {
        (Some(lo), Some(hi)) if lo <= hi => Some((lo, hi)),
        (Some(_), Some(_)) => None,
        _ => panic!("enumeration over an unbounded polyhedron"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    fn collect(p: &Polyhedron) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        for_each_point(p, |pt| out.push(pt.to_vec()));
        out
    }

    #[test]
    fn enumerates_box_in_lex_order() {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], -1));
        p.add(Constraint::new(vec![-1, 0], 2));
        p.add(Constraint::new(vec![0, 1], -1));
        p.add(Constraint::new(vec![0, -1], 2));
        let pts = collect(&p);
        assert_eq!(pts, vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn enumerates_triangle() {
        // i in 1..=3, j in i..=3 => 6 points.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], -1));
        p.add(Constraint::new(vec![-1, 0], 3));
        p.add(Constraint::new(vec![-1, 1], 0));
        p.add(Constraint::new(vec![0, -1], 3));
        let pts = collect(&p);
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&vec![3, 3]));
        assert!(!pts.contains(&vec![3, 1]));
    }

    #[test]
    fn empty_polyhedron_yields_nothing() {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], -5));
        p.add(Constraint::new(vec![-1, 0], 2)); // 5 <= i <= 2
        p.add(Constraint::new(vec![0, 1], 0));
        p.add(Constraint::new(vec![0, -1], 9));
        assert!(collect(&p).is_empty());
    }

    #[test]
    fn integer_holes_are_filtered() {
        // 2i = j with j in 0..=4 and i in 0..=2, plus parity constraint
        // expressed as two inequalities 2i - j >= 0 and j - 2i >= 0. Odd j
        // has no i; enumeration must yield exactly (0,0), (1,2), (2,4).
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], 0));
        p.add(Constraint::new(vec![-1, 0], 2));
        p.add(Constraint::new(vec![0, 1], 0));
        p.add(Constraint::new(vec![0, -1], 4));
        p.add(Constraint::new(vec![2, -1], 0));
        p.add(Constraint::new(vec![-2, 1], 0));
        let pts = collect(&p);
        assert_eq!(pts, vec![vec![0, 0], vec![1, 2], vec![2, 4]]);
    }

    #[test]
    #[should_panic(expected = "unbounded")]
    fn unbounded_panics() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::new(vec![1], 0)); // x >= 0, no upper bound
        collect(&p);
    }
}
