//! Loop-bound regeneration from a polyhedron (Ancourt–Irigoin style).
//!
//! After applying a unimodular transformation `T`, the new iteration space
//! is `{y : T⁻¹·y ∈ P}`. Scanning it lexicographically needs, for each new
//! loop `y_k`, bounds in terms of `y_0..y_{k-1}` — obtained by
//! Fourier–Motzkin-eliminating the inner variables and reading the
//! remaining constraints on `y_k` as `ceil`/`floor` bound pieces.

use crate::constraint::Polyhedron;
use crate::fm::project_prefix;
use loopmem_ir::bounds::BoundPiece;
use loopmem_ir::{Affine, Bound, Loop};
use std::error::Error;
use std::fmt;

/// Failure to produce loop bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundsGenError {
    /// Variable `0-based index` has no lower or upper bound.
    Unbounded(usize),
    /// The polyhedron is (rationally) empty.
    Empty,
}

impl fmt::Display for BoundsGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsGenError::Unbounded(k) => write!(f, "loop variable {k} is unbounded"),
            BoundsGenError::Empty => write!(f, "iteration space is empty"),
        }
    }
}

impl Error for BoundsGenError {}

/// Produces a perfect-nest loop structure scanning the integer points of
/// `p` lexicographically, using the given variable names.
///
/// Projection may over-approximate an integer shadow, so an inner loop can
/// occasionally execute zero iterations for some outer values — scanning
/// remains exact because empty ranges simply run no iterations.
///
/// # Errors
///
/// [`BoundsGenError::Unbounded`] if some variable lacks a bound,
/// [`BoundsGenError::Empty`] if the polyhedron is rationally empty.
///
/// # Panics
///
/// Panics if `names.len() != p.nvars()`.
pub fn regenerate_loops(p: &Polyhedron, names: &[String]) -> Result<Vec<Loop>, BoundsGenError> {
    let n = p.nvars();
    assert_eq!(names.len(), n, "one name per variable required");
    if p.is_rationally_empty() {
        return Err(BoundsGenError::Empty);
    }
    let mut loops = Vec::with_capacity(n);
    for (k, name) in names.iter().enumerate() {
        let level = project_prefix(p, k + 1);
        let mut lower_pieces = Vec::new();
        let mut upper_pieces = Vec::new();
        for c in level.constraints() {
            let a = c.coeffs[k];
            if a == 0 {
                continue; // constraint on outer vars only; already enforced
            }
            // a·v_k + rest + const >= 0.
            let rest: Vec<i64> = c
                .coeffs
                .iter()
                .enumerate()
                .map(|(j, &cc)| if j == k { 0 } else { cc })
                .collect();
            if a > 0 {
                // v_k >= ceil((-rest - const) / a)
                let expr = Affine::new(rest.iter().map(|&x| -x).collect(), -c.constant);
                lower_pieces.push(BoundPiece { expr, div: a });
            } else {
                // v_k <= floor((rest + const) / -a)
                let expr = Affine::new(rest, c.constant);
                upper_pieces.push(BoundPiece { expr, div: -a });
            }
        }
        if lower_pieces.is_empty() || upper_pieces.is_empty() {
            return Err(BoundsGenError::Unbounded(k));
        }
        loops.push(Loop {
            var: name.clone(),
            lower: Bound::from_pieces(lower_pieces),
            upper: Bound::from_pieces(upper_pieces),
        });
    }
    Ok(loops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|k| format!("v{k}")).collect()
    }

    #[test]
    fn regenerates_box() {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], -1));
        p.add(Constraint::new(vec![-1, 0], 10));
        p.add(Constraint::new(vec![0, 1], -1));
        p.add(Constraint::new(vec![0, -1], 20));
        let loops = regenerate_loops(&p, &names(2)).unwrap();
        assert_eq!(loops[0].constant_range(), Some((1, 10)));
        assert_eq!(loops[1].constant_range(), Some((1, 20)));
    }

    #[test]
    fn regenerated_bounds_scan_exactly_the_points() {
        // Skewed space: u = i + j, v = j with i,j in 1..=4 — constraints
        // over (u, v): 1 <= u - v <= 4, 1 <= v <= 4.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, -1], -1));
        p.add(Constraint::new(vec![-1, 1], 4));
        p.add(Constraint::new(vec![0, 1], -1));
        p.add(Constraint::new(vec![0, -1], 4));
        let loops = regenerate_loops(&p, &names(2)).unwrap();
        // Scan with the generated bounds and compare against enumeration.
        let mut scanned = Vec::new();
        let (ulo, uhi) = loops[0].constant_range().expect("outer is constant");
        for u in ulo..=uhi {
            let vlo = loops[1].lower.eval_lower(&[u, 0]);
            let vhi = loops[1].upper.eval_upper(&[u, 0]);
            for v in vlo..=vhi {
                scanned.push(vec![u, v]);
            }
        }
        let mut enumerated = Vec::new();
        crate::enumerate::for_each_point(&p, |pt| enumerated.push(pt.to_vec()));
        assert_eq!(scanned, enumerated);
        assert_eq!(scanned.len(), 16);
    }

    #[test]
    fn unbounded_reports_error() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::new(vec![1], 0));
        assert_eq!(
            regenerate_loops(&p, &names(1)).unwrap_err(),
            BoundsGenError::Unbounded(0)
        );
    }

    #[test]
    fn empty_reports_error() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::new(vec![1], -10));
        p.add(Constraint::new(vec![-1], 5));
        assert_eq!(
            regenerate_loops(&p, &names(1)).unwrap_err(),
            BoundsGenError::Empty
        );
    }
}
