//! Property-style tests: Fourier–Motzkin soundness and enumeration
//! exactness against brute force. Deterministic (seeded `Lcg`), no
//! external dependencies.

use loopmem_linalg::Lcg;
use loopmem_poly::{for_each_point, Constraint, Polyhedron};

/// A random constraint system over 2 variables, anchored inside a known
/// bounding box so enumeration terminates.
fn random_poly_2d(rng: &mut Lcg) -> Polyhedron {
    let mut p = Polyhedron::universe(2);
    p.add(Constraint::new(vec![1, 0], 6)); // x >= -6
    p.add(Constraint::new(vec![-1, 0], 6)); // x <= 6
    p.add(Constraint::new(vec![0, 1], 6));
    p.add(Constraint::new(vec![0, -1], 6));
    for _ in 0..rng.range_usize(0, 3) {
        p.add(Constraint::new(rng.ivec(2, -3, 3), rng.range_i64(-12, 12)));
    }
    p
}

fn brute_force(p: &Polyhedron) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    for x in -6..=6i64 {
        for y in -6..=6i64 {
            if p.contains(&[x, y]) {
                out.push(vec![x, y]);
            }
        }
    }
    out
}

#[test]
fn enumeration_matches_brute_force() {
    let mut rng = Lcg::new(0x31);
    for case in 0..512 {
        let p = random_poly_2d(&mut rng);
        let mut pts = Vec::new();
        for_each_point(&p, |pt| pts.push(pt.to_vec()));
        assert_eq!(pts, brute_force(&p), "case {case}: {p:?}");
    }
}

#[test]
fn elimination_is_sound() {
    let mut rng = Lcg::new(0x32);
    for case in 0..256 {
        let p = random_poly_2d(&mut rng);
        // Every point of P satisfies the shadow after eliminating either
        // variable (projection is an over-approximation, never an under-).
        let s0 = loopmem_poly::fm::eliminate(&p, 0);
        let s1 = loopmem_poly::fm::eliminate(&p, 1);
        for pt in brute_force(&p) {
            assert!(s0.contains(&pt), "case {case}: {pt:?} escaped shadow of x");
            assert!(s1.contains(&pt), "case {case}: {pt:?} escaped shadow of y");
        }
    }
}

#[test]
fn emptiness_test_is_exact_on_rational_empties() {
    let mut rng = Lcg::new(0x33);
    for case in 0..512 {
        let p = random_poly_2d(&mut rng);
        // If FM says rationally empty there are certainly no integer
        // points; if brute force finds a point FM must not claim empty.
        if p.is_rationally_empty() {
            assert!(brute_force(&p).is_empty(), "case {case}: {p:?}");
        }
        if !brute_force(&p).is_empty() {
            assert!(!p.is_rationally_empty(), "case {case}: {p:?}");
        }
    }
}

#[test]
fn var_range_brackets_all_points() {
    let mut rng = Lcg::new(0x34);
    for case in 0..512 {
        let p = random_poly_2d(&mut rng);
        let pts = brute_force(&p);
        for k in 0..2 {
            match p.var_range(k) {
                Some((lo, hi)) => {
                    for pt in &pts {
                        assert!(lo <= pt[k] && pt[k] <= hi, "case {case}: {p:?}");
                    }
                }
                None => assert!(pts.is_empty(), "case {case}: {p:?}"),
            }
        }
    }
}

#[test]
fn regenerated_loops_scan_the_same_points() {
    let mut rng = Lcg::new(0x35);
    for case in 0..256 {
        let p = random_poly_2d(&mut rng);
        let names = vec!["u".to_string(), "v".to_string()];
        let Ok(loops) = loopmem_poly::regenerate_loops(&p, &names) else {
            // Empty polyhedra are allowed to fail regeneration.
            continue;
        };
        let mut scanned = Vec::new();
        // Outer bounds may involve no variables; evaluate with zeros.
        let ulo = loops[0].lower.eval_lower(&[0, 0]);
        let uhi = loops[0].upper.eval_upper(&[0, 0]);
        for u in ulo..=uhi {
            let vlo = loops[1].lower.eval_lower(&[u, 0]);
            let vhi = loops[1].upper.eval_upper(&[u, 0]);
            for v in vlo..=vhi {
                if p.contains(&[u, v]) {
                    scanned.push(vec![u, v]);
                }
                // Rational bounds may include integer holes; they must be
                // points of the rational shadow, nothing checked.
            }
        }
        assert_eq!(scanned, brute_force(&p), "case {case}: {p:?}");
    }
}
