//! Property tests: Fourier–Motzkin soundness and enumeration exactness
//! against brute force.

use loopmem_poly::{for_each_point, Constraint, Polyhedron};
use proptest::prelude::*;

/// A random constraint system over 2 variables, anchored inside a known
/// bounding box so enumeration terminates.
fn random_poly_2d() -> impl Strategy<Value = Polyhedron> {
    let extra = proptest::collection::vec(
        (-3i64..=3, -3i64..=3, -12i64..=12).prop_map(|(a, b, c)| Constraint::new(vec![a, b], c)),
        0..4,
    );
    extra.prop_map(|cs| {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], 6)); // x >= -6
        p.add(Constraint::new(vec![-1, 0], 6)); // x <= 6
        p.add(Constraint::new(vec![0, 1], 6));
        p.add(Constraint::new(vec![0, -1], 6));
        for c in cs {
            p.add(c);
        }
        p
    })
}

fn brute_force(p: &Polyhedron) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    for x in -6..=6i64 {
        for y in -6..=6i64 {
            if p.contains(&[x, y]) {
                out.push(vec![x, y]);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn enumeration_matches_brute_force(p in random_poly_2d()) {
        let mut pts = Vec::new();
        for_each_point(&p, |pt| pts.push(pt.to_vec()));
        prop_assert_eq!(pts, brute_force(&p));
    }

    #[test]
    fn elimination_is_sound(p in random_poly_2d()) {
        // Every point of P satisfies the shadow after eliminating either
        // variable (projection is an over-approximation, never an under-).
        let s0 = loopmem_poly::fm::eliminate(&p, 0);
        let s1 = loopmem_poly::fm::eliminate(&p, 1);
        for pt in brute_force(&p) {
            prop_assert!(s0.contains(&pt), "{pt:?} escaped shadow of x");
            prop_assert!(s1.contains(&pt), "{pt:?} escaped shadow of y");
        }
    }

    #[test]
    fn emptiness_test_is_exact_on_rational_empties(p in random_poly_2d()) {
        // If FM says rationally empty there are certainly no integer
        // points; if brute force finds a point FM must not claim empty.
        if p.is_rationally_empty() {
            prop_assert!(brute_force(&p).is_empty());
        }
        if !brute_force(&p).is_empty() {
            prop_assert!(!p.is_rationally_empty());
        }
    }

    #[test]
    fn var_range_brackets_all_points(p in random_poly_2d()) {
        let pts = brute_force(&p);
        for k in 0..2 {
            match p.var_range(k) {
                Some((lo, hi)) => {
                    for pt in &pts {
                        prop_assert!(lo <= pt[k] && pt[k] <= hi);
                    }
                }
                None => prop_assert!(pts.is_empty()),
            }
        }
    }

    #[test]
    fn regenerated_loops_scan_the_same_points(p in random_poly_2d()) {
        let names = vec!["u".to_string(), "v".to_string()];
        let Ok(loops) = loopmem_poly::regenerate_loops(&p, &names) else {
            // Empty polyhedra are allowed to fail regeneration.
            return Ok(());
        };
        let mut scanned = Vec::new();
        // Outer bounds may involve no variables; evaluate with zeros.
        let ulo = loops[0].lower.eval_lower(&[0, 0]);
        let uhi = loops[0].upper.eval_upper(&[0, 0]);
        for u in ulo..=uhi {
            let vlo = loops[1].lower.eval_lower(&[u, 0]);
            let vhi = loops[1].upper.eval_upper(&[u, 0]);
            for v in vlo..=vhi {
                if p.contains(&[u, v]) {
                    scanned.push(vec![u, v]);
                } else {
                    // Rational bounds may include integer holes; they must
                    // be points of the rational shadow, nothing checked.
                }
            }
        }
        prop_assert_eq!(scanned, brute_force(&p));
    }
}
