//! Memory-layout effects — the extension the paper's §7 names as work in
//! progress ("to include the effects of memory layouts of arrays").
//!
//! The window analysis counts *elements*; a real scratchpad or cache moves
//! *lines*. This module linearizes every array under a chosen storage
//! order, slices the address space into lines, and re-runs the window and
//! replacement machinery at line granularity, exposing the spatial-
//! locality component that element counting cannot see: a row-streaming
//! kernel over a column-major array touches `N` lines per row instead
//! of `N/L`.

use crate::exec::for_each_iteration;
use crate::replacement::Trace;
use loopmem_ir::{ArrayId, LoopNest};
use std::collections::HashMap;

/// Storage order of one array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Layout {
    /// Last subscript fastest (C order).
    RowMajor,
    /// First subscript fastest (Fortran order).
    ColMajor,
}

/// A linear placement of the nest's arrays.
#[derive(Clone, Debug)]
pub struct AddressMap {
    bases: Vec<i64>,
    strides: Vec<Vec<i64>>,
}

impl AddressMap {
    /// Places every array consecutively (with guard padding so stray
    /// halo subscripts of one array can never collide with another) under
    /// per-array layouts.
    ///
    /// # Panics
    ///
    /// Panics if `layouts.len()` differs from the number of declared
    /// arrays.
    pub fn new(nest: &LoopNest, layouts: &[Layout]) -> Self {
        assert_eq!(
            layouts.len(),
            nest.arrays().len(),
            "one layout per declared array"
        );
        let mut bases = Vec::new();
        let mut strides = Vec::new();
        let mut cursor = 0i64;
        for (decl, &layout) in nest.arrays().iter().zip(layouts) {
            // Guard band: subscripts may stray one declared extent in any
            // direction (halos); triple spacing keeps arrays disjoint.
            // Bases are 64-aligned so common line sizes divide them, and
            // the canonical first element (1, 1, …) sits at the base.
            let span = decl.size();
            bases.push((cursor + span + 63) / 64 * 64);
            let dims = &decl.dims;
            let mut s = vec![0i64; dims.len()];
            match layout {
                Layout::RowMajor => {
                    let mut acc = 1i64;
                    for d in (0..dims.len()).rev() {
                        s[d] = acc;
                        acc *= dims[d];
                    }
                }
                Layout::ColMajor => {
                    let mut acc = 1i64;
                    for (d, &dim) in dims.iter().enumerate() {
                        s[d] = acc;
                        acc *= dim;
                    }
                }
            }
            strides.push(s);
            cursor += 3 * span + 64;
        }
        AddressMap { bases, strides }
    }

    /// Linear address of `index` within `array` (index `(1, 1, …)` sits at
    /// the array's aligned base, matching the DSL's 1-based convention).
    pub fn address(&self, array: ArrayId, index: &[i64]) -> i64 {
        let s = &self.strides[array.0];
        assert_eq!(index.len(), s.len(), "rank mismatch");
        self.bases[array.0]
            + index
                .iter()
                .zip(s)
                .map(|(&i, &st)| (i - 1) * st)
                .sum::<i64>()
    }
}

/// Line-granular statistics of a nest under a layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineStats {
    /// Distinct lines touched.
    pub distinct_lines: u64,
    /// Maximum line-window size (lines live between first and last use).
    pub mws_lines: u64,
    /// Total line-granular accesses (equal to element accesses).
    pub accesses: u64,
}

/// Computes line-granular window statistics and the line trace.
///
/// `line_words` is the line size in array elements (words); 1 reduces to
/// the element-granular analysis.
///
/// # Panics
///
/// Panics if `line_words == 0` or the layouts mismatch the declarations.
pub fn line_analysis(nest: &LoopNest, layouts: &[Layout], line_words: i64) -> (LineStats, Trace) {
    assert!(line_words > 0, "line size must be positive");
    let map = AddressMap::new(nest, layouts);

    // First/last touch per line, plus an interned line trace.
    struct Touch {
        first: u64,
        last: u64,
    }
    let mut touches: HashMap<i64, Touch> = HashMap::new();
    let mut intern: HashMap<i64, u32> = HashMap::new();
    let mut line_trace: Vec<u32> = Vec::new();
    let mut t = 0u64;
    for_each_iteration(nest, |it| {
        for r in nest.refs() {
            let line = map.address(r.array, &r.index_at(it)).div_euclid(line_words);
            touches
                .entry(line)
                .and_modify(|e| e.last = t)
                .or_insert(Touch { first: t, last: t });
            let next = intern.len() as u32;
            line_trace.push(*intern.entry(line).or_insert(next));
        }
        t += 1;
    });
    let iterations = t as usize;
    let mut add = vec![0i64; iterations];
    let mut rem = vec![0i64; iterations];
    for touch in touches.values() {
        add[touch.first as usize] += 1;
        rem[touch.last as usize] += 1;
    }
    let (mut cur, mut peak) = (0i64, 0i64);
    for ti in 0..iterations {
        cur += add[ti] - rem[ti];
        peak = peak.max(cur);
    }
    let stats = LineStats {
        distinct_lines: touches.len() as u64,
        mws_lines: peak as u64,
        accesses: line_trace.len() as u64,
    };
    (stats, Trace::from_line_ids(line_trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::{misses, Policy};
    use loopmem_ir::parse;

    fn row_stream() -> loopmem_ir::LoopNest {
        parse("array A[16][16]\nfor i = 1 to 16 { for j = 1 to 16 { A[i][j]; } }").unwrap()
    }

    #[test]
    fn line_size_one_matches_element_analysis() {
        let nest =
            parse("array A[20][20]\nfor i = 2 to 18 { for j = 1 to 18 { A[i][j] = A[i-1][j]; } }")
                .unwrap();
        let sim = crate::window::simulate(&nest);
        let (stats, _) = line_analysis(&nest, &[Layout::RowMajor], 1);
        assert_eq!(stats.distinct_lines, sim.distinct_total());
        assert_eq!(stats.mws_lines, sim.mws_total);
    }

    #[test]
    fn row_major_streaming_touches_fewer_line_transitions() {
        // Row streaming over row-major: 16*16/8 = 32 lines; over
        // column-major every consecutive access changes line.
        let nest = row_stream();
        let (rm, rm_trace) = line_analysis(&nest, &[Layout::RowMajor], 8);
        let (cm, cm_trace) = line_analysis(&nest, &[Layout::ColMajor], 8);
        assert_eq!(rm.distinct_lines, 32);
        assert_eq!(cm.distinct_lines, 32); // same footprint…
                                           // …but a tiny line buffer thrashes only under the bad layout.
        let rm_misses = misses(&rm_trace, 2, Policy::Lru);
        let cm_misses = misses(&cm_trace, 2, Policy::Lru);
        assert_eq!(rm_misses, 32, "row-major: one miss per line");
        assert!(cm_misses >= 128, "column-major thrashes: {cm_misses}");
    }

    #[test]
    fn column_major_favours_column_streaming() {
        let nest =
            parse("array A[16][16]\nfor j = 1 to 16 { for i = 1 to 16 { A[i][j]; } }").unwrap();
        let (_, cm_trace) = line_analysis(&nest, &[Layout::ColMajor], 8);
        assert_eq!(misses(&cm_trace, 2, Policy::Lru), 32);
    }

    #[test]
    fn arrays_never_share_lines() {
        let nest = parse("array A[8]\narray B[8]\nfor i = 1 to 8 { A[i] = B[i]; }").unwrap();
        let (stats, _) = line_analysis(&nest, &[Layout::RowMajor, Layout::RowMajor], 4);
        // 8 words at line size 4, two arrays: 2-3 lines each, never merged.
        assert!(stats.distinct_lines >= 4, "{stats:?}");
        let map = AddressMap::new(&nest, &[Layout::RowMajor, Layout::RowMajor]);
        let a_hi = map.address(loopmem_ir::ArrayId(0), &[8]);
        let b_lo = map.address(loopmem_ir::ArrayId(1), &[1]);
        assert!(b_lo - a_hi > 8, "guard band present");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_line_size_panics() {
        line_analysis(&row_stream(), &[Layout::RowMajor], 0);
    }
}
