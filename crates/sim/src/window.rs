//! Exact reference-window tracking (§2.3 of the paper).
//!
//! The reference window `W_X(I)` is the set of elements of array `X`
//! referenced at some iteration `J₁ ⪯ I` *and* referenced again at some
//! `J₂ ≻ I`. Its size is exactly the number of values that must stay in
//! local memory after iteration `I` for every reuse to be served on-chip;
//! the maximum over `I` (the MWS) is the minimum adequate buffer capacity.
//!
//! The tracker runs in two passes over the access stream:
//!
//! 1. record, per element, the first and last iteration index touching it
//!    (an element's window membership is `first(x) ≤ t < last(x)`);
//! 2. sweep iterations once, adding elements at their first touch and
//!    dropping them at their last, maximizing the live count per array and
//!    in total.

use crate::exec::for_each_iteration;
use loopmem_ir::{ArrayId, LoopNest};
use std::collections::HashMap;

/// Per-array simulation statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Number of distinct elements referenced.
    pub distinct: u64,
    /// Total number of accesses (reads + writes).
    pub accesses: u64,
    /// Exact maximum window size of the array.
    pub mws: u64,
}

/// Result of simulating a nest.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Number of iterations executed.
    pub iterations: u64,
    /// Per-array statistics.
    pub per_array: HashMap<ArrayId, ArrayStats>,
    /// Maximum over iterations of the *summed* per-array window sizes —
    /// the multi-array MWS of §2.3.
    pub mws_total: u64,
    /// Total live-element count after each iteration (only populated by
    /// [`simulate_with_profile`]); `profile[t]` is `Σ_X |W_X(I_t)|`.
    pub profile: Option<Vec<u64>>,
}

impl SimResult {
    /// Statistics of one array.
    ///
    /// # Panics
    ///
    /// Panics if the nest never referenced `array`.
    pub fn array(&self, array: ArrayId) -> &ArrayStats {
        self.per_array
            .get(&array)
            .expect("array is not referenced by the nest")
    }

    /// Total distinct elements over all arrays.
    pub fn distinct_total(&self) -> u64 {
        self.per_array.values().map(|s| s.distinct).sum()
    }
}

/// Simulates the nest and returns exact statistics (no profile).
///
/// Runs the dense-event engine ([`crate::dense`]): flat touch tables with
/// a hashmap fallback, swept in parallel for large nests (worker count
/// from `LOOPMEM_THREADS`, defaulting to the available parallelism).
///
/// The unified front door for analysis — carrying threads, budget, fault
/// plan and trace sink in one builder — is `loopmem::Session` (defined in
/// `loopmem-core`, which this crate cannot depend on).
pub fn simulate(nest: &LoopNest) -> SimResult {
    crate::dense::run(nest, false, crate::dense::auto_threads(nest))
}

/// Simulates the nest, additionally recording the per-iteration total
/// window profile (costs one `u64` per iteration).
pub fn simulate_with_profile(nest: &LoopNest) -> SimResult {
    crate::dense::run(nest, true, crate::dense::auto_threads(nest))
}

/// Simulates with a pinned worker-thread count (and optional profile).
/// The result is bit-identical for every `threads` value; use `threads =
/// 1` when the caller is itself running simulations on a thread pool.
pub fn simulate_with_threads(nest: &LoopNest, want_profile: bool, threads: usize) -> SimResult {
    crate::dense::run(nest, want_profile, threads)
}

/// Governed simulation: like [`simulate`], but never panics and respects
/// `budget`. On a budget trip the error carries analytical MWS bounds
/// ([`crate::budget::analytic_nest_bounds`]); arithmetic overflow and
/// contained panics surface as typed [`AnalysisError`] variants.
pub fn try_simulate(
    nest: &LoopNest,
    budget: &crate::budget::AnalysisBudget,
) -> Result<SimResult, loopmem_ir::AnalysisError> {
    crate::dense::try_run(nest, false, crate::dense::auto_threads(nest), budget)
}

/// Governed variant of [`simulate_with_threads`]. Exact results and
/// `Exhausted` payloads are both bit-identical for every `threads` value
/// (the analytical fallback depends only on the nest, never on how far a
/// particular sweep got).
///
/// `loopmem::Session::simulate` is the front-door equivalent; the
/// facade's `session_equivalence` tests pin the two bit-identical.
pub fn try_simulate_with_threads(
    nest: &LoopNest,
    want_profile: bool,
    threads: usize,
    budget: &crate::budget::AnalysisBudget,
) -> Result<SimResult, loopmem_ir::AnalysisError> {
    crate::dense::try_run(nest, want_profile, threads, budget)
}

/// Governed simulation charging an externally owned
/// [`BudgetTracker`](crate::budget::BudgetTracker) — for callers
/// coordinating several simulations under one deadline and one cumulative
/// iteration budget (the §4 optimizer sweeps every candidate against a
/// single tracker). `max_table_bytes` caps the dense touch tables exactly
/// as [`AnalysisBudget::with_max_table_bytes`](crate::budget::AnalysisBudget::with_max_table_bytes)
/// would.
pub fn try_simulate_tracked(
    nest: &LoopNest,
    want_profile: bool,
    threads: usize,
    tracker: &crate::budget::BudgetTracker,
    max_table_bytes: Option<u64>,
) -> Result<SimResult, loopmem_ir::AnalysisError> {
    crate::dense::try_run_tracked(nest, want_profile, threads, tracker, max_table_bytes)
}

/// Differential-sanitizer oracle: exact single-threaded simulation of
/// nests small enough to sweep, `None` otherwise.
///
/// Declines (returns `None`, without doing any work) when interval
/// analysis estimates more than `max_iters` iterations, and likewise when
/// the governed sweep trips its budget, overflows, or panics — the caller
/// (`loopmem check --sanitize`) treats `None` as "no oracle available",
/// never as a verdict. Single-threaded and budget-governed, so the result
/// is deterministic and safe to run over untrusted input.
pub fn oracle_simulate(nest: &LoopNest, max_iters: u64) -> Option<SimResult> {
    if crate::budget::estimated_iterations_of(nest) > u128::from(max_iters) {
        return None;
    }
    let budget = crate::budget::AnalysisBudget::unlimited()
        .with_max_iterations(max_iters)
        .with_max_table_bytes(64 << 20);
    try_simulate_with_threads(nest, false, 1, &budget).ok()
}

/// Simulates with the legacy hashmap engine — the reference
/// implementation the dense engine is validated against. Slower; kept for
/// differential tests and benchmarks.
pub fn simulate_hashmap(nest: &LoopNest) -> SimResult {
    run_hashmap(nest, false)
}

/// [`simulate_hashmap`] with the per-iteration window profile.
pub fn simulate_hashmap_with_profile(nest: &LoopNest) -> SimResult {
    run_hashmap(nest, true)
}

fn run_hashmap(nest: &LoopNest, want_profile: bool) -> SimResult {
    // Pass 1: first/last touch per element, per array.
    struct Touch {
        first: u64,
        last: u64,
    }
    let narrays = nest.arrays().len();
    let mut touches: Vec<HashMap<Vec<i64>, Touch>> = (0..narrays).map(|_| HashMap::new()).collect();
    let mut accesses = vec![0u64; narrays];
    let mut t = 0u64;
    for_each_iteration(nest, |iter| {
        for r in nest.refs() {
            let idx = r.index_at(iter);
            accesses[r.array.0] += 1;
            touches[r.array.0]
                .entry(idx)
                .and_modify(|e| e.last = t)
                .or_insert(Touch { first: t, last: t });
        }
        t += 1;
    });
    let iterations = t;

    // Pass 2: sweep. Build per-iteration add/remove counts per array.
    let mut add = vec![vec![0i64; iterations as usize]; narrays];
    let mut rem = vec![vec![0i64; iterations as usize]; narrays];
    for (a, map) in touches.iter().enumerate() {
        for touch in map.values() {
            add[a][touch.first as usize] += 1;
            rem[a][touch.last as usize] += 1;
        }
    }
    let mut cur = vec![0i64; narrays];
    let mut mws = vec![0i64; narrays];
    let mut cur_total = 0i64;
    let mut mws_total = 0i64;
    let mut profile = want_profile.then(|| Vec::with_capacity(iterations as usize));
    for ti in 0..iterations as usize {
        for a in 0..narrays {
            let delta = add[a][ti] - rem[a][ti];
            cur[a] += delta;
            cur_total += delta;
            mws[a] = mws[a].max(cur[a]);
        }
        mws_total = mws_total.max(cur_total);
        if let Some(p) = profile.as_mut() {
            p.push(cur_total as u64);
        }
    }

    let mut per_array = HashMap::new();
    for (a, map) in touches.iter().enumerate() {
        if accesses[a] == 0 {
            continue;
        }
        per_array.insert(
            ArrayId(a),
            ArrayStats {
                distinct: map.len() as u64,
                accesses: accesses[a],
                mws: mws[a] as u64,
            },
        );
    }
    SimResult {
        iterations,
        per_array,
        mws_total: mws_total as u64,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn single_use_elements_never_enter_window() {
        // Every element touched exactly once: window stays empty.
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j]; } }").unwrap();
        let s = simulate(&nest);
        assert_eq!(s.mws_total, 0);
        assert_eq!(s.array(loopmem_ir::ArrayId(0)).distinct, 100);
        assert_eq!(s.array(loopmem_ir::ArrayId(0)).accesses, 100);
        assert_eq!(s.iterations, 100);
    }

    #[test]
    fn example2_distinct_count_matches_paper() {
        let nest = parse(
            "array A[12][12]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
        )
        .unwrap();
        let s = simulate(&nest);
        // A_d = 2*100 - (10-1)(10-2) = 128.
        assert_eq!(s.array(loopmem_ir::ArrayId(0)).distinct, 128);
    }

    #[test]
    fn example8_exact_mws_is_44() {
        // The closed form (§4.2) estimates 50; exact tracking gives 44.
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        assert_eq!(simulate(&nest).mws_total, 44);
    }

    #[test]
    fn window_profile_shape() {
        // A[i] reused across j: each element lives exactly through the j
        // loop of its i, so the window is 1 while inside a row, 0 after
        // the last reuse. Profile length equals iteration count.
        let nest = parse("array A[10]\nfor i = 1 to 10 { for j = 1 to 5 { A[i]; } }").unwrap();
        let s = simulate_with_profile(&nest);
        let p = s.profile.as_ref().unwrap();
        assert_eq!(p.len(), 50);
        assert_eq!(s.mws_total, 1);
        // Last iteration of each row drops the element.
        assert_eq!(p[4], 0);
        assert_eq!(p[3], 1);
    }

    #[test]
    fn multi_array_total_is_sum_peak() {
        // A[i] live across inner loop; B[j] single-touch per element but
        // reused across outer iterations (j range 1..=5 each time).
        let nest = parse(
            "array A[10]\narray B[5]\n\
             for i = 1 to 10 { for j = 1 to 5 { A[i] = B[j]; } }",
        )
        .unwrap();
        let s = simulate(&nest);
        let a = s.array(loopmem_ir::ArrayId(0));
        let b = s.array(loopmem_ir::ArrayId(1));
        assert_eq!(a.mws, 1);
        assert_eq!(b.mws, 5); // all of B stays live between outer rows
        assert_eq!(s.mws_total, 6);
        assert_eq!(s.distinct_total(), 15);
    }

    #[test]
    fn stencil_window_is_row_plus_halo() {
        // A[i][j] = A[i-1][j]: element (i,j) written at i, read at i+1;
        // window holds one row => MWS = N (+1 transiently).
        let nest = parse(
            "array A[16][16]\n\
             for i = 2 to 16 { for j = 1 to 16 { A[i][j] = A[i-1][j]; } }",
        )
        .unwrap();
        let s = simulate(&nest);
        let mws = s.array(loopmem_ir::ArrayId(0)).mws;
        assert!((16..=17).contains(&mws), "row-sized window, got {mws}");
    }
}
