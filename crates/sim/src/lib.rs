#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Execution simulator for loop nests: the reproduction's ground truth.
//!
//! The paper's estimates (distinct accesses, maximum window size) are
//! closed-form; the authors validate them against the real codes. We have
//! no embedded board, so this crate *executes* nests faithfully instead:
//!
//! * [`exec`] — lexicographic interpretation of (possibly transformed)
//!   nests, evaluating max/min/ceil/floor bounds exactly;
//! * [`window`] — exact reference-window tracking (§2.3): for every
//!   iteration `I`, the set of elements touched at or before `I` that are
//!   touched again after `I`; its maximum cardinality is the exact MWS and
//!   equals the minimum on-chip buffer that captures all reuse;
//! * [`memory`] — a synthetic scratchpad capacity/energy/area/latency
//!   model (CACTI-shaped, documented in DESIGN.md) quantifying the §1
//!   motivation: smaller working sets ⇒ smaller memories ⇒ less energy.
//!
//! # Example
//!
//! Example 8's exact window behaviour:
//!
//! ```
//! let nest = loopmem_ir::parse(r#"
//!     array X[200]
//!     for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }
//! "#).unwrap();
//! let stats = loopmem_sim::simulate(&nest);
//! assert_eq!(stats.mws_total, 44); // the closed form estimates 50
//! ```

pub mod budget;
pub mod dense;
pub mod exec;
pub mod faults;
pub mod layout;
pub mod memory;
pub mod program;
pub mod replacement;
pub mod reuse_distance;
pub mod window;

pub use budget::{
    analytic_nest_bounds, analytic_program_bounds, panic_message, AnalysisBudget, BudgetTracker,
    CancelToken,
};
pub use dense::{bench_pass1, bench_pass1_interleaved, thread_count};
pub use exec::{
    count_iterations, for_each_iteration, for_each_iteration_outer, outer_range,
    try_for_each_inner_run, try_for_each_iteration_outer,
};
pub use faults::{FaultKind, FaultPlan, INJECTED_PANIC};
pub use layout::{line_analysis, AddressMap, Layout, LineStats};
pub use memory::{MemoryReport, ScratchpadModel};
pub use program::{
    simulate_program, simulate_program_with_threads, try_simulate_program,
    try_simulate_program_tracked, try_simulate_program_with_threads, GovernedProgramSim,
    ProgramSimResult,
};
pub use replacement::{min_perfect_capacity, miss_curve, misses, Policy, Trace};
pub use reuse_distance::ReuseHistogram;
pub use window::{
    oracle_simulate, simulate, simulate_hashmap, simulate_hashmap_with_profile,
    simulate_with_profile, simulate_with_threads, try_simulate, try_simulate_tracked,
    try_simulate_with_threads, ArrayStats, SimResult,
};
