//! Lexicographic execution of a loop nest.

use loopmem_ir::LoopNest;
use std::ops::ControlFlow;

/// Calls `f` once per iteration, in execution (lexicographic) order, with
/// the iteration vector. Bounds are evaluated exactly, including the
/// `max`/`min`/`ceil`/`floor` pieces that transformed nests carry; empty
/// ranges execute zero iterations.
///
/// ```
/// let nest = loopmem_ir::parse(
///     "array A[10][10]\nfor i = 1 to 3 { for j = i to 3 { A[i][j]; } }",
/// ).unwrap();
/// let mut count = 0;
/// loopmem_sim::for_each_iteration(&nest, |_| count += 1);
/// assert_eq!(count, 6);
/// ```
pub fn for_each_iteration<F: FnMut(&[i64])>(nest: &LoopNest, mut f: F) {
    let (lo, hi) = outer_range(nest);
    for_each_iteration_outer(nest, lo, hi, &mut f);
}

/// The (always constant) value range of the outermost loop. The validator
/// guarantees outermost bounds reference no loop variable, so they are
/// constants; empty nests yield an inverted range.
pub fn outer_range(nest: &LoopNest) -> (i64, i64) {
    let zeros = vec![0i64; nest.depth()];
    let l = &nest.loops()[0];
    (l.lower.eval_lower(&zeros), l.upper.eval_upper(&zeros))
}

/// Like [`for_each_iteration`], but restricts the outermost loop variable
/// to `outer_lo ..= outer_hi` (intersected with the loop's own range by the
/// caller). This is the parallel sweep's chunking primitive: splitting the
/// outer range into consecutive chunks and concatenating the per-chunk
/// iteration streams reproduces the full lexicographic order exactly.
pub fn for_each_iteration_outer<F: FnMut(&[i64])>(
    nest: &LoopNest,
    outer_lo: i64,
    outer_hi: i64,
    f: &mut F,
) {
    // The adapter closure never breaks, so the result is always `Continue`.
    let _ = try_for_each_iteration_outer::<(), _>(nest, outer_lo, outer_hi, &mut |it| {
        f(it);
        ControlFlow::Continue(())
    });
}

/// Early-exiting variant of [`for_each_iteration_outer`]: the callback
/// returns [`ControlFlow`], and a `Break` stops the sweep immediately (the
/// governed engines use this to bail out when a budget trips or a subscript
/// overflows). Returns the first `Break`, or `Continue(())` after the full
/// stream.
pub fn try_for_each_iteration_outer<B, F: FnMut(&[i64]) -> ControlFlow<B>>(
    nest: &LoopNest,
    outer_lo: i64,
    outer_hi: i64,
    f: &mut F,
) -> ControlFlow<B> {
    let n = nest.depth();
    let mut iter = vec![0i64; n];
    for v in outer_lo..=outer_hi {
        iter[0] = v;
        if n == 1 {
            f(&iter)?;
        } else {
            descend(nest, &mut iter, 1, f)?;
        }
    }
    ControlFlow::Continue(())
}

/// Run-length variant of [`try_for_each_iteration_outer`]: instead of one
/// call per iteration, the callback receives one call per *innermost run*
/// — a maximal block of consecutive iterations that differ only in the
/// innermost loop variable. `f(iter, lo, hi)` is invoked with the outer
/// variables set in `iter[..depth-1]`, and the innermost variable ranging
/// over `lo ..= hi` (never empty: empty runs are skipped, matching the
/// zero iterations they execute). `iter[depth-1]` is scratch — the callback
/// may clobber it (the sparse sweep path writes the running innermost value
/// there); it is reset before the next run's bounds are evaluated, and
/// inner bounds only reference outer variables anyway (validator).
///
/// Concatenating the runs reproduces the lexicographic iteration stream of
/// [`try_for_each_iteration_outer`] exactly; this is the primitive behind
/// the dense engine's lane-split pass-1 kernels, which turn each run into
/// constant-stride table updates instead of per-iteration dot products.
///
/// For depth-1 nests the whole `outer_lo ..= outer_hi` chunk is a single
/// run (the outermost loop *is* the innermost).
pub fn try_for_each_inner_run<B, F: FnMut(&mut [i64], i64, i64) -> ControlFlow<B>>(
    nest: &LoopNest,
    outer_lo: i64,
    outer_hi: i64,
    f: &mut F,
) -> ControlFlow<B> {
    let n = nest.depth();
    let mut iter = vec![0i64; n];
    if n == 1 {
        if outer_lo <= outer_hi {
            f(&mut iter, outer_lo, outer_hi)?;
        }
        return ControlFlow::Continue(());
    }
    for v in outer_lo..=outer_hi {
        iter[0] = v;
        descend_runs(nest, &mut iter, 1, f)?;
    }
    ControlFlow::Continue(())
}

fn descend_runs<B, F: FnMut(&mut [i64], i64, i64) -> ControlFlow<B>>(
    nest: &LoopNest,
    iter: &mut Vec<i64>,
    k: usize,
    f: &mut F,
) -> ControlFlow<B> {
    let l = &nest.loops()[k];
    let lo = l.lower.eval_lower(iter);
    let hi = l.upper.eval_upper(iter);
    if k + 1 == nest.depth() {
        if lo <= hi {
            f(iter, lo, hi)?;
            iter[k] = 0; // the callback may have clobbered the scratch slot
        }
        return ControlFlow::Continue(());
    }
    for v in lo..=hi {
        iter[k] = v;
        descend_runs(nest, iter, k + 1, f)?;
    }
    iter[k] = 0; // outer bounds must not observe stale inner values
    ControlFlow::Continue(())
}

fn descend<B, F: FnMut(&[i64]) -> ControlFlow<B>>(
    nest: &LoopNest,
    iter: &mut Vec<i64>,
    k: usize,
    f: &mut F,
) -> ControlFlow<B> {
    let l = &nest.loops()[k];
    let lo = l.lower.eval_lower(iter);
    let hi = l.upper.eval_upper(iter);
    for v in lo..=hi {
        iter[k] = v;
        if k + 1 == nest.depth() {
            f(iter)?;
        } else {
            descend(nest, iter, k + 1, f)?;
        }
    }
    iter[k] = 0; // outer bounds must not observe stale inner values
    ControlFlow::Continue(())
}

/// Number of iterations the nest executes.
pub fn count_iterations(nest: &LoopNest) -> u64 {
    let mut n = 0u64;
    for_each_iteration(nest, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn rectangular_count_and_order() {
        let nest = parse("array A[4]\nfor i = 1 to 2 { for j = 1 to 2 { A[i]; } }").unwrap();
        let mut seen = Vec::new();
        for_each_iteration(&nest, |it| seen.push(it.to_vec()));
        assert_eq!(seen, vec![vec![1, 1], vec![1, 2], vec![2, 1], vec![2, 2]]);
        assert_eq!(count_iterations(&nest), 4);
    }

    #[test]
    fn triangular_count() {
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = i to 10 { A[i][j]; } }").unwrap();
        assert_eq!(count_iterations(&nest), 55);
    }

    #[test]
    fn empty_range_runs_zero() {
        let nest = parse("array A[10]\nfor i = 5 to 4 { A[i]; }").unwrap();
        assert_eq!(count_iterations(&nest), 0);
    }

    #[test]
    fn matches_iteration_count_accessor() {
        let nest =
            parse("array A[100]\nfor i = 1 to 10 { for j = 1 to 20 { for k = 1 to 3 { A[i]; } } }")
                .unwrap();
        assert_eq!(Some(count_iterations(&nest) as i64), nest.iteration_count());
    }
}
