//! Buffer simulation under LRU and Belady-optimal replacement.
//!
//! The MWS is the paper's *analytical* answer to "how small can the
//! on-chip buffer be?". This module provides the *operational* check: run
//! the access trace through a buffer of capacity `C` and count misses.
//! With `C` at least the MWS (plus the handful of single-use elements in
//! flight within one iteration), an optimal policy misses only on cold
//! accesses — every reuse is served on-chip — while smaller buffers leak
//! capacity misses. The `capacity_sweep` experiment binary plots the knee.

use crate::exec::for_each_iteration;
use loopmem_ir::LoopNest;
use std::collections::HashMap;

/// A flattened access trace: one interned element id per access, in
/// execution order.
#[derive(Clone, Debug)]
pub struct Trace {
    addrs: Vec<u32>,
    distinct: usize,
}

impl Trace {
    /// Records the nest's full access trace (reads and writes alike, in
    /// statement order within each iteration).
    pub fn from_nest(nest: &LoopNest) -> Trace {
        let mut intern: HashMap<(usize, Vec<i64>), u32> = HashMap::new();
        let mut addrs = Vec::new();
        for_each_iteration(nest, |it| {
            for r in nest.refs() {
                let key = (r.array.0, r.index_at(it));
                let next = intern.len() as u32;
                let id = *intern.entry(key).or_insert(next);
                addrs.push(id);
            }
        });
        Trace {
            addrs,
            distinct: intern.len(),
        }
    }

    /// Builds a trace from pre-interned ids (the layout module's
    /// line-granular traces use this).
    pub fn from_line_ids(addrs: Vec<u32>) -> Trace {
        let distinct = addrs
            .iter()
            .copied()
            .collect::<std::collections::HashSet<u32>>()
            .len();
        Trace { addrs, distinct }
    }

    /// The interned id sequence (used by the reuse-distance analysis).
    pub(crate) fn as_ids(&self) -> &[u32] {
        &self.addrs
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// `true` when the nest performed no accesses.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Number of distinct elements (the unavoidable cold misses).
    pub fn distinct(&self) -> usize {
        self.distinct
    }
}

/// Replacement policy of the simulated buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Least-recently-used.
    Lru,
    /// Belady's optimal (evict the entry reused farthest in the future).
    Opt,
}

/// Misses of a fully associative buffer of `capacity` elements under the
/// given policy. `capacity == 0` makes every access miss.
pub fn misses(trace: &Trace, capacity: usize, policy: Policy) -> u64 {
    if capacity == 0 {
        return trace.len() as u64;
    }
    match policy {
        Policy::Lru => misses_lru(trace, capacity),
        Policy::Opt => misses_opt(trace, capacity),
    }
}

/// `(capacity, misses)` for each requested capacity.
pub fn miss_curve(trace: &Trace, capacities: &[usize], policy: Policy) -> Vec<(usize, u64)> {
    capacities
        .iter()
        .map(|&c| (c, misses(trace, c, policy)))
        .collect()
}

/// Smallest capacity at which the policy achieves cold-misses-only,
/// found by binary search (miss counts are non-increasing in capacity for
/// both LRU — by inclusion — and OPT).
pub fn min_perfect_capacity(trace: &Trace, policy: Policy) -> usize {
    let cold = trace.distinct() as u64;
    let (mut lo, mut hi) = (1usize, trace.distinct().max(1));
    if misses(trace, hi, policy) > cold {
        return hi + 1; // cannot happen: full capacity never evicts
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if misses(trace, mid, policy) <= cold {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

fn misses_lru(trace: &Trace, capacity: usize) -> u64 {
    // last_use ticks are unique, so a BTreeMap<tick, elem> is a faithful
    // LRU queue.
    use std::collections::BTreeMap;
    let mut in_buf: HashMap<u32, u64> = HashMap::new(); // elem -> tick
    let mut queue: BTreeMap<u64, u32> = BTreeMap::new(); // tick -> elem
    let mut misses = 0u64;
    for (t, &a) in trace.addrs.iter().enumerate() {
        let t = t as u64;
        if let Some(old) = in_buf.insert(a, t) {
            queue.remove(&old);
        } else {
            misses += 1;
            if in_buf.len() > capacity {
                let (&oldest, &victim) = queue.iter().next().expect("buffer non-empty");
                queue.remove(&oldest);
                in_buf.remove(&victim);
            }
        }
        queue.insert(t, a);
    }
    misses
}

fn misses_opt(trace: &Trace, capacity: usize) -> u64 {
    // Precompute each access's next-use position (usize::MAX = never).
    let n = trace.addrs.len();
    let mut next_use = vec![usize::MAX; n];
    let mut last_pos: HashMap<u32, usize> = HashMap::new();
    for (t, &a) in trace.addrs.iter().enumerate() {
        if let Some(&p) = last_pos.get(&a) {
            next_use[p] = t;
        }
        last_pos.insert(a, t);
    }
    // Buffer as max-heap on next use, with lazy invalidation.
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(usize, u32)> = BinaryHeap::new();
    let mut in_buf: HashMap<u32, usize> = HashMap::new(); // elem -> its next use
    let mut misses = 0u64;
    for (t, &a) in trace.addrs.iter().enumerate() {
        let nu = next_use[t];
        if let std::collections::hash_map::Entry::Occupied(mut e) = in_buf.entry(a) {
            // Hit: refresh the element's next use.
            e.insert(nu);
            heap.push((nu, a));
            continue;
        }
        misses += 1;
        if nu == usize::MAX {
            continue; // never reused: OPT bypasses it (would evict it first)
        }
        if in_buf.len() >= capacity {
            // Find the live entry with the farthest next use.
            let victim = loop {
                let (d, v) = *heap.peek().expect("non-empty buffer has heap entries");
                if in_buf.get(&v) == Some(&d) {
                    break (d, v);
                }
                heap.pop(); // stale entry
            };
            if victim.0 <= nu {
                // The incoming element itself is the farthest-used one:
                // bypassing it is optimal; keep the buffer unchanged.
                continue;
            }
            heap.pop();
            in_buf.remove(&victim.1);
        }
        in_buf.insert(a, nu);
        heap.push((nu, a));
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    fn trace(src: &str) -> Trace {
        Trace::from_nest(&parse(src).expect("test source parses"))
    }

    #[test]
    fn full_capacity_gives_cold_misses_only() {
        let t =
            trace("array A[20][20]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j]; } }");
        for p in [Policy::Lru, Policy::Opt] {
            assert_eq!(misses(&t, t.distinct(), p), t.distinct() as u64, "{p:?}");
        }
    }

    #[test]
    fn zero_and_tiny_capacity() {
        let t = trace("array A[4]\nfor i = 1 to 4 { for j = 1 to 3 { A[i]; } }");
        assert_eq!(misses(&t, 0, Policy::Lru), t.len() as u64);
        // Capacity 1 with immediate reuse: A[i] hits within each row.
        assert_eq!(misses(&t, 1, Policy::Lru), 4);
        assert_eq!(misses(&t, 1, Policy::Opt), 4);
    }

    #[test]
    fn opt_never_worse_than_lru() {
        let t = trace(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        );
        for c in [1usize, 2, 4, 8, 16, 32, 64] {
            assert!(
                misses(&t, c, Policy::Opt) <= misses(&t, c, Policy::Lru),
                "capacity {c}"
            );
        }
    }

    #[test]
    fn miss_counts_monotone_in_capacity() {
        let t = trace(
            "array A[34][34]\nfor i = 2 to 32 { for j = 1 to 32 { A[i][j] = A[i-1][j] + A[i+1][j]; } }",
        );
        for p in [Policy::Lru, Policy::Opt] {
            let curve = miss_curve(&t, &[1, 2, 4, 8, 16, 32, 64, 128], p);
            for w in curve.windows(2) {
                assert!(w[1].1 <= w[0].1, "{p:?}: {curve:?}");
            }
        }
    }

    #[test]
    fn mws_capacity_achieves_cold_misses_under_opt() {
        // The operational meaning of the window: a buffer of MWS (+ the
        // current iteration's in-flight elements) suffices under OPT.
        for src in [
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
            "array A[20][20]\nfor i = 2 to 18 { for j = 1 to 18 { A[i][j] = A[i-1][j]; } }",
            "array A[60]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i + 3j]; } }",
        ] {
            let nest = parse(src).expect("source parses");
            let mws = crate::window::simulate(&nest).mws_total as usize;
            let refs = nest.refs().count();
            let t = Trace::from_nest(&nest);
            let perfect = min_perfect_capacity(&t, Policy::Opt);
            assert!(
                perfect <= mws + refs + 1,
                "{src}: perfect capacity {perfect} vs MWS {mws} (+{refs} in flight)"
            );
        }
    }

    #[test]
    fn min_perfect_capacity_is_tight() {
        let t =
            trace("array A[34][34]\nfor i = 2 to 33 { for j = 1 to 32 { A[i][j] = A[i-1][j]; } }");
        for p in [Policy::Lru, Policy::Opt] {
            let c = min_perfect_capacity(&t, p);
            assert_eq!(misses(&t, c, p), t.distinct() as u64);
            if c > 1 {
                assert!(misses(&t, c - 1, p) > t.distinct() as u64);
            }
        }
    }
}
