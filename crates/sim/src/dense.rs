//! Dense-event window engine: flat touch tables and a parallel chunked
//! sweep.
//!
//! The legacy tracker in [`crate::window`] keys every element by its
//! coordinate vector in a `HashMap`, paying an allocation plus a hash per
//! access. This engine removes both costs:
//!
//! * **Pass 1 (touch recording).** Each array gets a conservative bounding
//!   box of its subscripts, computed by interval analysis of the affine
//!   references over the nest's per-variable ranges
//!   ([`LoopNest::var_ranges`] / [`ArrayRef::index_ranges`]). Coordinates
//!   flatten to offsets in a pair of dense structure-of-arrays lanes —
//!   `first: Vec<u32>` / `last: Vec<u32>` — and the sweep walks the nest
//!   one *innermost run* at a time ([`try_for_each_inner_run`]): the
//!   outer-iteration part of each reference's linear form is hoisted out
//!   of the run, so the innermost loop advances the offset by a constant
//!   stride and dispatches to a stride-specialized kernel (stride 0 →
//!   one `min`/`max` per run; stride ±1 → contiguous branch-free lane
//!   updates that autovectorize; general stride → strided branch-free
//!   loop). See `DESIGN.md` §11 for the equivalence argument. Arrays
//!   whose box would blow the memory budget (or be absurdly sparse
//!   relative to the access count) fall back to the hashmap
//!   representation per array, keeping results exact for *any* nest,
//!   including out-of-declared-bounds accesses.
//!
//! * **Parallelism.** The validator guarantees outermost bounds are
//!   constants, so the outer loop range splits into contiguous chunks that
//!   partition the lexicographic iteration stream. Chunk boundaries are
//!   placed by *estimated iteration volume* (not outer-value count), so
//!   triangular nests get balanced chunks, and workers pull chunk indices
//!   from an atomic queue — finished threads steal the remaining chunks
//!   instead of idling behind the largest one. Each chunk is swept with
//!   chunk-local 32-bit time; tables merge strictly in chunk order with
//!   cumulative time offsets (`first` keeps the earliest chunk's value,
//!   `last` the latest), which makes the result bit-identical for every
//!   thread count and every steal order.
//!
//! * **Pass 2 (window sweep).** First/last events become a difference
//!   array (`+1` at `first`, `-1` at `last`) whose prefix sum is the live
//!   count after each iteration — so computing the full per-iteration
//!   profile costs one `i32` lane instead of per-array add/remove tables.

use crate::budget::{
    analytic_nest_bounds, estimated_iterations_of, panic_message, AnalysisBudget, BudgetTracker,
    POLL_INTERVAL,
};
use crate::exec::{outer_range, try_for_each_inner_run, try_for_each_iteration_outer};
use crate::window::{ArrayStats, SimResult};
use loopmem_ir::{
    AnalysisError, ArrayId, ArrayRef, Bounds, BoundsMethod, ElementBox, LoopNest, TripReason,
};
use loopmem_obs::{EventKind, Phase, TraceEvent};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why a governed sweep stopped early, before being mapped to a public
/// [`AnalysisError`] (the mapping is where the analytical fallback bounds
/// are attached).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SweepError {
    /// A resource budget tripped.
    Trip(TripReason),
    /// Intermediate arithmetic left `i64`/`u32` range.
    Overflow(String),
    /// The caller's `stop_after` prefix quota was reached: not a failure —
    /// [`sweep_chunk`] intercepts it and returns the partial tables. Never
    /// escapes to `sweep_all` callers.
    Stopped,
}

/// Chunk-local "never touched" sentinel for the `first` slot.
pub(crate) const UNTOUCHED: u32 = u32::MAX;

/// Work-stealing granularity: chunks per worker thread. More chunks mean
/// better balance on skewed (e.g. triangular) nests but more table merges;
/// 4 keeps merge traffic below a few percent of sweep time.
const CHUNKS_PER_THREAD: usize = 4;

/// Outer spans wider than this skip the per-value volume scan and fall
/// back to even splitting (a span this wide dwarfs the u32 iteration
/// budget anyway, so balance is moot).
const VOLUME_SCAN_LIMIT: u128 = 1 << 20;

/// Memory budget in bytes for all concurrently live dense touch tables.
const DENSE_BUDGET_BYTES: u128 = 768 << 20;

/// A dense table may be at most this many times larger than the
/// worst-case number of accesses to the array; beyond that the hashmap is
/// both smaller and not meaningfully slower.
const SPARSITY_FACTOR: u128 = 64;

/// Nests with (conservatively) fewer iterations than this are swept on
/// one thread: thread spawn/merge overhead dominates below it.
const PARALLEL_THRESHOLD: u128 = 1 << 17;

/// Upper limit on the iterations a salvage pass re-sweeps after a budget
/// trip. Keeps salvage cost bounded (a few milliseconds) even when the
/// tripped iteration cap was astronomically large.
const SALVAGE_MAX_ITERS: u64 = 1 << 22;

/// Chunk-grid size used whenever an enabled trace sink is attached. The
/// untraced grid is `threads × CHUNKS_PER_THREAD`, which would make the
/// poll/commit event stream depend on the thread count; pinning the grid
/// makes the trace bytes bit-identical across t ∈ {1, 2, 4} (answers are
/// chunking-invariant already — the merge folds strictly in chunk order).
const TRACE_CHUNK_PARTS: usize = 16;

/// Worker-thread count: `LOOPMEM_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn thread_count() -> usize {
    match std::env::var("LOOPMEM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// How one reference records its touches.
enum RefMode {
    /// Flattened linear form, split for the run kernels:
    /// `offset = outer · iter[..depth-1] + stride · iter[depth-1] + constant`,
    /// indexing the array's dense lanes. In-range by construction (the
    /// table's box encloses the reference over the nest's variable
    /// ranges), and free of `i64` overflow on every reachable term
    /// product and partial sum ([`dense_form`] verified both against the
    /// i128 interval — the run kernels rely on that invariant).
    Dense {
        outer: Vec<i64>,
        stride: i64,
        constant: i64,
    },
    /// Coordinate vector into the array's hashmap.
    Sparse,
}

struct RefPlan {
    array: usize,
    mode: RefMode,
    /// `true` when this is the array's only reference in the nest: the
    /// run kernels may then overwrite the `last` lane unconditionally
    /// (the reference's stamps strictly increase within and across runs),
    /// instead of folding with `max` against sibling references.
    sole: bool,
    r: ArrayRef,
}

struct Plan {
    /// Per-array dense box (`None` = hashmap fallback for that array).
    boxes: Vec<Option<ElementBox>>,
    refs: Vec<RefPlan>,
    /// Largest reference rank, for the shared coordinate buffer.
    max_rank: usize,
}

/// Conservative upper bound on the iteration count: the volume of the
/// per-variable range box (`0` when the nest provably never runs).
fn estimated_iterations(nest: &LoopNest) -> u128 {
    estimated_iterations_of(nest)
}

/// Builds the flattened linear index form of `r` into `bx`, or `None`
/// when any coefficient, reachable term product, or reachable partial
/// sum overflows `i64` (the caller then demotes the whole array to the
/// hashmap path).
fn dense_form(r: &ArrayRef, bx: &ElementBox, vr: &[(i64, i64)]) -> Option<(Vec<i64>, i64)> {
    let n = r.depth();
    let mut coeffs = vec![0i128; n];
    let mut constant: i128 = 0;
    for d in 0..r.rank() {
        let s = bx.strides()[d] as i128;
        for (k, &c) in r.matrix.row(d).iter().enumerate() {
            coeffs[k] += s * c as i128;
        }
        constant += s * (r.offset[d] as i128 - bx.lo()[d] as i128);
    }
    // The evaluator accumulates `constant + Σ coeffs[k]·iter[k]` in `i64`,
    // term by term, computing each product `coeffs[k]·iter[k]` in `i64`
    // first — so every reachable term product must fit on its own (a
    // fitting *sum* does not excuse an overflowing term: e.g.
    // `constant = -2^62, c = 2^62, x = 2` sums to `2^62` but the product
    // `2^63` wraps), and every reachable partial sum must fit too. Both
    // are verified here against the i128 interval; products are monotone
    // in `x`, so checking the two range endpoints covers every reachable
    // iterate.
    let fits = |x: i128| (i64::MIN as i128..=i64::MAX as i128).contains(&x);
    if !fits(constant) || coeffs.iter().any(|&c| !fits(c)) {
        return None;
    }
    let (mut plo, mut phi) = (constant, constant);
    for (k, &c) in coeffs.iter().enumerate() {
        let (a, b) = (c * vr[k].0 as i128, c * vr[k].1 as i128);
        if !fits(a) || !fits(b) {
            return None;
        }
        plo += a.min(b);
        phi += a.max(b);
        if !fits(plo) || !fits(phi) {
            return None;
        }
    }
    Some((coeffs.iter().map(|&c| c as i64).collect(), constant as i64))
}

/// Plans dense vs. sparse representation per array. `max_table_bytes`
/// tightens the built-in [`DENSE_BUDGET_BYTES`] cap: arrays whose box would
/// exceed the caller's byte budget are demoted to the hashmap (sparse)
/// path, which is in turn governed by the iteration budget during the
/// sweep.
fn make_plan(nest: &LoopNest, threads: usize, max_table_bytes: Option<u64>) -> Plan {
    let refs: Vec<ArrayRef> = nest.refs().cloned().collect();
    let narrays = nest.arrays().len();
    let max_rank = refs.iter().map(ArrayRef::rank).max().unwrap_or(0).max(1);
    let mut boxes: Vec<Option<ElementBox>> = vec![None; narrays];

    if let Some(vr) = nest.var_ranges() {
        let est_iters = estimated_iterations(nest);
        // Union of each reference's conservative subscript box, per array.
        let mut arr_ranges: Vec<Option<Vec<(i64, i64)>>> = vec![None; narrays];
        let mut ref_count = vec![0u128; narrays];
        for r in &refs {
            ref_count[r.array.0] += 1;
            let ir = r.index_ranges(&vr);
            match &mut arr_ranges[r.array.0] {
                slot @ None => *slot = Some(ir),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(&ir) {
                        a.0 = a.0.min(b.0);
                        a.1 = a.1.max(b.1);
                    }
                }
            }
        }
        // Steady state keeps one chunk-local table set per worker plus the
        // merged base live (the in-order fold retires out-of-order
        // stragglers as soon as the gap closes); split the byte budget
        // across them (8 bytes per cell).
        let budget_bytes = match max_table_bytes {
            Some(cap) => DENSE_BUDGET_BYTES.min(cap as u128),
            None => DENSE_BUDGET_BYTES,
        };
        let budget_cells = budget_bytes / (8 * (threads as u128 + 1));
        let mut used: u128 = 0;
        for a in 0..narrays {
            let Some(ranges) = &arr_ranges[a] else {
                continue;
            };
            let bx = ElementBox::new(ranges);
            let cells = bx.cells();
            let max_touched = est_iters.saturating_mul(ref_count[a]);
            let sparsity_cap = max_touched
                .saturating_mul(SPARSITY_FACTOR)
                .saturating_add(4096);
            if cells == 0 || cells > budget_cells.saturating_sub(used) || cells > sparsity_cap {
                continue;
            }
            // All refs of an array must share a representation; demote the
            // array if any linear form would overflow.
            if refs
                .iter()
                .filter(|r| r.array.0 == a)
                .all(|r| dense_form(r, &bx, &vr).is_some())
            {
                used += cells;
                boxes[a] = Some(bx);
            }
        }
        let ref_plans = refs
            .iter()
            .map(|r| {
                let a = r.array.0;
                let mode = match &boxes[a] {
                    Some(bx) => {
                        let (coeffs, constant) =
                            dense_form(r, bx, &vr).expect("checked during box selection");
                        let stride = *coeffs.last().expect("nest depth is at least 1");
                        RefMode::Dense {
                            outer: coeffs[..coeffs.len() - 1].to_vec(),
                            stride,
                            constant,
                        }
                    }
                    None => RefMode::Sparse,
                };
                RefPlan {
                    array: a,
                    mode,
                    sole: ref_count[a] == 1,
                    r: r.clone(),
                }
            })
            .collect();
        return Plan {
            boxes,
            refs: ref_plans,
            max_rank,
        };
    }

    // Provably empty nest: representation is irrelevant, keep everything
    // sparse.
    Plan {
        refs: refs
            .iter()
            .map(|r| RefPlan {
                array: r.array.0,
                mode: RefMode::Sparse,
                sole: false,
                r: r.clone(),
            })
            .collect(),
        boxes,
        max_rank,
    }
}

/// Pass-1 output of one contiguous outer-range chunk, with chunk-local
/// 32-bit time. Dense touch tables are structure-of-arrays: `first[a]`
/// and `last[a]` are separate lanes over the same flattened box offsets,
/// so the run kernels and the chunk merge update each lane with
/// branch-free `min`/`max`/fill loops the compiler can vectorize.
struct ChunkOut {
    iters: u64,
    accesses: Vec<u64>,
    /// First-touch stamp per cell, [`UNTOUCHED`] when never touched.
    first: Vec<Vec<u32>>,
    /// Last-touch stamp per cell; meaningless (0) where `first` is
    /// [`UNTOUCHED`] — always read through the `first` lane's mask.
    last: Vec<Vec<u32>>,
    sparse: Vec<HashMap<Vec<i64>, (u32, u32)>>,
    /// Chunk-local trace events (polls, the trailing commit), buffered
    /// here and flushed by [`MergeState::deposit`] in chunk-commit order
    /// only when the whole sweep succeeds — a failed sweep's set of
    /// completed chunks is schedule-dependent, so its events never reach
    /// the sink. Empty (never allocated) when no sink is attached.
    events: Vec<TraceEvent>,
}

/// Applies one dense reference over the run segment `j ∈ [jlo, jhi]`
/// stamped `t0, t0+1, …`: offsets walk `base + stride·j`. Every kernel
/// updates the `first` lane with a branch-free `min` (the [`UNTOUCHED`]
/// sentinel loses against any real stamp) and the `last` lane with a
/// branch-free `max` — both folds are commutative and associative, hence
/// equivalent to the legacy per-iteration first-touch branch no matter
/// how iterations and sibling references are regrouped. An array with a
/// single reference (`sole`) upgrades the `last` update to an
/// unconditional store: its stamps strictly increase within and across
/// segments, so the newest store always wins anyway.
///
/// Offsets never leave the table (the planner's box encloses the
/// reference) and never wrap in `i64` (the planner's `dense_form`
/// verified every reachable term product and partial sum).
#[inline]
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot kernel monomorphic
fn dense_run(
    first: &mut [u32],
    last: &mut [u32],
    base: i64,
    stride: i64,
    jlo: i64,
    jhi: i64,
    t0: u32,
    sole: bool,
) {
    let len = (jhi - jlo) as usize + 1; // ≤ POLL_INTERVAL by segmentation
    let tend = t0 + (len as u32 - 1);
    match stride {
        0 => {
            // The whole run hits one cell: first = min over the run = t0,
            // last = max over the run = tend.
            let off = base as usize;
            first[off] = first[off].min(t0);
            last[off] = if sole { tend } else { last[off].max(tend) };
        }
        1 => {
            // Contiguous ascending: lane position p ↔ stamp t0 + p.
            let start = (base + jlo) as usize;
            for (p, f) in first[start..start + len].iter_mut().enumerate() {
                *f = (*f).min(t0 + p as u32);
            }
            let lane = &mut last[start..start + len];
            if sole {
                for (p, l) in lane.iter_mut().enumerate() {
                    *l = t0 + p as u32;
                }
            } else {
                for (p, l) in lane.iter_mut().enumerate() {
                    *l = (*l).max(t0 + p as u32);
                }
            }
        }
        -1 => {
            // Contiguous descending: lane position p ↔ offset
            // base - jhi + p ↔ j = jhi - p ↔ stamp tend - p.
            let start = (base - jhi) as usize;
            for (p, f) in first[start..start + len].iter_mut().enumerate() {
                *f = (*f).min(tend - p as u32);
            }
            let lane = &mut last[start..start + len];
            if sole {
                for (p, l) in lane.iter_mut().enumerate() {
                    *l = tend - p as u32;
                }
            } else {
                for (p, l) in lane.iter_mut().enumerate() {
                    *l = (*l).max(tend - p as u32);
                }
            }
        }
        s => {
            // General stride: offsets within one run are distinct (s ≠ 0,
            // j distinct), so per-offset min/max (or plain stores for a
            // sole reference) stay branch-free.
            if sole {
                for (p, j) in (jlo..=jhi).enumerate() {
                    let off = (base + s * j) as usize;
                    let tp = t0 + p as u32;
                    first[off] = first[off].min(tp);
                    last[off] = tp;
                }
            } else {
                for (p, j) in (jlo..=jhi).enumerate() {
                    let off = (base + s * j) as usize;
                    let tp = t0 + p as u32;
                    first[off] = first[off].min(tp);
                    last[off] = last[off].max(tp);
                }
            }
        }
    }
}

/// Sweeps one chunk under governance, one *innermost run* at a time
/// ([`try_for_each_inner_run`]). Runs are cut into segments of at most
/// [`POLL_INTERVAL`] iterations, so that (a) the locally counted work is
/// charged to the shared tracker at exactly the same
/// `POLL_INTERVAL`-quanta trip points as the legacy per-iteration sweep
/// — budget trips and trip-time charges are bit-compatible — and (b)
/// cancellation is observed within ~a thousand iterations even inside a
/// single astronomically long run. Within a segment, dense references
/// dispatch to the stride-specialized [`dense_run`] kernels (the
/// outer-iteration part of the linear form is hoisted into `base`, so
/// the innermost loop walks a constant stride); sparse references keep
/// the legacy per-iteration checked-arithmetic loop (the dense path
/// needs none: the planner's `dense_form` already verified every
/// reachable term product and partial sum fits `i64`).
///
/// `stop_after` cleanly stops the sweep once exactly that many iterations
/// have been stamped, returning the partial tables instead of an error —
/// the salvage pass uses it to re-sweep a deterministic stream prefix.
fn sweep_chunk(
    nest: &LoopNest,
    plan: &Plan,
    lo: i64,
    hi: i64,
    tracker: &BudgetTracker,
    stop_after: Option<u64>,
) -> Result<ChunkOut, SweepError> {
    let narrays = nest.arrays().len();
    let depth = nest.depth();
    let mut first: Vec<Vec<u32>> = plan
        .boxes
        .iter()
        .map(|b| match b {
            Some(bx) => vec![UNTOUCHED; bx.cells() as usize],
            None => Vec::new(),
        })
        .collect();
    let mut last: Vec<Vec<u32>> = plan
        .boxes
        .iter()
        .map(|b| match b {
            Some(bx) => vec![0u32; bx.cells() as usize],
            None => Vec::new(),
        })
        .collect();
    let mut sparse: Vec<HashMap<Vec<i64>, (u32, u32)>> =
        (0..narrays).map(|_| HashMap::new()).collect();
    let mut accesses = vec![0u64; narrays];
    let mut idx_buf = vec![0i64; plan.max_rank];
    // Sparse references are processed per-iteration in statement order
    // (their hashmap update depends on processing order); dense and
    // sparse references touch disjoint state, and the dense lanes fold
    // with order-independent min/max, so splitting them preserves the
    // legacy interleaved result exactly.
    let sparse_refs: Vec<&RefPlan> = plan
        .refs
        .iter()
        .filter(|rp| matches!(rp.mode, RefMode::Sparse))
        .collect();
    let mut t: u32 = 0;
    let mut unpolled: u32 = 0;
    // Chunk-local event buffer: `ord` starts as (0, seq); the merge
    // rewrites the chunk component when the chunk is folded, so the key
    // is (chunk index, poll sequence) — schedule-independent.
    let tracing = tracker.trace().is_some();
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut seq: u64 = 0;
    let poll_event = |events: &mut Vec<TraceEvent>, seq: &mut u64, delta: u64| {
        events.push(TraceEvent {
            phase: Phase::Pass1,
            nest: None,
            ord: (0, *seq),
            thread: 0,
            kind: EventKind::Poll { delta },
        });
        *seq += 1;
    };
    let flow = try_for_each_inner_run(nest, lo, hi, &mut |iter, run_lo, run_hi| {
        let mut j = run_lo;
        let mut remaining = (run_hi as i128 - run_lo as i128) as u128 + 1;
        while remaining > 0 {
            // Stamps left before the chunk-local u32 clock would poison
            // the UNTOUCHED sentinel. The legacy sweep detected this one
            // (discarded) iteration later; the charge sequence is
            // identical because that poisoned iteration was never
            // charged either.
            let cap = UNTOUCHED - t;
            if cap == 0 {
                return ControlFlow::Break(SweepError::Overflow(
                    "chunk exceeds the engine's u32 iteration budget".to_string(),
                ));
            }
            let mut quota = (POLL_INTERVAL - unpolled).min(cap);
            if let Some(limit) = stop_after {
                let left = limit.saturating_sub(t as u64);
                if left == 0 {
                    return ControlFlow::Break(SweepError::Stopped);
                }
                quota = quota.min(left.min(u32::MAX as u64) as u32);
            }
            let seg = remaining.min(quota as u128) as u32;
            let seg_hi = j + (seg as i64 - 1);
            for rp in &plan.refs {
                accesses[rp.array] += seg as u64;
                if let RefMode::Dense {
                    outer,
                    stride,
                    constant,
                } = &rp.mode
                {
                    let mut base = *constant;
                    for (&c, &x) in outer.iter().zip(iter.iter()) {
                        base += c * x;
                    }
                    debug_assert!(
                        {
                            // The planner's no-overflow invariant, re-derived
                            // in i128: the hoisted base and both segment
                            // endpoint offsets agree with exact arithmetic.
                            let exact_base = *constant as i128
                                + outer
                                    .iter()
                                    .zip(iter.iter())
                                    .map(|(&c, &x)| c as i128 * x as i128)
                                    .sum::<i128>();
                            exact_base == base as i128
                                && i64::try_from(exact_base + *stride as i128 * j as i128).is_ok()
                                && i64::try_from(exact_base + *stride as i128 * seg_hi as i128)
                                    .is_ok()
                        },
                        "planner no-overflow invariant violated for array '{}'",
                        nest.arrays()[rp.array].name
                    );
                    dense_run(
                        &mut first[rp.array],
                        &mut last[rp.array],
                        base,
                        *stride,
                        j,
                        seg_hi,
                        t,
                        rp.sole,
                    );
                }
            }
            if !sparse_refs.is_empty() {
                for (tt, jj) in (t..).zip(j..=seg_hi) {
                    iter[depth - 1] = jj;
                    for rp in &sparse_refs {
                        let d = rp.r.rank();
                        for (dim, slot) in idx_buf[..d].iter_mut().enumerate() {
                            let mut s = rp.r.offset[dim] as i128;
                            for (&c, &x) in rp.r.matrix.row(dim).iter().zip(iter.iter()) {
                                s += (c as i128) * (x as i128);
                            }
                            match i64::try_from(s) {
                                Ok(v) => *slot = v,
                                Err(_) => {
                                    return ControlFlow::Break(SweepError::Overflow(format!(
                                        "subscript of array '{}' overflows i64 at iteration {iter:?}",
                                        nest.arrays()[rp.array].name
                                    )));
                                }
                            }
                        }
                        match sparse[rp.array].get_mut(&idx_buf[..d]) {
                            Some(cell) => cell.1 = tt,
                            None => {
                                sparse[rp.array].insert(idx_buf[..d].to_vec(), (tt, tt));
                            }
                        }
                    }
                }
            }
            t += seg;
            unpolled += seg;
            remaining -= seg as u128;
            if unpolled >= POLL_INTERVAL {
                if let Err(reason) = tracker.charge_iterations(unpolled as u64) {
                    return ControlFlow::Break(SweepError::Trip(reason));
                }
                if tracing {
                    poll_event(&mut events, &mut seq, unpolled as u64);
                }
                unpolled = 0;
                // Injected overflow: force the u32 clock-exhaustion branch
                // at the first charge observing the plan's threshold. The
                // cumulative counter is monotone and every charge is
                // followed by this consultation, so whether the fault
                // lands is identical for every thread count; which chunk
                // reports it may differ, but the error value is fixed.
                if tracker.fault_take_overflow() {
                    return ControlFlow::Break(SweepError::Overflow(
                        "chunk exceeds the engine's u32 iteration budget".to_string(),
                    ));
                }
            }
            if remaining > 0 {
                j = seg_hi + 1;
            }
        }
        ControlFlow::Continue(())
    });
    match flow {
        // A clean prefix stop keeps the partial tables: exactly
        // `stop_after` iterations are stamped.
        ControlFlow::Break(SweepError::Stopped) => {}
        ControlFlow::Break(err) => return Err(err),
        ControlFlow::Continue(()) => {}
    }
    if unpolled > 0 {
        tracker
            .charge_iterations(unpolled as u64)
            .map_err(SweepError::Trip)?;
        // Trailing-charge consultation: keeps the injected overflow
        // thread-count invariant even when the threshold lands on a
        // chunk's final partial quantum.
        if tracker.fault_take_overflow() {
            return Err(SweepError::Overflow(
                "chunk exceeds the engine's u32 iteration budget".to_string(),
            ));
        }
        if tracing {
            poll_event(&mut events, &mut seq, unpolled as u64);
        }
    }
    if tracing {
        events.push(TraceEvent {
            phase: Phase::Pass1,
            nest: None,
            ord: (0, seq),
            thread: 0,
            kind: EventKind::ChunkCommit {
                lo,
                hi,
                iters: t as u64,
            },
        });
    }
    Ok(ChunkOut {
        iters: t as u64,
        accesses,
        first,
        last,
        sparse,
        events,
    })
}

/// Folds one chunk's output (the *next* chunk in time order) into `base`,
/// rebasing the chunk's local times by the cumulative iteration count.
/// The fold is lane-wise and branch-free: `first` keeps the earlier
/// chunk's stamp via a saturating-rebased `min` (an [`UNTOUCHED`] chunk
/// cell saturates back to `UNTOUCHED` and never wins, while every real
/// rebased stamp post-dates every base stamp, so `min` selects the base
/// exactly when it was touched); `last` is a rebased overwrite masked by
/// the chunk's own `first` lane — a cell the later chunk touched always
/// post-dates every base stamp, and an untouched chunk cell (whose
/// `last` lane holds a meaningless 0) must leave the base value alone,
/// which is why a plain `max` would be wrong (`0 + off` could exceed a
/// real base stamp). Folding strictly in chunk order makes the result
/// independent of which worker swept which chunk.
fn merge_into(base: &mut ChunkOut, c: ChunkOut) {
    let off64 = base.iters;
    base.iters += c.iters;
    assert!(
        base.iters <= UNTOUCHED as u64,
        "nest exceeds the engine's u32 iteration budget"
    );
    let off = off64 as u32;
    for (total, add) in base.accesses.iter_mut().zip(&c.accesses) {
        *total += add;
    }
    for (bt, ct) in base.first.iter_mut().zip(&c.first) {
        for (bf, &cf) in bt.iter_mut().zip(ct) {
            *bf = (*bf).min(cf.saturating_add(off));
        }
    }
    for ((bt, ct), cft) in base.last.iter_mut().zip(&c.last).zip(&c.first) {
        for ((bl, &cl), &cf) in bt.iter_mut().zip(ct).zip(cft) {
            *bl = if cf == UNTOUCHED { *bl } else { cl + off };
        }
    }
    for (bm, cm) in base.sparse.iter_mut().zip(c.sparse) {
        for (k, v) in cm {
            match bm.entry(k) {
                Entry::Occupied(mut e) => e.get_mut().1 = v.1 + off,
                Entry::Vacant(e) => {
                    e.insert((v.0 + off, v.1 + off));
                }
            }
        }
    }
}

/// Chunk outputs folded into a growing prefix, strictly in chunk order.
/// Workers deposit out-of-order results in `pending`; whoever deposits the
/// next needed chunk folds the ready run, so memory stays bounded by the
/// worker count plus the occasional straggler gap instead of the full
/// chunk count.
struct MergeState {
    /// Chunks `[0, upto)` are already folded into `base`.
    upto: usize,
    base: Option<ChunkOut>,
    pending: BTreeMap<usize, ChunkOut>,
    /// Trace events of folded chunks, accumulated in chunk-commit order
    /// (the fold is strictly in chunk order, so this sequence is
    /// schedule-independent). Flushed by `sweep_all` on success.
    events: Vec<TraceEvent>,
}

impl MergeState {
    fn deposit(&mut self, k: usize, mut out: ChunkOut) {
        // Stamp the chunk component of the ordering key: chunk k's events
        // sort after every chunk < k and after the sweep's span-begin
        // (which uses chunk component 0).
        for e in &mut out.events {
            e.ord.0 = 1 + k as u64;
        }
        self.pending.insert(k, out);
        loop {
            let next = self.upto;
            let Some(mut c) = self.pending.remove(&next) else {
                break;
            };
            self.upto += 1;
            self.events.append(&mut c.events);
            match &mut self.base {
                None => self.base = Some(c),
                Some(b) => merge_into(b, c),
            }
        }
    }
}

/// Pass 2: difference arrays over iteration time. An element first touched
/// at `f` and last touched at `l` is in the window for `f ≤ t < l`, so it
/// contributes `+1` at `f` and `-1` at `l`; the running prefix sum is the
/// live count after each iteration.
fn finish(narrays: usize, merged: ChunkOut, want_profile: bool) -> SimResult {
    let iterations = merged.iters;
    let it = iterations as usize;
    let mut total_diff = vec![0i32; it];
    let mut arr_diff = vec![0i32; it];
    let mut per_array = HashMap::new();
    for a in 0..narrays {
        if merged.accesses[a] == 0 {
            continue;
        }
        let mut distinct = 0u64;
        {
            let mut mark = |f: u32, l: u32| {
                distinct += 1;
                if f == l {
                    return;
                }
                arr_diff[f as usize] += 1;
                arr_diff[l as usize] -= 1;
                total_diff[f as usize] += 1;
                total_diff[l as usize] -= 1;
            };
            for (&f, &l) in merged.first[a].iter().zip(&merged.last[a]) {
                if f != UNTOUCHED {
                    mark(f, l);
                }
            }
            for &(f, l) in merged.sparse[a].values() {
                mark(f, l);
            }
        }
        let mut cur = 0i64;
        let mut mws = 0i64;
        for d in arr_diff.iter_mut() {
            cur += *d as i64;
            mws = mws.max(cur);
            *d = 0; // reuse the lane for the next array
        }
        per_array.insert(
            ArrayId(a),
            ArrayStats {
                distinct,
                accesses: merged.accesses[a],
                mws: mws as u64,
            },
        );
    }
    let mut cur = 0i64;
    let mut mws_total = 0i64;
    let mut profile = want_profile.then(|| Vec::with_capacity(it));
    for &d in &total_diff {
        cur += d as i64;
        mws_total = mws_total.max(cur);
        if let Some(p) = profile.as_mut() {
            p.push(cur as u64);
        }
    }
    SimResult {
        iterations,
        per_array,
        mws_total: mws_total as u64,
        profile,
    }
}

/// Even split of the outer range into at most `parts` contiguous chunks —
/// the fallback when no volume information is available.
fn split_range(lo: i64, hi: i64, parts: usize) -> Vec<(i64, i64)> {
    if lo > hi || parts <= 1 {
        return vec![(lo, hi)];
    }
    let span = (hi as i128 - lo as i128 + 1) as u128;
    let parts = (parts as u128).min(span);
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = lo;
    for p in 1..=parts {
        // The prefix width `span·p/parts` can exceed `i64` for spans wider
        // than `i64::MAX` (e.g. bounds near the `i64` limits), so the chunk
        // end is computed in `i128`; the result is always in `[lo, hi]` and
        // casts back losslessly.
        let end = (lo as i128 + (span * p / parts) as i128 - 1) as i64;
        out.push((start, end));
        start = end.saturating_add(1);
    }
    out
}

/// Estimated iteration volume of one outermost-loop value: the product of
/// conservative inner-range lengths with the outermost variable pinned to
/// `v` (the same interval enclosure as [`LoopNest::var_ranges`], one level
/// sharper). Exact for rectangular and outer-dependent triangular bounds;
/// only load balance depends on it, never results.
fn outer_volume(nest: &LoopNest, v: i64) -> u128 {
    let n = nest.depth();
    let mut ranges = vec![(0i64, 0i64); n];
    ranges[0] = (v, v);
    let mut vol: u128 = 1;
    for k in 1..n {
        let l = &nest.loops()[k];
        let (lo, _) = l.lower.value_range(&ranges);
        let (_, hi) = l.upper.value_range(&ranges);
        if lo > hi {
            return 0;
        }
        ranges[k] = (lo, hi);
        vol = vol.saturating_mul((hi.saturating_sub(lo).saturating_add(1)) as u128);
    }
    vol
}

/// Splits the outer range into at most `parts` contiguous chunks whose
/// *estimated iteration volumes* are balanced. An even split of outer
/// values gives a triangular nest (`for j = i to N`) chunks whose work
/// differs by the triangle's aspect ratio; cutting by cumulative volume
/// keeps every chunk within one outer value's volume of the ideal share.
fn chunk_ranges(nest: &LoopNest, lo: i64, hi: i64, parts: usize) -> Vec<(i64, i64)> {
    if lo > hi || parts <= 1 {
        return vec![(lo, hi)];
    }
    let span = (hi as i128 - lo as i128 + 1) as u128;
    if span > VOLUME_SCAN_LIMIT {
        return split_range(lo, hi, parts);
    }
    let parts = parts.min(span as usize);
    let vols: Vec<u128> = (lo..=hi).map(|v| outer_volume(nest, v).max(1)).collect();
    let total: u128 = vols.iter().fold(0u128, |a, &b| a.saturating_add(b));
    let mut out = Vec::with_capacity(parts);
    let mut start = lo;
    let mut acc: u128 = 0;
    for (i, &w) in vols.iter().enumerate() {
        acc = acc.saturating_add(w);
        let v = lo + i as i64;
        // Close the current chunk once the cumulative volume reaches the
        // next ideal cut `total·(k+1)/parts` (cross-multiplied to stay in
        // integers), keeping the final chunk open through `hi`.
        let produced = out.len() as u128;
        if v < hi
            && out.len() + 1 < parts
            && acc.saturating_mul(parts as u128) >= total.saturating_mul(produced + 1)
        {
            out.push((start, v));
            start = v + 1;
        }
    }
    out.push((start, hi));
    out
}

/// Worker-thread count for a nest when the caller did not pin one:
/// [`thread_count`] workers, except that small nests stay serial.
pub(crate) fn auto_threads(nest: &LoopNest) -> usize {
    if estimated_iterations(nest) < PARALLEL_THRESHOLD {
        1
    } else {
        thread_count()
    }
}

/// Pass 1 over the whole nest: plan, chunk, sweep (work-stealing when
/// `threads > 1`), and fold the chunks strictly in chunk order. The
/// returned tables are bit-identical for every `threads` value. On a
/// budget trip or overflow, the error with the smallest chunk index wins
/// (workers stop pulling chunks once any error is recorded), matching the
/// error a serial sweep reports when the failing computation is
/// deterministic.
fn sweep_all(
    nest: &LoopNest,
    nest_index: usize,
    threads: usize,
    tracker: &BudgetTracker,
    max_table_bytes: Option<u64>,
) -> Result<(Plan, ChunkOut), SweepError> {
    let (olo, ohi) = outer_range(nest);
    let threads = threads.max(1);
    let tracing = tracker.trace().is_some();
    let started = tracing.then(std::time::Instant::now);
    // An injected table-rejection fault plans as if `max_table_bytes` were
    // zero: every array demotes to the sparse path (results stay exact).
    let plan_cap = if tracker.fault_reject_tables() {
        Some(0)
    } else {
        max_table_bytes
    };
    let plan = make_plan(nest, threads, plan_cap);
    // Tracing pins the chunk grid (see [`TRACE_CHUNK_PARTS`]) so the
    // event stream is independent of the worker count; the untraced path
    // keeps its thread-scaled grid untouched.
    let chunks = if tracing {
        chunk_ranges(nest, olo, ohi, TRACE_CHUNK_PARTS)
    } else if threads == 1 {
        vec![(olo, ohi)]
    } else {
        chunk_ranges(nest, olo, ohi, threads * CHUNKS_PER_THREAD)
    };
    if chunks.len() <= 1 {
        let (lo, hi) = chunks[0];
        let mut out = sweep_chunk(nest, &plan, lo, hi, tracker, None)?;
        if tracing {
            for e in &mut out.events {
                e.ord.0 = 1;
            }
            let events = std::mem::take(&mut out.events);
            flush_sweep_events(tracker, nest_index, started, events, out.iters);
        }
        return Ok((plan, out));
    }
    let workers = threads.min(chunks.len());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let failure: Mutex<Option<(usize, SweepError)>> = Mutex::new(None);
    // A panic inside a chunk is caught here and re-raised with its
    // original payload after the scope joins; letting it escape the
    // scoped thread would replace the payload with the generic
    // "a scoped thread panicked", diverging from the serial sweep.
    let panicked: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);
    let state = Mutex::new(MergeState {
        upto: 0,
        base: None,
        pending: BTreeMap::new(),
        events: Vec::new(),
    });
    {
        let (plan, chunks, next, stop, failure, panicked, state) =
            (&plan, &chunks, &next, &stop, &failure, &panicked, &state);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= chunks.len() {
                        break;
                    }
                    let (lo, hi) = chunks[k];
                    match catch_unwind(AssertUnwindSafe(|| {
                        sweep_chunk(nest, plan, lo, hi, tracker, None)
                    })) {
                        Ok(Ok(out)) => state.lock().expect("merge state poisoned").deposit(k, out),
                        Ok(Err(e)) => {
                            // Overflow outranks budget trips: a u32
                            // time-stamp overflow fires at a fixed point in
                            // the charged-iteration stream, while which
                            // *other* chunks then trip the shared budget is
                            // schedule-dependent. Among equal ranks the
                            // smallest chunk index wins, so the reported
                            // failure is the same at every thread count.
                            let rank = |err: &SweepError| match err {
                                SweepError::Overflow(_) => 0usize,
                                _ => 1,
                            };
                            let mut slot = failure.lock().expect("failure slot poisoned");
                            let replace = match slot.as_ref() {
                                None => true,
                                Some((prev_k, prev_e)) => (rank(&e), k) < (rank(prev_e), *prev_k),
                            };
                            if replace {
                                *slot = Some((k, e));
                            }
                            stop.store(true, Ordering::Relaxed);
                        }
                        Err(payload) => {
                            let mut slot = panicked.lock().expect("panic slot poisoned");
                            let replace = match slot.as_ref() {
                                None => true,
                                Some((prev_k, _)) => k < *prev_k,
                            };
                            if replace {
                                *slot = Some((k, payload));
                            }
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
    }
    // A panic fires at a fixed point in the iteration stream (like an
    // overflow), so it ranks with the deterministic failures: between a
    // panic and a rank-0 error the smaller chunk index wins, and any
    // schedule-dependent budget trip loses to it — the serial sweep would
    // have panicked before ever reaching the later chunk.
    let panic_hit = panicked.into_inner().expect("panic slot poisoned");
    let err_hit = failure.into_inner().expect("failure slot poisoned");
    if let Some((pk, payload)) = panic_hit {
        let panic_wins = match &err_hit {
            Some((ek, SweepError::Overflow(_))) => pk < *ek,
            _ => true,
        };
        if panic_wins {
            std::panic::resume_unwind(payload);
        }
    }
    if let Some((_, e)) = err_hit {
        return Err(e);
    }
    let st = state.into_inner().expect("merge state poisoned");
    debug_assert_eq!(st.upto, chunks.len(), "every chunk merged");
    let merged = st.base.expect("at least one chunk swept");
    if tracing {
        flush_sweep_events(tracker, nest_index, started, st.events, merged.iters);
    }
    Ok((plan, merged))
}

/// Flushes one successful sweep's buffered chunk events to the attached
/// sink, bracketed by the nest's pass-1 span. Everything canonical in
/// the batch (ordering keys, deltas, the charged total) derives from the
/// nest and the pinned chunk grid alone, never from the schedule; only
/// the span's wall-clock micros vary, and those are excluded from the
/// canonical rendering.
fn flush_sweep_events(
    tracker: &BudgetTracker,
    nest_index: usize,
    started: Option<std::time::Instant>,
    events: Vec<TraceEvent>,
    iters: u64,
) {
    let Some(sink) = tracker.trace() else {
        return;
    };
    let micros = started.map_or(0, |s| s.elapsed().as_micros() as u64);
    let nest = Some(nest_index as u32);
    let mut out = Vec::with_capacity(events.len() + 2);
    out.push(TraceEvent {
        phase: Phase::Pass1,
        nest,
        ord: (0, 0),
        thread: 0,
        kind: EventKind::SpanBegin { label: "pass1" },
    });
    for mut e in events {
        e.nest = nest;
        out.push(e);
    }
    out.push(TraceEvent {
        phase: Phase::Pass1,
        nest,
        ord: (u64::MAX, 0),
        thread: 0,
        kind: EventKind::SpanEnd {
            label: "pass1",
            micros,
            charged: iters,
        },
    });
    sink.record_all(out);
}

/// Merged pass-1 touch tables of one nest in nest-local 32-bit time —
/// everything the program engine needs to rebase the nest onto a global
/// timeline. `boxes[a]` is the dense box backing the `first[a]`/`last[a]`
/// lanes (a cell is touched iff `first[a][off] != UNTOUCHED`); elements
/// the planner demoted to the hashmap path sit in `sparse[a]`.
pub(crate) struct NestPass1 {
    pub iters: u64,
    pub accesses: Vec<u64>,
    pub boxes: Vec<Option<ElementBox>>,
    pub first: Vec<Vec<u32>>,
    pub last: Vec<Vec<u32>>,
    pub sparse: Vec<HashMap<Vec<i64>, (u32, u32)>>,
}

/// Runs pass 1 only and hands the merged tables to the caller.
pub(crate) fn pass1(nest: &LoopNest, threads: usize) -> NestPass1 {
    let tracker = BudgetTracker::unlimited();
    match sweep_all(nest, 0, threads, &tracker, None) {
        Ok((plan, merged)) => NestPass1 {
            iters: merged.iters,
            accesses: merged.accesses,
            boxes: plan.boxes,
            first: merged.first,
            last: merged.last,
            sparse: merged.sparse,
        },
        // An unlimited tracker never trips; overflow keeps the legacy
        // contract (panic) for callers without a governed path.
        Err(SweepError::Trip(_)) => unreachable!("unlimited budget tripped"),
        Err(SweepError::Overflow(msg)) => panic!("{msg}"),
        Err(SweepError::Stopped) => unreachable!("no prefix quota was set"),
    }
}

/// Benchmark hook: runs the lane-split pass-1 sweep only (no pass-2
/// window fold) with an unlimited budget and returns the iteration
/// count. The touch tables are routed through [`std::hint::black_box`]
/// so the optimizer cannot discard the recording work being measured.
pub fn bench_pass1(nest: &LoopNest, threads: usize) -> u64 {
    let tracker = BudgetTracker::unlimited();
    match sweep_all(nest, 0, threads, &tracker, None) {
        Ok((_, merged)) => {
            let iters = merged.iters;
            std::hint::black_box(&merged.first);
            std::hint::black_box(&merged.last);
            std::hint::black_box(&merged.sparse);
            iters
        }
        Err(SweepError::Trip(_)) => unreachable!("unlimited budget tripped"),
        Err(SweepError::Overflow(msg)) => panic!("{msg}"),
        Err(SweepError::Stopped) => unreachable!("no prefix quota was set"),
    }
}

/// The pre-lane-split pass-1 inner loop, kept as the perfsuite's
/// `pass1_throughput` comparator: per-iteration affine dot products into
/// an interleaved `(first, last)` array-of-structs table, with the
/// branchy first-touch test the lane-split kernels replace.
/// Single-threaded and ungoverned; returns the iteration count, with
/// the tables routed through [`std::hint::black_box`].
pub fn bench_pass1_interleaved(nest: &LoopNest) -> u64 {
    struct LegacyRef<'a> {
        array: usize,
        coeffs: Vec<i64>,
        constant: i64,
        sparse: Option<&'a ArrayRef>,
    }
    let plan = make_plan(nest, 1, None);
    let lrefs: Vec<LegacyRef> = plan
        .refs
        .iter()
        .map(|rp| match &rp.mode {
            RefMode::Dense {
                outer,
                stride,
                constant,
            } => {
                let mut coeffs = outer.clone();
                coeffs.push(*stride);
                LegacyRef {
                    array: rp.array,
                    coeffs,
                    constant: *constant,
                    sparse: None,
                }
            }
            RefMode::Sparse => LegacyRef {
                array: rp.array,
                coeffs: Vec::new(),
                constant: 0,
                sparse: Some(&rp.r),
            },
        })
        .collect();
    let mut dense: Vec<Vec<(u32, u32)>> = plan
        .boxes
        .iter()
        .map(|b| match b {
            Some(bx) => vec![(UNTOUCHED, 0u32); bx.cells() as usize],
            None => Vec::new(),
        })
        .collect();
    let mut sparse: Vec<HashMap<Vec<i64>, (u32, u32)>> =
        (0..nest.arrays().len()).map(|_| HashMap::new()).collect();
    let mut idx_buf = vec![0i64; plan.max_rank];
    let mut t: u32 = 0;
    let (lo, hi) = outer_range(nest);
    let flow = try_for_each_iteration_outer::<(), _>(nest, lo, hi, &mut |iter| {
        for lr in &lrefs {
            match lr.sparse {
                None => {
                    let mut off = lr.constant;
                    for (&c, &x) in lr.coeffs.iter().zip(iter) {
                        off += c * x;
                    }
                    let cell = &mut dense[lr.array][off as usize];
                    if cell.0 == UNTOUCHED {
                        *cell = (t, t);
                    } else {
                        cell.1 = t;
                    }
                }
                Some(r) => {
                    let d = r.rank();
                    for (dim, slot) in idx_buf[..d].iter_mut().enumerate() {
                        let mut s = r.offset[dim] as i128;
                        for (&c, &x) in r.matrix.row(dim).iter().zip(iter) {
                            s += (c as i128) * (x as i128);
                        }
                        *slot = i64::try_from(s).expect("subscript overflows i64");
                    }
                    match sparse[lr.array].get_mut(&idx_buf[..d]) {
                        Some(cell) => cell.1 = t,
                        None => {
                            sparse[lr.array].insert(idx_buf[..d].to_vec(), (t, t));
                        }
                    }
                }
            }
        }
        t = t.checked_add(1).expect("u32 iteration budget exceeded");
        ControlFlow::Continue(())
    });
    let _ = flow; // the closure never breaks
    std::hint::black_box(&dense);
    std::hint::black_box(&sparse);
    t as u64
}

/// Exact maximum window size of the lexicographic stream prefix
/// `[0, quota)`: a single-threaded, budget-free re-sweep with a clean stop
/// at the quota, folded through the standard difference-lane pass 2.
///
/// Soundness of using it as a *lower bound* on the full MWS: within a
/// stream prefix every recorded first touch is the element's true first
/// touch, and every recorded last touch is no later than its true last
/// touch, so the prefix live count at any time never exceeds the true live
/// count — the prefix maximum is ≤ the true maximum (DESIGN.md §13).
fn prefix_mws(nest: &LoopNest, quota: u64, max_table_bytes: Option<u64>) -> Option<u64> {
    let tracker = BudgetTracker::unlimited();
    let plan = make_plan(nest, 1, max_table_bytes);
    let (lo, hi) = outer_range(nest);
    let out = sweep_chunk(nest, &plan, lo, hi, &tracker, Some(quota)).ok()?;
    Some(finish(nest.arrays().len(), out, false).mws_total)
}

/// The `Exhausted` payload after a budget trip: when the trip has a
/// deterministic logical position (a real iteration-cap trip, or an
/// injected poll fault — see [`BudgetTracker::salvage_quota`]), salvage the
/// already-earned work by re-sweeping that exact stream prefix and
/// reporting its MWS as the lower bound; otherwise (deadline, table caps,
/// real cancellation) fall back to the purely analytic ladder. The salvaged
/// payload depends only on the nest and the quota — never on thread count
/// or steal order — so it stays bit-identical across `t ∈ {1, 2, 4}`.
fn salvage_nest_bounds(
    nest: &LoopNest,
    nest_index: usize,
    tracker: &BudgetTracker,
    reason: TripReason,
    max_table_bytes: Option<u64>,
) -> Bounds {
    let analytic = analytic_nest_bounds(nest);
    let Some(quota) = tracker.salvage_quota(reason) else {
        return analytic;
    };
    let mut quota = quota.min(SALVAGE_MAX_ITERS);
    if let Some(cap) = max_table_bytes {
        // The prefix fold's difference lane costs 4 bytes per iteration;
        // honour the caller's byte cap during salvage too.
        quota = quota.min(cap / 4);
    }
    if quota == 0 {
        return analytic;
    }
    match catch_unwind(AssertUnwindSafe(|| {
        prefix_mws(nest, quota, max_table_bytes)
    })) {
        Ok(Some(prefix)) => {
            // The salvage event carries only plan/quota-derived values
            // (the quota and the deterministic prefix bound), so it is
            // safe to emit on this failure path: which worker observed
            // the trip varies, what was salvaged does not.
            if let Some(sink) = tracker.trace() {
                sink.record(TraceEvent {
                    phase: Phase::Pass1,
                    nest: Some(nest_index as u32),
                    ord: (u64::MAX, 1),
                    thread: 0,
                    kind: EventKind::Salvage {
                        iterations: quota,
                        lower: prefix.max(analytic.lower),
                    },
                });
            }
            Bounds {
                lower: prefix.max(analytic.lower),
                upper: analytic.upper,
                method: BoundsMethod::SalvagedPrefix,
            }
        }
        _ => analytic,
    }
}

/// Governed pass 1 of one nest: panics are contained with `catch_unwind`
/// (a poisoned nest yields [`AnalysisError::NestPanicked`] tagged with
/// `nest_index`), budget trips degrade to salvaged-prefix or analytic
/// bounds ([`salvage_nest_bounds`]), and overflow reports
/// [`AnalysisError::Overflow`]. Nests whose pass-2 difference lane alone
/// would exceed `max_table_bytes` (4 bytes per estimated iteration, the
/// same criterion as the program engine's global gate) are refused up
/// front, so one oversized nest in a batch degrades alone.
pub(crate) fn try_pass1(
    nest_index: usize,
    nest: &LoopNest,
    threads: usize,
    tracker: &BudgetTracker,
    max_table_bytes: Option<u64>,
) -> Result<NestPass1, AnalysisError> {
    if let Some(cap) = max_table_bytes {
        if estimated_iterations_of(nest).saturating_mul(4) > cap as u128 {
            return Err(AnalysisError::Exhausted {
                reason: TripReason::MaxTableBytes,
                partial: analytic_nest_bounds(nest),
            });
        }
    }
    let swept = catch_unwind(AssertUnwindSafe(|| {
        if tracker.fault_take_panic(nest_index) {
            panic!("{}", crate::faults::INJECTED_PANIC);
        }
        sweep_all(nest, nest_index, threads, tracker, max_table_bytes)
    }));
    match swept {
        Ok(Ok((plan, merged))) => Ok(NestPass1 {
            iters: merged.iters,
            accesses: merged.accesses,
            boxes: plan.boxes,
            first: merged.first,
            last: merged.last,
            sparse: merged.sparse,
        }),
        Ok(Err(SweepError::Trip(reason))) => Err(AnalysisError::Exhausted {
            reason,
            partial: salvage_nest_bounds(nest, nest_index, tracker, reason, max_table_bytes),
        }),
        Ok(Err(SweepError::Overflow(context))) => Err(AnalysisError::Overflow { context }),
        Ok(Err(SweepError::Stopped)) => unreachable!("no prefix quota was set"),
        Err(payload) => Err(AnalysisError::NestPanicked {
            nest: nest_index,
            message: panic_message(payload),
        }),
    }
}

/// Runs the dense engine with exactly the given worker-thread count.
/// Results are bit-identical for every `threads` value and to the legacy
/// hashmap engine: chunks partition the lexicographic iteration stream in
/// order, and [`MergeState`] folds them strictly in chunk order no matter
/// which worker swept which chunk.
pub(crate) fn run(nest: &LoopNest, want_profile: bool, threads: usize) -> SimResult {
    let narrays = nest.arrays().len();
    let tracker = BudgetTracker::unlimited();
    match sweep_all(nest, 0, threads, &tracker, None) {
        Ok((_, merged)) => finish(narrays, merged, want_profile),
        Err(SweepError::Trip(_)) => unreachable!("unlimited budget tripped"),
        Err(SweepError::Overflow(msg)) => panic!("{msg}"),
        Err(SweepError::Stopped) => unreachable!("no prefix quota was set"),
    }
}

/// Governed dense-engine run: like [`run`], but never panics and never
/// exceeds `budget`. On a budget trip the result degrades to analytical
/// bounds carried inside [`AnalysisError::Exhausted`]; the payload depends
/// only on the nest (interval analysis), not on sweep progress, so it is
/// bit-identical for every thread count and steal order.
pub(crate) fn try_run(
    nest: &LoopNest,
    want_profile: bool,
    threads: usize,
    budget: &AnalysisBudget,
) -> Result<SimResult, AnalysisError> {
    let tracker = BudgetTracker::new(budget);
    try_run_impl(
        nest,
        want_profile,
        threads,
        &tracker,
        budget.max_table_bytes(),
        true,
    )
}

/// [`try_run`] charging an externally owned tracker, so a caller running
/// many simulations (the optimizer's candidate sweep) shares one deadline
/// and one cumulative iteration count across all of them. Trip payloads
/// stay purely analytic here: the optimizer compares many candidates
/// against one shared budget, and re-sweeping a salvage prefix per failed
/// candidate would multiply the tripped budget's cost for bounds nobody
/// reads (the search reports the *original* nest's bounds, not a
/// candidate's).
pub(crate) fn try_run_tracked(
    nest: &LoopNest,
    want_profile: bool,
    threads: usize,
    tracker: &BudgetTracker,
    max_table_bytes: Option<u64>,
) -> Result<SimResult, AnalysisError> {
    try_run_impl(nest, want_profile, threads, tracker, max_table_bytes, false)
}

fn try_run_impl(
    nest: &LoopNest,
    want_profile: bool,
    threads: usize,
    tracker: &BudgetTracker,
    max_table_bytes: Option<u64>,
    salvage: bool,
) -> Result<SimResult, AnalysisError> {
    let narrays = nest.arrays().len();
    let swept = catch_unwind(AssertUnwindSafe(|| {
        if tracker.fault_take_panic(0) {
            panic!("{}", crate::faults::INJECTED_PANIC);
        }
        let (_, merged) = sweep_all(nest, 0, threads, tracker, max_table_bytes)?;
        Ok(finish(narrays, merged, want_profile))
    }));
    match swept {
        Ok(Ok(res)) => Ok(res),
        Ok(Err(SweepError::Trip(reason))) => Err(AnalysisError::Exhausted {
            reason,
            partial: if salvage {
                salvage_nest_bounds(nest, 0, tracker, reason, max_table_bytes)
            } else {
                analytic_nest_bounds(nest)
            },
        }),
        Ok(Err(SweepError::Overflow(context))) => Err(AnalysisError::Overflow { context }),
        Ok(Err(SweepError::Stopped)) => unreachable!("no prefix quota was set"),
        Err(payload) => Err(AnalysisError::NestPanicked {
            nest: 0,
            message: panic_message(payload),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{simulate_hashmap_with_profile, SimResult};
    use loopmem_ir::parse;

    fn assert_same(a: &SimResult, b: &SimResult) {
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.mws_total, b.mws_total);
        assert_eq!(a.per_array, b.per_array);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn matches_hashmap_engine_on_small_nests() {
        for src in [
            "array A[12][12]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
            "array A[10]\narray B[5]\nfor i = 1 to 10 { for j = 1 to 5 { A[i] = B[j]; } }",
            "array A[10][10]\nfor i = 1 to 10 { for j = i to 10 { A[i][j] = A[j][i]; } }",
        ] {
            let nest = parse(src).unwrap();
            assert_same(&run(&nest, true, 1), &simulate_hashmap_with_profile(&nest));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let nest =
            parse("array A[64][64]\nfor i = 2 to 60 { for j = 1 to 60 { A[i][j] = A[i-1][j]; } }")
                .unwrap();
        let one = run(&nest, true, 1);
        for threads in [2, 3, 5, 16] {
            assert_same(&run(&nest, true, threads), &one);
        }
    }

    #[test]
    fn sparse_fallback_is_exact() {
        // Subscript stride so large the dense box fails the sparsity test.
        let nest =
            parse("array X[2000000000]\nfor i = 1 to 20 { for j = 1 to 5 { X[100000000i + j]; } }")
                .unwrap();
        let plan = make_plan(&nest, 1, None);
        assert!(plan.boxes.iter().all(Option::is_none), "expected fallback");
        assert_same(&run(&nest, true, 1), &simulate_hashmap_with_profile(&nest));
    }

    /// Satellite regression: a box whose linear form needs a term product
    /// outside `i64` must be demoted to the sparse path, never wrapped.
    /// Here the flattened coefficient is `2^62` and the variable is
    /// pinned to 2, so the *product* `2^63` overflows while every
    /// partial sum still fits (`constant ≈ -2^63` cancels it) — exactly
    /// the case the old partial-sum-only check accepted, after which the
    /// sweep's `off += c * x` wrapped.
    #[test]
    fn near_overflow_form_is_demoted_to_sparse() {
        let nest = parse("array X[1]\nfor i = 2 to 2 { X[4611686018427387904i]; }").unwrap();
        let plan = make_plan(&nest, 1, None);
        assert!(
            plan.boxes.iter().all(Option::is_none),
            "near-overflow form must fall back to the hashmap path"
        );
        // The sparse path then reports the genuine subscript overflow
        // instead of simulating a wrapped offset.
        let err = crate::window::try_simulate(&nest, &crate::budget::AnalysisBudget::unlimited())
            .unwrap_err();
        assert!(
            matches!(err, loopmem_ir::AnalysisError::Overflow { .. }),
            "expected a subscript overflow report, got {err:?}"
        );
    }

    /// Two references of one array touching the same cells within a single
    /// innermost run: the `last` lane must fold with `max` across sibling
    /// references (a pure slice fill is only sound for sole references).
    #[test]
    fn sibling_refs_in_one_run_keep_exact_last_stamps() {
        for src in [
            // Same cell, same iteration, two refs.
            "array A[40]\nfor i = 1 to 30 { A[i] = A[i]; } ",
            // Shifted overlap: ref 2 touches cells ref 1 reaches later.
            "array A[40]\nfor i = 1 to 30 { A[i] = A[i+3]; } ",
            // Opposite strides crossing mid-run.
            "array A[40]\nfor i = 1 to 30 { A[i] = A[31-i]; } ",
            // Stride-0 against stride-1 inside an inner run.
            "array A[40]\nfor i = 1 to 5 { for j = 1 to 6 { A[i] = A[j]; } }",
        ] {
            let nest = parse(src).unwrap();
            assert_same(&run(&nest, true, 1), &simulate_hashmap_with_profile(&nest));
        }
    }

    #[test]
    fn empty_nest() {
        let nest = parse("array A[10]\nfor i = 5 to 4 { A[i]; }").unwrap();
        let s = run(&nest, true, 4);
        assert_eq!(s.iterations, 0);
        assert!(s.per_array.is_empty());
        assert_eq!(s.profile.as_deref(), Some(&[][..]));
    }

    #[test]
    fn chunk_split_covers_range() {
        assert_eq!(split_range(1, 10, 3), vec![(1, 3), (4, 6), (7, 10)]);
        assert_eq!(split_range(1, 2, 8), vec![(1, 1), (2, 2)]);
        assert_eq!(split_range(5, 4, 4), vec![(5, 4)]);
    }

    /// Regression: spans wider than `i64::MAX` used to truncate the
    /// `u128` prefix width through an `i64` cast, producing chunk ends far
    /// outside `[lo, hi]` (and panicking in debug builds).
    #[test]
    fn chunk_split_survives_near_max_bounds() {
        for (lo, hi) in [
            (i64::MIN, i64::MAX),
            (i64::MIN + 1, i64::MAX - 1),
            (-9_223_372_036_854_775_000, 9_223_372_036_854_775_000),
            (0, i64::MAX),
        ] {
            for parts in [2, 3, 7] {
                let chunks = split_range(lo, hi, parts);
                assert_eq!(chunks.first().unwrap().0, lo);
                assert_eq!(chunks.last().unwrap().1, hi);
                for w in chunks.windows(2) {
                    assert!(w[0].1 < w[1].0, "{chunks:?}");
                    assert_eq!(w[0].1 + 1, w[1].0, "{chunks:?}");
                }
                for &(a, b) in &chunks {
                    assert!(lo <= a && a <= b && b <= hi, "{chunks:?}");
                }
            }
        }
    }

    /// Chunk lists always partition `[lo, hi]` into consecutive ranges.
    fn assert_partitions(chunks: &[(i64, i64)], lo: i64, hi: i64) {
        assert_eq!(chunks.first().unwrap().0, lo);
        assert_eq!(chunks.last().unwrap().1, hi);
        for w in chunks.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "{chunks:?}");
        }
    }

    #[test]
    fn volume_chunks_balance_triangular_nests() {
        // for j = i to 100: per-value volume 101-i, front-loaded. An even
        // split's first chunk carries ~44% of the work; volume cuts keep
        // every chunk near 25%.
        let nest =
            parse("array A[101][101]\nfor i = 1 to 100 { for j = i to 100 { A[i][j]; } }").unwrap();
        let chunks = chunk_ranges(&nest, 1, 100, 4);
        assert_partitions(&chunks, 1, 100);
        assert!(chunks.len() >= 2, "{chunks:?}");
        let total: u128 = (1..=100).map(|v| outer_volume(&nest, v)).sum();
        let ideal = total / chunks.len() as u128;
        for &(lo, hi) in &chunks {
            let vol: u128 = (lo..=hi).map(|v| outer_volume(&nest, v)).sum();
            assert!(
                vol <= ideal * 2 && vol * 3 >= ideal,
                "chunk {lo}..={hi} holds {vol} of ideal {ideal}: {chunks:?}"
            );
        }
        // The triangle's exact volume: interval analysis is sharp here.
        assert_eq!(total, 5050);
        assert_eq!(outer_volume(&nest, 1), 100);
        assert_eq!(outer_volume(&nest, 100), 1);
    }

    #[test]
    fn volume_chunks_are_even_for_rectangular_nests() {
        let nest =
            parse("array A[40][40]\nfor i = 1 to 40 { for j = 1 to 40 { A[i][j]; } }").unwrap();
        let chunks = chunk_ranges(&nest, 1, 40, 4);
        assert_partitions(&chunks, 1, 40);
        assert_eq!(chunks, vec![(1, 10), (11, 20), (21, 30), (31, 40)]);
    }

    #[test]
    fn work_stealing_matches_serial_on_triangular_nests() {
        for src in [
            "array A[80][80]\nfor i = 1 to 78 { for j = i to 78 { A[i][j] = A[j][i]; } }",
            "array A[64][64]\nfor i = 1 to 60 { for j = 1 to i { A[i][j] = A[i-1][j]; } }",
            "array X[400]\nfor i = 1 to 40 { for j = i to 40 { for k = j to 40 { X[i + j + k]; } } }",
        ] {
            let nest = parse(src).unwrap();
            let one = run(&nest, true, 1);
            for threads in [2, 3, 4, 8] {
                assert_same(&run(&nest, true, threads), &one);
            }
            assert_same(&one, &simulate_hashmap_with_profile(&nest));
        }
    }

    #[test]
    fn empty_inner_ranges_have_zero_volume() {
        // j = i to 10 is empty for i > 10; outer i runs to 20.
        let nest =
            parse("array A[32][32]\nfor i = 1 to 20 { for j = i to 10 { A[i][j]; } }").unwrap();
        assert_eq!(outer_volume(&nest, 15), 0);
        assert_eq!(outer_volume(&nest, 10), 1);
        let one = run(&nest, true, 1);
        for threads in [2, 5] {
            assert_same(&run(&nest, true, threads), &one);
        }
    }
}
