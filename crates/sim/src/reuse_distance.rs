//! Reuse-distance (LRU stack-distance) analysis.
//!
//! The reuse distance of an access is the number of *distinct* elements
//! touched since the previous access to the same element. Its histogram is
//! the complete LRU characterization: a fully associative LRU buffer of
//! capacity `C` misses exactly the accesses whose reuse distance exceeds
//! `C` (plus the cold accesses) — so one histogram yields the whole miss
//! curve, every capacity at once, and cross-validates the step-by-step
//! simulator in [`crate::replacement`].

use crate::replacement::Trace;

/// Reuse-distance histogram of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReuseHistogram {
    /// `counts[d]` = number of accesses with reuse distance exactly `d`.
    counts: Vec<u64>,
    /// Number of first-touch (cold) accesses.
    cold: u64,
}

impl ReuseHistogram {
    /// Computes the histogram. Quadratic in the worst case (one linear
    /// stack scan per access) — traces here are loop nests of at most a
    /// few hundred thousand accesses, where simplicity beats a splay tree.
    pub fn from_trace(trace: &Trace) -> ReuseHistogram {
        let addrs = trace.as_ids();
        let mut stack: Vec<u32> = Vec::new(); // most recent last
        let mut counts = Vec::new();
        let mut cold = 0u64;
        for &a in addrs {
            match stack.iter().rposition(|&x| x == a) {
                Some(pos) => {
                    let depth = stack.len() - 1 - pos;
                    if counts.len() <= depth {
                        counts.resize(depth + 1, 0);
                    }
                    counts[depth] += 1;
                    stack.remove(pos);
                    stack.push(a);
                }
                None => {
                    cold += 1;
                    stack.push(a);
                }
            }
        }
        ReuseHistogram { counts, cold }
    }

    /// Number of cold (first-touch) accesses — equal to the distinct
    /// element count.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Accesses with reuse distance exactly `d`.
    pub fn count_at(&self, d: usize) -> u64 {
        self.counts.get(d).copied().unwrap_or(0)
    }

    /// The largest observed reuse distance (`None` if nothing is reused).
    pub fn max_distance(&self) -> Option<usize> {
        (!self.counts.is_empty()).then(|| self.counts.len() - 1)
    }

    /// LRU misses at capacity `C`, derived from the histogram: cold
    /// accesses plus every reuse at distance `>= C`.
    pub fn lru_misses(&self, capacity: usize) -> u64 {
        let far: u64 = self.counts.iter().skip(capacity).sum();
        self.cold + far
    }

    /// Total accesses covered by the histogram.
    pub fn total_accesses(&self) -> u64 {
        self.cold + self.counts.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::{misses, Policy};
    use loopmem_ir::parse;

    fn trace(src: &str) -> Trace {
        Trace::from_nest(&parse(src).expect("test source parses"))
    }

    #[test]
    fn histogram_totals() {
        let t =
            trace("array A[20][20]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j]; } }");
        let h = ReuseHistogram::from_trace(&t);
        assert_eq!(h.total_accesses(), t.len() as u64);
        assert_eq!(h.cold(), t.distinct() as u64);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        // A[i] then A[i] again in the same statement: distance 0.
        let t = trace("array A[10]\nfor i = 1 to 10 { A[i] = A[i] + 1; }");
        let h = ReuseHistogram::from_trace(&t);
        assert_eq!(h.count_at(0), 10);
        assert_eq!(h.cold(), 10);
        assert_eq!(h.max_distance(), Some(0));
    }

    #[test]
    fn histogram_miss_curve_matches_step_simulator() {
        // The single most important property: two totally different LRU
        // implementations agree at every capacity.
        for src in [
            "array A[34][34]\nfor i = 2 to 32 { for j = 1 to 32 { A[i][j] = A[i-1][j] + A[i+1][j]; } }",
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
            "array C[6][6]\narray A[6][6]\narray B[6][6]\n\
             for i = 1 to 6 { for j = 1 to 6 { for k = 1 to 6 { C[i][j] = C[i][j] + A[i][k] * B[k][j]; } } }",
        ] {
            let t = trace(src);
            let h = ReuseHistogram::from_trace(&t);
            for c in [1usize, 2, 3, 5, 9, 17, 33, 65, 129] {
                assert_eq!(
                    h.lru_misses(c),
                    misses(&t, c, Policy::Lru),
                    "capacity {c} for {src}"
                );
            }
        }
    }

    #[test]
    fn miss_curve_is_monotone_and_converges_to_cold() {
        let t = trace(
            "array A[22][22]\nfor i = 2 to 20 { for j = 2 to 20 { A[i][j] = A[i-1][j] + A[i][j-1]; } }",
        );
        let h = ReuseHistogram::from_trace(&t);
        let mut prev = u64::MAX;
        for c in 0..200 {
            let m = h.lru_misses(c);
            assert!(m <= prev);
            prev = m;
        }
        assert_eq!(h.lru_misses(h.max_distance().unwrap_or(0) + 1), h.cold());
    }
}
