//! Whole-program simulation: window tracking across a sequence of nests.
//!
//! A value produced by one nest and consumed by a later one is live across
//! the boundary; per-nest analysis cannot see it. The program tracker runs
//! the same first/last-touch sweep over the concatenated execution and
//! additionally reports the live set at every nest boundary — the minimum
//! inter-phase buffer.

use crate::exec::for_each_iteration;
use loopmem_ir::{ArrayId, Program};
use std::collections::HashMap;

/// Result of simulating a program.
#[derive(Clone, Debug)]
pub struct ProgramSimResult {
    /// Iterations executed per nest.
    pub per_nest_iterations: Vec<u64>,
    /// Exact MWS over the whole execution (sum over arrays at the peak).
    pub mws_total: u64,
    /// Live words at each internal nest boundary (after nest `k`,
    /// `k = 0 .. len-2`): elements already touched that a later nest will
    /// touch again.
    pub boundary_live: Vec<u64>,
    /// Distinct elements per array over the whole program.
    pub distinct: HashMap<ArrayId, u64>,
    /// The peak's location: index of the nest during which the maximum
    /// window occurred.
    pub peak_nest: usize,
}

impl ProgramSimResult {
    /// Total distinct elements.
    pub fn distinct_total(&self) -> u64 {
        self.distinct.values().sum()
    }
}

/// Simulates the program (every nest in order) with exact window
/// tracking across nest boundaries.
pub fn simulate_program(program: &Program) -> ProgramSimResult {
    struct Touch {
        first: u64,
        last: u64,
    }
    let mut touches: HashMap<(usize, Vec<i64>), Touch> = HashMap::new();
    let mut per_nest_iterations = Vec::with_capacity(program.len());
    let mut nest_end = Vec::with_capacity(program.len()); // global t after each nest
    let mut t = 0u64;
    for nest in program.nests() {
        let start = t;
        for_each_iteration(nest, |it| {
            for r in nest.refs() {
                touches
                    .entry((r.array.0, r.index_at(it)))
                    .and_modify(|e| e.last = t)
                    .or_insert(Touch { first: t, last: t });
            }
            t += 1;
        });
        per_nest_iterations.push(t - start);
        nest_end.push(t);
    }
    let iterations = t as usize;

    // Sweep.
    let mut add = vec![0i64; iterations.max(1)];
    let mut rem = vec![0i64; iterations.max(1)];
    for touch in touches.values() {
        add[touch.first as usize] += 1;
        rem[touch.last as usize] += 1;
    }
    let mut cur = 0i64;
    let mut peak = 0i64;
    let mut peak_t = 0u64;
    let mut boundary_live = Vec::new();
    let mut next_boundary = 0usize;
    for ti in 0..iterations {
        cur += add[ti] - rem[ti];
        if cur > peak {
            peak = cur;
            peak_t = ti as u64;
        }
        // Record the live count at each internal nest boundary.
        while next_boundary + 1 < nest_end.len() && (ti as u64 + 1) == nest_end[next_boundary] {
            boundary_live.push(cur as u64);
            next_boundary += 1;
        }
    }
    let peak_nest = nest_end
        .iter()
        .position(|&end| peak_t < end)
        .unwrap_or(0);

    let mut distinct: HashMap<ArrayId, u64> = HashMap::new();
    for (a, _) in touches.keys() {
        *distinct.entry(ArrayId(*a)).or_insert(0) += 1;
    }
    ProgramSimResult {
        per_nest_iterations,
        mws_total: peak as u64,
        boundary_live,
        distinct,
        peak_nest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::simulate;
    use loopmem_ir::parse_program;

    #[test]
    fn single_nest_program_matches_nest_simulation() {
        let src = "array X[200]\n\
                   for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }";
        let p = parse_program(src).unwrap();
        let ps = simulate_program(&p);
        let ns = simulate(&p.nests()[0]);
        assert_eq!(ps.mws_total, ns.mws_total);
        assert_eq!(ps.distinct_total(), ns.distinct_total());
        assert!(ps.boundary_live.is_empty());
        assert_eq!(ps.peak_nest, 0);
    }

    #[test]
    fn producer_consumer_keeps_array_live_across_boundary() {
        // Nest 0 writes all of A; nest 1 reads all of A into a fresh
        // output. Every element of A is live at the boundary (and only A:
        // B and C are each touched in one nest only).
        let p = parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.boundary_live, vec![64], "all of A crosses the boundary");
        assert!(ps.mws_total >= 64);
        // Per-nest analysis sees only tiny windows — the whole point.
        assert!(simulate(&p.nests()[0]).mws_total <= 2);
    }

    #[test]
    fn independent_phases_have_empty_boundaries() {
        let p = parse_program(
            "array A[8]\narray B[8]\n\
             for i = 1 to 8 { A[i] = A[i] + 1; }\n\
             for i = 1 to 8 { B[i] = B[i] + 1; }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.boundary_live, vec![0]);
        assert_eq!(ps.distinct_total(), 16);
    }

    #[test]
    fn three_phase_pipeline_boundaries() {
        // A -> B -> C pipeline over rows: boundary 0 carries B(written by
        // phase 0? no: phase 0 writes B from A; boundary carries B).
        let p = parse_program(
            "array A[6][6]\narray B[6][6]\narray C[6][6]\n\
             for i = 1 to 6 { for j = 1 to 6 { B[i][j] = A[i][j]; } }\n\
             for i = 1 to 6 { for j = 1 to 6 { C[i][j] = B[i][j]; } }\n\
             for i = 1 to 6 { for j = 1 to 6 { C[i][j] = C[i][j] + 1; } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.per_nest_iterations, vec![36, 36, 36]);
        assert_eq!(ps.boundary_live.len(), 2);
        assert_eq!(ps.boundary_live[0], 36, "B crosses boundary 0");
        assert_eq!(ps.boundary_live[1], 36, "C crosses boundary 1");
    }

    #[test]
    fn peak_nest_is_identified() {
        // Phase 1 touches a big array twice (peak inside phase 1).
        let p = parse_program(
            "array A[4]\narray B[12][12]\n\
             for i = 1 to 4 { A[i] = A[i] + 1; }\n\
             for t = 1 to 2 { for i = 1 to 12 { for j = 1 to 12 { B[i][j] = B[i][j] + 1; } } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.peak_nest, 1);
        assert_eq!(ps.mws_total, 144);
    }
}
