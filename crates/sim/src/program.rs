//! Whole-program simulation: window tracking across a sequence of nests.
//!
//! A value produced by one nest and consumed by a later one is live across
//! the boundary; per-nest analysis cannot see it. The program tracker runs
//! the same first/last-touch sweep over the concatenated execution and
//! additionally reports the live set at every nest boundary — the minimum
//! inter-phase buffer.
//!
//! Pass 1 (touch recording) is *sharded across nests*: each nest runs the
//! dense engine's pass 1 ([`crate::dense::pass1`] — flat touch tables,
//! work-stealing chunks) in nest-local time, so a scoped-thread pool can
//! sweep the nests concurrently — workers pull nest indices from an
//! atomic queue, exactly like the dense engine's chunk queue. The
//! per-nest tables then fold into per-array *global* tables in execution
//! order with cumulative time offsets (the earliest nest keeps `first`,
//! the latest overwrites `last`), which reproduces the serial global-time
//! sweep bit for bit regardless of the worker count. Each global table is
//! a dense lane over the union of the nest boxes when that union stays
//! within budget; touches outside it (hashmap-fallback arrays, wildly
//! disjoint nest boxes) land in a per-array overflow map keyed by
//! coordinates.

use crate::budget::{analytic_nest_bounds, analytic_program_bounds, AnalysisBudget, BudgetTracker};
use crate::dense::{self, NestPass1, UNTOUCHED};
use loopmem_ir::{AnalysisError, ArrayId, Bounds, BoundsMethod, ElementBox, Program, TripReason};
use loopmem_obs::{EventKind, Phase, TraceEvent};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global-time "never touched" sentinel for the `first` slot.
const NEVER: u64 = u64::MAX;

/// Byte budget for all global dense tables of one program (16 bytes per
/// cell: a `(u64, u64)` first/last pair).
const GLOBAL_DENSE_BUDGET_BYTES: u128 = 768 << 20;

/// A union box may be at most this many times larger than the summed
/// per-nest table sizes; beyond that the nests touch far-apart regions
/// and the overflow map is both smaller and not meaningfully slower.
const UNION_SPARSITY_FACTOR: u128 = 64;

/// Result of simulating a program.
#[derive(Clone, Debug)]
pub struct ProgramSimResult {
    /// Iterations executed per nest.
    pub per_nest_iterations: Vec<u64>,
    /// Exact MWS over the whole execution (sum over arrays at the peak).
    pub mws_total: u64,
    /// Live words at each internal nest boundary (after nest `k`,
    /// `k = 0 .. len-2`): elements already touched that a later nest will
    /// touch again.
    pub boundary_live: Vec<u64>,
    /// Distinct elements per array over the whole program.
    pub distinct: HashMap<ArrayId, u64>,
    /// The peak's location: index of the nest during which the maximum
    /// window occurred.
    pub peak_nest: usize,
    /// Exact single-nest MWS per nest, computed from each nest's own
    /// pass-1 tables in nest-local time (equals `simulate(nest).mws_total`
    /// for every nest, without re-sweeping the iteration space).
    pub per_nest_mws: Vec<u64>,
    /// Per nest `k`: elements whose lifetime crosses a boundary of nest
    /// `k` — live at its entry (`first` in an earlier nest), at its exit
    /// (`last` in a later nest), or both. This is `|in_k ∪ out_k|`, the
    /// inter-nest traffic the shared-scratchpad sizing adds to nest `k`'s
    /// internal window (`in_k` = `boundary_live[k-1]`, `out_k` =
    /// `boundary_live[k]`).
    pub live_through: Vec<u64>,
}

impl ProgramSimResult {
    /// Total distinct elements.
    pub fn distinct_total(&self) -> u64 {
        self.distinct.values().sum()
    }
}

/// Pass 1 over every nest, sharded on a scoped-thread pool. Workers steal
/// nest indices from an atomic queue; outputs land in their nest's slot,
/// so downstream merging is independent of completion order. A
/// single-nest program hands the whole pool to that nest's chunk queue;
/// otherwise leftover threads (`threads > nests`) split evenly across the
/// nest sweeps.
fn sweep_nests_sharded(program: &Program, threads: usize) -> Vec<NestPass1> {
    let nests = program.nests();
    let threads = threads.max(1);
    if threads == 1 {
        return nests.iter().map(|n| dense::pass1(n, 1)).collect();
    }
    if nests.len() == 1 {
        return vec![dense::pass1(&nests[0], threads)];
    }
    let workers = threads.min(nests.len());
    let per_nest = (threads / workers).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<NestPass1>>> = nests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= nests.len() {
                    break;
                }
                let out = dense::pass1(&nests[k], per_nest);
                *slots[k].lock().expect("slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every nest swept")
        })
        .collect()
}

/// Governed pass 1 over every nest: same sharding as
/// [`sweep_nests_sharded`], but each nest runs through
/// [`dense::try_pass1`], which contains panics with `catch_unwind` and
/// polls the shared tracker — so one poisoned or over-budget nest yields a
/// per-nest error while the remaining nests complete.
fn try_sweep_nests_sharded(
    program: &Program,
    threads: usize,
    tracker: &BudgetTracker,
    max_table_bytes: Option<u64>,
) -> Vec<Result<NestPass1, AnalysisError>> {
    let nests = program.nests();
    let threads = threads.max(1);
    if threads == 1 {
        return nests
            .iter()
            .enumerate()
            .map(|(k, n)| dense::try_pass1(k, n, 1, tracker, max_table_bytes))
            .collect();
    }
    if nests.len() == 1 {
        return vec![dense::try_pass1(
            0,
            &nests[0],
            threads,
            tracker,
            max_table_bytes,
        )];
    }
    let workers = threads.min(nests.len());
    let per_nest = (threads / workers).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<NestPass1, AnalysisError>>>> =
        nests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= nests.len() {
                    break;
                }
                let out = dense::try_pass1(k, &nests[k], per_nest, tracker, max_table_bytes);
                *slots[k].lock().expect("slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every nest swept")
        })
        .collect()
}

/// Global first/last table of one array: a dense lane over the union of
/// the nest boxes (when affordable) plus an overflow map for everything
/// outside it. Times are global (u64) — a program may exceed the per-nest
/// u32 iteration budget.
struct GlobalTable {
    bx: Option<ElementBox>,
    cells: Vec<(u64, u64)>,
    overflow: HashMap<Vec<i64>, (u64, u64)>,
}

impl GlobalTable {
    fn touch_cell(&mut self, off: usize, f: u64, l: u64) {
        let cell = &mut self.cells[off];
        if cell.0 == NEVER {
            *cell = (f, l);
        } else {
            cell.1 = l;
        }
    }

    fn touch_coords(&mut self, coords: Vec<i64>, f: u64, l: u64) {
        if let Some(off) = self.bx.as_ref().and_then(|bx| bx.flatten(&coords)) {
            self.touch_cell(off, f, l);
            return;
        }
        match self.overflow.entry(coords) {
            Entry::Occupied(mut e) => e.get_mut().1 = l,
            Entry::Vacant(e) => {
                e.insert((f, l));
            }
        }
    }
}

/// Chooses each array's global box: the per-dimension union of the nest
/// boxes, unless the union blows the byte budget or is far sparser than
/// the tables it absorbs (disjoint nest boxes) — then `None`, and every
/// touch of the array goes through the overflow map.
fn plan_global_tables(
    narrays: usize,
    per_nest: &[Option<NestPass1>],
    max_table_bytes: Option<u64>,
) -> Vec<GlobalTable> {
    let budget_bytes = match max_table_bytes {
        Some(cap) => GLOBAL_DENSE_BUDGET_BYTES.min(cap as u128),
        None => GLOBAL_DENSE_BUDGET_BYTES,
    };
    let mut budget = budget_bytes / 16;
    (0..narrays)
        .map(|a| {
            let mut union: Option<Vec<(i64, i64)>> = None;
            let mut absorbed: u128 = 0;
            for np in per_nest.iter().flatten() {
                let Some(bx) = &np.boxes[a] else { continue };
                absorbed += bx.cells();
                // A nest box always has extents >= 1 per dimension, but the
                // upper corner `lo + extent - 1` can still leave `i64` for
                // planner-saturated boxes; saturate rather than overflow
                // (the union is only used conservatively).
                let ranges: Vec<(i64, i64)> = bx
                    .lo()
                    .iter()
                    .zip(bx.extents())
                    .map(|(&l, &e)| (l, l.saturating_add(e.saturating_sub(1))))
                    .collect();
                match &mut union {
                    slot @ None => *slot = Some(ranges),
                    Some(acc) => {
                        for (u, r) in acc.iter_mut().zip(&ranges) {
                            u.0 = u.0.min(r.0);
                            u.1 = u.1.max(r.1);
                        }
                    }
                }
            }
            let bx = union.as_deref().map(ElementBox::new).filter(|bx| {
                let cells = bx.cells();
                cells > 0
                    && cells <= budget
                    && cells
                        <= absorbed
                            .saturating_mul(UNION_SPARSITY_FACTOR)
                            .saturating_add(4096)
            });
            let cells = match &bx {
                Some(bx) => {
                    budget -= bx.cells();
                    vec![(NEVER, 0u64); bx.cells() as usize]
                }
                None => Vec::new(),
            };
            GlobalTable {
                bx,
                cells,
                overflow: HashMap::new(),
            }
        })
        .collect()
}

/// Folds one nest's dense lanes (over `nest_bx`, nest-local time) into the
/// array's global table, rebasing times by `t0`. The nest box is a
/// sub-box of the global box by construction, so the walk keeps a running
/// global offset like an odometer — no per-cell division.
fn fold_dense_table(
    nest_bx: &ElementBox,
    first: &[u32],
    last: &[u32],
    g: &mut GlobalTable,
    t0: u64,
) {
    let gbx =
        g.bx.as_ref()
            .expect("dense fold target must have a global box");
    let rank = nest_bx.lo().len();
    let ext = nest_bx.extents();
    let gs = gbx.strides();
    let mut goff: usize = 0;
    for ((&nlo, &glo), &s) in nest_bx.lo().iter().zip(gbx.lo()).zip(gs) {
        goff += (nlo - glo) as usize * s as usize;
    }
    let cells = &mut g.cells;
    let mut idx = vec![0i64; rank];
    for (&f, &l) in first.iter().zip(last) {
        if f != UNTOUCHED {
            let cell = &mut cells[goff];
            if cell.0 == NEVER {
                *cell = (f as u64 + t0, l as u64 + t0);
            } else {
                cell.1 = l as u64 + t0;
            }
        }
        let mut d = rank - 1;
        loop {
            idx[d] += 1;
            goff += gs[d] as usize;
            if idx[d] < ext[d] {
                break;
            }
            goff -= ext[d] as usize * gs[d] as usize;
            idx[d] = 0;
            if d == 0 {
                break;
            }
            d -= 1;
        }
    }
}

/// Simulates the program (every nest in order) with exact window
/// tracking across nest boundaries. Uses every available worker thread
/// ([`crate::thread_count`]); results are bit-identical for any count.
///
/// The unified front door for analysis is `loopmem::Session` (defined in
/// `loopmem-core`); see `Session::simulate_program`.
pub fn simulate_program(program: &Program) -> ProgramSimResult {
    simulate_program_with_threads(program, crate::dense::thread_count())
}

/// [`simulate_program`] with a pinned worker-thread count. Pass-1 sweeps
/// shard across nests; the fold and pass-2 sweep are serial, so the result
/// is bit-identical for every `threads` value.
pub fn simulate_program_with_threads(program: &Program, threads: usize) -> ProgramSimResult {
    let narrays = program.arrays().len();
    let per_nest = sweep_nests_sharded(program, threads);
    assemble(narrays, per_nest.into_iter().map(Some).collect(), None)
}

/// Exact single-nest MWS straight off one nest's pass-1 tables (nest-local
/// 32-bit time): one difference lane, the same sweep the serial pass 2 of
/// `simulate` runs — so `nest_mws_from_tables(pass1(nest, _)) ==
/// simulate(nest).mws_total` without re-sweeping the iteration space.
fn nest_mws_from_tables(np: &NestPass1) -> u64 {
    let iters = np.iters as usize;
    if iters == 0 {
        return 0;
    }
    let mut diff = vec![0i32; iters];
    for a in 0..np.first.len() {
        for (&f, &l) in np.first[a].iter().zip(&np.last[a]) {
            if f != UNTOUCHED {
                diff[f as usize] += 1;
                diff[l as usize] -= 1;
            }
        }
        for &(f, l) in np.sparse[a].values() {
            diff[f as usize] += 1;
            diff[l as usize] -= 1;
        }
    }
    let mut cur = 0i64;
    let mut peak = 0i64;
    for &d in &diff {
        cur += d as i64;
        peak = peak.max(cur);
    }
    peak as u64
}

/// Fold + pass-2 sweep over per-nest pass-1 tables. `None` slots are nests
/// whose governed sweep failed: they contribute zero iterations and no
/// touches, so the result is the exact simulation of the program restricted
/// to the successful nests (a valid lower bound on the full program's MWS —
/// dropping accesses only shrinks windows).
fn assemble(
    narrays: usize,
    per_nest: Vec<Option<NestPass1>>,
    max_table_bytes: Option<u64>,
) -> ProgramSimResult {
    // Fold the per-nest tables in execution order, rebasing nest-local
    // times by the cumulative iteration count: an element's `first` comes
    // from the earliest nest touching it, `last` from the latest.
    let nnests = per_nest.len();
    let mut tables = plan_global_tables(narrays, &per_nest, max_table_bytes);
    let mut per_nest_iterations = Vec::with_capacity(nnests);
    let mut per_nest_mws = Vec::with_capacity(nnests);
    let mut nest_end = Vec::with_capacity(nnests); // global t after each nest
    let mut t = 0u64;
    for np_slot in per_nest {
        let Some(np) = np_slot else {
            per_nest_iterations.push(0);
            per_nest_mws.push(0);
            nest_end.push(t);
            continue;
        };
        per_nest_mws.push(nest_mws_from_tables(&np));
        for (a, g) in tables.iter_mut().enumerate() {
            if np.accesses[a] == 0 {
                continue;
            }
            if let Some(nest_bx) = &np.boxes[a] {
                if g.bx.is_some() {
                    fold_dense_table(nest_bx, &np.first[a], &np.last[a], g, t);
                } else {
                    // Union box rejected: decode the touched cells back to
                    // coordinates for the overflow map.
                    let mut coords = vec![0i64; nest_bx.lo().len()];
                    for (off, (&f, &l)) in np.first[a].iter().zip(&np.last[a]).enumerate() {
                        if f == UNTOUCHED {
                            continue;
                        }
                        let mut rest = off;
                        for (d, c) in coords.iter_mut().enumerate() {
                            let s = nest_bx.strides()[d] as usize;
                            *c = nest_bx.lo()[d] + (rest / s) as i64;
                            rest %= s;
                        }
                        g.touch_coords(coords.clone(), f as u64 + t, l as u64 + t);
                    }
                }
            }
            for (coords, &(f, l)) in &np.sparse[a] {
                g.touch_coords(coords.clone(), f as u64 + t, l as u64 + t);
            }
        }
        t += np.iters;
        per_nest_iterations.push(np.iters);
        nest_end.push(t);
    }
    let iterations = t as usize;

    // Sweep: one difference lane over global time (`+1` at `first`, `-1`
    // at `last`, cancelling in place when they coincide), plus per-array
    // distinct counts straight off the folded tables. Three more
    // difference lanes — over *nest indices* — count the boundary-crossing
    // element sets per nest: `in_k` (first touch before nest `k`, last at
    // or after it), `out_k` (first at or before `k`, last after it), and
    // `cross_k` (strictly over `k`), so `live_through[k] = in_k + out_k -
    // cross_k = |in_k ∪ out_k|`.
    let mut diff = vec![0i32; iterations.max(1)];
    let mut din = vec![0i64; nnests + 1];
    let mut dout = vec![0i64; nnests + 1];
    let mut dcross = vec![0i64; nnests + 1];
    let mut distinct: HashMap<ArrayId, u64> = HashMap::new();
    for (a, g) in tables.iter().enumerate() {
        let mut count = 0u64;
        let mut mark = |f: u64, l: u64| {
            count += 1;
            diff[f as usize] += 1;
            diff[l as usize] -= 1;
            if f < l {
                let fk = nest_end.partition_point(|&end| end <= f);
                let lk = nest_end.partition_point(|&end| end <= l);
                if lk > fk {
                    din[fk + 1] += 1;
                    din[lk + 1] -= 1;
                    dout[fk] += 1;
                    dout[lk] -= 1;
                    if lk > fk + 1 {
                        dcross[fk + 1] += 1;
                        dcross[lk] -= 1;
                    }
                }
            }
        };
        for &(f, l) in &g.cells {
            if f != NEVER {
                mark(f, l);
            }
        }
        for &(f, l) in g.overflow.values() {
            mark(f, l);
        }
        if count > 0 {
            distinct.insert(ArrayId(a), count);
        }
    }
    let mut cur = 0i64;
    let mut peak = 0i64;
    let mut peak_t = 0u64;
    let mut boundary_live = Vec::new();
    let mut next_boundary = 0usize;
    for (ti, &d) in diff.iter().enumerate() {
        cur += d as i64;
        if cur > peak {
            peak = cur;
            peak_t = ti as u64;
        }
        // Record the live count at each internal nest boundary.
        while next_boundary + 1 < nest_end.len() && (ti as u64 + 1) == nest_end[next_boundary] {
            boundary_live.push(cur as u64);
            next_boundary += 1;
        }
    }
    let peak_nest = nest_end.iter().position(|&end| peak_t < end).unwrap_or(0);

    // Prefix-sum the nest-index lanes into `live_through[k] = in + out - cross`.
    let mut live_through = Vec::with_capacity(nnests);
    let (mut ins, mut outs, mut cross) = (0i64, 0i64, 0i64);
    for k in 0..nnests {
        ins += din[k];
        outs += dout[k];
        cross += dcross[k];
        live_through.push((ins + outs - cross) as u64);
    }

    ProgramSimResult {
        per_nest_iterations,
        mws_total: peak as u64,
        boundary_live,
        per_nest_mws,
        live_through,
        distinct,
        peak_nest,
    }
}

/// Outcome of a governed program simulation: per-nest results, the exact
/// simulation of the successful subset, and analytical bounds on the full
/// program's MWS.
#[derive(Debug)]
pub struct GovernedProgramSim {
    /// Per nest, in program order: iterations swept, or why the nest's
    /// analysis failed (`Exhausted` entries carry that nest's own
    /// analytical MWS bounds).
    pub per_nest: Vec<Result<u64, AnalysisError>>,
    /// Exact window tracking over the successful nests only. Equal to the
    /// full [`simulate_program_with_threads`] result when
    /// [`all_exact`](GovernedProgramSim::all_exact) holds.
    pub sim: ProgramSimResult,
    /// Bounds on the *full* program's MWS. A point interval when every
    /// nest succeeded; otherwise `[subset MWS, subset MWS + Σ failed-nest
    /// distinct-element uppers]` — removing a nest's accesses can only
    /// shrink windows (lower), and restoring them can grow the window by at
    /// most the elements that nest touches (upper).
    pub mws_bounds: Bounds,
}

impl GovernedProgramSim {
    /// True when every nest simulated exactly.
    pub fn all_exact(&self) -> bool {
        self.per_nest.iter().all(Result::is_ok)
    }
}

/// Governed [`simulate_program`]: auto thread count, see
/// [`try_simulate_program_with_threads`].
pub fn try_simulate_program(
    program: &Program,
    budget: &AnalysisBudget,
) -> Result<GovernedProgramSim, AnalysisError> {
    try_simulate_program_with_threads(program, crate::dense::thread_count(), budget)
}

/// Governed whole-program simulation. Each nest's pass 1 is wrapped in
/// `catch_unwind` (a poisoned nest yields [`AnalysisError::NestPanicked`]
/// for that nest while the rest of the program completes) and polls the
/// shared budget tracker. Per-nest failures degrade that nest to
/// analytical bounds; the program-level result composes the exact subset
/// simulation with those bounds. The top-level `Err` is reserved for
/// whole-program failures (the global fold itself exceeding
/// `max_table_bytes`).
///
/// `loopmem::Session::simulate_program` is the front-door equivalent;
/// the facade's `session_equivalence` tests pin the two bit-identical.
pub fn try_simulate_program_with_threads(
    program: &Program,
    threads: usize,
    budget: &AnalysisBudget,
) -> Result<GovernedProgramSim, AnalysisError> {
    let tracker = BudgetTracker::new(budget);
    try_simulate_program_tracked(program, threads, &tracker, budget.max_table_bytes())
}

/// [`try_simulate_program_with_threads`] charging an externally owned
/// tracker, so a caller interleaving program simulations with other
/// governed work (the program-level optimizer's greedy accept loop) shares
/// one deadline and one cumulative iteration count across all of it.
pub fn try_simulate_program_tracked(
    program: &Program,
    threads: usize,
    tracker: &BudgetTracker,
    max_table_bytes: Option<u64>,
) -> Result<GovernedProgramSim, AnalysisError> {
    let narrays = program.arrays().len();
    let results = try_sweep_nests_sharded(program, threads, tracker, max_table_bytes);

    // The pass-2 difference lane costs 4 bytes per global iteration; gate
    // it on the same byte budget as the touch tables before allocating.
    let total_iters: u64 = results
        .iter()
        .filter_map(|r| r.as_ref().ok().map(|np| np.iters))
        .fold(0, u64::saturating_add);
    if let Some(cap) = max_table_bytes {
        if total_iters.saturating_mul(4) > cap {
            return Err(AnalysisError::Exhausted {
                reason: TripReason::MaxTableBytes,
                partial: analytic_program_bounds(program),
            });
        }
    }

    let mut per_nest: Vec<Result<u64, AnalysisError>> = Vec::with_capacity(results.len());
    let slots: Vec<Option<NestPass1>> = results
        .into_iter()
        .map(|r| match r {
            Ok(np) => {
                per_nest.push(Ok(np.iters));
                Some(np)
            }
            Err(e) => {
                per_nest.push(Err(e));
                None
            }
        })
        .collect();
    // The global fold + pass-2 sweep is serial and deterministic; its span
    // charges the global iteration total (schedule-independent whenever
    // the per-nest outcome set is — the scope chaos oracle 6 pins).
    let fold_started = tracker.trace().map(|_| std::time::Instant::now());
    let sim = assemble(narrays, slots, max_table_bytes);
    if let Some(sink) = tracker.trace() {
        let micros = fold_started.map_or(0, |s| s.elapsed().as_micros() as u64);
        sink.record_all(vec![
            TraceEvent {
                phase: Phase::Pass2,
                nest: None,
                ord: (0, 0),
                thread: 0,
                kind: EventKind::SpanBegin { label: "pass2" },
            },
            TraceEvent {
                phase: Phase::Pass2,
                nest: None,
                ord: (1, 0),
                thread: 0,
                kind: EventKind::SpanEnd {
                    label: "pass2",
                    micros,
                    charged: total_iters,
                },
            },
        ]);
    }

    let mws_bounds = if per_nest.iter().all(Result::is_ok) {
        Bounds::exact(sim.mws_total)
    } else {
        let mut failed_upper: u64 = 0;
        let mut salvaged_lower: u64 = 0;
        for (k, outcome) in per_nest.iter().enumerate() {
            let Err(e) = outcome else { continue };
            // `Exhausted` already carries the nest's analytical upper;
            // recompute it for the other failure modes (pure interval
            // analysis — it cannot panic).
            let upper = match e.bounds() {
                Some(b) => b.upper,
                None => analytic_nest_bounds(&program.nests()[k]).upper,
            };
            failed_upper = failed_upper.saturating_add(upper);
            // A salvaged-prefix payload lower-bounds that nest's own MWS,
            // which in turn lower-bounds the whole program's MWS — so the
            // best failed-nest lower can tighten the program lower beyond
            // the successful subset's window.
            if let Some(b) = e.bounds() {
                salvaged_lower = salvaged_lower.max(b.lower);
            }
        }
        Bounds {
            lower: sim.mws_total.max(salvaged_lower),
            upper: sim.mws_total.saturating_add(failed_upper),
            method: BoundsMethod::PartialProgram,
        }
    };
    Ok(GovernedProgramSim {
        per_nest,
        sim,
        mws_bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::simulate;
    use loopmem_ir::parse_program;

    #[test]
    fn single_nest_program_matches_nest_simulation() {
        let src = "array X[200]\n\
                   for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }";
        let p = parse_program(src).unwrap();
        let ps = simulate_program(&p);
        let ns = simulate(&p.nests()[0]);
        assert_eq!(ps.mws_total, ns.mws_total);
        assert_eq!(ps.distinct_total(), ns.distinct_total());
        assert!(ps.boundary_live.is_empty());
        assert_eq!(ps.peak_nest, 0);
    }

    #[test]
    fn producer_consumer_keeps_array_live_across_boundary() {
        // Nest 0 writes all of A; nest 1 reads all of A into a fresh
        // output. Every element of A is live at the boundary (and only A:
        // B and C are each touched in one nest only).
        let p = parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.boundary_live, vec![64], "all of A crosses the boundary");
        assert!(ps.mws_total >= 64);
        // Per-nest analysis sees only tiny windows — the whole point.
        assert!(simulate(&p.nests()[0]).mws_total <= 2);
    }

    #[test]
    fn independent_phases_have_empty_boundaries() {
        let p = parse_program(
            "array A[8]\narray B[8]\n\
             for i = 1 to 8 { A[i] = A[i] + 1; }\n\
             for i = 1 to 8 { B[i] = B[i] + 1; }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.boundary_live, vec![0]);
        assert_eq!(ps.distinct_total(), 16);
    }

    #[test]
    fn three_phase_pipeline_boundaries() {
        // A -> B -> C pipeline over rows: boundary 0 carries B(written by
        // phase 0? no: phase 0 writes B from A; boundary carries B).
        let p = parse_program(
            "array A[6][6]\narray B[6][6]\narray C[6][6]\n\
             for i = 1 to 6 { for j = 1 to 6 { B[i][j] = A[i][j]; } }\n\
             for i = 1 to 6 { for j = 1 to 6 { C[i][j] = B[i][j]; } }\n\
             for i = 1 to 6 { for j = 1 to 6 { C[i][j] = C[i][j] + 1; } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.per_nest_iterations, vec![36, 36, 36]);
        assert_eq!(ps.boundary_live.len(), 2);
        assert_eq!(ps.boundary_live[0], 36, "B crosses boundary 0");
        assert_eq!(ps.boundary_live[1], 36, "C crosses boundary 1");
    }

    #[test]
    fn thread_count_does_not_change_program_results() {
        let p = parse_program(
            "array A[20][20]\narray B[20][20]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 20 { for j = i to 20 { B[i][j] = A[i][j]; } }\n\
             for i = 2 to 20 { for j = 1 to 20 { A[i][j] = A[i-1][j]; } }",
        )
        .unwrap();
        let one = simulate_program_with_threads(&p, 1);
        for threads in [2, 3, 4, 8] {
            let par = simulate_program_with_threads(&p, threads);
            assert_eq!(par.per_nest_iterations, one.per_nest_iterations);
            assert_eq!(par.mws_total, one.mws_total);
            assert_eq!(par.boundary_live, one.boundary_live);
            assert_eq!(par.distinct, one.distinct);
            assert_eq!(par.peak_nest, one.peak_nest);
            assert_eq!(par.per_nest_mws, one.per_nest_mws);
            assert_eq!(par.live_through, one.live_through);
        }
    }

    #[test]
    fn per_nest_mws_matches_single_nest_simulation() {
        // Mixed shapes: stencil, triangular, producer/consumer — the
        // tables-derived per-nest MWS must equal each nest's own exact
        // simulation.
        let p = parse_program(
            "array A[20][20]\narray B[20][20]\n\
             for i = 2 to 20 { for j = 1 to 20 { A[i][j] = A[i-1][j] + A[i][j]; } }\n\
             for i = 1 to 20 { for j = i to 20 { B[i][j] = A[i][j]; } }\n\
             for i = 1 to 20 { for j = 1 to 20 { B[i][j] = B[i][j] + 1; } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        for (k, nest) in p.nests().iter().enumerate() {
            assert_eq!(
                ps.per_nest_mws[k],
                simulate(nest).mws_total,
                "nest {k} per-nest MWS off"
            );
        }
    }

    #[test]
    fn live_through_counts_boundary_crossers() {
        // A crosses boundary 0 only (64 elements); B and C stay inside
        // their own nest. live_through is `|in ∪ out|` per nest.
        let p = parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.live_through, vec![64, 64]);
        // An element spanning all three nests counts once per nest it
        // crosses, not once per boundary: union, not sum.
        let p3 = parse_program(
            "array A[5]\narray B[5]\n\
             for i = 1 to 5 { A[i] = A[i] + 1; }\n\
             for i = 1 to 5 { B[i] = B[i] + 1; }\n\
             for i = 1 to 5 { A[i] = A[i] + B[i]; }",
        )
        .unwrap();
        let ps3 = simulate_program(&p3);
        // Nest 1: A passes over it (5, in cross set), B enters and exits
        // within... B first-touched in nest 1, last in nest 2: crosses its
        // exit only (5). Union = 10.
        assert_eq!(ps3.boundary_live, vec![5, 10]);
        assert_eq!(ps3.live_through, vec![5, 10, 10]);
        // Every boundary crosser is a live-through of both adjacent nests.
        for (k, &b) in ps3.boundary_live.iter().enumerate() {
            assert!(ps3.live_through[k] >= b);
            assert!(ps3.live_through[k + 1] >= b);
        }
    }

    #[test]
    fn peak_nest_is_identified() {
        // Phase 1 touches a big array twice (peak inside phase 1).
        let p = parse_program(
            "array A[4]\narray B[12][12]\n\
             for i = 1 to 4 { A[i] = A[i] + 1; }\n\
             for t = 1 to 2 { for i = 1 to 12 { for j = 1 to 12 { B[i][j] = B[i][j] + 1; } } }",
        )
        .unwrap();
        let ps = simulate_program(&p);
        assert_eq!(ps.peak_nest, 1);
        assert_eq!(ps.mws_total, 144);
    }
}
