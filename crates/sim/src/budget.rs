//! Resource governance: analysis budgets, cancellation, and the analytical
//! fallback bounds the engines degrade to when a budget trips.
//!
//! [`AnalysisBudget`] is a declarative limit set — wall-clock timeout,
//! iteration cap, touch-table byte cap, search-node cap, and an optional
//! shared [`CancelToken`]. A budget is inert data; each governed run
//! materializes it into a [`BudgetTracker`] (which resolves the timeout to a
//! deadline and owns the shared atomic counters) and polls the tracker at
//! bounded intervals: every [`POLL_INTERVAL`] iterations inside a sweep
//! chunk, at every chunk boundary in the work-stealing loop, per candidate
//! in the transformation search, and per nest in the program engines.
//!
//! When a trip is observed the engine abandons exact simulation and returns
//! [`AnalysisError::Exhausted`] carrying [`analytic_nest_bounds`] — a purely
//! interval-analytic enclosure of the answer that does not depend on how far
//! the sweep got, so the payload is bit-identical for every thread count and
//! steal order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use loopmem_ir::{Bounds, BoundsMethod, LoopNest, TripReason};
use loopmem_obs::{EventKind, Phase, TraceEvent, TraceSink};

use crate::faults::FaultPlan;

/// How many swept iterations a chunk accumulates locally before charging
/// them to the shared tracker and polling for trips. Small enough that tight
/// caps (`max_iterations = 1000`) trip on small nests and cancellation is
/// observed well within one chunk; large enough that the shared atomic is
/// off the hot path.
pub const POLL_INTERVAL: u32 = 1024;

/// Shared cooperative-cancellation flag.
///
/// Cloning shares the flag; any clone can [`cancel`](CancelToken::cancel)
/// and every governed engine polling a budget holding the token observes it
/// within one [`POLL_INTERVAL`] of work.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flags the token; every holder observes it at its next poll.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once any clone has called [`cancel`](CancelToken::cancel).
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Declarative resource limits for one analysis. All limits default to
/// unlimited; builder methods tighten them.
#[derive(Clone, Default)]
pub struct AnalysisBudget {
    timeout: Option<Duration>,
    max_iterations: Option<u64>,
    max_table_bytes: Option<u64>,
    max_search_nodes: Option<u64>,
    cancel: Option<CancelToken>,
    fault: Option<Arc<FaultPlan>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for AnalysisBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisBudget")
            .field("timeout", &self.timeout)
            .field("max_iterations", &self.max_iterations)
            .field("max_table_bytes", &self.max_table_bytes)
            .field("max_search_nodes", &self.max_search_nodes)
            .field("cancel", &self.cancel)
            .field("fault", &self.fault)
            .field("trace", &self.trace.as_ref().map(|s| s.enabled()))
            .finish()
    }
}

impl AnalysisBudget {
    /// No limits: governed entry points behave exactly like the legacy ones.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps wall-clock time; the deadline is resolved when the run starts.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps total swept iterations (shared across every nest and thread of
    /// the run).
    pub fn with_max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Caps bytes of touch tables the planner may allocate; plans over the
    /// cap demote arrays to the sparse (hashmap) path, which is in turn
    /// governed by `max_iterations`.
    pub fn with_max_table_bytes(mut self, n: u64) -> Self {
        self.max_table_bytes = Some(n);
        self
    }

    /// Caps transformation-search work (candidates evaluated,
    /// branch-and-bound nodes expanded).
    pub fn with_max_search_nodes(mut self, n: u64) -> Self {
        self.max_search_nodes = Some(n);
        self
    }

    /// Attaches a shared cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a deterministic fault-injection plan
    /// ([`FaultPlan`](crate::faults::FaultPlan)); the materialized tracker
    /// consults it at every poll and at the planner / nest-entry hooks.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attaches a trace sink ([`loopmem_obs::TraceSink`]); the materialized
    /// tracker carries it to every instrumentation seam the run crosses.
    /// A disabled sink (the [`loopmem_obs::NullSink`]) is indistinguishable
    /// from attaching nothing — the engine keeps its fast paths.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// The attached trace sink, when one is present *and enabled*.
    pub fn trace(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace.as_ref().filter(|s| s.enabled())
    }

    /// True when no limit is set (the legacy fast path). A fault plan counts
    /// as a limit: injected faults must flow through the governed machinery.
    /// An *enabled* trace sink also counts — events only flow on governed
    /// paths — while a disabled one preserves the fast path untouched.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.max_iterations.is_none()
            && self.max_table_bytes.is_none()
            && self.max_search_nodes.is_none()
            && self.cancel.is_none()
            && self.fault.is_none()
            && self.trace().is_none()
    }

    /// The touch-table byte cap, if any.
    pub fn max_table_bytes(&self) -> Option<u64> {
        self.max_table_bytes
    }

    /// The iteration cap, if any.
    pub fn max_iterations(&self) -> Option<u64> {
        self.max_iterations
    }

    /// The search-node cap, if any.
    pub fn max_search_nodes(&self) -> Option<u64> {
        self.max_search_nodes
    }
}

/// One run's live view of an [`AnalysisBudget`]: shared atomic counters plus
/// the resolved deadline. Create one per governed run and share it (by
/// reference) across the run's worker threads.
pub struct BudgetTracker {
    deadline: Option<Instant>,
    max_iterations: Option<u64>,
    max_search_nodes: Option<u64>,
    iterations: AtomicU64,
    nodes: AtomicU64,
    cancel: Option<CancelToken>,
    fault: Option<Arc<FaultPlan>>,
    trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for BudgetTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BudgetTracker")
            .field("deadline", &self.deadline)
            .field("max_iterations", &self.max_iterations)
            .field("max_search_nodes", &self.max_search_nodes)
            .field("iterations", &self.iterations)
            .field("nodes", &self.nodes)
            .field("cancel", &self.cancel)
            .field("fault", &self.fault)
            .field("trace", &self.trace.as_ref().map(|s| s.enabled()))
            .finish()
    }
}

impl BudgetTracker {
    /// Materializes a budget: resolves `timeout` against the current clock.
    pub fn new(budget: &AnalysisBudget) -> Self {
        BudgetTracker {
            deadline: budget.timeout.map(|t| Instant::now() + t),
            max_iterations: budget.max_iterations,
            max_search_nodes: budget.max_search_nodes,
            iterations: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            cancel: budget.cancel.clone(),
            fault: budget.fault.clone(),
            trace: budget.trace().cloned(),
        }
    }

    /// The attached (enabled) trace sink, if any. Engines guard every
    /// emission site on this being `Some`, so the untraced path keeps a
    /// single predictable branch.
    pub fn trace(&self) -> Option<&Arc<dyn TraceSink>> {
        self.trace.as_ref()
    }

    /// A tracker that never trips (legacy paths).
    pub fn unlimited() -> Self {
        Self::new(&AnalysisBudget::unlimited())
    }

    /// Charges `n` swept iterations and polls. Trip checks are ordered so
    /// the deterministic limits (cancellation, iteration cap) are reported
    /// before the wall-clock one.
    pub fn charge_iterations(&self, n: u64) -> Result<(), TripReason> {
        self.iterations.fetch_add(n, Ordering::Relaxed);
        self.check()
    }

    /// Charges `n` search nodes (optimizer candidates, branch-and-bound
    /// expansions) and polls.
    pub fn charge_search_nodes(&self, n: u64) -> Result<(), TripReason> {
        self.nodes.fetch_add(n, Ordering::Relaxed);
        if let Some(cap) = self.max_search_nodes {
            if self.nodes.load(Ordering::Relaxed) > cap {
                return Err(TripReason::MaxSearchNodes);
            }
        }
        self.check()
    }

    /// Polls every limit without charging new work. An attached fault plan
    /// is consulted first (against the cumulative charged-iteration
    /// counter, which is monotone and schedule-independent) so injected
    /// trips land at an exact logical position regardless of which real
    /// limits are also set and how work was divided across threads.
    pub fn check(&self) -> Result<(), TripReason> {
        if let Some(plan) = &self.fault {
            let charged = self.iterations.load(Ordering::Relaxed);
            if let Some(reason) = plan.observe(charged, self.cancel.as_ref()) {
                if plan.take_trip_log() {
                    self.trace_fault_trip(plan);
                }
                return Err(reason);
            }
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(TripReason::Cancelled);
            }
        }
        if let Some(cap) = self.max_iterations {
            if self.iterations.load(Ordering::Relaxed) > cap {
                return Err(TripReason::MaxIterations);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(TripReason::Deadline);
            }
        }
        Ok(())
    }

    /// Total iterations charged so far.
    pub fn iterations_charged(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// True when an attached fault plan demands the planner reject every
    /// per-array touch table (forced `max_table_bytes` rejection).
    pub(crate) fn fault_reject_tables(&self) -> bool {
        self.fault.as_ref().is_some_and(|p| p.reject_tables())
    }

    /// Emits the fire-once [`EventKind::FaultTrip`] event for an attached
    /// plan. The payload is derived from the plan alone (kind label and
    /// poll threshold), never from run progress, so the event is
    /// bit-identical at every thread count.
    fn trace_fault_trip(&self, plan: &FaultPlan) {
        if let Some(sink) = &self.trace {
            sink.record(TraceEvent {
                phase: Phase::Pass1,
                nest: None,
                ord: (plan.at_poll(), 0),
                thread: 0,
                kind: EventKind::FaultTrip {
                    kind: plan.kind().label(),
                    at_poll: plan.at_poll(),
                },
            });
        }
    }

    /// True exactly once when an attached fault plan targets `nest_index`
    /// with an injected panic; the caller panics inside its `catch_unwind`.
    pub(crate) fn fault_take_panic(&self, nest_index: usize) -> bool {
        let hit = self
            .fault
            .as_ref()
            .is_some_and(|p| p.take_panic(nest_index));
        if hit {
            if let Some(plan) = &self.fault {
                self.trace_fault_trip(plan);
            }
        }
        hit
    }

    /// True exactly once, at the first consultation where the cumulative
    /// charged-iteration counter has reached the attached fault plan's
    /// threshold: the dense sweep must take its u32 time-stamp exhaustion
    /// branch. The counter is monotone and every charge is followed by a
    /// consultation, so whether the fault lands is thread-count invariant.
    pub(crate) fn fault_take_overflow(&self) -> bool {
        let hit = self
            .fault
            .as_ref()
            .is_some_and(|p| p.take_overflow(self.iterations.load(Ordering::Relaxed)));
        if hit {
            if let Some(plan) = &self.fault {
                self.trace_fault_trip(plan);
            }
        }
        hit
    }

    /// The deterministic iteration quota a salvage pass may re-sweep after a
    /// trip for `reason`, or `None` when the trip has no deterministic
    /// logical position (deadline, table caps, real cancellation, search
    /// caps). An injected poll fault defines the quota as N × POLL_INTERVAL;
    /// a real iteration-cap trip uses the cap itself.
    pub(crate) fn salvage_quota(&self, reason: TripReason) -> Option<u64> {
        if !matches!(reason, TripReason::MaxIterations | TripReason::Cancelled) {
            return None;
        }
        if let Some(q) = self
            .fault
            .as_ref()
            .and_then(|p| p.trip_quota(self.iterations.load(Ordering::Relaxed)))
        {
            return Some(q);
        }
        match reason {
            TripReason::MaxIterations => self.max_iterations,
            _ => None,
        }
    }
}

/// Conservative estimate of the nest's iteration count from interval
/// analysis of the loop bounds (saturating; `u128::MAX` means "huge").
pub(crate) fn estimated_iterations_of(nest: &LoopNest) -> u128 {
    match nest.var_ranges() {
        None => 0,
        Some(vr) => vr.iter().fold(1u128, |acc, &(lo, hi)| {
            acc.saturating_mul((hi as i128 - lo as i128 + 1).max(0) as u128)
        }),
    }
}

/// Analytical MWS bounds for one nest, independent of any simulation
/// progress (so `Exhausted` payloads are deterministic across thread counts
/// and steal orders).
///
/// The window can never exceed the number of distinct elements touched, and
/// for each array that is bounded by both its union subscript box (every
/// reference's per-dimension interval, unioned, from §3's bounding-box view)
/// and by `iterations × references` (each executed access touches one
/// element). The lower bound is the trivial 0 — a budget trip makes no
/// claim about how much of the window materialized.
pub fn analytic_nest_bounds(nest: &LoopNest) -> Bounds {
    let iters = estimated_iterations_of(nest);
    let narrays = nest.arrays().len();
    let mut upper: u128 = 0;
    if iters > 0 {
        let vr = nest
            .var_ranges()
            .expect("iters > 0 implies non-empty ranges");
        for a in 0..narrays {
            let mut cells: u128 = 0;
            let mut refs: u128 = 0;
            for st in nest.statements() {
                for r in st.refs() {
                    if r.array.0 != a {
                        continue;
                    }
                    refs += 1;
                    let mut box_cells: u128 = 1;
                    for (lo, hi) in r.index_ranges(&vr) {
                        box_cells =
                            box_cells.saturating_mul((hi as i128 - lo as i128 + 1).max(0) as u128);
                    }
                    cells = cells.saturating_add(box_cells);
                }
            }
            upper = upper.saturating_add(cells.min(iters.saturating_mul(refs)));
        }
    }
    Bounds {
        lower: 0,
        upper: u64::try_from(upper).unwrap_or(u64::MAX),
        method: BoundsMethod::UnionBox,
    }
}

/// Program-level analytical MWS bounds: the whole-program window is at most
/// the sum of every nest's distinct-element upper bound.
pub fn analytic_program_bounds(program: &loopmem_ir::Program) -> Bounds {
    let mut upper: u64 = 0;
    for nest in program.nests() {
        upper = upper.saturating_add(analytic_nest_bounds(nest).upper);
    }
    Bounds {
        lower: 0,
        upper,
        method: BoundsMethod::UnionBox,
    }
}

/// Extracts a human-readable message from a caught panic payload — the
/// string `panic!` was invoked with, or a placeholder for non-string
/// payloads. Governed callers use it to fill
/// [`AnalysisError::NestPanicked`](loopmem_ir::AnalysisError)'s message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let t = BudgetTracker::unlimited();
        for _ in 0..10 {
            assert!(t.charge_iterations(1 << 40).is_ok());
            assert!(t.charge_search_nodes(1 << 40).is_ok());
        }
    }

    #[test]
    fn iteration_cap_trips() {
        let t = BudgetTracker::new(&AnalysisBudget::unlimited().with_max_iterations(1000));
        assert!(t.charge_iterations(1000).is_ok());
        assert_eq!(t.charge_iterations(1), Err(TripReason::MaxIterations));
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let t = BudgetTracker::new(&AnalysisBudget::unlimited().with_timeout(Duration::ZERO));
        assert_eq!(t.check(), Err(TripReason::Deadline));
    }

    #[test]
    fn cancellation_is_shared_and_ordered_first() {
        let token = CancelToken::new();
        let budget = AnalysisBudget::unlimited()
            .with_cancel_token(token.clone())
            .with_max_iterations(0)
            .with_timeout(Duration::ZERO);
        let t = BudgetTracker::new(&budget);
        token.cancel();
        assert_eq!(t.charge_iterations(10), Err(TripReason::Cancelled));
    }

    #[test]
    fn search_node_cap_trips() {
        let t = BudgetTracker::new(&AnalysisBudget::unlimited().with_max_search_nodes(2));
        assert!(t.charge_search_nodes(2).is_ok());
        assert_eq!(t.charge_search_nodes(1), Err(TripReason::MaxSearchNodes));
    }

    #[test]
    fn nest_bounds_enclose_tiny_nest() {
        let nest = loopmem_ir::parse("array A[10]\nfor i = 1 to 10 { A[i - 1]; }").unwrap();
        let b = analytic_nest_bounds(&nest);
        // Exact MWS of a single-touch streaming nest is 1; distinct = 10.
        assert!(b.lower <= 1 && b.upper >= 10);
        assert_eq!(b.method, BoundsMethod::UnionBox);
    }

    #[test]
    fn empty_nest_bounds_are_zero() {
        let nest = loopmem_ir::parse("array A[10]\nfor i = 5 to 4 { A[i]; }").unwrap();
        let b = analytic_nest_bounds(&nest);
        assert_eq!((b.lower, b.upper), (0, 0));
    }
}
