//! Deterministic fault injection for the governed analysis paths.
//!
//! A [`FaultPlan`] describes one fault to inject into a governed run, pinned
//! to a *logical* fault point rather than a wall-clock one so the same plan
//! reproduces bit-identically for every thread count and steal order:
//!
//! * [`FaultKind::Exhaust`] / [`FaultKind::Cancel`] fire at the Nth poll
//!   quantum — the first budget poll
//!   ([`BudgetTracker::check`](crate::BudgetTracker::check)) observing at
//!   least `N × POLL_INTERVAL` charged iterations. The threshold is a
//!   predicate on the run's *cumulative* iteration counter, which is
//!   monotone and schedule-independent, so whether the fault lands — and
//!   the salvage quota when it does — is identical for every thread count
//!   and steal order, exactly like a real exhausted cap. Once the counter
//!   crosses the threshold every later poll reports the same trip, and a
//!   present cancel token is flagged for real.
//! * [`FaultKind::Overflow`] forces the dense sweep's u32 time-stamp
//!   exhaustion branch at the first charge observing the threshold (fires
//!   once; the error value is the real overflow error, verbatim).
//! * [`FaultKind::RejectTables`] makes the dense planner behave as if
//!   `max_table_bytes` rejected every per-array touch table, exercising the
//!   sparse fallback end to end (results must still be exact).
//! * [`FaultKind::PanicNest`] panics at the start of the target nest's
//!   sweep, inside the engine's per-nest `catch_unwind`, to prove panic
//!   containment and index rebasing.
//!
//! Plans are built explicitly or derived from a single seed
//! ([`FaultPlan::from_seed`]) via the workspace's deterministic
//! [`Lcg`](loopmem_linalg::rng::Lcg) stream; the chaos harness
//! (`loopmem-core::chaos`) expands one seed into a whole sweep of plans.

use std::sync::atomic::{AtomicBool, Ordering};

use loopmem_ir::TripReason;
use loopmem_linalg::rng::Lcg;

use crate::budget::{CancelToken, POLL_INTERVAL};

/// Which failure mode a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Trip the iteration budget (as `TripReason::MaxIterations`) at the
    /// Nth poll quantum, sticky from then on.
    Exhaust,
    /// Fire cancellation at the Nth poll quantum: the tracker's cancel
    /// token (when present) is flagged for real, and the poll reports
    /// `TripReason::Cancelled`, sticky from then on.
    Cancel,
    /// Make the dense planner reject every per-array touch table as if
    /// `max_table_bytes` were zero; sweeps fall back to the sparse
    /// per-iteration path and must still produce exact answers.
    RejectTables,
    /// Panic (once) at the start of the target nest's sweep, inside the
    /// engine's `catch_unwind` containment.
    PanicNest,
    /// Force the u32 time-stamp exhaustion (`AnalysisError::Overflow`) at
    /// the first charge observing the Nth poll quantum (fires once).
    Overflow,
}

impl FaultKind {
    /// All kinds, in a fixed order (used by seeded derivation and sweeps).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Exhaust,
        FaultKind::Cancel,
        FaultKind::RejectTables,
        FaultKind::PanicNest,
        FaultKind::Overflow,
    ];

    /// Stable kebab-case label, used by trace events and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Exhaust => "exhaust",
            FaultKind::Cancel => "cancel",
            FaultKind::RejectTables => "reject-tables",
            FaultKind::PanicNest => "panic-nest",
            FaultKind::Overflow => "overflow",
        }
    }
}

/// The panic message used by [`FaultKind::PanicNest`] injections.
///
/// Fixed so fault-injected `NestPanicked` errors are bit-identical across
/// thread counts and recognizable in chaos reports.
pub const INJECTED_PANIC: &str = "injected fault: nest panic";

/// One deterministic fault to inject into a governed run.
///
/// The struct carries interior-mutable firing state (for the fire-once
/// kinds), so one plan instance describes one run; build a fresh plan with
/// the same parameters for each run that should replay the same fault.
#[derive(Debug)]
pub struct FaultPlan {
    kind: FaultKind,
    /// 1-based poll-quantum index: poll-triggered kinds fire once
    /// `at_poll × POLL_INTERVAL` iterations have been charged.
    at_poll: u64,
    /// Target nest index for [`FaultKind::PanicNest`].
    nest: usize,
    fired: AtomicBool,
}

impl FaultPlan {
    /// A plan firing `kind` at the `at_poll`-th poll quantum (1-based;
    /// clamped to at least 1), targeting nest `nest` for
    /// [`FaultKind::PanicNest`].
    pub fn new(kind: FaultKind, at_poll: u64, nest: usize) -> Self {
        FaultPlan {
            kind,
            at_poll: at_poll.max(1),
            nest,
            fired: AtomicBool::new(false),
        }
    }

    /// Derives a plan from a single seed: kind, poll quantum (1..=16) and
    /// target nest (0..8) all come from the seeded [`Lcg`] stream.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = Lcg::new(seed);
        let kind = *rng.choose(&FaultKind::ALL);
        let at_poll = rng.range_i64(1, 16) as u64;
        let nest = rng.range_usize(0, 7);
        FaultPlan::new(kind, at_poll, nest)
    }

    /// The injected failure mode.
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The 1-based poll-quantum index poll-triggered kinds fire at.
    pub fn at_poll(&self) -> u64 {
        self.at_poll
    }

    /// The nest index [`FaultKind::PanicNest`] targets.
    pub fn target_nest(&self) -> usize {
        self.nest
    }

    /// The charged-iteration threshold poll-triggered kinds fire at.
    fn threshold(&self) -> u64 {
        self.at_poll.saturating_mul(POLL_INTERVAL as u64)
    }

    /// Called by `BudgetTracker::check` on every poll with the run's
    /// cumulative charged-iteration count. Returns the injected trip for
    /// [`FaultKind::Exhaust`] / [`FaultKind::Cancel`] once the counter
    /// reaches the threshold (sticky: the counter is monotone, so every
    /// later poll reports the same trip, and a present cancel token is
    /// flagged for real so unrelated workers stop like they would under a
    /// genuine cancellation).
    pub(crate) fn observe(&self, charged: u64, cancel: Option<&CancelToken>) -> Option<TripReason> {
        match self.kind {
            FaultKind::Exhaust if charged >= self.threshold() => Some(TripReason::MaxIterations),
            FaultKind::Cancel if charged >= self.threshold() => {
                if let Some(token) = cancel {
                    token.cancel();
                }
                Some(TripReason::Cancelled)
            }
            _ => None,
        }
    }

    /// True when the planner should reject every per-array touch table.
    pub(crate) fn reject_tables(&self) -> bool {
        self.kind == FaultKind::RejectTables
    }

    /// True exactly once, at the first poll that observed the injected
    /// trip: the tracker emits its fire-once `fault-trip` trace event.
    /// Reuses the `fired` flag, which the sticky poll-triggered kinds
    /// ([`FaultKind::Exhaust`] / [`FaultKind::Cancel`]) never consume.
    pub(crate) fn take_trip_log(&self) -> bool {
        !self.fired.swap(true, Ordering::Relaxed)
    }

    /// True exactly once, for the target nest: the caller must panic with
    /// [`INJECTED_PANIC`] inside its `catch_unwind` scope.
    pub(crate) fn take_panic(&self, nest_index: usize) -> bool {
        self.kind == FaultKind::PanicNest
            && self.nest == nest_index
            && !self.fired.swap(true, Ordering::Relaxed)
    }

    /// True exactly once, at the first consultation where the cumulative
    /// charged-iteration count has reached the threshold: the dense sweep
    /// must take its u32 time-stamp exhaustion branch.
    pub(crate) fn take_overflow(&self, charged: u64) -> bool {
        self.kind == FaultKind::Overflow
            && charged >= self.threshold()
            && !self.fired.swap(true, Ordering::Relaxed)
    }

    /// When a poll-triggered trip has fired (the cumulative counter reached
    /// the threshold), the deterministic iteration quota of the logical
    /// fault point: `at_poll × POLL_INTERVAL`. This is what the salvage
    /// pass re-sweeps, independent of which worker observed the fault
    /// first.
    pub(crate) fn trip_quota(&self, charged: u64) -> Option<u64> {
        match self.kind {
            FaultKind::Exhaust | FaultKind::Cancel if charged >= self.threshold() => {
                Some(self.threshold())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::from_seed(1234);
        let b = FaultPlan::from_seed(1234);
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.at_poll(), b.at_poll());
        assert_eq!(a.target_nest(), b.target_nest());
        let differs = (0..64).any(|s| {
            let c = FaultPlan::from_seed(s);
            a.kind() != c.kind() || a.at_poll() != c.at_poll() || a.target_nest() != c.target_nest()
        });
        assert!(differs, "distinct seeds should eventually differ");
    }

    #[test]
    fn exhaust_fires_sticky_at_the_threshold() {
        let step = POLL_INTERVAL as u64;
        let plan = FaultPlan::new(FaultKind::Exhaust, 3, 0);
        assert_eq!(plan.observe(step, None), None);
        assert_eq!(plan.observe(2 * step, None), None);
        assert_eq!(
            plan.observe(3 * step, None),
            Some(TripReason::MaxIterations)
        );
        // Sticky: the counter is monotone, later polls keep tripping.
        assert_eq!(
            plan.observe(4 * step, None),
            Some(TripReason::MaxIterations)
        );
        assert_eq!(plan.trip_quota(3 * step), Some(3 * step));
        assert_eq!(plan.trip_quota(step), None, "not before the threshold");
    }

    #[test]
    fn cancel_flags_the_real_token() {
        let step = POLL_INTERVAL as u64;
        let token = CancelToken::new();
        let plan = FaultPlan::new(FaultKind::Cancel, 1, 0);
        assert!(!token.is_cancelled());
        assert_eq!(
            plan.observe(step, Some(&token)),
            Some(TripReason::Cancelled)
        );
        assert!(token.is_cancelled());
        assert_eq!(plan.trip_quota(step), Some(step));
    }

    #[test]
    fn panic_and_overflow_fire_once() {
        let plan = FaultPlan::new(FaultKind::PanicNest, 1, 2);
        assert!(!plan.take_panic(0), "wrong nest must not fire");
        assert!(plan.take_panic(2));
        assert!(!plan.take_panic(2), "fires exactly once");

        let step = POLL_INTERVAL as u64;
        let plan = FaultPlan::new(FaultKind::Overflow, 2, 0);
        assert!(!plan.take_overflow(step), "not before the threshold");
        assert!(plan.take_overflow(2 * step));
        assert!(!plan.take_overflow(3 * step), "fires exactly once");
        assert_eq!(
            plan.trip_quota(3 * step),
            None,
            "overflow has no salvage quota"
        );
    }
}
