//! Synthetic scratchpad memory model.
//!
//! The paper's §1 motivation: per-access energy, latency, and area of an
//! on-chip data memory all grow with its capacity, so sizing the memory to
//! the working set (the MWS) instead of the declared arrays saves
//! energy/area/delay. The authors cite Catthoor et al. \[2\] but publish no
//! model, and we have no silicon — so this module provides a *synthetic,
//! CACTI-shaped* model (documented substitution, see DESIGN.md): energy and
//! latency grow with `√capacity` (bitline/wordline lengths), area linearly.
//! Absolute numbers are illustrative; only the monotone shape matters for
//! the reproduction.

use std::fmt;

/// Parameters of the scratchpad model.
///
/// Defaults approximate a 0.18 µm-era on-chip SRAM (the paper is from
/// 2001): they produce plausible magnitudes without claiming accuracy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScratchpadModel {
    /// Bytes per array element (word size).
    pub bytes_per_elem: u64,
    /// Fixed energy per access, picojoules.
    pub energy_base_pj: f64,
    /// Capacity-dependent energy coefficient, pJ per √byte.
    pub energy_sqrt_pj: f64,
    /// Fixed access latency, nanoseconds.
    pub latency_base_ns: f64,
    /// Capacity-dependent latency coefficient, ns per √byte.
    pub latency_sqrt_ns: f64,
    /// Area per byte, square millimetres.
    pub area_per_byte_mm2: f64,
}

impl Default for ScratchpadModel {
    fn default() -> Self {
        ScratchpadModel {
            bytes_per_elem: 4,
            energy_base_pj: 5.0,
            energy_sqrt_pj: 1.2,
            latency_base_ns: 0.8,
            latency_sqrt_ns: 0.05,
            area_per_byte_mm2: 0.0008,
        }
    }
}

/// Derived figures for one capacity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryReport {
    /// Capacity in elements (words).
    pub capacity_words: u64,
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Energy per access, picojoules.
    pub energy_per_access_pj: f64,
    /// Access latency, nanoseconds.
    pub latency_ns: f64,
    /// Silicon area, square millimetres.
    pub area_mm2: f64,
}

impl ScratchpadModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluates the model at a capacity given in array elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_words == 0`.
    pub fn report(&self, capacity_words: u64) -> MemoryReport {
        assert!(capacity_words > 0, "capacity must be positive");
        let bytes = capacity_words * self.bytes_per_elem;
        let sqrt = (bytes as f64).sqrt();
        MemoryReport {
            capacity_words,
            capacity_bytes: bytes,
            energy_per_access_pj: self.energy_base_pj + self.energy_sqrt_pj * sqrt,
            latency_ns: self.latency_base_ns + self.latency_sqrt_ns * sqrt,
            area_mm2: bytes as f64 * self.area_per_byte_mm2,
        }
    }

    /// Energy saving factor of sizing for `optimized` instead of `default`
    /// words (`> 1` means the optimized memory is cheaper per access).
    pub fn energy_saving_factor(&self, default_words: u64, optimized_words: u64) -> f64 {
        self.report(default_words).energy_per_access_pj
            / self.report(optimized_words).energy_per_access_pj
    }
}

impl fmt::Display for MemoryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} words ({} B): {:.1} pJ/access, {:.2} ns, {:.3} mm2",
            self.capacity_words,
            self.capacity_bytes,
            self.energy_per_access_pj,
            self.latency_ns,
            self.area_mm2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_in_capacity() {
        let m = ScratchpadModel::new();
        let small = m.report(64);
        let big = m.report(4096);
        assert!(big.energy_per_access_pj > small.energy_per_access_pj);
        assert!(big.latency_ns > small.latency_ns);
        assert!(big.area_mm2 > small.area_mm2);
    }

    #[test]
    fn saving_factor_above_one_for_smaller_memory() {
        let m = ScratchpadModel::new();
        assert!(m.energy_saving_factor(4096, 64) > 1.0);
        let f = m.energy_saving_factor(100, 100);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        ScratchpadModel::new().report(0);
    }

    #[test]
    fn display_mentions_units() {
        let r = ScratchpadModel::new().report(128);
        let s = r.to_string();
        assert!(s.contains("pJ/access"));
        assert!(s.contains("128 words"));
    }
}
