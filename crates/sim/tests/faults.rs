//! Deterministic fault-injection semantics of [`loopmem_sim::FaultPlan`].
//!
//! The contracts under test:
//!
//! * injected trips fire on the cumulative charged-iteration counter, so
//!   a fault pinned to an exact `POLL_INTERVAL` boundary fires at every
//!   thread count and salvages the identical prefix;
//! * an injected u32 overflow outranks the budget trips other chunks
//!   race into, so the reported error is thread-count invariant;
//! * forced touch-table rejection only changes the execution path
//!   (sparse), never the answers;
//! * an injected panic surfaces at exactly the targeted nest of a
//!   program, rebased, with the fixed marker message;
//! * one oversized nest in a batch is refused by the table gate alone
//!   while its siblings stay exact.

use std::sync::Arc;

use loopmem_ir::{parse, parse_program, AnalysisError, BoundsMethod, TripReason};
use loopmem_sim::{
    simulate, try_simulate_program_with_threads, try_simulate_with_threads, AnalysisBudget,
    FaultKind, FaultPlan, INJECTED_PANIC,
};

/// Exactly 2 × 1024 iterations: two outer rows of one poll quantum each.
fn boundary_nest() -> loopmem_ir::LoopNest {
    parse(
        "array X[1030]\n\
         for i = 1 to 2 { for j = 1 to 1024 { X[j] = X[j + 2]; } }",
    )
    .unwrap()
}

fn budget_with(plan: FaultPlan) -> AnalysisBudget {
    AnalysisBudget::unlimited().with_fault_plan(Arc::new(plan))
}

#[test]
fn exhaust_on_exact_poll_boundary_salvages_the_full_prefix() {
    let nest = boundary_nest();
    let exact = simulate(&nest).mws_total;
    // The nest charges exactly 2048 iterations; a threshold of 2 poll
    // quanta (2048) is reached by the final charge, so the run trips
    // *after* completing every iteration — the salvaged prefix is the
    // whole space and the lower bound equals the exact MWS.
    let errors: Vec<AnalysisError> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            let budget = budget_with(FaultPlan::new(FaultKind::Exhaust, 2, 0));
            try_simulate_with_threads(&nest, false, t, &budget).unwrap_err()
        })
        .collect();
    let AnalysisError::Exhausted { reason, partial } = &errors[0] else {
        panic!("expected Exhausted, got {:?}", errors[0]);
    };
    assert_eq!(*reason, TripReason::MaxIterations);
    assert_eq!(partial.method, BoundsMethod::SalvagedPrefix);
    assert_eq!(
        partial.lower, exact,
        "full-prefix salvage must recover the exact MWS as its lower bound"
    );
    assert!(partial.upper >= exact);
    assert_eq!(errors[0], errors[1]);
    assert_eq!(errors[0], errors[2]);
}

#[test]
fn fault_past_the_last_charge_never_fires() {
    let nest = boundary_nest();
    let clean = simulate(&nest);
    // Threshold 3 × 1024 exceeds the 2048 iterations ever charged: the
    // plan stays dormant and the run completes exactly.
    for t in [1usize, 2, 4] {
        let budget = budget_with(FaultPlan::new(FaultKind::Exhaust, 3, 0));
        let sim = try_simulate_with_threads(&nest, false, t, &budget).unwrap();
        assert_eq!(sim.mws_total, clean.mws_total);
        assert_eq!(sim.iterations, clean.iterations);
    }
}

#[test]
fn injected_overflow_outranks_concurrent_budget_trips() {
    // ~10¹² iterations: at t > 1 the chunks that do NOT take the injected
    // overflow run on into the shared iteration cap. The overflow fires
    // at a fixed point of the charged stream, so it must win the failure
    // race at every thread count.
    let nest = parse(
        "array X[2000001]\n\
         for i = 1 to 1000000 { for j = 1 to 1000000 { X[i + j] = X[i + j - 1]; } }",
    )
    .unwrap();
    let errors: Vec<AnalysisError> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            let budget = AnalysisBudget::unlimited()
                .with_max_iterations(65_536)
                .with_fault_plan(Arc::new(FaultPlan::new(FaultKind::Overflow, 2, 0)));
            try_simulate_with_threads(&nest, false, t, &budget).unwrap_err()
        })
        .collect();
    assert!(
        matches!(&errors[0], AnalysisError::Overflow { .. }),
        "expected Overflow, got {:?}",
        errors[0]
    );
    assert_eq!(errors[0], errors[1]);
    assert_eq!(errors[0], errors[2]);
}

#[test]
fn rejected_tables_change_the_path_not_the_answers() {
    let nest = parse(
        "array A[52][52]\n\
         for i = 2 to 50 { for j = 1 to 50 { A[i][j] = A[i-1][j]; } }",
    )
    .unwrap();
    let clean = simulate(&nest);
    for t in [1usize, 2, 4] {
        let budget = budget_with(FaultPlan::new(FaultKind::RejectTables, 1, 0));
        let sim = try_simulate_with_threads(&nest, false, t, &budget).unwrap();
        assert_eq!(sim.mws_total, clean.mws_total);
        assert_eq!(sim.per_array, clean.per_array);
    }
}

#[test]
fn injected_panic_surfaces_at_the_targeted_program_nest() {
    let program = parse_program(
        "array A[10]\narray B[10]\n\
         for i = 1 to 3 { A[i]; }\n\
         for i = 1 to 3 { B[i]; }\n\
         for i = 1 to 3 { A[i] = B[i]; }",
    )
    .unwrap();
    for t in [1usize, 2, 4] {
        let budget = budget_with(FaultPlan::new(FaultKind::PanicNest, 1, 1));
        let gov = try_simulate_program_with_threads(&program, t, &budget).unwrap();
        assert_eq!(gov.per_nest[0], Ok(3));
        assert_eq!(gov.per_nest[2], Ok(3));
        match &gov.per_nest[1] {
            Err(AnalysisError::NestPanicked { nest, message }) => {
                assert_eq!(*nest, 1, "panic index must be rebased to the program");
                assert_eq!(message, INJECTED_PANIC);
            }
            other => panic!("expected NestPanicked for nest 1, got {other:?}"),
        }
        assert!(!gov.all_exact());
    }
}

#[test]
fn oversized_nest_in_a_batch_degrades_alone() {
    // Nest 1's pass-2 lane alone (4 bytes × ~10¹² iterations) blows any
    // sane table cap; the per-nest gate must refuse it up front while
    // nests 0 and 2 still analyze exactly under the same budget.
    let program = parse_program(
        "array A[10]\narray X[2000001]\n\
         for i = 1 to 3 { A[i]; }\n\
         for i = 1 to 1000000 { for j = 1 to 1000000 { X[i + j] = X[i + j - 1]; } }\n\
         for i = 1 to 3 { A[i] = A[i]; }",
    )
    .unwrap();
    let budget = AnalysisBudget::unlimited().with_max_table_bytes(1 << 20);
    for t in [1usize, 2, 4] {
        let gov = try_simulate_program_with_threads(&program, t, &budget).unwrap();
        assert_eq!(gov.per_nest[0], Ok(3));
        assert_eq!(gov.per_nest[2], Ok(3));
        match &gov.per_nest[1] {
            Err(AnalysisError::Exhausted { reason, partial }) => {
                assert_eq!(*reason, TripReason::MaxTableBytes);
                assert!(partial.lower <= partial.upper);
            }
            other => panic!("expected MaxTableBytes for nest 1, got {other:?}"),
        }
        assert!(!gov.all_exact());
        assert!(gov.mws_bounds.lower <= gov.mws_bounds.upper);
    }
}
