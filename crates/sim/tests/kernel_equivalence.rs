//! Engine-equivalence suite for the lane-split pass-1 kernels.
//!
//! Seeded random nests per kernel class — stride-0, stride-±1,
//! general-stride, and the sparse hashmap fallback — each pinned
//! bit-identical across worker-thread counts t ∈ {1, 2, 4} and against
//! the legacy per-element hashmap engine. Every generated source is
//! reproducible from the fixed per-class seed, so a failure names the
//! exact nest.

use loopmem_ir::parse;
use loopmem_linalg::rng::Lcg;
use loopmem_sim::{bench_pass1_interleaved, simulate_hashmap_with_profile, simulate_with_threads};

/// Asserts the dense lane-split engine matches the hashmap reference
/// bit-for-bit (iterations, per-array stats, MWS, full profile) for
/// every pinned thread count, and that the legacy interleaved pass-1
/// comparator agrees on the iteration count.
fn assert_engines_agree(src: &str) {
    let nest = parse(src).unwrap_or_else(|e| panic!("parse failed for:\n{src}\n{e:?}"));
    let reference = simulate_hashmap_with_profile(&nest);
    for threads in [1usize, 2, 4] {
        let got = simulate_with_threads(&nest, true, threads);
        assert_eq!(
            got.iterations, reference.iterations,
            "iterations diverge at t={threads} for:\n{src}"
        );
        assert_eq!(
            got.mws_total, reference.mws_total,
            "mws_total diverges at t={threads} for:\n{src}"
        );
        assert_eq!(
            got.per_array, reference.per_array,
            "per-array stats diverge at t={threads} for:\n{src}"
        );
        assert_eq!(
            got.profile, reference.profile,
            "window profile diverges at t={threads} for:\n{src}"
        );
    }
    assert_eq!(bench_pass1_interleaved(&nest), reference.iterations);
}

#[test]
fn stride0_references_agree() {
    // Innermost-invariant subscripts: the run kernel collapses a whole
    // run into one min/max pair.
    let mut rng = Lcg::new(0x51D0_0001);
    for case in 0..24u64 {
        let c = rng.range_i64(1, 4);
        let k = rng.range_i64(1, 9);
        let ihi = rng.range_i64(4, 16);
        let jhi = rng.range_i64(4, 16);
        let n = c * ihi + k + c * ihi + 20;
        let src = match case % 3 {
            // Sole stride-0 reference.
            0 => format!(
                "array A[{n}]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ A[{c}i + {k}]; }} }}"
            ),
            // Two stride-0 references of one array (max-lane fold).
            1 => format!(
                "array A[{n}]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ A[{c}i + {k}] = A[{c}i + {}]; }} }}",
                k + 1
            ),
            // Depth-3: stride 0 in the innermost variable only.
            _ => format!(
                "array A[{n}]\nfor i = 1 to {ihi} {{ for j = 1 to 5 {{ for k = 1 to {jhi} {{ A[{c}i + j]; }} }} }}"
            ),
        };
        assert_engines_agree(&src);
    }
}

#[test]
fn stride_plus_one_references_agree() {
    // Contiguous ascending runs: slice-fill `last` lanes (sole refs) and
    // min/max lanes (stencil pairs).
    let mut rng = Lcg::new(0x51D0_0002);
    for case in 0..24u64 {
        let ihi = rng.range_i64(4, 20);
        let jhi = rng.range_i64(4, 20);
        let k = rng.range_i64(1, 6);
        let src = match case % 3 {
            // Sole reference, 1-D, offset j + c·i.
            0 => format!(
                "array X[600]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[{k}i + j]; }} }}"
            ),
            // 2-D stencil: two refs, same column stride +1.
            1 => format!(
                "array A[24][24]\nfor i = 2 to {} {{ for j = 1 to {jhi} {{ A[i][j] = A[i-1][j]; }} }}",
                ihi.min(20) + 2
            ),
            // Triangular inner bounds.
            _ => format!(
                "array X[600]\nfor i = 1 to {ihi} {{ for j = i to {} {{ X[{k}i + j] = X[{k}i + j + 2]; }} }}",
                jhi + 4
            ),
        };
        assert_engines_agree(&src);
    }
}

#[test]
fn stride_minus_one_references_agree() {
    // Contiguous descending runs: the kernels write the lanes back to
    // front with decreasing stamps.
    let mut rng = Lcg::new(0x51D0_0003);
    for case in 0..24u64 {
        let ihi = rng.range_i64(4, 18);
        let jhi = rng.range_i64(4, 18);
        let c = rng.range_i64(1, 4);
        let base = 40 + jhi;
        let src = match case % 3 {
            // Sole descending reference.
            0 => format!(
                "array X[200]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[{base} - j + {c}i]; }} }}"
            ),
            // Ascending against descending: runs cross mid-way.
            1 => format!(
                "array X[200]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[{c}i + j] = X[{base} - j]; }} }}"
            ),
            // Depth-3 with a descending innermost subscript.
            _ => format!(
                "array X[200]\nfor i = 1 to {ihi} {{ for j = 1 to 4 {{ for k = 1 to {jhi} {{ X[{base} - k + j]; }} }} }}"
            ),
        };
        assert_engines_agree(&src);
    }
}

#[test]
fn general_stride_references_agree() {
    // Example-8 style interleavings: |stride| ≥ 2 walks the lanes with
    // gaps, exercising the strided branch-free kernel.
    let mut rng = Lcg::new(0x51D0_0004);
    for case in 0..24u64 {
        let ihi = rng.range_i64(4, 18);
        let jhi = rng.range_i64(4, 14);
        let s = [2i64, 3, 5, 7][(rng.next_u64() % 4) as usize];
        let c = rng.range_i64(1, 4);
        let base = s * jhi + 20;
        let src = match case % 3 {
            // Sole strided reference.
            0 => format!(
                "array X[800]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[{c}i + {s}j]; }} }}"
            ),
            // The paper's Example 8 shape: two refs, shifted constants.
            1 => format!(
                "array X[800]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[{c}i + {s}j + 1] = X[{c}i + {s}j + 5]; }} }}"
            ),
            // Negative stride with positive offset to stay in range.
            _ => format!(
                "array X[800]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[{base} - {s}j + {c}i]; }} }}"
            ),
        };
        assert_engines_agree(&src);
    }
}

#[test]
fn sparse_fallback_references_agree() {
    // Subscript strides so large the planner demotes the array to the
    // hashmap path — including mixed nests where one array stays dense,
    // exercising the split dense-kernel / per-iteration sparse loop.
    let mut rng = Lcg::new(0x51D0_0005);
    for case in 0..12u64 {
        let ihi = rng.range_i64(3, 12);
        let jhi = rng.range_i64(3, 8);
        let src = match case % 2 {
            0 => format!(
                "array X[2000000000]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[100000000i + j]; }} }}"
            ),
            // One sparse array interleaved with one dense stride-1 array.
            _ => format!(
                "array X[2000000000]\narray B[60]\nfor i = 1 to {ihi} {{ for j = 1 to {jhi} {{ X[100000000i + j] = B[j + i]; }} }}"
            ),
        };
        assert_engines_agree(&src);
    }
}
