//! Engine-equivalence tests for the sharded program engine: the batch
//! path must match a nest-by-nest serial sweep *exactly* — same MWS, same
//! boundary sets, same distinct counts — for every thread count.
//!
//! The reference implementation below is deliberately independent of the
//! production code: one global hashmap keyed by (array, coordinates) over
//! a single global clock, the way `simulate_program` worked before pass 1
//! was sharded.

use loopmem_ir::{parse_program, ArrayId, Program};
use loopmem_sim::{
    for_each_iteration, simulate_program, simulate_program_with_threads, ProgramSimResult,
};
use std::collections::HashMap;

/// Serial global-clock reference: nests swept in order, one shared touch
/// table, one sweep.
fn reference_simulate(program: &Program) -> ProgramSimResult {
    let mut touches: HashMap<(usize, Vec<i64>), (u64, u64)> = HashMap::new();
    let mut per_nest_iterations = Vec::new();
    let mut per_nest_mws = Vec::new();
    let mut nest_end = Vec::new();
    let mut t = 0u64;
    for nest in program.nests() {
        let start = t;
        // Nest-local touch table with its own clock, for the per-nest MWS.
        let mut local: HashMap<(usize, Vec<i64>), (u64, u64)> = HashMap::new();
        let mut lt = 0u64;
        for_each_iteration(nest, |it| {
            for r in nest.refs() {
                let key = (r.array.0, r.index_at(it));
                touches
                    .entry(key.clone())
                    .and_modify(|e| e.1 = t)
                    .or_insert((t, t));
                local
                    .entry(key)
                    .and_modify(|e| e.1 = lt)
                    .or_insert((lt, lt));
            }
            t += 1;
            lt += 1;
        });
        per_nest_iterations.push(t - start);
        nest_end.push(t);
        let mut delta = vec![0i64; lt as usize + 1];
        for &(f, l) in local.values() {
            if f < l {
                delta[f as usize] += 1;
                delta[l as usize] -= 1;
            }
        }
        let mut cur = 0i64;
        let mut peak = 0i64;
        for d in delta {
            cur += d;
            peak = peak.max(cur);
        }
        per_nest_mws.push(peak as u64);
    }
    let iterations = t as usize;
    let mut add = vec![0i64; iterations.max(1)];
    let mut rem = vec![0i64; iterations.max(1)];
    for &(f, l) in touches.values() {
        add[f as usize] += 1;
        rem[l as usize] += 1;
    }
    let mut cur = 0i64;
    let mut peak = 0i64;
    let mut peak_t = 0u64;
    let mut boundary_live = Vec::new();
    let mut next_boundary = 0usize;
    for ti in 0..iterations {
        cur += add[ti] - rem[ti];
        if cur > peak {
            peak = cur;
            peak_t = ti as u64;
        }
        while next_boundary + 1 < nest_end.len() && (ti as u64 + 1) == nest_end[next_boundary] {
            boundary_live.push(cur as u64);
            next_boundary += 1;
        }
    }
    let peak_nest = nest_end.iter().position(|&end| peak_t < end).unwrap_or(0);
    let mut distinct: HashMap<ArrayId, u64> = HashMap::new();
    for (a, _) in touches.keys() {
        *distinct.entry(ArrayId(*a)).or_insert(0) += 1;
    }
    // An element whose lifetime starts in nest fk and ends in nest lk > fk
    // crosses a boundary of every nest k in fk..=lk.
    let mut live_through = vec![0u64; nest_end.len()];
    for &(f, l) in touches.values() {
        if f < l {
            let fk = nest_end.partition_point(|&end| end <= f);
            let lk = nest_end.partition_point(|&end| end <= l);
            if lk > fk {
                for slot in &mut live_through[fk..=lk] {
                    *slot += 1;
                }
            }
        }
    }
    ProgramSimResult {
        per_nest_iterations,
        mws_total: peak as u64,
        per_nest_mws,
        boundary_live,
        live_through,
        distinct,
        peak_nest,
    }
}

fn assert_same(a: &ProgramSimResult, b: &ProgramSimResult) {
    assert_eq!(a.per_nest_iterations, b.per_nest_iterations);
    assert_eq!(a.mws_total, b.mws_total);
    assert_eq!(a.per_nest_mws, b.per_nest_mws);
    assert_eq!(a.boundary_live, b.boundary_live);
    assert_eq!(a.live_through, b.live_through);
    assert_eq!(a.distinct, b.distinct);
    assert_eq!(a.peak_nest, b.peak_nest);
}

/// Paper-kernel-shaped programs plus a triangular-nest program; the batch
/// engine must match the reference for t ∈ {1, 2, 4}.
fn programs() -> Vec<Program> {
    [
        // Example 8's reuse kernel feeding a consumer nest.
        "array X[200]\narray Y[200]\n\
         for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }\n\
         for i = 1 to 160 { Y[i] = X[i]; }",
        // Three-phase stencil pipeline (Example 2 shape).
        "array A[12][12]\narray B[12][12]\n\
         for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }\n\
         for i = 1 to 10 { for j = 1 to 10 { B[i][j] = A[i][j]; } }\n\
         for i = 2 to 10 { for j = 1 to 10 { B[i][j] = B[i-1][j]; } }",
        // Triangular-nest program: lower- and upper-triangle sweeps over a
        // shared array, with a rectangular producer in front.
        "array L[30][30]\narray U[30][30]\n\
         for i = 1 to 30 { for j = 1 to 30 { L[i][j] = U[i][j]; } }\n\
         for i = 1 to 30 { for j = i to 30 { U[i][j] = L[j][i]; } }\n\
         for i = 1 to 30 { for j = 1 to i { L[i][j] = U[j][i]; } }",
        // Single-nest program (no boundaries at all).
        "array A[16][16]\nfor i = 2 to 16 { for j = 1 to 16 { A[i][j] = A[i-1][j]; } }",
    ]
    .iter()
    .map(|src| parse_program(src).unwrap())
    .collect()
}

#[test]
fn batch_matches_reference_for_all_thread_counts() {
    for p in programs() {
        let want = reference_simulate(&p);
        for threads in [1, 2, 4] {
            assert_same(&simulate_program_with_threads(&p, threads), &want);
        }
        assert_same(&simulate_program(&p), &want);
    }
}

#[test]
fn batch_default_equals_pinned_one_thread() {
    for p in programs() {
        assert_same(&simulate_program(&p), &simulate_program_with_threads(&p, 1));
    }
}
