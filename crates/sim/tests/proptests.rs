//! Property-style tests: simulator invariants (stack property of LRU, OPT
//! optimality ordering, window/capacity duality). Deterministic (seeded
//! `Lcg`), no external dependencies.

use loopmem_ir::parse;
use loopmem_linalg::Lcg;
use loopmem_sim::{min_perfect_capacity, misses, simulate, simulate_with_profile, Policy, Trace};

fn random_nest(rng: &mut Lcg) -> String {
    let n1 = rng.range_i64(3, 9);
    let n2 = rng.range_i64(3, 9);
    let d1 = rng.range_i64(-2, 2);
    let d2 = rng.range_i64(-2, 2);
    let p = rng.range_i64(1, 3);
    let c = rng.range_i64(0, 5);
    format!(
        "array A[{}][{}]\narray B[99]\n\
         for i = 1 to {n1} {{ for j = 1 to {n2} {{ \
         A[i + 3][j + 3] = A[i + {a}][j + {b}] + B[{p}*i + j + {cc}]; }} }}",
        n1 + 6,
        n2 + 6,
        a = d1 + 3,
        b = d2 + 3,
        cc = c + 10,
    )
}

#[test]
fn lru_has_the_stack_property() {
    let mut rng = Lcg::new(0x51);
    for _ in 0..48 {
        let src = random_nest(&mut rng);
        // Inclusion: a larger LRU buffer never misses more.
        let t = Trace::from_nest(&parse(&src).expect("parses"));
        let mut prev = u64::MAX;
        for c in [1usize, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
            let m = misses(&t, c, Policy::Lru);
            assert!(m <= prev, "capacity {c}: {m} > {prev} ({src})");
            prev = m;
        }
    }
}

#[test]
fn opt_dominates_lru_everywhere() {
    let mut rng = Lcg::new(0x52);
    for _ in 0..48 {
        let src = random_nest(&mut rng);
        let t = Trace::from_nest(&parse(&src).expect("parses"));
        for c in [1usize, 2, 4, 8, 16, 32, 64] {
            assert!(
                misses(&t, c, Policy::Opt) <= misses(&t, c, Policy::Lru),
                "capacity {c} ({src})"
            );
        }
    }
}

#[test]
fn misses_never_below_cold_and_never_above_accesses() {
    let mut rng = Lcg::new(0x53);
    for _ in 0..48 {
        let src = random_nest(&mut rng);
        let t = Trace::from_nest(&parse(&src).expect("parses"));
        for p in [Policy::Lru, Policy::Opt] {
            for c in [1usize, 7, 64] {
                let m = misses(&t, c, p);
                assert!(m >= t.distinct() as u64, "{src}");
                assert!(m <= t.len() as u64, "{src}");
            }
        }
    }
}

#[test]
fn perfect_capacity_bracketed_by_window() {
    let mut rng = Lcg::new(0x54);
    for _ in 0..48 {
        let src = random_nest(&mut rng);
        // OPT's minimum perfect capacity is at most MWS + in-flight refs,
        // and at least 1.
        let nest = parse(&src).expect("parses");
        let mws = simulate(&nest).mws_total as usize;
        let refs = nest.refs().count();
        let t = Trace::from_nest(&nest);
        let perfect = min_perfect_capacity(&t, Policy::Opt);
        assert!(perfect >= 1);
        assert!(
            perfect <= mws + refs + 1,
            "perfect {perfect} vs MWS {mws} + {refs} ({src})"
        );
    }
}

#[test]
fn profile_peak_equals_mws() {
    let mut rng = Lcg::new(0x55);
    for _ in 0..48 {
        let src = random_nest(&mut rng);
        let nest = parse(&src).expect("parses");
        let s = simulate_with_profile(&nest);
        let peak = s
            .profile
            .as_ref()
            .and_then(|p| p.iter().max().copied())
            .unwrap_or(0);
        assert_eq!(peak, s.mws_total, "{src}");
        assert_eq!(
            s.profile.as_ref().map(Vec::len).unwrap_or(0) as u64,
            s.iterations,
            "{src}"
        );
    }
}

#[test]
fn per_array_windows_bound_the_total() {
    let mut rng = Lcg::new(0x56);
    for _ in 0..48 {
        let src = random_nest(&mut rng);
        let nest = parse(&src).expect("parses");
        let s = simulate(&nest);
        let sum: u64 = s.per_array.values().map(|a| a.mws).sum();
        let max: u64 = s.per_array.values().map(|a| a.mws).max().unwrap_or(0);
        assert!(s.mws_total <= sum, "total exceeds sum of peaks ({src})");
        assert!(
            s.mws_total >= max,
            "total below largest per-array peak ({src})"
        );
    }
}
