//! Property tests: simulator invariants (stack property of LRU, OPT
//! optimality ordering, window/capacity duality).

use loopmem_ir::parse;
use loopmem_sim::{
    min_perfect_capacity, misses, simulate, simulate_with_profile, Policy, Trace,
};
use proptest::prelude::*;

fn random_nest() -> impl Strategy<Value = String> {
    (
        3i64..=9,
        3i64..=9,
        -2i64..=2,
        -2i64..=2,
        1i64..=3,
        0i64..=5,
    )
        .prop_map(|(n1, n2, d1, d2, p, c)| {
            format!(
                "array A[{}][{}]\narray B[99]\n\
                 for i = 1 to {n1} {{ for j = 1 to {n2} {{ \
                 A[i + 3][j + 3] = A[i + {a}][j + {b}] + B[{p}*i + j + {cc}]; }} }}",
                n1 + 6,
                n2 + 6,
                a = d1 + 3,
                b = d2 + 3,
                cc = c + 10,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lru_has_the_stack_property(src in random_nest()) {
        // Inclusion: a larger LRU buffer never misses more.
        let t = Trace::from_nest(&parse(&src).expect("parses"));
        let mut prev = u64::MAX;
        for c in [1usize, 2, 3, 5, 8, 13, 21, 34, 55, 89] {
            let m = misses(&t, c, Policy::Lru);
            prop_assert!(m <= prev, "capacity {c}: {m} > {prev} ({src})");
            prev = m;
        }
    }

    #[test]
    fn opt_dominates_lru_everywhere(src in random_nest()) {
        let t = Trace::from_nest(&parse(&src).expect("parses"));
        for c in [1usize, 2, 4, 8, 16, 32, 64] {
            prop_assert!(
                misses(&t, c, Policy::Opt) <= misses(&t, c, Policy::Lru),
                "capacity {c} ({src})"
            );
        }
    }

    #[test]
    fn misses_never_below_cold_and_never_above_accesses(src in random_nest()) {
        let t = Trace::from_nest(&parse(&src).expect("parses"));
        for p in [Policy::Lru, Policy::Opt] {
            for c in [1usize, 7, 64] {
                let m = misses(&t, c, p);
                prop_assert!(m >= t.distinct() as u64);
                prop_assert!(m <= t.len() as u64);
            }
        }
    }

    #[test]
    fn perfect_capacity_bracketed_by_window(src in random_nest()) {
        // OPT's minimum perfect capacity is at most MWS + in-flight refs,
        // and at least 1.
        let nest = parse(&src).expect("parses");
        let mws = simulate(&nest).mws_total as usize;
        let refs = nest.refs().count();
        let t = Trace::from_nest(&nest);
        let perfect = min_perfect_capacity(&t, Policy::Opt);
        prop_assert!(perfect >= 1);
        prop_assert!(
            perfect <= mws + refs + 1,
            "perfect {perfect} vs MWS {mws} + {refs} ({src})"
        );
    }

    #[test]
    fn profile_peak_equals_mws(src in random_nest()) {
        let nest = parse(&src).expect("parses");
        let s = simulate_with_profile(&nest);
        let peak = s.profile.as_ref().and_then(|p| p.iter().max().copied()).unwrap_or(0);
        prop_assert_eq!(peak, s.mws_total);
        prop_assert_eq!(s.profile.as_ref().map(Vec::len).unwrap_or(0) as u64, s.iterations);
    }

    #[test]
    fn per_array_windows_bound_the_total(src in random_nest()) {
        let nest = parse(&src).expect("parses");
        let s = simulate(&nest);
        let sum: u64 = s.per_array.values().map(|a| a.mws).sum();
        let max: u64 = s.per_array.values().map(|a| a.mws).max().unwrap_or(0);
        prop_assert!(s.mws_total <= sum, "total exceeds sum of peaks");
        prop_assert!(s.mws_total >= max, "total below largest per-array peak");
    }
}
