//! Budget semantics of the governed (`try_*`) simulation entry points.
//!
//! The contracts under test:
//!
//! * a tripped budget returns [`AnalysisError::Exhausted`] whose payload
//!   is purely *analytical* — bit-identical across worker-thread counts
//!   and valid (`lower ≤ exact ≤ upper`) against the true answer;
//! * cancellation is observed within one polling chunk;
//! * an unlimited budget reproduces the legacy panicking API exactly;
//! * overflow and panics inside a nest surface as typed errors, and in a
//!   multi-nest program they poison only their own nest.

use loopmem_ir::{parse, parse_program, AnalysisError, TripReason};
use loopmem_sim::{
    simulate, try_simulate, try_simulate_program, try_simulate_with_threads, AnalysisBudget,
    CancelToken,
};
use std::time::Duration;

fn huge_nest() -> loopmem_ir::LoopNest {
    // ~10¹² iterations: unsimulatable, so any governed run must trip.
    parse(
        "array X[2000001]\n\
         for i = 1 to 1000000 { for j = 1 to 1000000 { X[i + j] = X[i + j - 1]; } }",
    )
    .unwrap()
}

#[test]
fn deadline_trip_payload_is_identical_across_thread_counts() {
    let nest = huge_nest();
    // A zero timeout trips at the first poll no matter how fast the host
    // is; the payload must come from closed forms, not from progress, so
    // every thread count returns the same error value.
    let budget = AnalysisBudget::unlimited().with_timeout(Duration::ZERO);
    let errors: Vec<AnalysisError> = [1usize, 2, 4]
        .iter()
        .map(|&t| try_simulate_with_threads(&nest, false, t, &budget).unwrap_err())
        .collect();
    for e in &errors {
        let AnalysisError::Exhausted { reason, partial } = e else {
            panic!("expected Exhausted, got {e:?}");
        };
        assert_eq!(*reason, TripReason::Deadline);
        assert!(partial.lower <= partial.upper);
    }
    assert_eq!(errors[0], errors[1]);
    assert_eq!(errors[0], errors[2]);
}

#[test]
fn max_iterations_trip_payload_is_identical_across_thread_counts() {
    let nest = huge_nest();
    let budget = AnalysisBudget::unlimited().with_max_iterations(10_000);
    let errors: Vec<AnalysisError> = [1usize, 2, 4]
        .iter()
        .map(|&t| try_simulate_with_threads(&nest, false, t, &budget).unwrap_err())
        .collect();
    assert!(matches!(
        &errors[0],
        AnalysisError::Exhausted {
            reason: TripReason::MaxIterations,
            ..
        }
    ));
    assert_eq!(errors[0], errors[1]);
    assert_eq!(errors[0], errors[2]);
}

#[test]
fn pre_cancelled_token_trips_before_sweeping() {
    let token = CancelToken::new();
    token.cancel();
    let budget = AnalysisBudget::unlimited().with_cancel_token(token);
    let err = try_simulate(&huge_nest(), &budget).unwrap_err();
    assert!(matches!(
        err,
        AnalysisError::Exhausted {
            reason: TripReason::Cancelled,
            ..
        }
    ));
}

#[test]
fn cancellation_is_observed_within_one_chunk() {
    // Cancel from another thread shortly after the sweep starts; the
    // governed run must return (cancelled) rather than sweep all 10¹²
    // iterations. The generous join window only guards against a hung
    // sweep — typical return is milliseconds after the cancel.
    let token = CancelToken::new();
    let budget = AnalysisBudget::unlimited().with_cancel_token(token.clone());
    let nest = huge_nest();
    let worker = std::thread::spawn(move || try_simulate(&nest, &budget));
    std::thread::sleep(Duration::from_millis(50));
    token.cancel();
    let start = std::time::Instant::now();
    let result = worker.join().expect("governed sweep must not panic");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "cancellation not observed promptly"
    );
    assert!(matches!(
        result,
        Err(AnalysisError::Exhausted {
            reason: TripReason::Cancelled,
            ..
        })
    ));
}

#[test]
fn exhausted_bounds_sandwich_the_exact_answer() {
    // Force a trip on nests small enough to also run exactly: the
    // analytical payload must bracket the true MWS.
    let sources = [
        "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        "array A[52][52]\nfor i = 2 to 50 { for j = 1 to 50 { A[i][j] = A[i-1][j]; } }",
        "array B[64]\nfor i = 1 to 8 { for j = i to 8 { B[i + j]; } }",
        "array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }",
    ];
    for src in sources {
        let nest = parse(src).unwrap();
        let exact = simulate(&nest).mws_total;
        let budget = AnalysisBudget::unlimited().with_max_iterations(3);
        let err = try_simulate(&nest, &budget).unwrap_err();
        let AnalysisError::Exhausted { partial, .. } = err else {
            panic!("expected Exhausted on {src}");
        };
        assert!(
            partial.lower <= exact && exact <= partial.upper,
            "bounds {partial} do not contain exact MWS {exact} for {src}"
        );
    }
}

#[test]
fn unlimited_budget_matches_legacy_simulate() {
    for src in [
        "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        "array A[34][34]\nfor i = 1 to 32 { for j = i to 32 { A[i][j] = A[j][i]; } }",
    ] {
        let nest = parse(src).unwrap();
        let legacy = simulate(&nest);
        let governed = try_simulate(&nest, &AnalysisBudget::unlimited()).unwrap();
        assert_eq!(governed.iterations, legacy.iterations);
        assert_eq!(governed.mws_total, legacy.mws_total);
        assert_eq!(governed.per_array, legacy.per_array);
    }
}

#[test]
fn subscript_overflow_is_a_typed_error() {
    let nest = parse("array X[10]\nfor i = 1 to 5 { X[4000000000000000000i]; }").unwrap();
    let err = try_simulate(&nest, &AnalysisBudget::unlimited()).unwrap_err();
    assert!(
        matches!(err, AnalysisError::Overflow { .. }),
        "expected Overflow, got {err:?}"
    );
}

#[test]
fn panicking_nest_poisons_only_itself_in_a_program() {
    // Nest 1's inner bound overflows `Affine::eval` (a contained panic);
    // nests 0 and 2 must still analyze exactly and the program answer
    // degrades to bounds.
    let program = parse_program(
        "array A[10]\narray B[10]\n\
         for i = 1 to 3 { A[i]; }\n\
         for i = 800 to 900 { for j = i + 9223372036854775000 to 9223372036854775807 { B[1]; } }\n\
         for i = 1 to 3 { B[i]; }",
    )
    .unwrap();
    let gov = try_simulate_program(&program, &AnalysisBudget::unlimited()).unwrap();
    assert_eq!(gov.per_nest.len(), 3);
    assert_eq!(gov.per_nest[0], Ok(3));
    assert_eq!(gov.per_nest[2], Ok(3));
    match &gov.per_nest[1] {
        Err(AnalysisError::NestPanicked { nest, message }) => {
            assert_eq!(*nest, 1);
            assert!(
                message.contains("overflow"),
                "unexpected panic message: {message}"
            );
        }
        other => panic!("expected NestPanicked for nest 1, got {other:?}"),
    }
    assert!(!gov.all_exact());
    assert!(gov.mws_bounds.lower <= gov.mws_bounds.upper);
    assert!(!gov.mws_bounds.is_exact());
}

#[test]
fn near_max_loop_bounds_trip_instead_of_hanging() {
    // The outer span alone exceeds any feasible sweep; with an iteration
    // cap the governed run must return immediately with bounds.
    let nest = parse(
        "array X[10]\n\
         for i = 1 to 9223372036854775000 { X[1]; }",
    )
    .unwrap();
    let budget = AnalysisBudget::unlimited().with_max_iterations(1_000);
    let err = try_simulate(&nest, &budget).unwrap_err();
    let AnalysisError::Exhausted { reason, partial } = err else {
        panic!("expected Exhausted");
    };
    assert_eq!(reason, TripReason::MaxIterations);
    assert!(partial.lower <= partial.upper);
}
