//! The differential estimator sanitizer (`LM9xxx`).
//!
//! For nests small enough to simulate exactly, the §3 closed-form distinct
//! counts and the analytic MWS bounds from `loopmem-core` are cross-checked
//! against the dense simulator — the estimator stack becomes its own test
//! oracle. Any disagreement is an internal-consistency **Error**: either an
//! estimator, the simulator, or the classification dispatch is wrong.
//!
//! What is checked, per array:
//!
//! * `LM9001` — an estimate claiming exactness (`lower == upper`) differs
//!   from the simulated distinct count. The one *known* approximation —
//!   the paper's §3.1 multi-reference formula with more than two
//!   references, which over-counts overlap (its Example 3 reports 139
//!   where the true union is 121) — is skipped, because
//!   [`loopmem_core::estimate_distinct_exact`] only replaces it when the
//!   inclusion–exclusion union is available.
//! * `LM9003` — a bounds-only estimate (Example-6 non-uniform ranges)
//!   whose interval does not contain the simulated count.
//!
//! And per nest:
//!
//! * `LM9002` — the analytic MWS upper bound
//!   ([`loopmem_core::analytic_mws_bounds`]) is *below* the simulated
//!   exact MWS: a supposedly guaranteed bound was violated.

use crate::diag::{Diagnostic, Severity};
use crate::lints::first_ref_span;
use crate::CheckOptions;
use loopmem_core::{analytic_mws_bounds, estimate_distinct_exact, Method};
use loopmem_ir::{LoopNest, NestSpans};
use loopmem_sim::oracle_simulate;

fn method_name(m: Method) -> &'static str {
    match m {
        Method::FullRankFormula => "§3.1 full-rank formula",
        Method::NullspaceFormula => "§3.2 null-space formula",
        Method::SeparableProduct => "separable product",
        Method::InclusionExclusion => "inclusion-exclusion union",
        Method::NonUniformBounds => "§3.2 non-uniform bounds",
        Method::Enumerated => "exact enumeration",
    }
}

/// Cross-checks estimators against the dense simulator for one nest.
/// Returns no diagnostics when the nest is too large for the oracle
/// (that is "no oracle", not "consistent") or provably empty.
pub fn sanitize_nest(nest: &LoopNest, spans: &NestSpans, opts: &CheckOptions) -> Vec<Diagnostic> {
    let Some(sim) = oracle_simulate(nest, opts.oracle_max_iters) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if sim.iterations > 0 {
        for (array, est) in estimate_distinct_exact(nest) {
            let observed = sim.per_array.get(&array).map_or(0, |s| s.distinct) as i64;
            let name = &nest.array(array).name;
            if est.is_exact() {
                if est.method == Method::FullRankFormula
                    && nest.refs().filter(|r| r.array == array).count() > 2
                {
                    // The documented §3.1 r>2 over-count; not a disagreement.
                    continue;
                }
                if est.value() != Some(observed) {
                    out.push(Diagnostic {
                        code: "LM9001",
                        severity: Severity::Error,
                        message: format!(
                            "estimator disagreement on '{name}': {} predicts {} distinct \
                             elements, simulation observed {observed}",
                            method_name(est.method),
                            est.lower
                        ),
                        notes: vec![
                            "an exact closed form and the dense simulator cannot both be \
                             right; this is an internal consistency bug"
                                .into(),
                        ],
                        span: first_ref_span(nest, spans, array),
                        nest: None,
                    });
                }
            } else if observed < est.lower || observed > est.upper {
                out.push(Diagnostic {
                    code: "LM9003",
                    severity: Severity::Error,
                    message: format!(
                        "bounds violation on '{name}': {} predicts [{}, {}], simulation \
                         observed {observed}",
                        method_name(est.method),
                        est.lower,
                        est.upper
                    ),
                    notes: vec![
                        "the Example-6 value-range bounds are guaranteed enclosures; an \
                         observation outside them is an internal consistency bug"
                            .into(),
                    ],
                    span: first_ref_span(nest, spans, array),
                    nest: None,
                });
            }
        }
    }
    let bounds = analytic_mws_bounds(nest);
    if sim.mws_total > bounds.upper {
        out.push(Diagnostic {
            code: "LM9002",
            severity: Severity::Error,
            message: format!(
                "analytic MWS upper bound ({}) is below the simulated exact MWS ({})",
                bounds.upper, sim.mws_total
            ),
            notes: vec![
                "the degradation ladder promises a guaranteed enclosure; budget-governed \
                 callers would have trusted a wrong bound"
                    .into(),
            ],
            span: spans.nest,
            nest: None,
        });
    }
    out
}
