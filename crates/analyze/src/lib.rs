#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `loopmem-analyze` — span-aware static diagnostics over the `.loop` IR.
//!
//! The paper's whole point is deciding memory budgets *before* running the
//! code; this crate is the front door that decides, before any simulation,
//! what kind of nest we are looking at. A multi-pass static analyzer
//! classifies each nest — which §3 closed form applies, whether any
//! tileable transformation can exist (§4), whether subscripts stay inside
//! declared extents — and predicts, via i128 interval arithmetic, exactly
//! the failures the governed engine (PR 3's degradation ladder) would
//! otherwise discover dynamically.
//!
//! # Lints
//!
//! | code | severity | meaning | paper |
//! |------|----------|---------|-------|
//! | `LM0001` | error | subscript can leave the declared extents | §2 |
//! | `LM0002` | hint | rank-deficient access matrix; names the null-space (reuse) vector | §3.2 |
//! | `LM0003` | warning | non-uniformly generated references; bounds-only estimate | §3.2, Ex. 6 |
//! | `LM0004` | warning | dependence cone admits no full-rank tileable transform | §4.2 |
//! | `LM0005` | warning | loop-invariant reference (constant subscripts) | §2.3 |
//! | `LM0006` | warning | zero-trip loop: the nest never executes | — |
//! | `LM0007` | warning | array declared but never referenced | — |
//! | `LM0008` | warning | duplicate reference within one statement | — |
//! | `LM0009` | error | bound/subscript arithmetic will overflow i64 in simulation | — |
//! | `LM0010` | warning | iteration volume exceeds the analysis budget | — |
//! | `LM0011` | warning | dead store: array written but never read afterwards | — |
//! | `LM9001`–`LM9003` | error | differential sanitizer disagreements (`--sanitize`) | §3 |
//!
//! Certificate violations (`LM7001`–`LM7007`) are reported by the
//! independent checker in `loopmem-verify` and rendered by the CLI with
//! this crate's diagnostic machinery.
//!
//! # Quickstart
//!
//! ```
//! use loopmem_analyze::{check_source, CheckOptions};
//!
//! let report = check_source(
//!     "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1]; } }",
//!     &CheckOptions::default(),
//! ).unwrap();
//! // Example 8's access matrix is rank-deficient: a hint names the
//! // null-space vector (5, -2).
//! assert_eq!(report.diagnostics[0].code, "LM0002");
//! assert!(report.diagnostics[0].notes[0].contains("(5, -2)"));
//! ```
//!
//! The pass is **total** on untrusted input (no panics, saturating
//! arithmetic, cost-gated dependence queries) and **deterministic**: the
//! same source always produces byte-identical reports.

pub mod diag;
pub mod lints;
pub mod sanitize;

pub use diag::{Diagnostic, Report, Severity};
pub use lints::{dead_store_diagnostics, lint_nest, unused_array_diagnostics};
/// Re-export of the shared JSON module (moved to `loopmem-ir` so the
/// certificate checker can use it without depending on this crate).
pub use loopmem_ir::json;
pub use loopmem_ir::{escape_json, parse_json, Json};
pub use sanitize::sanitize_nest;

use loopmem_ir::{parse_program_spanned, LoopNest, NestSpans, ParseError};

/// Tuning knobs for [`check_source`] / [`check_nest`].
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Run the differential sanitizer (`LM9xxx`) on nests small enough to
    /// simulate exactly.
    pub sanitize: bool,
    /// Iteration-volume threshold for `LM0010`. Defaults to `u32::MAX`:
    /// the dense engine stamps time in `u32`, so anything larger cannot
    /// simulate exactly even with an unlimited budget.
    pub max_volume: u64,
    /// Largest estimated iteration count the sanitizer's simulation oracle
    /// will attempt.
    pub oracle_max_iters: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            sanitize: false,
            max_volume: u64::from(u32::MAX),
            oracle_max_iters: 200_000,
        }
    }
}

/// Checks one nest that was parsed with [`loopmem_ir::parse_spanned`]:
/// all per-nest lints, per-nest unused arrays, and (when enabled and no
/// overflow is predicted) the differential sanitizer.
pub fn check_nest(nest: &LoopNest, spans: &NestSpans, opts: &CheckOptions) -> Report {
    let mut diagnostics = lint_nest(nest, spans, opts);
    diagnostics.extend(unused_array_diagnostics(&[nest], spans));
    diagnostics.extend(lints::dead_store_diagnostics(
        &[nest],
        std::slice::from_ref(spans),
    ));
    if opts.sanitize && !diagnostics.iter().any(|d| d.code == "LM0009") {
        diagnostics.extend(sanitize_nest(nest, spans, opts));
    }
    for d in &mut diagnostics {
        d.nest = Some(0);
    }
    sort_diagnostics(&mut diagnostics);
    Report { diagnostics }
}

/// Parses `src` as a program (one or more nests over shared declarations)
/// and checks every nest. Unused-array analysis is program-wide: an array
/// only written in nest 0 and read in nest 2 is used.
///
/// # Errors
///
/// Returns the (span-carrying) [`ParseError`] when `src` does not parse;
/// render it with [`ParseError::render`] for a caret snippet.
pub fn check_source(src: &str, opts: &CheckOptions) -> Result<Report, ParseError> {
    let (program, all_spans) = parse_program_spanned(src)?;
    let mut diagnostics = Vec::new();
    for (k, (nest, spans)) in program.nests().iter().zip(&all_spans).enumerate() {
        let mut ds = lint_nest(nest, spans, opts);
        if opts.sanitize && !ds.iter().any(|d| d.code == "LM0009") {
            ds.extend(sanitize_nest(nest, spans, opts));
        }
        for d in &mut ds {
            d.nest = Some(k);
        }
        diagnostics.extend(ds);
    }
    if let Some(decl_spans) = all_spans.first() {
        let nests: Vec<&LoopNest> = program.nests().iter().collect();
        diagnostics.extend(unused_array_diagnostics(&nests, decl_spans));
        diagnostics.extend(lints::dead_store_diagnostics(&nests, &all_spans));
    }
    sort_diagnostics(&mut diagnostics);
    Ok(Report { diagnostics })
}

/// Deterministic rendering order: by source position, then span end, then
/// code, then nest index.
fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.span.start, a.span.end, a.code, a.nest).cmp(&(b.span.start, b.span.end, b.code, b.nest))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str, opts: &CheckOptions) -> Vec<&'static str> {
        check_source(src, opts)
            .unwrap()
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_nest_produces_no_diagnostics() {
        let src = "array A[32][32]\nfor i = 2 to 31 { for j = 2 to 31 {\n\
                   A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);\n} }";
        assert_eq!(codes(src, &CheckOptions::default()), Vec::<&str>::new());
    }

    #[test]
    fn out_of_extent_subscript_is_an_error() {
        let src = "array A[10]\nfor i = 1 to 11 { A[i]; }";
        let r = check_source(src, &CheckOptions::default()).unwrap();
        assert!(r.diagnostics.iter().any(|d| d.code == "LM0001"));
        assert!(r.has_errors());
    }

    #[test]
    fn overflow_prediction_suppresses_extent_lint() {
        let src = "array X[10]\nfor i = 1 to 5 { X[4000000000000000000i]; }";
        let got = codes(src, &CheckOptions::default());
        assert!(got.contains(&"LM0009"), "{got:?}");
        assert!(!got.contains(&"LM0001"), "{got:?}");
    }

    #[test]
    fn zero_trip_and_volume_lints() {
        let empty = "array X[10]\nfor i = 5 to 4 { for j = 1 to 1000000 { X[1]; } }";
        let got = codes(empty, &CheckOptions::default());
        assert!(got.contains(&"LM0006"), "{got:?}");
        assert!(got.contains(&"LM0005"), "{got:?}");
        assert!(
            !got.contains(&"LM0010"),
            "empty nests have volume 0: {got:?}"
        );

        let huge = "array X[2000001]\n\
                    for i = 1 to 1000000 { for j = 1 to 1000000 { X[i + j] = X[i + j - 1]; } }";
        assert!(codes(huge, &CheckOptions::default()).contains(&"LM0010"));
    }

    #[test]
    fn unused_array_is_program_wide() {
        // B is only used by the second nest: not unused.
        let src = "array A[8]\narray B[8]\narray Z[8]\n\
                   for i = 1 to 8 { A[i]; }\n\
                   for i = 1 to 8 { B[i]; }";
        let r = check_source(src, &CheckOptions::default()).unwrap();
        let unused: Vec<&Diagnostic> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == "LM0007")
            .collect();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("'Z'"));
        assert_eq!(unused[0].nest, None);
    }

    #[test]
    fn dead_store_is_suffix_sensitive() {
        // A is written by nest 0 and read by nest 1: alive. C is written
        // by nest 1 and read by nothing afterwards: dead. B is read-only:
        // never a store at all.
        let src = "array A[8]\narray B[8]\narray C[8]\n\
                   for i = 1 to 8 { A[i] = B[i]; }\n\
                   for i = 1 to 8 { C[i] = A[i]; }";
        let r = check_source(src, &CheckOptions::default()).unwrap();
        let dead: Vec<&Diagnostic> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == "LM0011")
            .collect();
        assert_eq!(dead.len(), 1, "{:?}", r.diagnostics);
        assert!(dead[0].message.contains("'C'"));
        assert_eq!(dead[0].nest, Some(1));

        // A same-nest read suppresses the lint (accumulations are alive).
        let acc = "array C[8]\nfor i = 1 to 8 { C[i] = C[i] + 1; }";
        let r = check_source(acc, &CheckOptions::default()).unwrap();
        assert!(
            !r.diagnostics.iter().any(|d| d.code == "LM0011"),
            "{:?}",
            r.diagnostics
        );

        // A *later* write does not resurrect an earlier dead store.
        let twice = "array C[8]\narray B[8]\n\
                     for i = 1 to 8 { C[i] = B[i]; }\n\
                     for i = 1 to 8 { C[i] = B[i] + B[i]; }";
        let r = check_source(twice, &CheckOptions::default()).unwrap();
        let dead: Vec<usize> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == "LM0011")
            .map(|d| d.nest.unwrap())
            .collect();
        assert_eq!(dead, vec![0, 1], "{:?}", r.diagnostics);
    }

    #[test]
    fn sanitizer_is_quiet_on_paper_examples() {
        let opts = CheckOptions {
            sanitize: true,
            ..CheckOptions::default()
        };
        for src in [
            "array A[30][30]\nfor i = 1 to 25 { for j = 1 to 20 { A[i][j] = A[i-1][j+2]; } }",
            "array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }",
            "array A[200]\nfor i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        ] {
            let got = codes(src, &opts);
            assert!(
                !got.iter().any(|c| c.starts_with("LM9")),
                "sanitizer fired on {src}: {got:?}"
            );
        }
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let src = "array X[10]\narray U[5]\nfor i = 5 to 4 { for j = 1 to 10 { X[1]; } }";
        let a = check_source(src, &CheckOptions::default()).unwrap();
        let b = check_source(src, &CheckOptions::default()).unwrap();
        assert_eq!(a.diagnostics, b.diagnostics);
        let starts: Vec<usize> = a.diagnostics.iter().map(|d| d.span.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
