//! The paper-grounded lints (`LM0001` … `LM0011`).
//!
//! Every lint is *static*: cost is polynomial in the nest description,
//! never in the iteration count, and every helper here is total on
//! untrusted input (i128 interval arithmetic with saturation instead of
//! the simulator's checked/panicking i64 paths). The lints predict, before
//! any simulation, exactly the failures PR 3's governed engine would
//! discover dynamically — `Overflow` ([`LM0009`](self)), `Exhausted`
//! ([`LM0010`](self)) — plus the §3/§4 structure facts that decide which
//! estimator applies.

use crate::diag::{Diagnostic, Severity};
use crate::CheckOptions;
use loopmem_core::{classify_formulas, FormulaClass};
use loopmem_dep::cone::{constraining_distances, tileable_row_rank, MAX_CONE_DEPTH};
use loopmem_dep::uniform::uniform_groups;
use loopmem_ir::{AccessKind, ArrayId, LoopNest, NestSpans, Span};
use loopmem_linalg::integer_nullspace;

/// Per-loop interval facts derived by one i128 sweep over the bounds.
pub(crate) struct RangeInfo {
    /// Conservative enclosure of each loop variable's value (clamped to
    /// i64 so downstream arithmetic stays representable).
    pub vr: Vec<(i128, i128)>,
    /// Per-loop: some bound expression's value range escapes i64.
    pub overflowing: Vec<bool>,
    /// Per-loop: the loop provably never executes.
    pub zero_trip: Vec<bool>,
    /// Saturating product of per-loop trip-count upper bounds.
    pub volume: u128,
}

const I64_MIN: i128 = i64::MIN as i128;
const I64_MAX: i128 = i64::MAX as i128;

fn div_floor_128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil_128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Interval of an affine expression over `vr`, accumulated term by term
/// the way `Affine::eval` does; the second return is `true` when *any
/// partial sum's* interval escapes i64 (so the simulator's i64 evaluation
/// could overflow even if the final value fits).
fn affine_interval(coeffs: &[i64], constant: i64, vr: &[(i128, i128)]) -> ((i128, i128), bool) {
    let mut lo = i128::from(constant);
    let mut hi = lo;
    let mut escapes = false;
    for (&c, &(a, b)) in coeffs.iter().zip(vr) {
        let c = i128::from(c);
        let (p, q) = if c >= 0 {
            (c.saturating_mul(a), c.saturating_mul(b))
        } else {
            (c.saturating_mul(b), c.saturating_mul(a))
        };
        lo = lo.saturating_add(p);
        hi = hi.saturating_add(q);
        if lo < I64_MIN || hi > I64_MAX {
            escapes = true;
        }
    }
    ((lo, hi), escapes)
}

/// One pass over the loop bounds: value enclosures, overflow prediction,
/// zero-trip detection, iteration volume. Never panics.
pub(crate) fn analyze_ranges(nest: &LoopNest) -> RangeInfo {
    let depth = nest.depth();
    let mut vr: Vec<(i128, i128)> = vec![(0, 0); depth];
    let mut overflowing = vec![false; depth];
    let mut zero_trip = vec![false; depth];
    let mut volume: u128 = 1;
    for (k, l) in nest.loops().iter().enumerate() {
        // Lower bound = max over pieces of ceil(expr / div).
        let mut lower: Option<(i128, i128)> = None;
        for p in l.lower.pieces() {
            let ((a, b), esc) = affine_interval(p.expr.coeffs(), p.expr.constant_term(), &vr);
            overflowing[k] |= esc;
            let d = i128::from(p.div.max(1));
            let (a, b) = (div_ceil_128(a, d), div_ceil_128(b, d));
            lower = Some(match lower {
                None => (a, b),
                Some((x, y)) => (x.max(a), y.max(b)),
            });
        }
        // Upper bound = min over pieces of floor(expr / div).
        let mut upper: Option<(i128, i128)> = None;
        for p in l.upper.pieces() {
            let ((a, b), esc) = affine_interval(p.expr.coeffs(), p.expr.constant_term(), &vr);
            overflowing[k] |= esc;
            let d = i128::from(p.div.max(1));
            let (a, b) = (div_floor_128(a, d), div_floor_128(b, d));
            upper = Some(match upper {
                None => (a, b),
                Some((x, y)) => (x.min(a), y.min(b)),
            });
        }
        let (lo_min, _lo_max) = lower.unwrap_or((0, 0));
        let (_up_min, up_max) = upper.unwrap_or((0, 0));
        if !(I64_MIN..=I64_MAX).contains(&lo_min) || !(I64_MIN..=I64_MAX).contains(&up_max) {
            overflowing[k] = true;
        }
        zero_trip[k] = up_max < lo_min;
        let width = (up_max.saturating_sub(lo_min).saturating_add(1)).max(0) as u128;
        volume = volume.saturating_mul(width);
        // Clamp the enclosure so later loops and subscripts stay in i128
        // comfort; an empty range collapses to a point.
        let lo = lo_min.clamp(I64_MIN, I64_MAX);
        let hi = up_max.clamp(lo, I64_MAX);
        vr[k] = (lo, hi);
    }
    RangeInfo {
        vr,
        overflowing,
        zero_trip,
        volume,
    }
}

fn fmt_vec(v: &[i64]) -> String {
    let parts: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("({})", parts.join(", "))
}

/// Span of the first reference to `array`, falling back to the nest span.
pub(crate) fn first_ref_span(nest: &LoopNest, spans: &NestSpans, array: ArrayId) -> Span {
    for (s, stmt) in nest.statements().iter().enumerate() {
        for (r, rf) in stmt.refs().iter().enumerate() {
            if rf.array == array {
                return spans
                    .refs
                    .get(s)
                    .and_then(|v| v.get(r))
                    .copied()
                    .unwrap_or(spans.nest);
            }
        }
    }
    spans.nest
}

fn loop_span(spans: &NestSpans, k: usize) -> Span {
    spans.loops.get(k).copied().unwrap_or(spans.nest)
}

/// Runs every per-nest lint. Diagnostics come back unsorted and with
/// `nest: None`; the caller stamps the nest index and sorts.
pub fn lint_nest(nest: &LoopNest, spans: &NestSpans, opts: &CheckOptions) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let info = analyze_ranges(nest);
    let mut any_overflow = false;

    // LM0009 on loop bounds.
    for (k, l) in nest.loops().iter().enumerate() {
        if info.overflowing[k] {
            any_overflow = true;
            out.push(Diagnostic {
                code: "LM0009",
                severity: Severity::Error,
                message: format!(
                    "bounds of loop '{}' can exceed the i64 range at simulation time",
                    l.var
                ),
                notes: vec![
                    "the dense engine evaluates bounds in i64 and reports a typed Overflow \
                     (or panics in ungoverned mode) on this nest"
                        .into(),
                ],
                span: loop_span(spans, k),
                nest: None,
            });
        }
    }

    // LM0006 zero-trip loops.
    for (k, l) in nest.loops().iter().enumerate() {
        if info.zero_trip[k] && !info.overflowing[k] {
            out.push(Diagnostic {
                code: "LM0006",
                severity: Severity::Warn,
                message: format!(
                    "loop '{}' never executes (upper bound < lower bound)",
                    l.var
                ),
                notes: vec![
                    "the nest's iteration space is empty; every window and distinct count is 0"
                        .into(),
                ],
                span: loop_span(spans, k),
                nest: None,
            });
        }
    }

    // LM0009 / LM0001 / LM0005 per reference.
    let nest_empty = info.zero_trip.iter().any(|&z| z);
    for (s, stmt) in nest.statements().iter().enumerate() {
        for (r, rf) in stmt.refs().iter().enumerate() {
            let rspan = spans
                .refs
                .get(s)
                .and_then(|v| v.get(r))
                .copied()
                .unwrap_or(spans.nest);
            let decl = nest.array(rf.array);
            let mut ref_overflows = false;
            let mut oob: Vec<String> = Vec::new();
            for d in 0..rf.rank() {
                let ((lo, hi), esc) = affine_interval(rf.matrix.row(d), rf.offset[d], &info.vr);
                if esc {
                    ref_overflows = true;
                    continue;
                }
                let extent = i128::from(decl.dims[d]);
                if lo < 0 || hi > extent {
                    oob.push(format!(
                        "subscript {} spans [{lo}, {hi}] but '{}' declares extent {} \
                         (valid indices 0..={})",
                        d + 1,
                        decl.name,
                        extent,
                        extent
                    ));
                }
            }
            if ref_overflows {
                any_overflow = true;
                out.push(Diagnostic {
                    code: "LM0009",
                    severity: Severity::Error,
                    message: format!(
                        "subscript of '{}' can exceed the i64 range at simulation time",
                        decl.name
                    ),
                    notes: vec![
                        "predicted from i128 interval arithmetic over the loop bounds; \
                         the governed simulator reports a typed Overflow here"
                            .into(),
                    ],
                    span: rspan,
                    nest: None,
                });
            } else if !oob.is_empty() && !nest_empty {
                out.push(Diagnostic {
                    code: "LM0001",
                    severity: Severity::Error,
                    message: format!(
                        "reference to '{}' can index outside its declared extents",
                        decl.name
                    ),
                    notes: oob,
                    span: rspan,
                    nest: None,
                });
            }
            if rf.matrix.rows_iter().all(|row| row.iter().all(|&c| c == 0)) && nest.depth() > 0 {
                out.push(Diagnostic {
                    code: "LM0005",
                    severity: Severity::Warn,
                    message: format!(
                        "reference to '{}' is loop-invariant (every subscript is constant)",
                        decl.name
                    ),
                    notes: vec![
                        "the same element is touched on every iteration; it stays in the \
                         reference window for the nest's whole execution"
                            .into(),
                    ],
                    span: rspan,
                    nest: None,
                });
            }
        }
    }

    // LM0008 duplicate references inside one statement.
    for (s, stmt) in nest.statements().iter().enumerate() {
        let refs = stmt.refs();
        for r in 0..refs.len() {
            for earlier in 0..r {
                let (a, b) = (&refs[earlier], &refs[r]);
                if a.array == b.array
                    && a.matrix == b.matrix
                    && a.offset == b.offset
                    && a.kind == b.kind
                {
                    out.push(Diagnostic {
                        code: "LM0008",
                        severity: Severity::Warn,
                        message: format!(
                            "duplicate reference to '{}' in one statement",
                            nest.array(a.array).name
                        ),
                        notes: vec![
                            "identical accesses add no reuse information and inflate the \
                             access count"
                                .into(),
                        ],
                        span: spans
                            .refs
                            .get(s)
                            .and_then(|v| v.get(r))
                            .copied()
                            .unwrap_or(spans.nest),
                        nest: None,
                    });
                    break;
                }
            }
        }
    }

    // LM0010 iteration volume exceeds the analysis budget.
    if info.volume > u128::from(opts.max_volume) {
        let vol = if info.volume == u128::MAX {
            "more than 2^128 - 1".to_string()
        } else {
            format!("about {}", info.volume)
        };
        out.push(Diagnostic {
            code: "LM0010",
            severity: Severity::Warn,
            message: format!(
                "iteration volume ({vol}) exceeds the analysis budget of {}",
                opts.max_volume
            ),
            notes: vec![
                "exact simulation would trip Exhausted; only the analytic bounds ladder \
                 (union box / §3 closed forms) applies at this size"
                    .into(),
            ],
            span: loop_span(spans, 0),
            nest: None,
        });
    }

    // The remaining lints feed the nest into HNF / Diophantine machinery
    // that assumes in-range i64 coefficients; a predicted overflow makes
    // their answers meaningless, so stop at the Error.
    if any_overflow {
        return out;
    }

    // LM0002 rank-deficient access matrix / LM0003 non-uniform group.
    for c in classify_formulas(nest) {
        let span = first_ref_span(nest, spans, c.array);
        let name = &nest.array(c.array).name;
        match c.class {
            FormulaClass::NonUniformBounds => {
                out.push(Diagnostic {
                    code: "LM0003",
                    severity: Severity::Warn,
                    message: format!(
                        "references to '{name}' are not uniformly generated \
                         ({} access-matrix groups)",
                        c.group_count
                    ),
                    notes: vec![
                        "no exact dependence distances exist; the distinct-access count \
                         degrades to Example-6 value-range bounds (§3.2)"
                            .into(),
                    ],
                    span,
                    nest: None,
                });
            }
            _ if c.rank < c.depth && c.rank > 0 && !c.kernel.is_empty() => {
                let mut notes: Vec<String> = c
                    .kernel
                    .iter()
                    .map(|v| format!("reuse flows along null-space vector {}", fmt_vec(v)))
                    .collect();
                notes.push(match c.class {
                    FormulaClass::Nullspace => {
                        "the §3.2 closed form ΠN_k − Π(N_k − |v_k|) applies exactly".into()
                    }
                    FormulaClass::Separable => {
                        "subscript rows read disjoint variables; the separable product \
                         is exact"
                            .into()
                    }
                    _ => "outside the §3 closed forms; the estimator enumerates exactly".into(),
                });
                out.push(Diagnostic {
                    code: "LM0002",
                    severity: Severity::Hint,
                    message: format!(
                        "access matrix of '{name}' is rank-deficient (rank {} of depth {})",
                        c.rank, c.depth
                    ),
                    notes,
                    span,
                    nest: None,
                });
            }
            _ => {}
        }
    }

    // LM0007 is program-level (an array may be used by a later nest) —
    // see `unused_array_diagnostics`.

    // LM0004: the dependence cone admits no full-rank tileable family.
    // Gated on a cost estimate: the dependence analysis walks solution
    // windows proportional to the loop spans (raised to the kernel
    // dimension), which adversarial inputs can make astronomically large.
    if (2..=MAX_CONE_DEPTH).contains(&nest.depth()) {
        let groups = uniform_groups(nest);
        let max_kernel_dim = groups
            .iter()
            .map(|g| integer_nullspace(&g.matrix).len())
            .max()
            .unwrap_or(0);
        let pairs: u128 = groups.iter().map(|g| (g.len() * g.len()) as u128).sum();
        let max_span: u128 = info
            .vr
            .iter()
            .map(|&(lo, hi)| (hi.saturating_sub(lo)).max(0) as u128)
            .max()
            .unwrap_or(0);
        let window = 2 * max_span + 1;
        let cost = (0..max_kernel_dim.max(1))
            .try_fold(pairs.max(1), |acc, _| acc.checked_mul(window))
            .unwrap_or(u128::MAX);
        if cost <= 2_000_000 {
            let deps = loopmem_dep::analyze(nest);
            let n = nest.depth();
            if let Some(rank) = tileable_row_rank(&deps, n, 2) {
                if rank < n {
                    let dists: Vec<String> = constraining_distances(&deps)
                        .iter()
                        .map(|d| fmt_vec(d))
                        .collect();
                    out.push(Diagnostic {
                        code: "LM0004",
                        severity: Severity::Warn,
                        message: format!(
                            "dependence cone admits no full-rank tileable transformation \
                             (tileable rows span rank {rank} of {n} within coefficient \
                             box [-2, 2])"
                        ),
                        notes: vec![
                            format!("constraining distances: {}", dists.join(", ")),
                            "§4 MWS minimization cannot fully tile this nest; only \
                             lexicographically legal (non-permutable) transforms remain"
                                .into(),
                        ],
                        span: loop_span(spans, 0),
                        nest: None,
                    });
                }
            }
        }
    }

    out
}

/// `LM0007`: arrays declared but referenced by no nest. Program-level —
/// an array written by nest 0 and read by nest 2 is *used* — so the caller
/// passes every nest of the program. Anchored at the declaration span.
pub fn unused_array_diagnostics(nests: &[&LoopNest], decl_spans: &NestSpans) -> Vec<Diagnostic> {
    let Some(first) = nests.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (a, decl) in first.arrays().iter().enumerate() {
        let id = ArrayId(a);
        let used = nests.iter().any(|n| n.refs().any(|r| r.array == id));
        if !used {
            out.push(Diagnostic {
                code: "LM0007",
                severity: Severity::Warn,
                message: format!("array '{}' is declared but never referenced", decl.name),
                notes: vec![format!(
                    "its {} declared elements still count toward the default memory \
                     requirement",
                    decl.size()
                )],
                span: decl_spans.arrays.get(a).copied().unwrap_or_default(),
                nest: None,
            });
        }
    }
    out
}

/// `LM0011`: dead stores — an array written by some nest but read by no
/// nest from that point on (a write in nest `k` is dead only if neither
/// nest `k` itself nor any later nest reads the array; within one nest
/// iterations interleave, so a same-nest read always counts). Program-wide
/// like [`unused_array_diagnostics`]: the caller passes every nest in
/// execution order with its span table. One diagnostic per `(nest, array)`
/// pair, anchored at the first dead write and stamped with the nest index.
pub fn dead_store_diagnostics(nests: &[&LoopNest], all_spans: &[NestSpans]) -> Vec<Diagnostic> {
    let Some(first) = nests.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (a, decl) in first.arrays().iter().enumerate() {
        let id = ArrayId(a);
        for (k, nest) in nests.iter().enumerate() {
            let read_later = nests[k..].iter().any(|n| {
                n.refs()
                    .any(|r| r.array == id && r.kind == AccessKind::Read)
            });
            if read_later {
                // A read from nest k onward keeps nest k's writes alive;
                // later nests are re-examined with their own suffix.
                continue;
            }
            // No read from nest k to the end: the first write here is dead.
            let dead_write = nest.statements().iter().enumerate().find_map(|(s, st)| {
                st.refs()
                    .iter()
                    .position(|r| r.array == id && r.kind == AccessKind::Write)
                    .map(|r| (s, r))
            });
            if let Some((s, r)) = dead_write {
                let span = all_spans
                    .get(k)
                    .and_then(|sp| sp.refs.get(s))
                    .and_then(|row| row.get(r))
                    .copied()
                    .unwrap_or_default();
                out.push(Diagnostic {
                    code: "LM0011",
                    severity: Severity::Warn,
                    message: format!(
                        "array '{}' is written here but never read afterwards",
                        decl.name
                    ),
                    notes: vec![
                        "the stored values are dead: no later nest (and no other \
                         reference in this nest) reads them"
                            .into(),
                        format!(
                            "dropping the store frees {} declared elements from the \
                             default memory requirement",
                            decl.size()
                        ),
                    ],
                    span,
                    nest: Some(k),
                });
            }
        }
    }
    out
}
