//! The typed diagnostic model and its text / JSON renderers.

use crate::json::escape_json;
use loopmem_ir::{caret_snippet, LineIndex, Span};
use std::fmt;

/// Severity of a diagnostic, ordered `Hint < Warn < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a structural fact worth knowing (e.g. which §3
    /// closed form applies).
    Hint,
    /// Suspicious but analyzable; `--deny warnings` promotes these to a
    /// nonzero exit.
    Warn,
    /// The nest is wrong or will defeat downstream analysis.
    Error,
}

impl Severity {
    /// Lowercase label used in both renderers (`error` / `warning` /
    /// `hint`).
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warning",
            Severity::Hint => "hint",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One diagnostic: a stable code, a severity, a human message, structured
/// notes, and the source span it is anchored to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`LM0001` … lints, `LM9xxx`
    /// sanitizer).
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// One-line human description.
    pub message: String,
    /// Supplementary facts (`= note:` lines in text, `notes` array in
    /// JSON).
    pub notes: Vec<String>,
    /// Byte span into the checked source the diagnostic points at.
    pub span: Span,
    /// Index of the nest (execution order) the diagnostic belongs to;
    /// `None` for program-level diagnostics (e.g. an unused array).
    pub nest: Option<usize>,
}

impl Diagnostic {
    /// Renders the diagnostic rustc-style against the source text it was
    /// produced from:
    ///
    /// ```text
    /// warning[LM0003]: references to 'A' are not uniformly generated
    ///   --> kernels/example6.loop:6:5
    ///    |
    ///  6 |     A[3i + 7j - 10] = A[4i - 3j + 60];
    ///    |     ^^^^^^^^^^^^^^^
    ///    = note: no exact closed form; Example-6 value-range bounds apply (§3.2)
    /// ```
    pub fn render_text(&self, src: &str, file: Option<&str>) -> String {
        let idx = LineIndex::new(src);
        let (line, col) = idx.line_col(self.span.start);
        let snippet = caret_snippet(src, self.span);
        let gutter = snippet
            .lines()
            .next()
            .map(|l| l.find('|').unwrap_or(2))
            .unwrap_or(3)
            .saturating_sub(1);
        let mut out = format!(
            "{}[{}]: {}\n",
            self.severity.label(),
            self.code,
            self.message
        );
        match file {
            Some(f) => out.push_str(&format!("{:gutter$}--> {f}:{line}:{col}\n", "")),
            None => out.push_str(&format!("{:gutter$}--> {line}:{col}\n", "")),
        }
        out.push_str(&snippet);
        for note in &self.notes {
            out.push_str(&format!("{:gutter$} = note: {note}\n", ""));
        }
        out
    }

    /// Renders the diagnostic as one JSON object (no trailing newline)
    /// with the stable schema
    /// `{code, severity, nest, file, line, col, span:{start,end},
    /// message, notes}` — every key always present, `nest`/`file` as
    /// `null` when absent.
    pub fn render_json(&self, src: &str, file: Option<&str>) -> String {
        let (line, col) = LineIndex::new(src).line_col(self.span.start);
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":\"{}\",", self.code));
        out.push_str(&format!("\"severity\":\"{}\",", self.severity.label()));
        match self.nest {
            Some(k) => out.push_str(&format!("\"nest\":{k},")),
            None => out.push_str("\"nest\":null,"),
        }
        match file {
            Some(f) => out.push_str(&format!("\"file\":\"{}\",", escape_json(f))),
            None => out.push_str("\"file\":null,"),
        }
        out.push_str(&format!("\"line\":{line},\"col\":{col},"));
        out.push_str(&format!(
            "\"span\":{{\"start\":{},\"end\":{}}},",
            self.span.start, self.span.end
        ));
        out.push_str(&format!("\"message\":\"{}\",", escape_json(&self.message)));
        out.push_str("\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape_json(n)));
        }
        out.push_str("]}");
        out
    }
}

/// The result of checking one source file: every diagnostic, sorted by
/// source position (then code) for deterministic output.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All diagnostics, in rendering order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// `(errors, warnings, hints)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warn => c.1 += 1,
                Severity::Hint => c.2 += 1,
            }
        }
        c
    }

    /// `true` when any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// `true` when any diagnostic is a [`Severity::Warn`].
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warn)
    }

    /// Renders every diagnostic rustc-style, separated by blank lines.
    pub fn render_text(&self, src: &str, file: Option<&str>) -> String {
        let mut out = String::new();
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&d.render_text(src, file));
        }
        out
    }

    /// Renders the report as NDJSON: one diagnostic object per line.
    pub fn render_json(&self, src: &str, file: Option<&str>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_json(src, file));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (String, Diagnostic) {
        let src = "array A[10]\nfor i = 1 to 10 { A[i]; }".to_string();
        let start = src.find("A[i]").unwrap();
        let d = Diagnostic {
            code: "LM0001",
            severity: Severity::Error,
            message: "subscript out of extent".into(),
            notes: vec!["declared extent is 10".into()],
            span: Span::new(start, start + 4),
            nest: Some(0),
        };
        (src, d)
    }

    #[test]
    fn text_rendering_has_caret_and_note() {
        let (src, d) = sample();
        let t = d.render_text(&src, Some("x.loop"));
        assert!(t.starts_with("error[LM0001]: subscript out of extent\n"));
        assert!(t.contains("--> x.loop:2:19"), "{t}");
        assert!(t.contains("^^^^"), "{t}");
        assert!(t.contains("= note: declared extent is 10"), "{t}");
    }

    #[test]
    fn json_rendering_is_stable() {
        let (src, d) = sample();
        let j = d.render_json(&src, None);
        assert_eq!(
            j,
            "{\"code\":\"LM0001\",\"severity\":\"error\",\"nest\":0,\"file\":null,\
             \"line\":2,\"col\":19,\"span\":{\"start\":30,\"end\":34},\
             \"message\":\"subscript out of extent\",\
             \"notes\":[\"declared extent is 10\"]}"
        );
    }

    #[test]
    fn severity_orders_hint_warn_error() {
        assert!(Severity::Hint < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }
}
