//! Seeded differential fuzzing of the sanitizer: over hundreds of random
//! small nests, the §3 closed-form estimators, the analytic MWS bounds,
//! and the dense simulator must never disagree — zero `LM9xxx`
//! diagnostics. A disagreement here is an estimator bug, not a property of
//! the input.

use loopmem_analyze::{check_source, CheckOptions};
use loopmem_linalg::Lcg;
use std::fmt::Write as _;

const CASES: usize = 220;

/// Emits a random-but-parseable `.loop` source: depth 1–3, extents ≤ 9,
/// coefficients in −2..=2, offsets in 0..=6 — comfortably inside the
/// simulation oracle's iteration budget.
fn random_source(rng: &mut Lcg) -> String {
    let depth = rng.range_usize(1, 3);
    let arrays = rng.range_usize(1, 2);
    let mut src = String::new();
    let mut dims = Vec::new();
    for a in 0..arrays {
        let d = rng.range_usize(1, depth.min(2));
        dims.push(d);
        let _ = write!(src, "array A{a}");
        for _ in 0..d {
            // Generous extents: most random subscripts stay in bounds, and
            // out-of-extent ones only add an LM0001 (which must not
            // perturb the sanitizer).
            let _ = write!(src, "[64]");
        }
        src.push('\n');
    }
    let mut header = String::new();
    for k in 0..depth {
        let lo = rng.range_i64(1, 3);
        let hi = lo + rng.range_i64(0, 6);
        let _ = write!(header, "for i{k} = {lo} to {hi} {{ ");
    }
    src.push_str(&header);
    let statements = rng.range_usize(1, 2);
    for _ in 0..statements {
        let refs = rng.range_usize(1, 3);
        let rendered: Vec<String> = (0..refs)
            .map(|_| {
                let a = rng.range_usize(0, arrays - 1);
                let mut r = format!("A{a}");
                for _ in 0..dims[a] {
                    let mut sub = format!("{}", rng.range_i64(0, 6));
                    for k in 0..depth {
                        let c = rng.range_i64(-2, 2);
                        if c != 0 {
                            let sign = if c < 0 { '-' } else { '+' };
                            let _ = write!(sub, " {sign} {}i{k}", c.abs());
                        }
                    }
                    let _ = write!(r, "[{sub}]");
                }
                r
            })
            .collect();
        match rendered.split_first() {
            Some((lhs, reads)) if !reads.is_empty() => {
                let _ = write!(src, "{lhs} = {}; ", reads.join(" + "));
            }
            _ => {
                let _ = write!(src, "{}; ", rendered[0]);
            }
        }
    }
    for _ in 0..depth {
        src.push_str("} ");
    }
    src.push('\n');
    src
}

#[test]
fn sanitizer_never_disagrees_on_random_nests() {
    let mut rng = Lcg::new(0x0100_5ea1_d1ff);
    let opts = CheckOptions {
        sanitize: true,
        ..CheckOptions::default()
    };
    let mut sanitized = 0usize;
    for case in 0..CASES {
        let src = random_source(&mut rng);
        let report = check_source(&src, &opts)
            .unwrap_or_else(|e| panic!("case {case} should parse:\n{src}\n{e}"));
        let disagreements: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code.starts_with("LM9"))
            .collect();
        assert!(
            disagreements.is_empty(),
            "case {case} found estimator/simulator disagreement:\n{src}\n{disagreements:#?}"
        );
        sanitized += 1;
    }
    assert_eq!(sanitized, CASES);
}
