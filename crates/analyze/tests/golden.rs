//! Golden-file tests: every lint has a minimal `.loop` reproducer under
//! `tests/golden/`, and both renderings (rustc-style text and NDJSON) must
//! match the checked-in `.stderr` / `.json` files **byte for byte**.
//!
//! Regenerate after an intentional rendering change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p loopmem-analyze --test golden
//! ```

use loopmem_analyze::{check_source, parse_json, CheckOptions, Json};
use std::fs;
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn opts() -> CheckOptions {
    CheckOptions {
        sanitize: true,
        ..CheckOptions::default()
    }
}

/// Renders one golden input. A file that fails to parse contributes the
/// parse error's caret rendering as its `.stderr` and an empty `.json`
/// (the CLI's in-band LM0000 wrapping is exercised in `tests/cli.rs`).
fn render(src: &str, name: &str) -> (String, String) {
    match check_source(src, &opts()) {
        Ok(report) => (
            report.render_text(src, Some(name)),
            report.render_json(src, Some(name)),
        ),
        Err(e) => (e.render(src), String::new()),
    }
}

fn compare_or_update(path: &Path, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{}: {e}; run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        actual,
        expected,
        "golden mismatch for {}; run with UPDATE_GOLDEN=1 after intentional changes",
        path.display()
    );
}

fn golden_inputs() -> Vec<PathBuf> {
    let mut inputs: Vec<PathBuf> = fs::read_dir(golden_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "loop"))
        .collect();
    inputs.sort();
    assert!(inputs.len() >= 11, "golden corpus went missing");
    inputs
}

#[test]
fn golden_text_and_json_are_byte_identical() {
    for input in golden_inputs() {
        let src = fs::read_to_string(&input).unwrap();
        let name = input.file_name().unwrap().to_str().unwrap().to_string();
        let (text, json) = render(&src, &name);
        compare_or_update(&input.with_extension("stderr"), &text);
        compare_or_update(&input.with_extension("json"), &json);
    }
}

/// Each reproducer is named after the lint it exercises (`lm0006_…`) and
/// must actually trigger that code — so a lint silently dying keeps a
/// stale golden file from hiding it.
#[test]
fn each_golden_input_triggers_its_namesake_lint() {
    for input in golden_inputs() {
        let src = fs::read_to_string(&input).unwrap();
        let stem = input.file_stem().unwrap().to_str().unwrap();
        let code = format!("LM{}", &stem[2..6]);
        if code == "LM0000" {
            assert!(
                check_source(&src, &opts()).is_err(),
                "{stem} should not parse"
            );
            continue;
        }
        let report = check_source(&src, &opts()).unwrap();
        assert!(
            report.diagnostics.iter().any(|d| d.code == code),
            "{stem} no longer triggers {code}: {:?}",
            report
                .diagnostics
                .iter()
                .map(|d| d.code)
                .collect::<Vec<_>>()
        );
    }
}

/// Every line of every golden `.json` round-trips through the in-tree
/// JSON parser and carries the full stable schema with correctly typed
/// fields.
#[test]
fn golden_json_round_trips_through_schema() {
    let mut lines_checked = 0;
    for input in golden_inputs() {
        let src = fs::read_to_string(&input).unwrap();
        let name = input.file_name().unwrap().to_str().unwrap().to_string();
        let (_, json) = render(&src, &name);
        for line in json.lines() {
            let v = parse_json(line).unwrap_or_else(|| panic!("bad JSON: {line}"));
            let code = v.get("code").and_then(Json::as_str).expect("code");
            assert!(code.starts_with("LM") && code.len() == 6, "{code}");
            let sev = v.get("severity").and_then(Json::as_str).expect("severity");
            assert!(matches!(sev, "error" | "warning" | "hint"), "{sev}");
            assert!(
                matches!(v.get("nest"), Some(Json::Null | Json::Num(_))),
                "{line}"
            );
            assert_eq!(v.get("file").and_then(Json::as_str), Some(name.as_str()));
            let line_no = v.get("line").and_then(Json::as_i64).expect("line");
            let col = v.get("col").and_then(Json::as_i64).expect("col");
            assert!(line_no >= 1 && col >= 1);
            let span = v.get("span").expect("span");
            let start = span.get("start").and_then(Json::as_i64).expect("start");
            let end = span.get("end").and_then(Json::as_i64).expect("end");
            assert!(0 <= start && start <= end && end <= src.len() as i64);
            assert!(v
                .get("message")
                .and_then(Json::as_str)
                .is_some_and(|m| !m.is_empty()));
            assert!(matches!(v.get("notes"), Some(Json::Arr(_))));
            lines_checked += 1;
        }
    }
    assert!(
        lines_checked >= 10,
        "only {lines_checked} JSON lines checked"
    );
}
