//! Memo-sharing coverage for the batch optimizer.
//!
//! This file deliberately holds a single `#[test]`: integration-test
//! binaries are separate processes, and the simulation memo (with its
//! hit/miss counters) is process-wide — a sibling test running
//! concurrently would perturb the exact counts asserted here.

use loopmem_core::optimize::{memo_stats, nest_mws_memoized};
use loopmem_core::{optimize_program_with_threads, SearchMode};
use loopmem_ir::{parse, parse_program};

#[test]
fn identical_nests_under_renamed_variables_miss_the_memo_once() {
    // The same kernel spelled with different loop-variable names: the
    // canonical memo key erases names, so the pair costs exactly one
    // simulation (one miss), the second call a pure hit.
    let a = parse(
        "array X[160]\nfor i = 1 to 19 { for j = 1 to 13 { X[3i - 7j + 120] = X[3i - 7j + 113]; } }",
    )
    .unwrap();
    let b = parse(
        "array X[160]\nfor p = 1 to 19 { for q = 1 to 13 { X[3p - 7q + 120] = X[3p - 7q + 113]; } }",
    )
    .unwrap();
    let (h0, m0) = memo_stats();
    let mws_a = nest_mws_memoized(&a);
    let mws_b = nest_mws_memoized(&b);
    let (h1, m1) = memo_stats();
    assert_eq!(mws_a, mws_b);
    assert_eq!(m1 - m0, 1, "second nest must be served from the memo");
    assert_eq!(h1 - h0, 1);

    // The same sharing through the whole batch-optimizer path: a program
    // repeating the kernel under both spellings. Nest 1's search walks the
    // same canonical candidate space as nest 0's, so the *entire* second
    // search — including its mws_before — is memo hits; the only fresh
    // misses are nest 0's candidate simulations.
    let two = parse_program(
        "array X[160]\n\
         for i = 1 to 19 { for j = 1 to 13 { X[3i - 7j + 120] = X[3i - 7j + 113]; } }\n\
         for p = 1 to 19 { for q = 1 to 13 { X[3p - 7q + 120] = X[3p - 7q + 113]; } }",
    )
    .unwrap();
    let first = optimize_program_with_threads(&two, SearchMode::default(), 2).unwrap();
    let (_, m3) = memo_stats();
    assert_eq!(first.per_nest[0], first.per_nest[1]);

    // Optimizing the program again re-simulates nothing at all.
    let again = optimize_program_with_threads(&two, SearchMode::default(), 2).unwrap();
    let (_, m4) = memo_stats();
    assert_eq!(m4 - m3, 0, "repeat run must be all memo hits");
    assert_eq!(again.mws_after, first.mws_after);

    // And a single-nest search over the same kernel would have paid the
    // same number of candidate misses the two-nest program did: the
    // second nest added zero.
    let single = parse_program(
        "array X[160]\nfor z = 1 to 19 { for w = 1 to 13 { X[3z - 7w + 120] = X[3z - 7w + 113]; } }",
    )
    .unwrap();
    let (_, m5) = memo_stats();
    let _ = optimize_program_with_threads(&single, SearchMode::default(), 1).unwrap();
    let (_, m6) = memo_stats();
    assert_eq!(m6 - m5, 0, "renamed kernel is already fully memoized");
}
