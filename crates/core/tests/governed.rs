//! Governance semantics of the core search entry points: the `try_*`
//! optimizer and branch-and-bound must degrade deterministically, and a
//! poisoned nest inside a program must not sink the whole batch search.

use loopmem_core::optimize::{minimize_mws, try_minimize_mws_with_threads, SearchMode};
use loopmem_core::{try_branch_and_bound, try_minimize_mws, try_optimize_program};
use loopmem_dep::analyze;
use loopmem_ir::{parse, parse_program, AnalysisError, TripReason};
use loopmem_sim::AnalysisBudget;

fn example8() -> loopmem_ir::LoopNest {
    parse("array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }")
        .unwrap()
}

#[test]
fn unlimited_governed_search_matches_legacy() {
    let nest = example8();
    let legacy = minimize_mws(&nest, SearchMode::default()).unwrap();
    let governed = try_minimize_mws(&nest, SearchMode::default(), &AnalysisBudget::unlimited())
        .expect("unlimited governed search succeeds");
    assert_eq!(governed.mws_before, legacy.mws_before);
    assert_eq!(governed.mws_after, legacy.mws_after);
    assert_eq!(governed.mws_after, 21, "the paper's actual minimum MWS");
}

#[test]
fn tripped_search_returns_the_original_nest_bounds_deterministically() {
    // The candidate sweep shares one cumulative iteration budget; which
    // candidate observes the trip is scheduling-dependent, but the error
    // value must not be: it always carries the ORIGINAL nest's analytic
    // bounds, so every thread count returns the identical error.
    let nest = example8();
    let budget = AnalysisBudget::unlimited().with_max_iterations(40);
    let errors: Vec<AnalysisError> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            try_minimize_mws_with_threads(&nest, SearchMode::default(), t, &budget).unwrap_err()
        })
        .collect();
    let AnalysisError::Exhausted { reason, partial } = &errors[0] else {
        panic!("expected Exhausted, got {:?}", errors[0]);
    };
    assert_eq!(*reason, TripReason::MaxIterations);
    // Validity: the true optimal-order MWS (21) and the original-order
    // MWS (44) both lie inside the degraded answer.
    assert!(partial.lower <= 21 && 44 <= partial.upper);
    assert_eq!(errors[0], errors[1]);
    assert_eq!(errors[0], errors[2]);
}

#[test]
fn search_node_cap_trips_branch_and_bound() {
    let deps = analyze(&example8());
    let exact = loopmem_core::branch_and_bound((2, 5), &deps, (25, 10), 6)
        .expect("feasible row exists")
        .objective;
    let budget = AnalysisBudget::unlimited().with_max_search_nodes(2);
    let err = try_branch_and_bound((2, 5), &deps, (25, 10), 6, &budget).unwrap_err();
    let AnalysisError::Exhausted { reason, partial } = err else {
        panic!("expected Exhausted");
    };
    assert_eq!(reason, TripReason::MaxSearchNodes);
    // The objective bound brackets the true optimum (22).
    let exact_u64 = exact.ceil() as u64;
    assert!(partial.lower <= exact_u64 && exact_u64 <= partial.upper);
}

#[test]
fn bnb_invalid_arguments_do_not_panic() {
    let deps = analyze(&example8());
    let unlimited = AnalysisBudget::unlimited();
    for (extents, bound) in [((25, 10), 0), ((25, 10), -3), ((0, 10), 6), ((25, -1), 6)] {
        let err = try_branch_and_bound((2, 5), &deps, extents, bound, &unlimited).unwrap_err();
        assert!(
            matches!(err, AnalysisError::Invalid { .. }),
            "expected Invalid for extents {extents:?} bound {bound}, got {err:?}"
        );
    }
}

#[test]
fn program_search_skips_the_poisoned_nest() {
    // Nest 1 panics during simulation (bound overflow); the batch search
    // must keep nest 0's improvement and report nest 1 as failed.
    let program = parse_program(
        "array X[200]\narray B[10]\n\
         for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }\n\
         for i = 800 to 900 { for j = i + 9223372036854775000 to 9223372036854775807 { B[1]; } }",
    )
    .unwrap();
    let opt = try_optimize_program(
        &program,
        SearchMode::default(),
        &AnalysisBudget::unlimited(),
    )
    .expect("batch search itself must not fail");
    assert_eq!(opt.per_nest.len(), 2);
    assert!(opt.per_nest[0].is_ok(), "healthy nest still optimizes");
    assert!(
        matches!(
            opt.per_nest[1],
            Err(AnalysisError::NestPanicked { nest: 1, .. })
        ),
        "poisoned nest reports NestPanicked, got {:?}",
        opt.per_nest[1]
    );
    assert!(opt.mws_before.lower <= opt.mws_before.upper);
    assert!(opt.mws_after.upper <= opt.mws_before.upper);
}
