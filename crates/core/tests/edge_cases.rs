//! Edge cases across the whole analysis stack: degenerate depths, empty
//! ranges, single iterations, and extreme offsets.

use loopmem_core::optimize::{minimize_mws, SearchMode};
use loopmem_core::{analyze_memory, apply_transform, estimate_distinct};
use loopmem_ir::{parse, ArrayId};
use loopmem_linalg::IMat;
use loopmem_sim::{count_iterations, simulate};

#[test]
fn one_deep_nest_full_stack() {
    let nest = parse("array A[20]\nfor i = 1 to 10 { A[i] = A[i - 1]; }").unwrap();
    let m = analyze_memory(&nest);
    assert_eq!(m.distinct_exact_total, 11);
    assert_eq!(m.mws_exact, 1, "one element live between iterations");
    let est = estimate_distinct(&nest)[&ArrayId(0)];
    assert_eq!(est.value(), Some(2 * 10 - 9)); // §3.1 with r = 2
                                               // Optimizer on a 1-deep nest: only identity and reversal exist, and
                                               // reversal is illegal here.
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    assert_eq!(opt.mws_after, 1);
    assert_eq!(opt.transform, IMat::identity(1));
}

#[test]
fn single_iteration_nest() {
    let nest = parse("array A[4][4]\nfor i = 2 to 2 { for j = 3 to 3 { A[i][j] = A[i-1][j-1]; } }")
        .unwrap();
    assert_eq!(count_iterations(&nest), 1);
    let s = simulate(&nest);
    assert_eq!(s.distinct_total(), 2);
    assert_eq!(s.mws_total, 0, "nothing survives a single iteration");
}

#[test]
fn empty_outer_range_is_consistent_everywhere() {
    let nest = parse("array A[10][10]\nfor i = 5 to 4 { for j = 1 to 10 { A[i][j]; } }").unwrap();
    assert_eq!(count_iterations(&nest), 0);
    let s = simulate(&nest);
    assert_eq!(s.iterations, 0);
    assert_eq!(s.distinct_total(), 0);
    assert_eq!(s.mws_total, 0);
    assert_eq!(
        loopmem_poly::count::distinct_accesses_for(&nest, ArrayId(0)),
        0
    );
}

#[test]
fn empty_inner_range_is_consistent() {
    let nest = parse("array A[10][10]\nfor i = 1 to 10 { for j = 7 to 2 { A[i][j]; } }").unwrap();
    assert_eq!(count_iterations(&nest), 0);
    assert_eq!(simulate(&nest).mws_total, 0);
}

#[test]
fn huge_offset_kills_all_reuse() {
    // Dependence distance exceeds the extents: the formula clamps at zero
    // reuse, and everything agrees.
    let nest =
        parse("array A[200][20]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i + 100][j]; } }")
            .unwrap();
    let est = estimate_distinct(&nest)[&ArrayId(0)];
    assert_eq!(est.value(), Some(200));
    assert_eq!(simulate(&nest).distinct_total(), 200);
    assert_eq!(simulate(&nest).mws_total, 0);
}

#[test]
fn negative_direction_loop_via_reversal_transform() {
    // Reversal of a reuse-free nest is legal and preserves everything.
    let nest = parse("array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j]; } }").unwrap();
    let reversal = IMat::from_rows(&[vec![-1, 0], vec![0, -1]]);
    let out = apply_transform(&nest, &reversal).unwrap();
    assert_eq!(count_iterations(&out), 100);
    assert_eq!(simulate(&out).distinct_total(), 100);
    // Bounds are negative now; the printer and parser still round-trip
    // through evaluation.
    let (lo, hi) = out.loops()[0].constant_range().unwrap();
    assert_eq!((lo, hi), (-10, -1));
}

#[test]
fn four_deep_optimizer_handles_identity_only_spaces() {
    // Fully serialized 4-deep accumulation: every loop carries an output
    // dependence, so only prefix-preserving orders are legal.
    let nest = parse(
        "array S[2]\n\
         for a = 1 to 2 { for b = 1 to 2 { for c = 1 to 2 { for d = 1 to 2 {\n\
           S[1] = S[1] + S[2];\n\
         } } } }",
    )
    .unwrap();
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    assert_eq!(opt.mws_after, opt.mws_before);
    assert_eq!(opt.mws_after, 2, "both scalars stay live throughout");
}

#[test]
fn zero_constant_subscript_array() {
    // A[5] fixed element: touched every iteration, window 1.
    let nest =
        parse("array A[10]\nfor i = 1 to 10 { for j = 1 to 10 { A[5] = A[5] + 1; } }").unwrap();
    let s = simulate(&nest);
    assert_eq!(s.distinct_total(), 1);
    assert_eq!(s.mws_total, 1);
    let est = estimate_distinct(&nest)[&ArrayId(0)];
    assert!(est.is_exact());
    assert_eq!(est.value(), Some(1));
}
