//! Property tests for the estimators, transformation machinery, and the
//! branch-and-bound search.

use loopmem_core::optimize::{minimize_mws, SearchMode};
use loopmem_core::{
    apply_transform, branch_and_bound, three_level_estimate, tile, two_level_estimate,
    two_level_objective,
};
use loopmem_dep::analyze;
use loopmem_ir::parse;
use loopmem_linalg::gcd::gcd_i64;
use loopmem_linalg::{IMat, Rational};
use loopmem_sim::{count_iterations, simulate};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn eq2_equals_continuous_objective_rounded_down_or_matches(
        a1 in 1i64..=5, a2 in -5i64..=5,
        a in -4i64..=4, b in -4i64..=4,
        n1 in 5i64..=30, n2 in 5i64..=30,
    ) {
        prop_assume!((a, b) != (0, 0));
        let est = two_level_estimate((a1, a2), (a, b), (n1, n2));
        let obj = two_level_objective((a1, a2), (a, b), (n1, n2));
        // The floored estimate never exceeds the continuous objective and
        // they differ by less than one maxspan quantum (= the weight).
        let w = (a2 * a - a1 * b).abs().max(1);
        prop_assert!(Rational::from(est) <= obj);
        prop_assert!(obj - Rational::from(est) < Rational::from(w));
    }

    #[test]
    fn eq2_tracks_the_simulator_for_single_references(
        a1 in 1i64..=4, a2 in 1i64..=4,
        skew in -2i64..=2,
        n1 in 5i64..=14, n2 in 5i64..=14,
    ) {
        // Single uniformly generated 1-D reference under a skewing
        // transformation T = [[1, skew], [0, 1]].
        let base = a1 * n1 + a2 * n2 + 20;
        let src = format!(
            "array X[{sz}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ X[{a1}*i + {a2}*j + 1]; }} }}",
            sz = base + 10
        );
        let nest = parse(&src).expect("parses");
        let t = IMat::from_rows(&[vec![1, skew], vec![0, 1]]);
        let out = apply_transform(&nest, &t).expect("unimodular");
        let exact = simulate(&out).mws_total as i64;
        let est = two_level_estimate((a1, a2), (1, skew), (n1, n2));
        // The closed form is an upper estimate within one line of slack.
        prop_assert!(exact <= est + 1, "exact {exact} > est {est} ({src}, skew {skew})");
        // Tightness holds in eq. (2)'s intended regime — extents well
        // above the coefficients, so the reuse lattice is dense. With
        // sparse reuse (large strides over a small box) the formula is a
        // deliberate over-estimate and no tightness is claimed.
        if a1 == 1 && a2 == 1 && skew.abs() <= 1 {
            prop_assert!(est <= 3 * exact + 3, "est {est} vs exact {exact} ({src}, skew {skew})");
        }
    }

    #[test]
    fn three_level_formula_upper_bounds_simulator(
        d2 in -4i64..=4, d3 in 1i64..=4,
        n2 in 5i64..=10, n3 in 5i64..=10,
    ) {
        // Build a 3-deep nest with reuse vector (1, d2, -d3) by choosing
        // the access A[d3*i? ...]: easier to synthesize directly from the
        // kernel: subscripts u = a*i + c*k, v = j + e*k pin the kernel.
        // Use A[(d3)*i + k][?]: kernel of [[d3,0,1],[0,1,?]] … simplest:
        // A[d3*i + k][j*d3? ]. Instead reuse Example 5's shape with
        // scaled coefficients: A[d3*i + k][j + k] has kernel (1, d2?, …).
        // To keep this property test honest we fix the family
        // A[q*i + k][j + k] whose kernel is (1, q, -q).
        let q = d3;
        let n1 = 6i64;
        let src = format!(
            "array A[{}][{}]\n\
             for i = 1 to {n1} {{ for j = 1 to {n2} {{ for k = 1 to {n3} {{ \
             A[{q}*i + k][j + k]; }} }} }}",
            q * n1 + n3 + 2,
            n2 + n3 + 2,
        );
        let nest = parse(&src).expect("parses");
        let _ = d2;
        let exact = simulate(&nest).mws_total as i64;
        let est = three_level_estimate((1, q, -q), (n1, n2, n3));
        prop_assert!(exact <= est + 1, "exact {exact} > est {est} ({src})");
    }

    #[test]
    fn bnb_matches_exhaustive_on_random_dependence_sets(
        o1 in 0i64..=6, o2 in 0i64..=6,
        p in 1i64..=4, q in -4i64..=4,
        a1 in 1i64..=5, a2 in -5i64..=5,
    ) {
        let qt = if q >= 0 { format!("+ {q}*j") } else { format!("- {}*j", -q) };
        let src = format!(
            "array A[300]\nfor i = 1 to 12 {{ for j = 1 to 9 {{ \
             A[{p}*i {qt} + {x}] = A[{p}*i {qt} + {y}]; }} }}",
            x = 60 + o1,
            y = 60 + o2,
        );
        let nest = parse(&src).expect("parses");
        let deps = analyze(&nest);
        let bound = 4;
        let bnb = branch_and_bound((a1, a2), &deps, (12, 9), bound);
        // Exhaustive reference.
        let mut best: Option<Rational> = None;
        for a in -bound..=bound {
            for b in -bound..=bound {
                if (a, b) == (0, 0) || gcd_i64(a, b) != 1 {
                    continue;
                }
                if !loopmem_dep::legality::row_tileable(&[a, b], &deps) {
                    continue;
                }
                let obj = two_level_objective((a1, a2), (a, b), (12, 9));
                if best.as_ref().is_none_or(|c| obj < *c) {
                    best = Some(obj);
                }
            }
        }
        match (bnb, best) {
            (Some(r), Some(obj)) => prop_assert_eq!(r.objective, obj, "{}", src),
            (None, None) => {}
            (got, want) => prop_assert!(false, "bnb {got:?} vs exhaustive {want:?} ({src})"),
        }
    }

    #[test]
    fn tiling_preserves_work_for_random_sizes(
        b1 in 1i64..=6, b2 in 1i64..=6,
        n1 in 4i64..=10, n2 in 4i64..=10,
    ) {
        let src = format!(
            "array A[{}][{}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ A[i][j] = A[i][j] + 1; }} }}",
            n1, n2
        );
        let nest = parse(&src).expect("parses");
        let tiled = tile(&nest, &[b1, b2]).expect("rectangular");
        prop_assert_eq!(count_iterations(&tiled), count_iterations(&nest));
        prop_assert_eq!(
            simulate(&tiled).distinct_total(),
            simulate(&nest).distinct_total()
        );
    }

    #[test]
    fn optimizer_output_is_reproducible(
        d1 in -2i64..=2, d2 in -2i64..=2,
    ) {
        let src = format!(
            "array A[16][16]\nfor i = 1 to 8 {{ for j = 1 to 8 {{ \
             A[i + 4][j + 4] = A[i + {a}][j + {b}]; }} }}",
            a = d1 + 4,
            b = d2 + 4,
        );
        let nest = parse(&src).expect("parses");
        let o1 = minimize_mws(&nest, SearchMode::default()).expect("search");
        let o2 = minimize_mws(&nest, SearchMode::default()).expect("search");
        prop_assert_eq!(o1.transform, o2.transform, "{}", src);
        prop_assert_eq!(o1.mws_after, o2.mws_after);
    }
}
