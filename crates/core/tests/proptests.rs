//! Property-style tests for the estimators, transformation machinery, and
//! the branch-and-bound search. Deterministic (seeded `Lcg`), no external
//! dependencies.

use loopmem_core::optimize::{minimize_mws, SearchMode};
use loopmem_core::{
    apply_transform, branch_and_bound, three_level_estimate, tile, two_level_estimate,
    two_level_objective,
};
use loopmem_dep::analyze;
use loopmem_ir::parse;
use loopmem_linalg::gcd::gcd_i64;
use loopmem_linalg::{IMat, Lcg, Rational};
use loopmem_sim::{count_iterations, simulate};

#[test]
fn eq2_equals_continuous_objective_rounded_down_or_matches() {
    let mut rng = Lcg::new(0x61);
    let mut cases = 0;
    while cases < 40 {
        let a1 = rng.range_i64(1, 5);
        let a2 = rng.range_i64(-5, 5);
        let a = rng.range_i64(-4, 4);
        let b = rng.range_i64(-4, 4);
        let n1 = rng.range_i64(5, 30);
        let n2 = rng.range_i64(5, 30);
        if (a, b) == (0, 0) {
            continue;
        }
        cases += 1;
        let est = two_level_estimate((a1, a2), (a, b), (n1, n2));
        let obj = two_level_objective((a1, a2), (a, b), (n1, n2));
        // The floored estimate never exceeds the continuous objective and
        // they differ by less than one maxspan quantum (= the weight).
        let w = (a2 * a - a1 * b).abs().max(1);
        assert!(
            Rational::from(est) <= obj,
            "({a1},{a2}) T=({a},{b}) N=({n1},{n2})"
        );
        assert!(
            obj - Rational::from(est) < Rational::from(w),
            "({a1},{a2}) T=({a},{b}) N=({n1},{n2})"
        );
    }
}

#[test]
fn eq2_tracks_the_simulator_for_single_references() {
    let mut rng = Lcg::new(0x62);
    for _ in 0..40 {
        let a1 = rng.range_i64(1, 4);
        let a2 = rng.range_i64(1, 4);
        let skew = rng.range_i64(-2, 2);
        let n1 = rng.range_i64(5, 14);
        let n2 = rng.range_i64(5, 14);
        // Single uniformly generated 1-D reference under a skewing
        // transformation T = [[1, skew], [0, 1]].
        let base = a1 * n1 + a2 * n2 + 20;
        let src = format!(
            "array X[{sz}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ X[{a1}*i + {a2}*j + 1]; }} }}",
            sz = base + 10
        );
        let nest = parse(&src).expect("parses");
        let t = IMat::from_rows(&[vec![1, skew], vec![0, 1]]);
        let out = apply_transform(&nest, &t).expect("unimodular");
        let exact = simulate(&out).mws_total as i64;
        let est = two_level_estimate((a1, a2), (1, skew), (n1, n2));
        // The closed form is an upper estimate within one line of slack.
        assert!(
            exact <= est + 1,
            "exact {exact} > est {est} ({src}, skew {skew})"
        );
        // Tightness holds in eq. (2)'s intended regime — extents well
        // above the coefficients, so the reuse lattice is dense. With
        // sparse reuse (large strides over a small box) the formula is a
        // deliberate over-estimate and no tightness is claimed.
        if a1 == 1 && a2 == 1 && skew.abs() <= 1 {
            assert!(
                est <= 3 * exact + 3,
                "est {est} vs exact {exact} ({src}, skew {skew})"
            );
        }
    }
}

#[test]
fn three_level_formula_upper_bounds_simulator() {
    let mut rng = Lcg::new(0x63);
    for _ in 0..40 {
        let q = rng.range_i64(1, 4);
        let n2 = rng.range_i64(5, 10);
        let n3 = rng.range_i64(5, 10);
        // The family A[q*i + k][j + k] has reuse kernel (1, q, -q); the
        // §4.3 three-level closed form must upper-bound the simulator.
        let n1 = 6i64;
        let src = format!(
            "array A[{}][{}]\n\
             for i = 1 to {n1} {{ for j = 1 to {n2} {{ for k = 1 to {n3} {{ \
             A[{q}*i + k][j + k]; }} }} }}",
            q * n1 + n3 + 2,
            n2 + n3 + 2,
        );
        let nest = parse(&src).expect("parses");
        let exact = simulate(&nest).mws_total as i64;
        let est = three_level_estimate((1, q, -q), (n1, n2, n3));
        assert!(exact <= est + 1, "exact {exact} > est {est} ({src})");
    }
}

#[test]
fn bnb_matches_exhaustive_on_random_dependence_sets() {
    let mut rng = Lcg::new(0x64);
    for _ in 0..40 {
        let o1 = rng.range_i64(0, 6);
        let o2 = rng.range_i64(0, 6);
        let p = rng.range_i64(1, 4);
        let q = rng.range_i64(-4, 4);
        let a1 = rng.range_i64(1, 5);
        let a2 = rng.range_i64(-5, 5);
        let qt = if q >= 0 {
            format!("+ {q}*j")
        } else {
            format!("- {}*j", -q)
        };
        let src = format!(
            "array A[300]\nfor i = 1 to 12 {{ for j = 1 to 9 {{ \
             A[{p}*i {qt} + {x}] = A[{p}*i {qt} + {y}]; }} }}",
            x = 60 + o1,
            y = 60 + o2,
        );
        let nest = parse(&src).expect("parses");
        let deps = analyze(&nest);
        let bound = 4;
        let bnb = branch_and_bound((a1, a2), &deps, (12, 9), bound);
        // Exhaustive reference.
        let mut best: Option<Rational> = None;
        for a in -bound..=bound {
            for b in -bound..=bound {
                if (a, b) == (0, 0) || gcd_i64(a, b) != 1 {
                    continue;
                }
                if !loopmem_dep::legality::row_tileable(&[a, b], &deps) {
                    continue;
                }
                let obj = two_level_objective((a1, a2), (a, b), (12, 9));
                if best.as_ref().is_none_or(|c| obj < *c) {
                    best = Some(obj);
                }
            }
        }
        match (bnb, best) {
            (Some(r), Some(obj)) => assert_eq!(r.objective, obj, "{src}"),
            (None, None) => {}
            (got, want) => panic!("bnb {got:?} vs exhaustive {want:?} ({src})"),
        }
    }
}

#[test]
fn tiling_preserves_work_for_random_sizes() {
    let mut rng = Lcg::new(0x65);
    for _ in 0..40 {
        let b1 = rng.range_i64(1, 6);
        let b2 = rng.range_i64(1, 6);
        let n1 = rng.range_i64(4, 10);
        let n2 = rng.range_i64(4, 10);
        let src = format!(
            "array A[{}][{}]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ A[i][j] = A[i][j] + 1; }} }}",
            n1, n2
        );
        let nest = parse(&src).expect("parses");
        let tiled = tile(&nest, &[b1, b2]).expect("rectangular");
        assert_eq!(count_iterations(&tiled), count_iterations(&nest), "{src}");
        assert_eq!(
            simulate(&tiled).distinct_total(),
            simulate(&nest).distinct_total(),
            "{src}"
        );
    }
}

#[test]
fn optimizer_output_is_reproducible() {
    let mut rng = Lcg::new(0x66);
    for _ in 0..12 {
        let d1 = rng.range_i64(-2, 2);
        let d2 = rng.range_i64(-2, 2);
        let src = format!(
            "array A[16][16]\nfor i = 1 to 8 {{ for j = 1 to 8 {{ \
             A[i + 4][j + 4] = A[i + {a}][j + {b}]; }} }}",
            a = d1 + 4,
            b = d2 + 4,
        );
        let nest = parse(&src).expect("parses");
        let o1 = minimize_mws(&nest, SearchMode::default()).expect("search");
        let o2 = minimize_mws(&nest, SearchMode::default()).expect("search");
        assert_eq!(o1.transform, o2.transform, "{src}");
        assert_eq!(o1.mws_after, o2.mws_after);
    }
}
