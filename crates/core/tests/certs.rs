//! Certificate round-tripping and adversarial mutation coverage.
//!
//! Two properties gate the proof-carrying layer:
//!
//! 1. **Round trip** — certificates emitted from real optimizer runs
//!    serialize to NDJSON, re-parse through the in-tree JSON parser
//!    bit-identically, and still check clean.
//! 2. **No silent accepts** — falsifying any semantic field of any
//!    certificate kind makes the independent checker reject. (Provenance
//!    strings like `reason` are deliberately unchecked.)

use loopmem_core::optimize::{minimize_mws, SearchMode};
use loopmem_core::{
    branch_and_bound, certify_bnb, certify_fusion, certify_optimization, certify_sizing,
    scratchpad_with_fusion,
};
use loopmem_ir::{parse, parse_program, LoopNest, Program};
use loopmem_verify::{
    check_certificates, parse_certificates, Certificate, FrontierEntry, PrunedBox,
};

fn example8() -> LoopNest {
    parse(
        "array X[200]\n\
         for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap()
}

fn example8_program() -> Program {
    Program::new(vec![example8()]).unwrap()
}

/// A 2-deep kernel whose dependence cone collapses to the line (1, 0),
/// so branch and bound prunes boxes with a rank-1 certificate.
fn cone_nest() -> LoopNest {
    parse(
        "array A[100][100]\n\
         for i = 2 to 99 {\n\
           for j = 10 to 90 {\n\
             A[i][j] = A[i-1][j+9] + A[i-1][j-9];\n\
           }\n\
         }",
    )
    .unwrap()
}

fn pipeline_program() -> Program {
    parse_program(
        "array A[16][16]\narray B[16][16]\narray C[16][16]\n\
         for i = 1 to 16 { for j = 1 to 16 { A[i][j] = B[i][j]; } }\n\
         for i = 1 to 16 { for j = 1 to 16 { C[i][j] = A[i][j] + A[i][j]; } }",
    )
    .unwrap()
}

/// Every certificate kind, emitted from real runs on its program.
fn all_real_certs() -> Vec<(Program, Vec<Certificate>)> {
    let nest = example8();
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    let opt_certs = certify_optimization(0, &nest, &opt);

    let cone = cone_nest();
    let deps = loopmem_dep::analyze(&cone);
    let bnb = branch_and_bound((1, 2), &deps, (98, 81), 8).unwrap();
    let bnb_cert = certify_bnb(0, 8, &bnb).expect("rank-1 cone certifies its prunes");

    let program = pipeline_program();
    let plan = scratchpad_with_fusion(&program, 1);
    let sp_certs = vec![certify_sizing(&plan.unfused), certify_fusion(&plan)];

    vec![
        (example8_program(), opt_certs),
        (Program::new(vec![cone]).unwrap(), vec![bnb_cert]),
        (program, sp_certs),
    ]
}

#[test]
fn ndjson_round_trip_is_bit_identical_and_still_checks() {
    for (program, certs) in all_real_certs() {
        let stream: String = certs.iter().map(|c| c.to_json_line() + "\n").collect();
        let parsed = parse_certificates(&stream).unwrap();
        assert_eq!(parsed, certs, "value round trip");
        let re: String = parsed.iter().map(|c| c.to_json_line() + "\n").collect();
        assert_eq!(re, stream, "byte round trip");
        assert_eq!(check_certificates(&program, &parsed), vec![]);
    }
}

/// Asserts the checker rejects the mutated certificate — the mutation
/// falsifies the claim, so silence would be an unsound accept.
fn assert_rejected(program: &Program, cert: Certificate, what: &str) {
    let violations = check_certificates(program, &[cert]);
    assert!(
        !violations.is_empty(),
        "silent accept after mutating {what}"
    );
}

#[test]
fn legality_mutations_are_rejected() {
    let nest = example8();
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    let certs = certify_optimization(0, &nest, &opt);
    let program = example8_program();
    let Certificate::Legality(base) = &certs[0] else {
        panic!("first optimization certificate is legality");
    };

    let mut c = base.clone();
    c.nest = 7;
    assert_rejected(&program, Certificate::Legality(c), "legality.nest");

    let mut c = base.clone();
    c.transform = vec![vec![2, 3], vec![2, 3]];
    assert_rejected(&program, Certificate::Legality(c), "legality.transform");

    let mut c = base.clone();
    c.evaluations[0].image[0] += 1;
    assert_rejected(&program, Certificate::Legality(c), "legality.image");

    let mut c = base.clone();
    c.evaluations[0].distance[0] += 1;
    assert_rejected(&program, Certificate::Legality(c), "legality.distance");

    let mut c = base.clone();
    c.evaluations.pop();
    assert_rejected(&program, Certificate::Legality(c), "legality.evaluations");

    // The identity is legal for example 8 but NOT tileable (distances
    // have negative components), so an upgraded tileable claim must fail.
    let identity = vec![vec![1, 0], vec![0, 1]];
    let deps = loopmem_dep::analyze(&nest);
    let evaluations: Vec<_> = loopmem_dep::constraining_distances(&deps)
        .into_iter()
        .map(|d| loopmem_verify::DistanceImage {
            distance: d.clone(),
            image: d,
        })
        .collect();
    let c = loopmem_verify::LegalityCert {
        nest: 0,
        transform: identity,
        evaluations,
        tileable: true,
    };
    assert_rejected(&program, Certificate::Legality(c), "legality.tileable");
}

#[test]
fn cone_prune_mutations_are_rejected() {
    let cone = cone_nest();
    let deps = loopmem_dep::analyze(&cone);
    let bnb = branch_and_bound((1, 2), &deps, (98, 81), 8).unwrap();
    let cert = certify_bnb(0, 8, &bnb).unwrap();
    let program = Program::new(vec![cone]).unwrap();
    let Certificate::ConePrune(base) = &cert else {
        panic!("bnb certificate is cone-prune");
    };
    assert_eq!(base.direction, vec![1, 0]);

    let mut c = base.clone();
    c.nest = 3;
    assert_rejected(&program, Certificate::ConePrune(c), "cone.nest");

    // At bound 12 the rows (9..12, ±1) are tileable but off the line, so
    // the widened rank-1 claim is no longer spanning.
    let mut c = base.clone();
    c.bound = 12;
    assert_rejected(&program, Certificate::ConePrune(c), "cone.bound");

    let mut c = base.clone();
    c.direction = vec![2, 0];
    assert_rejected(
        &program,
        Certificate::ConePrune(c),
        "cone.direction (imprimitive)",
    );

    let mut c = base.clone();
    c.direction = vec![1, 1];
    assert_rejected(
        &program,
        Certificate::ConePrune(c),
        "cone.direction (off-cone)",
    );

    // A claimed-pruned box that actually contains 2·(1, 0) holds a
    // feasible candidate the search must not have discarded.
    let mut c = base.clone();
    c.boxes.push(PrunedBox {
        alo: 1,
        ahi: 3,
        blo: -1,
        bhi: 0,
    });
    assert_rejected(&program, Certificate::ConePrune(c), "cone.boxes");
}

#[test]
fn optimality_mutations_are_rejected() {
    let nest = example8();
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    let certs = certify_optimization(0, &nest, &opt);
    let program = example8_program();
    let Certificate::Optimality(base) = &certs[1] else {
        panic!("second optimization certificate is optimality");
    };

    let mut c = base.clone();
    c.nest = 9;
    assert_rejected(&program, Certificate::Optimality(c), "optimality.nest");

    let mut c = base.clone();
    c.mws_before += 1;
    assert_rejected(
        &program,
        Certificate::Optimality(c),
        "optimality.mws_before",
    );

    let mut c = base.clone();
    c.mws_after -= 1;
    assert_rejected(&program, Certificate::Optimality(c), "optimality.mws_after");

    let mut c = base.clone();
    c.transform = vec![vec![1, 1], vec![0, 1]];
    assert_rejected(&program, Certificate::Optimality(c), "optimality.transform");

    // Tampering the winner's recorded MWS: the exact replay cross-check
    // re-simulates the transformed nest and disagrees.
    let mut c = base.clone();
    let winner = c.transform.clone();
    for f in &mut c.frontier {
        if f.transform == winner {
            f.mws += 1;
        }
    }
    c.mws_after += 1;
    assert_rejected(
        &program,
        Certificate::Optimality(c),
        "optimality.frontier.mws",
    );

    // An invented frontier entry below the claimed minimum.
    let mut c = base.clone();
    c.frontier.push(FrontierEntry {
        transform: vec![vec![1, 0], vec![0, 1]],
        mws: 1,
    });
    assert_rejected(
        &program,
        Certificate::Optimality(c),
        "optimality.frontier (fake min)",
    );

    // Dropping the identity breaks the mws_before anchor.
    let mut c = base.clone();
    let identity = vec![vec![1, 0], vec![0, 1]];
    c.frontier.retain(|f| f.transform != identity);
    assert_rejected(
        &program,
        Certificate::Optimality(c),
        "optimality.frontier (no identity)",
    );
}

#[test]
fn bounds_mutations_are_rejected() {
    let nest = example8();
    let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
    let certs = certify_optimization(0, &nest, &opt);
    let program = example8_program();
    let Certificate::Bounds(base) = &certs[2] else {
        panic!("third optimization certificate is bounds");
    };
    assert_eq!((base.lower, base.upper), (44, 44));

    let mut c = base.clone();
    c.nest = Some(4);
    assert_rejected(&program, Certificate::Bounds(c), "bounds.nest");

    let mut c = base.clone();
    c.quantity = "vibes".into();
    assert_rejected(&program, Certificate::Bounds(c), "bounds.quantity");

    let mut c = base.clone();
    c.method = "trust-me".into();
    assert_rejected(&program, Certificate::Bounds(c), "bounds.method");

    // The exact MWS is 44: excluding it from either side is unsound.
    let mut c = base.clone();
    c.lower = 45;
    assert_rejected(&program, Certificate::Bounds(c), "bounds.lower");

    let mut c = base.clone();
    c.upper = 43;
    c.lower = 0;
    c.method = "union-box".into();
    assert_rejected(&program, Certificate::Bounds(c), "bounds.upper");
}

#[test]
fn sizing_and_fusion_mutations_are_rejected() {
    let program = pipeline_program();
    let plan = scratchpad_with_fusion(&program, 1);
    let sizing = certify_sizing(&plan.unfused);
    let fusion = certify_fusion(&plan);
    let Certificate::Sizing(sbase) = &sizing else {
        panic!("sizing certificate");
    };
    let Certificate::Fusion(fbase) = &fusion else {
        panic!("fusion certificate");
    };

    let mut c = sbase.clone();
    c.per_nest[0].mws += 1;
    assert_rejected(&program, Certificate::Sizing(c), "sizing.per_nest.mws");

    let mut c = sbase.clone();
    c.per_nest[1].live_through -= 1;
    assert_rejected(
        &program,
        Certificate::Sizing(c),
        "sizing.per_nest.live_through",
    );

    let mut c = sbase.clone();
    c.per_nest.pop();
    assert_rejected(
        &program,
        Certificate::Sizing(c),
        "sizing.per_nest (dropped)",
    );

    let mut c = sbase.clone();
    c.boundary_live[0] -= 1;
    assert_rejected(&program, Certificate::Sizing(c), "sizing.boundary_live");

    let mut c = sbase.clone();
    c.peak_nest = 1;
    c.words += 1;
    assert_rejected(&program, Certificate::Sizing(c), "sizing.peak_nest");

    let mut c = sbase.clone();
    c.words -= 1;
    assert_rejected(&program, Certificate::Sizing(c), "sizing.words");

    let mut c = fbase.clone();
    c.unfused += 1;
    assert_rejected(&program, Certificate::Fusion(c), "fusion.unfused");

    let mut c = fbase.clone();
    c.fused += 1;
    assert_rejected(&program, Certificate::Fusion(c), "fusion.fused");

    let mut c = fbase.clone();
    c.steps[0].at = 5;
    assert_rejected(&program, Certificate::Fusion(c), "fusion.steps.at");

    let mut c = fbase.clone();
    c.steps[0].before += 1;
    assert_rejected(&program, Certificate::Fusion(c), "fusion.steps.before");

    let mut c = fbase.clone();
    c.steps[0].after = c.steps[0].before + 1;
    assert_rejected(&program, Certificate::Fusion(c), "fusion.steps.after");

    let mut c = fbase.clone();
    c.steps.clear();
    assert_rejected(&program, Certificate::Fusion(c), "fusion.steps (cleared)");
}
