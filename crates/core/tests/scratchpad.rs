//! Shared-scratchpad sizing and the fusion search: legality edges that
//! feed the greedy loop, and governed degradation under budget
//! exhaustion (interval must contain the exact answer, bit-identical for
//! every worker-thread count).

use loopmem_core::{
    fuse, scratchpad_program_with_threads, scratchpad_with_fusion, try_scratchpad_program,
    try_scratchpad_program_with_threads, try_scratchpad_with_fusion, FusionError,
};
use loopmem_ir::{parse_program, AnalysisError, BoundsMethod, Program};
use loopmem_sim::AnalysisBudget;

fn pc(src: &str) -> Program {
    parse_program(src).unwrap()
}

#[test]
fn non_conformable_ranges_leave_the_program_unfused() {
    // Same array, different ranges: fuse must refuse, and the search must
    // fall through to the unfused sizing without error.
    let p = pc("array A[8]\n\
         for i = 1 to 8 { A[i] = A[i] + 1; }\n\
         for i = 1 to 4 { A[i] = A[i] + 1; }");
    assert_eq!(fuse(&p, 0).unwrap_err(), FusionError::NotConformable);
    let plan = scratchpad_with_fusion(&p, 1);
    assert!(plan.steps.is_empty());
    assert_eq!(plan.fused, plan.unfused);
    assert_eq!(plan.groups, vec![vec![0], vec![1]]);
    assert_eq!(plan.program.len(), 2);
}

#[test]
fn write_write_flip_prevents_fusion() {
    // Nest 2 rewrites A in reverse: element A[k] is written at iteration
    // k of nest 1 and at the earlier iteration 9-k of nest 2 for k >= 5 —
    // fusing would flip that write-write pair.
    let p = pc("array A[8]\n\
         for i = 1 to 8 { A[i] = A[i] + 1; }\n\
         for i = 1 to 8 { A[9 - i] = A[9 - i] + 1; }");
    assert!(matches!(
        fuse(&p, 0).unwrap_err(),
        FusionError::FusionPreventingDependence { .. }
    ));
    let plan = scratchpad_with_fusion(&p, 1);
    assert!(plan.steps.is_empty());
    assert_eq!(plan.program.len(), 2);
}

#[test]
fn chain_of_three_fuses_greedily_to_one_nest() {
    // A -> C -> D pipeline: each adjacent pair is fusable, and each
    // accepted fusion re-exposes the next one at boundary 0. Two steps,
    // one surviving nest, strictly decreasing sizes.
    let p = pc(
        "array A[8][8]\narray B[8][8]\narray C[8][8]\narray D[8][8]\n\
         for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
         for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j]; } }\n\
         for i = 1 to 8 { for j = 1 to 8 { D[i][j] = C[i][j]; } }",
    );
    let plan = scratchpad_with_fusion(&p, 1);
    // The middle nest pays for both boundaries before fusion.
    assert_eq!(plan.unfused.per_nest[1].live_through, 128);
    assert_eq!(plan.unfused.words, 128);
    assert_eq!(plan.steps.len(), 2);
    assert_eq!(plan.steps[0].at, 0);
    assert_eq!(plan.steps[1].at, 0, "rescan refused boundary 0 again");
    assert!(plan.steps[0].words_after < plan.steps[0].words_before);
    assert!(plan.steps[1].words_after < plan.steps[1].words_before);
    assert_eq!(plan.groups, vec![vec![0, 1, 2]]);
    assert_eq!(plan.program.len(), 1);
    assert!(plan.fused.words < plan.unfused.words);
}

#[test]
fn legal_but_harmful_fusion_is_rejected() {
    // Two independent stencils over disjoint arrays: fusion is
    // conformable and dependence-free, but merging the two working sets
    // into one window grows the scratchpad — the strict-decrease test
    // must reject it.
    let p = pc("array A[16][16]\narray B[16][16]\n\
         for i = 2 to 16 { for j = 1 to 16 { A[i][j] = A[i-1][j] + A[i][j]; } }\n\
         for i = 2 to 16 { for j = 1 to 16 { B[i][j] = B[i-1][j] + B[i][j]; } }");
    let fused = fuse(&p, 0).expect("fusion is legal");
    assert!(
        scratchpad_program_with_threads(&fused, 1).words
            > scratchpad_program_with_threads(&p, 1).words,
        "precondition: fusing these nests must inflate the window"
    );
    let plan = scratchpad_with_fusion(&p, 1);
    assert!(plan.steps.is_empty());
    assert_eq!(plan.fused, plan.unfused);
    assert_eq!(plan.program.len(), 2);
}

#[test]
fn exhausted_budget_yields_partial_program_interval_containing_exact() {
    // `with_max_iterations(0)` trips every nest at its first budget
    // charge — deterministically, for any worker count. The degraded
    // interval must contain the ungoverned exact sizing.
    let p = pc("array A[8][8]\narray B[8][8]\narray C[8][8]\n\
         for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
         for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }");
    let exact = scratchpad_program_with_threads(&p, 1);
    let budget = AnalysisBudget::unlimited().with_max_iterations(0);
    let one = try_scratchpad_program_with_threads(&p, 1, &budget).unwrap();
    assert!(!one.all_exact());
    assert_eq!(one.words.method, BoundsMethod::PartialProgram);
    assert!(
        one.words.contains(exact.words),
        "exact {} outside [{}, {}]",
        exact.words,
        one.words.lower,
        one.words.upper
    );
    assert_eq!(one.words.slack(), one.words.upper - one.words.lower);
    for t in [2, 4] {
        let par = try_scratchpad_program_with_threads(&p, t, &budget).unwrap();
        assert_eq!(par.words, one.words, "t={t} interval differs");
        assert_eq!(par.sizing, one.sizing, "t={t} subset sizing differs");
        assert_eq!(par.per_nest, one.per_nest, "t={t} per-nest outcomes differ");
    }
}

#[test]
fn mid_program_failure_keeps_subset_boundary_live() {
    // Nest 1 panics (contained); nests 0 and 2 share A, so the subset
    // sizing still sees the real boundary traffic — and the interval is
    // bit-identical for every worker count.
    let p = pc("array A[10]\narray B[10]\n\
         for i = 1 to 3 { A[i]; }\n\
         for i = 800 to 900 { for j = i + 9223372036854775000 to 9223372036854775807 { B[1]; } }\n\
         for i = 1 to 3 { A[i]; }");
    let one = try_scratchpad_program_with_threads(&p, 1, &AnalysisBudget::unlimited()).unwrap();
    assert!(!one.all_exact());
    assert!(matches!(
        one.per_nest[1],
        Err(AnalysisError::NestPanicked { nest: 1, .. })
    ));
    assert_eq!(one.sizing.boundary_live, vec![3, 3]);
    assert_eq!(one.sizing.per_nest[0].live_through, 3);
    assert_eq!(one.sizing.per_nest[2].live_through, 3);
    assert_eq!(one.words.lower, 3);
    assert_eq!(one.words.method, BoundsMethod::PartialProgram);
    for t in [2, 4] {
        let par = try_scratchpad_program_with_threads(&p, t, &AnalysisBudget::unlimited()).unwrap();
        assert_eq!(par.words, one.words);
        assert_eq!(par.sizing, one.sizing);
        assert_eq!(par.per_nest, one.per_nest);
    }
}

#[test]
fn degraded_baseline_skips_the_fusion_search() {
    let p = pc("array A[8]\n\
         for i = 1 to 8 { A[i] = A[i] + 1; }\n\
         for i = 1 to 8 { A[i] = A[i] + 2; }");
    let budget = AnalysisBudget::unlimited().with_max_iterations(0);
    let (gov, plan) = try_scratchpad_with_fusion(&p, 1, &budget).unwrap();
    assert!(!gov.all_exact());
    assert!(plan.is_none(), "no fusion search on a degraded baseline");
    // With the budget lifted the same call fuses.
    let (gov, plan) = try_scratchpad_with_fusion(&p, 1, &AnalysisBudget::unlimited()).unwrap();
    assert!(gov.all_exact());
    let plan = plan.expect("exact baseline runs the search");
    assert_eq!(plan.steps.len(), 1);
    assert!(plan.fused.words < plan.unfused.words);
}

#[test]
fn governed_auto_thread_entry_matches_pinned() {
    let p = pc("array A[6][6]\narray B[6][6]\n\
         for i = 1 to 6 { for j = 1 to 6 { A[i][j] = B[i][j]; } }\n\
         for i = 1 to 6 { for j = 1 to 6 { B[i][j] = A[i][j]; } }");
    let auto = try_scratchpad_program(&p, &AnalysisBudget::unlimited()).unwrap();
    let pinned = try_scratchpad_program_with_threads(&p, 1, &AnalysisBudget::unlimited()).unwrap();
    assert_eq!(auto.words, pinned.words);
    assert_eq!(auto.sizing, pinned.sizing);
}
