//! Inter-nest shared-scratchpad sizing with a greedy fusion search
//! (multi-nest extension of the paper's §5 direction).
//!
//! The paper sizes a scratchpad for *one* nest via the maximum window size
//! (MWS). Real embedded programs run sequences of nests that hand whole
//! arrays across boundaries, so a single shared scratchpad has to hold,
//! at any instant inside nest `k`, both the nest's own working window and
//! every value in flight across its boundaries. This module sizes that
//! scratchpad as
//!
//! ```text
//! words = max( max_k (MWS_k + live_through_k),  max_b boundary_live[b] )
//! ```
//!
//! where `live_through_k = |in_k ∪ out_k|` counts the elements whose
//! lifetime crosses a boundary of nest `k` (live at its entry, its exit,
//! or both). Soundness: an element live at global time `t` inside nest
//! `k` either has both its first and last touch inside nest `k` — then it
//! is inside nest `k`'s own window, so at most `MWS_k` such elements are
//! live — or its lifetime crosses a boundary of `k`, putting it in
//! `in_k ∪ out_k`. Hence `live(t) <= MWS_k + live_through_k <= words` for
//! every `t`, so `words >= program MWS` always holds. The boundary term
//! is dominated by the nest terms (`boundary_live[k] = out_k <=
//! live_through_k`) but is kept in the report: it is the irreducible
//! inter-phase buffer that no reordering can shrink.
//!
//! The fusion search then folds in the §5 direction: greedily fuse legal
//! conformable adjacent pairs ([`crate::fusion::fuse`]) whenever fusion
//! *strictly shrinks* the scratchpad size, re-sizing after every accepted
//! fusion and rescanning from the start. Fusion lets a produced element
//! die iterations — not nests — after its production, collapsing the
//! `live_through` term; but it can also inflate `MWS_k` of the merged
//! nest, so acceptance is decided on the re-sized whole, never assumed.
//!
//! Governed variants (`try_scratchpad_*`) consume the budgeted program
//! simulation end to end: when any nest degrades to analytical `Bounds`
//! instead of an exact sweep, the scratchpad size propagates as an
//! interval — sized to the upper bound, slack reported — and stays
//! bit-identical for every worker-thread count.

use crate::fusion::fuse;
use loopmem_ir::{AnalysisError, Bounds, BoundsMethod, Program};
use loopmem_obs::{EventKind, Phase, TraceEvent, TraceSink};
use loopmem_sim::{
    analytic_nest_bounds, simulate_program_with_threads, try_simulate_program_tracked,
    AnalysisBudget, BudgetTracker, GovernedProgramSim, ProgramSimResult,
};
use std::sync::Arc;

/// One nest's contribution to the shared-scratchpad size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NestTerm {
    /// The nest's own exact MWS (nest-local window peak).
    pub mws: u64,
    /// Elements whose lifetime crosses a boundary of this nest
    /// (`|in_k ∪ out_k|`).
    pub live_through: u64,
}

impl NestTerm {
    /// The nest's scratchpad demand: `MWS_k + live_through_k`.
    pub fn words(&self) -> u64 {
        self.mws.saturating_add(self.live_through)
    }
}

/// Exact shared-scratchpad sizing of a whole program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScratchpadSizing {
    /// The scratchpad size in words:
    /// `max(max_k term_k, max_b boundary_live[b])`.
    pub words: u64,
    /// Per-nest sizing terms, in program order.
    pub per_nest: Vec<NestTerm>,
    /// Live words at each internal nest boundary (straight from the
    /// program simulation).
    pub boundary_live: Vec<u64>,
    /// Index of the nest whose term realises `words` (0 for an empty
    /// program).
    pub peak_nest: usize,
    /// The exact whole-program MWS, for reference: `words >= program_mws`
    /// always (see the module docs for the argument).
    pub program_mws: u64,
}

/// Folds a program simulation into the sizing formula.
fn sizing_from_sim(sim: &ProgramSimResult) -> ScratchpadSizing {
    let per_nest: Vec<NestTerm> = sim
        .per_nest_mws
        .iter()
        .zip(&sim.live_through)
        .map(|(&mws, &live_through)| NestTerm { mws, live_through })
        .collect();
    let mut words = 0u64;
    let mut peak_nest = 0usize;
    for (k, term) in per_nest.iter().enumerate() {
        if term.words() > words {
            words = term.words();
            peak_nest = k;
        }
    }
    // `boundary_live[b] <= live_through` of both adjacent nests, so this
    // max never changes `words`; taking it anyway keeps the formula
    // honest if the invariant ever shifts.
    for &b in &sim.boundary_live {
        words = words.max(b);
    }
    ScratchpadSizing {
        words,
        per_nest,
        boundary_live: sim.boundary_live.clone(),
        peak_nest,
        program_mws: sim.mws_total,
    }
}

/// Sizes one shared scratchpad over the whole program, exactly. Uses
/// every available worker thread ([`loopmem_sim::thread_count`]).
pub fn scratchpad_program(program: &Program) -> ScratchpadSizing {
    scratchpad_program_with_threads(program, loopmem_sim::thread_count())
}

/// [`scratchpad_program`] with a pinned worker-thread count. The
/// underlying program simulation is bit-identical for every `threads`
/// value, so this is too.
pub fn scratchpad_program_with_threads(program: &Program, threads: usize) -> ScratchpadSizing {
    sizing_from_sim(&simulate_program_with_threads(program, threads))
}

/// One accepted fusion during the greedy search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusionStep {
    /// Boundary index fused, in the program *as it stood* when the step
    /// was accepted (after earlier steps).
    pub at: usize,
    /// Scratchpad words before this fusion.
    pub words_before: u64,
    /// Scratchpad words after (strictly smaller).
    pub words_after: u64,
}

/// Outcome of the fusion search: the (possibly fused) program, its
/// sizing, and the plan that got there.
#[derive(Clone, Debug)]
pub struct ScratchpadPlan {
    /// The program with every accepted fusion applied.
    pub program: Program,
    /// Sizing of the fused program (`fused.words <= unfused.words`).
    pub fused: ScratchpadSizing,
    /// Sizing of the original program.
    pub unfused: ScratchpadSizing,
    /// Accepted fusions, in order.
    pub steps: Vec<FusionStep>,
    /// Original nest indices making up each nest of the fused program,
    /// in program order (singletons where nothing fused).
    pub groups: Vec<Vec<usize>>,
}

/// Greedy fusion search: repeatedly scan adjacent pairs from the start,
/// fuse the first legal pair whose fusion *strictly shrinks* the
/// scratchpad size, re-size, and rescan. Terminates because every
/// accepted step reduces both the nest count and `words`; the scan order
/// is fixed, so the result is deterministic and bit-identical for every
/// `threads` value.
///
/// Legal-but-harmful fusions (conformable, dependence-preserving, yet
/// `words` grows — e.g. merging two fat independent working sets into one
/// window) are rejected by the strict-decrease test.
pub fn scratchpad_with_fusion(program: &Program, threads: usize) -> ScratchpadPlan {
    let unfused = scratchpad_program_with_threads(program, threads);
    let mut current = program.clone();
    let mut sizing = unfused.clone();
    let mut groups: Vec<Vec<usize>> = (0..program.len()).map(|k| vec![k]).collect();
    let mut steps = Vec::new();
    loop {
        let mut accepted = false;
        for k in 0..current.len().saturating_sub(1) {
            let Ok(candidate) = fuse(&current, k) else {
                continue;
            };
            let resized = scratchpad_program_with_threads(&candidate, threads);
            if resized.words < sizing.words {
                steps.push(FusionStep {
                    at: k,
                    words_before: sizing.words,
                    words_after: resized.words,
                });
                let merged = groups.remove(k + 1);
                groups[k].extend(merged);
                current = candidate;
                sizing = resized;
                accepted = true;
                break; // a fusion changed the boundary set: rescan
            }
        }
        if !accepted {
            break;
        }
    }
    ScratchpadPlan {
        program: current,
        fused: sizing,
        unfused,
        steps,
        groups,
    }
}

// ---------------------------------------------------------------- trace --

/// Fusion-step events sort after every per-nest sizing term: nest counts
/// stay far below this base, so the two ord ranges never collide.
const FUSION_ORD_BASE: u64 = 1 << 32;

fn sizing_span_begin() -> TraceEvent {
    TraceEvent {
        phase: Phase::Sizing,
        nest: None,
        ord: (0, 0),
        thread: 0,
        kind: EventKind::SpanBegin { label: "sizing" },
    }
}

fn sizing_span_end(micros: u64, charged: u64) -> TraceEvent {
    TraceEvent {
        phase: Phase::Sizing,
        nest: None,
        ord: (u64::MAX, 0),
        thread: 0,
        kind: EventKind::SpanEnd {
            label: "sizing",
            micros,
            charged,
        },
    }
}

/// One `sizing-term` event per exactly-sized nest, at `ord = 1 + k` so a
/// degraded nest leaves a gap instead of shifting later terms.
fn sizing_term_events(terms: impl Iterator<Item = Option<NestTerm>>) -> Vec<TraceEvent> {
    terms
        .enumerate()
        .filter_map(|(k, t)| {
            t.map(|term| TraceEvent {
                phase: Phase::Sizing,
                nest: Some(k as u32),
                ord: (1 + k as u64, 0),
                thread: 0,
                kind: EventKind::SizingTerm {
                    mws: term.mws,
                    live_through: term.live_through,
                },
            })
        })
        .collect()
}

/// One `fusion-step` event per accepted step, in acceptance order.
pub(crate) fn fusion_step_events(steps: &[FusionStep]) -> Vec<TraceEvent> {
    steps
        .iter()
        .enumerate()
        .map(|(i, s)| TraceEvent {
            phase: Phase::Sizing,
            nest: None,
            ord: (FUSION_ORD_BASE + i as u64, 0),
            thread: 0,
            kind: EventKind::FusionStep {
                at: s.at as u64,
                before: s.words_before,
                after: s.words_after,
            },
        })
        .collect()
}

/// [`scratchpad_with_fusion`] narrating its work into `sink`: a `sizing`
/// span bracketing one `sizing-term` event per nest of the *unfused*
/// program and one `fusion-step` event per accepted fusion. The search is
/// bit-identical for every `threads` value, so the event stream is too.
/// Falls back to the plain search when `sink` is disabled.
pub fn scratchpad_with_fusion_traced(
    program: &Program,
    threads: usize,
    sink: &Arc<dyn TraceSink>,
) -> ScratchpadPlan {
    if !sink.enabled() {
        return scratchpad_with_fusion(program, threads);
    }
    let started = std::time::Instant::now();
    let plan = scratchpad_with_fusion(program, threads);
    let mut events = vec![sizing_span_begin()];
    events.extend(sizing_term_events(
        plan.unfused.per_nest.iter().map(|&t| Some(t)),
    ));
    events.extend(fusion_step_events(&plan.steps));
    let charged = plan.unfused.per_nest.len() as u64 + plan.steps.len() as u64;
    events.push(sizing_span_end(
        started.elapsed().as_micros() as u64,
        charged,
    ));
    sink.record_all(events);
    plan
}

/// Governed shared-scratchpad sizing: per-nest outcomes plus an interval
/// on the scratchpad size that stays honest when nests degrade.
#[derive(Debug)]
pub struct GovernedScratchpad {
    /// Scratchpad size interval. A point interval when every nest
    /// simulated exactly; otherwise `[subset words, subset words + 2·F]`
    /// (`PartialProgram`), where `F` sums the failed nests' analytical
    /// distinct-element uppers — a degraded nest's elements can enter the
    /// formula at most twice (once in some `MWS_k`, once in some
    /// `live_through_k`), and dropping its accesses never grows any term
    /// (lower). **Size the scratchpad to `words.upper`**; `words.slack()`
    /// is the possible over-provisioning.
    pub words: Bounds,
    /// Per nest, in program order: the nest's sizing term, or why its
    /// analysis degraded.
    pub per_nest: Vec<Result<NestTerm, AnalysisError>>,
    /// Sizing of the successfully-simulated subset (equals the exact
    /// sizing when [`all_exact`](GovernedScratchpad::all_exact)).
    pub sizing: ScratchpadSizing,
}

impl GovernedScratchpad {
    /// True when every nest simulated exactly (the interval is a point).
    pub fn all_exact(&self) -> bool {
        self.per_nest.iter().all(Result::is_ok)
    }
}

/// Folds a governed program simulation into interval sizing. The interval
/// argument mirrors [`GovernedProgramSim`]'s, doubled: restoring a failed
/// nest's accesses can add each of its (at most `upper_j`) elements to
/// one `MWS_k` *and* one `live_through_k` of the peak term, while every
/// element untouched by failed nests contributes to the full program's
/// terms exactly what it contributes to the subset's.
fn governed_sizing(program: &Program, gov: GovernedProgramSim) -> GovernedScratchpad {
    let sizing = sizing_from_sim(&gov.sim);
    let mut failed_upper = 0u64;
    let mut salvaged_lower = 0u64;
    let mut per_nest = Vec::with_capacity(gov.per_nest.len());
    for (k, outcome) in gov.per_nest.into_iter().enumerate() {
        match outcome {
            Ok(_) => per_nest.push(Ok(NestTerm {
                mws: gov.sim.per_nest_mws[k],
                live_through: gov.sim.live_through[k],
            })),
            Err(e) => {
                // `Exhausted` carries the nest's analytical upper already;
                // recompute for the other failure modes (pure interval
                // analysis — cannot panic).
                let upper = match e.bounds() {
                    Some(b) => b.upper,
                    None => analytic_nest_bounds(&program.nests()[k]).upper,
                };
                failed_upper = failed_upper.saturating_add(upper);
                // A salvaged-prefix lower bound on a failed nest's MWS also
                // lower-bounds the shared buffer: the buffer must hold at
                // least `MWS_k (+ live-through_k)` words during nest k.
                if let Some(b) = e.bounds() {
                    salvaged_lower = salvaged_lower.max(b.lower);
                }
                per_nest.push(Err(e));
            }
        }
    }
    let words = if per_nest.iter().all(Result::is_ok) {
        Bounds::exact(sizing.words)
    } else {
        Bounds {
            lower: sizing.words.max(salvaged_lower),
            upper: sizing.words.saturating_add(failed_upper.saturating_mul(2)),
            method: BoundsMethod::PartialProgram,
        }
    };
    GovernedScratchpad {
        words,
        per_nest,
        sizing,
    }
}

/// Governed [`scratchpad_program`]: auto thread count, see
/// [`try_scratchpad_program_with_threads`].
///
/// Thin wrapper over [`Session::scratchpad_sizing`](crate::Session) —
/// prefer the session builder in new code.
///
/// # Errors
///
/// Only whole-program failures of the underlying simulation (e.g. the
/// global table fold exceeding `max_table_bytes`); per-nest failures
/// degrade to the interval instead.
pub fn try_scratchpad_program(
    program: &Program,
    budget: &AnalysisBudget,
) -> Result<GovernedScratchpad, AnalysisError> {
    crate::Session::new()
        .budget(budget.clone())
        .scratchpad_sizing(program)
}

/// Governed [`scratchpad_program_with_threads`]: sizes the scratchpad
/// under one [`BudgetTracker`] (one deadline, one cumulative iteration
/// budget). Per-nest failures are contained — the failing nest degrades
/// to its analytical bounds and widens the interval; every other nest
/// still contributes exactly. Results are bit-identical for every
/// `threads` value.
///
/// Thin wrapper over [`Session::scratchpad_sizing`](crate::Session) —
/// prefer the session builder in new code.
///
/// # Errors
///
/// See [`try_scratchpad_program`].
pub fn try_scratchpad_program_with_threads(
    program: &Program,
    threads: usize,
    budget: &AnalysisBudget,
) -> Result<GovernedScratchpad, AnalysisError> {
    crate::Session::new()
        .threads(threads)
        .budget(budget.clone())
        .scratchpad_sizing(program)
}

/// [`try_scratchpad_program_with_threads`] charging an externally owned
/// tracker, so a caller interleaving the sizing with other governed work
/// shares one deadline and one cumulative iteration count across all of
/// it.
///
/// # Errors
///
/// See [`try_scratchpad_program`].
pub fn try_scratchpad_program_tracked(
    program: &Program,
    threads: usize,
    tracker: &BudgetTracker,
    max_table_bytes: Option<u64>,
) -> Result<GovernedScratchpad, AnalysisError> {
    let started = tracker.trace().map(|_| std::time::Instant::now());
    let gov = try_simulate_program_tracked(program, threads, tracker, max_table_bytes)?;
    let governed = governed_sizing(program, gov);
    if let Some(sink) = tracker.trace() {
        let mut events = vec![sizing_span_begin()];
        events.extend(sizing_term_events(
            governed.per_nest.iter().map(|r| r.as_ref().ok().copied()),
        ));
        let charged = governed.per_nest.iter().filter(|r| r.is_ok()).count() as u64;
        let micros = started.map_or(0, |s| s.elapsed().as_micros() as u64);
        events.push(sizing_span_end(micros, charged));
        sink.record_all(events);
    }
    Ok(governed)
}

/// Governed sizing plus the fusion search. The search runs only when the
/// baseline sizing is exact: `fuse`'s legality check sweeps the candidate
/// pair's full trace ungoverned, which is affordable exactly when the
/// budget already covered the whole-program sweep. On a degraded
/// baseline the plan is `None` and the interval stands alone.
///
/// Thin wrapper over [`Session::scratchpad`](crate::Session) — prefer
/// the session builder in new code.
///
/// # Errors
///
/// See [`try_scratchpad_program`].
pub fn try_scratchpad_with_fusion(
    program: &Program,
    threads: usize,
    budget: &AnalysisBudget,
) -> Result<(GovernedScratchpad, Option<ScratchpadPlan>), AnalysisError> {
    crate::Session::new()
        .threads(threads)
        .budget(budget.clone())
        .scratchpad(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse_program;

    fn producer_consumer() -> Program {
        parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap()
    }

    #[test]
    fn sizing_dominates_program_mws_and_boundaries() {
        let p = producer_consumer();
        let s = scratchpad_program(&p);
        assert_eq!(s.per_nest.len(), 2);
        assert_eq!(s.boundary_live, vec![64]);
        assert!(s.words >= s.program_mws);
        assert!(s.words >= 64);
        // All of A crosses the boundary in both directions of one nest.
        assert_eq!(s.per_nest[0].live_through, 64);
        assert_eq!(s.per_nest[1].live_through, 64);
    }

    #[test]
    fn fusion_shrinks_the_producer_consumer_scratchpad() {
        let p = producer_consumer();
        let plan = scratchpad_with_fusion(&p, 1);
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.groups, vec![vec![0, 1]]);
        assert!(
            plan.fused.words < plan.unfused.words,
            "{} !< {}",
            plan.fused.words,
            plan.unfused.words
        );
        assert_eq!(plan.program.len(), 1);
    }

    #[test]
    fn sizing_is_thread_count_invariant() {
        let p = producer_consumer();
        let one = scratchpad_program_with_threads(&p, 1);
        for t in [2, 4] {
            assert_eq!(scratchpad_program_with_threads(&p, t), one);
        }
    }

    #[test]
    fn governed_exact_matches_ungoverned() {
        let p = producer_consumer();
        let exact = scratchpad_program_with_threads(&p, 1);
        let gov = try_scratchpad_program(&p, &AnalysisBudget::default()).unwrap();
        assert!(gov.all_exact());
        assert_eq!(gov.words, Bounds::exact(exact.words));
        assert_eq!(gov.sizing, exact);
        assert_eq!(gov.words.slack(), 0);
    }

    #[test]
    fn single_nest_sizing_is_its_mws() {
        let p = parse_program(
            "array A[16][16]\n\
             for i = 2 to 16 { for j = 1 to 16 { A[i][j] = A[i-1][j]; } }",
        )
        .unwrap();
        let s = scratchpad_program(&p);
        assert_eq!(s.per_nest.len(), 1);
        assert_eq!(s.per_nest[0].live_through, 0);
        assert_eq!(s.words, s.program_mws);
        assert!(s.boundary_live.is_empty());
    }
}
