//! Branch and bound for the §4.2 leading-row problem.
//!
//! The paper: *"We use either a branch and bound technique (or general
//! nonlinear programming techniques) to minimize this function; the number
//! of variables is linear in the number of nested loops which is usually
//! very small in practice (≤ 4) resulting in small solution times."*
//!
//! This module implements that search literally for 2-deep nests: minimize
//! the continuous objective `(maxspan)(|α₂a − α₁b|)` over integer leading
//! rows `(a, b)` subject to the tiling-legality half-planes `a·d₁ + b·d₂
//! ≥ 0`. Boxes of candidate rows are pruned by
//!
//! * **infeasibility** — a tiling constraint violated over the whole box;
//! * **bounding** — a lower bound on the objective over the box
//!   (`maxspan` shrinks as `|a|, |b|` grow; the weight `|α₂a − α₁b|` is
//!   linear, so its box minimum sits at a corner or at zero if the kernel
//!   line crosses the box).
//!
//! The exhaustive scan in [`crate::optimize`] serves as the reference
//! implementation; tests assert both find the same optimum.

use crate::mws::two_level_objective;
use loopmem_dep::legality::row_tileable;
use loopmem_dep::DependenceSet;
use loopmem_ir::{AnalysisError, Bounds, BoundsMethod, TripReason};
use loopmem_linalg::gcd::gcd_i64;
use loopmem_linalg::Rational;
use loopmem_sim::{AnalysisBudget, BudgetTracker};

/// Outcome of the branch-and-bound search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BnbResult {
    /// The optimal leading row.
    pub row: (i64, i64),
    /// The continuous objective at the optimum (the paper's "22").
    pub objective: Rational,
    /// Boxes examined.
    pub nodes_explored: u64,
    /// Boxes pruned by bounding or infeasibility.
    pub nodes_pruned: u64,
}

#[derive(Clone, Copy, Debug)]
struct Box2 {
    alo: i64,
    ahi: i64,
    blo: i64,
    bhi: i64,
}

impl Box2 {
    fn is_point(&self) -> bool {
        self.alo == self.ahi && self.blo == self.bhi
    }

    fn split(&self) -> (Box2, Box2) {
        if self.ahi - self.alo >= self.bhi - self.blo {
            let mid = self.alo + (self.ahi - self.alo) / 2;
            (
                Box2 { ahi: mid, ..*self },
                Box2 {
                    alo: mid + 1,
                    ..*self
                },
            )
        } else {
            let mid = self.blo + (self.bhi - self.blo) / 2;
            (
                Box2 { bhi: mid, ..*self },
                Box2 {
                    blo: mid + 1,
                    ..*self
                },
            )
        }
    }
}

/// Minimizes the §4.2 objective over coprime, tiling-legal leading rows
/// with `|a|, |b| ≤ bound`. Returns `None` when no feasible row exists
/// (then not even `(1, 0)` is tileable, which cannot happen for distance
/// vectors of a sequentially valid loop).
///
/// # Panics
///
/// Panics if `bound <= 0` or extents are not positive.
pub fn branch_and_bound(
    alpha: (i64, i64),
    deps: &DependenceSet,
    extents: (i64, i64),
    bound: i64,
) -> Option<BnbResult> {
    assert!(bound > 0, "search bound must be positive");
    assert!(extents.0 > 0 && extents.1 > 0, "extents must be positive");
    let tracker = BudgetTracker::unlimited();
    bnb_impl(alpha, deps, extents, bound, &tracker)
        .unwrap_or_else(|_| unreachable!("unlimited budget tripped"))
}

/// Governed [`branch_and_bound`]: never panics and charges one search node
/// per box examined against `budget`
/// ([`AnalysisBudget::with_max_search_nodes`] and the deadline both
/// apply). Invalid arguments report [`AnalysisError::Invalid`] instead of
/// panicking. On a trip the `Exhausted` payload bounds the *objective*
/// (not an MWS): the best feasible value seen so far bounds it from above
/// (rounded up; `u64::MAX` when none was reached), zero always bounds it
/// from below.
pub fn try_branch_and_bound(
    alpha: (i64, i64),
    deps: &DependenceSet,
    extents: (i64, i64),
    bound: i64,
    budget: &AnalysisBudget,
) -> Result<Option<BnbResult>, AnalysisError> {
    if bound <= 0 {
        return Err(AnalysisError::Invalid {
            message: format!("search bound must be positive, got {bound}"),
        });
    }
    if extents.0 <= 0 || extents.1 <= 0 {
        return Err(AnalysisError::Invalid {
            message: format!("loop extents must be positive, got {extents:?}"),
        });
    }
    let tracker = BudgetTracker::new(budget);
    bnb_impl(alpha, deps, extents, bound, &tracker).map_err(|(reason, best)| {
        let upper = best
            .map(|obj| obj.ceil().clamp(0, i128::from(u64::MAX)) as u64)
            .unwrap_or(u64::MAX);
        AnalysisError::Exhausted {
            reason,
            partial: Bounds {
                lower: 0,
                upper,
                method: BoundsMethod::ClosedForm,
            },
        }
    })
}

/// The branch-and-bound loop, polling `tracker` once per popped box. A
/// trip returns the reason plus the best objective reached so far.
fn bnb_impl(
    alpha: (i64, i64),
    deps: &DependenceSet,
    extents: (i64, i64),
    bound: i64,
    tracker: &BudgetTracker,
) -> Result<Option<BnbResult>, (TripReason, Option<Rational>)> {
    let root = Box2 {
        alo: -bound,
        ahi: bound,
        blo: -bound,
        bhi: bound,
    };
    let mut best: Option<((i64, i64), Rational)> = None;
    let mut explored = 0u64;
    let mut pruned = 0u64;
    let mut stack = vec![root];
    while let Some(bx) = stack.pop() {
        if let Err(reason) = tracker.charge_search_nodes(1) {
            return Err((reason, best.map(|(_, obj)| obj)));
        }
        explored += 1;
        // Infeasibility pruning: a tiling half-plane violated everywhere.
        if box_infeasible(&bx, deps) {
            pruned += 1;
            continue;
        }
        // Bounding.
        if let Some((_, cur)) = &best {
            if objective_lower_bound(alpha, extents, &bx) >= *cur {
                pruned += 1;
                continue;
            }
        }
        if bx.is_point() {
            let (a, b) = (bx.alo, bx.blo);
            if (a, b) == (0, 0) || gcd_i64(a, b) != 1 || !row_tileable(&[a, b], deps) {
                continue;
            }
            let obj = two_level_objective(alpha, (a, b), extents);
            let better = best.as_ref().is_none_or(|(_, cur)| obj < *cur);
            if better {
                best = Some(((a, b), obj));
            }
        } else {
            let (l, r) = bx.split();
            stack.push(l);
            stack.push(r);
        }
    }
    Ok(best.map(|(row, objective)| BnbResult {
        row,
        objective,
        nodes_explored: explored,
        nodes_pruned: pruned,
    }))
}

/// `true` when some tiling constraint `a·d₁ + b·d₂ ≥ 0` is violated by
/// every point of the box (its maximum over the box — attained at a
/// corner of the linear form — is negative).
fn box_infeasible(bx: &Box2, deps: &DependenceSet) -> bool {
    deps.iter()
        .filter(|d| d.kind.constrains_legality())
        .any(|d| {
            let (d1, d2) = (d.distance[0], d.distance[1]);
            let corners = [
                bx.alo * d1 + bx.blo * d2,
                bx.alo * d1 + bx.bhi * d2,
                bx.ahi * d1 + bx.blo * d2,
                bx.ahi * d1 + bx.bhi * d2,
            ];
            corners.iter().all(|&c| c < 0)
        })
}

/// Lower bound of the objective over a box: the weight's box minimum
/// (corner minimum, or 0 when the kernel line `α₂a = α₁b` crosses the
/// box) times the maxspan at the largest coefficients. Weight 0 means a
/// window of 1, the global minimum of the objective.
fn objective_lower_bound(alpha: (i64, i64), extents: (i64, i64), bx: &Box2) -> Rational {
    let w = |a: i64, b: i64| (alpha.1 * a - alpha.0 * b).abs();
    let corners = [
        w(bx.alo, bx.blo),
        w(bx.alo, bx.bhi),
        w(bx.ahi, bx.blo),
        w(bx.ahi, bx.bhi),
    ];
    // Sign change of the (signed) linear form means 0 is attainable.
    let s = |a: i64, b: i64| alpha.1 * a - alpha.0 * b;
    let signs = [
        s(bx.alo, bx.blo),
        s(bx.alo, bx.bhi),
        s(bx.ahi, bx.blo),
        s(bx.ahi, bx.bhi),
    ];
    let min_w = if signs.iter().any(|&x| x >= 0) && signs.iter().any(|&x| x <= 0) {
        0
    } else {
        *corners.iter().min().expect("four corners")
    };
    if min_w == 0 {
        return Rational::ONE;
    }
    let max_abs_a = bx.alo.abs().max(bx.ahi.abs());
    let max_abs_b = bx.blo.abs().max(bx.bhi.abs());
    let (n1, n2) = extents;
    let s1 = (max_abs_b > 0).then(|| Rational::new((n1 - 1) as i128, max_abs_b as i128));
    let s2 = (max_abs_a > 0).then(|| Rational::new((n2 - 1) as i128, max_abs_a as i128));
    let span = match (s1, s2) {
        (Some(x), Some(y)) => x.min(y),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => return Rational::ONE, // the all-zero box: no row
    };
    (span + Rational::ONE) * Rational::from(min_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_dep::analyze;
    use loopmem_ir::parse;

    fn example8_deps() -> DependenceSet {
        analyze(
            &parse(
                "array X[200]\n\
                 for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
            )
            .unwrap(),
        )
    }

    /// Reference: exhaustive scan over the same space.
    fn exhaustive(
        alpha: (i64, i64),
        deps: &DependenceSet,
        extents: (i64, i64),
        bound: i64,
    ) -> Option<((i64, i64), Rational)> {
        let mut best: Option<((i64, i64), Rational)> = None;
        for a in -bound..=bound {
            for b in -bound..=bound {
                if (a, b) == (0, 0) || gcd_i64(a, b) != 1 || !row_tileable(&[a, b], deps) {
                    continue;
                }
                let obj = two_level_objective(alpha, (a, b), extents);
                if best.as_ref().is_none_or(|(_, cur)| obj < *cur) {
                    best = Some(((a, b), obj));
                }
            }
        }
        best
    }

    #[test]
    fn example8_optimum_is_22_at_2_3() {
        let deps = example8_deps();
        let r = branch_and_bound((2, 5), &deps, (25, 10), 6).unwrap();
        assert_eq!(r.objective, Rational::from(22), "the paper's value");
        assert_eq!(r.row, (2, 3), "the paper's optimal leading row");
        assert!(r.nodes_pruned > 0, "bounding must actually prune");
    }

    #[test]
    fn agrees_with_exhaustive_scan() {
        let deps = example8_deps();
        for bound in [2i64, 4, 6, 8] {
            let bnb = branch_and_bound((2, 5), &deps, (25, 10), bound).unwrap();
            let (_, obj) = exhaustive((2, 5), &deps, (25, 10), bound).unwrap();
            assert_eq!(bnb.objective, obj, "bound {bound}");
        }
    }

    #[test]
    fn agrees_on_example7() {
        // Only an input dependence: every row is feasible; the kernel
        // direction (2,-3) gives objective 1.
        let nest =
            parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap();
        let deps = analyze(&nest);
        let r = branch_and_bound((2, -3), &deps, (20, 30), 4).unwrap();
        assert_eq!(r.objective, Rational::ONE);
        let (_, obj) = exhaustive((2, -3), &deps, (20, 30), 4).unwrap();
        assert_eq!(obj, Rational::ONE);
    }

    #[test]
    fn agrees_across_random_alphas() {
        let deps = example8_deps();
        for alpha in [(1i64, 3i64), (3, 1), (1, -2), (4, 7), (0, 1), (1, 0)] {
            let bnb = branch_and_bound(alpha, &deps, (25, 10), 5).unwrap();
            let (_, obj) = exhaustive(alpha, &deps, (25, 10), 5).unwrap();
            assert_eq!(bnb.objective, obj, "alpha {alpha:?}");
        }
    }

    #[test]
    fn pruning_is_effective() {
        let deps = example8_deps();
        let r = branch_and_bound((2, 5), &deps, (25, 10), 16).unwrap();
        // The full box has (2*16+1)^2 = 1089 points; with interior-node
        // overhead a no-prune search would explore ~2x that.
        assert!(
            r.nodes_explored < 1500,
            "explored {} nodes",
            r.nodes_explored
        );
        assert_eq!(r.objective, Rational::from(22));
    }
}
