//! Branch and bound for the §4.2 leading-row problem.
//!
//! The paper: *"We use either a branch and bound technique (or general
//! nonlinear programming techniques) to minimize this function; the number
//! of variables is linear in the number of nested loops which is usually
//! very small in practice (≤ 4) resulting in small solution times."*
//!
//! This module implements that search literally for 2-deep nests: minimize
//! the continuous objective `(maxspan)(|α₂a − α₁b|)` over integer leading
//! rows `(a, b)` subject to the tiling-legality half-planes `a·d₁ + b·d₂
//! ≥ 0`. Boxes of candidate rows are pruned by
//!
//! * **infeasibility** — a tiling constraint violated over the whole box;
//! * **bounding** — a lower bound on the objective over the box
//!   (`maxspan` shrinks as `|a|, |b|` grow; the weight `|α₂a − α₁b|` is
//!   linear, so its box minimum sits at a corner or at zero if the kernel
//!   line crosses the box).
//!
//! The exhaustive scan in [`crate::optimize`] serves as the reference
//! implementation; tests assert both find the same optimum.

use crate::mws::two_level_objective;
use loopmem_dep::cone::{constraining_distances, tileable_row_basis};
use loopmem_dep::legality::row_tileable;
use loopmem_dep::DependenceSet;
use loopmem_ir::{AnalysisError, Bounds, BoundsMethod, TripReason};
use loopmem_linalg::gcd::gcd_i64;
use loopmem_linalg::Rational;
use loopmem_obs::{EventKind, Phase, TraceEvent};
use loopmem_sim::{AnalysisBudget, BudgetTracker};

/// Outcome of the branch-and-bound search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BnbResult {
    /// The optimal leading row.
    pub row: (i64, i64),
    /// The continuous objective at the optimum (the paper's "22").
    pub objective: Rational,
    /// Boxes examined.
    pub nodes_explored: u64,
    /// Boxes pruned by bounding, infeasibility, or the cone certificate.
    pub nodes_pruned: u64,
    /// Boxes discarded by the dependence-cone certificate (LM0004's
    /// `tileable_row_basis` facts) before any window was evaluated; also
    /// counted in `nodes_pruned`.
    pub cone_pruned: u64,
    /// The primitive rank-1 direction when the cone certificate collapsed
    /// the search to a line (`None` for full-rank or empty cones) —
    /// exported into cone-prune certificates (see [`crate::cert`]).
    pub cone_direction: Option<(i64, i64)>,
    /// Every box the cone certificate discarded, as `(alo, ahi, blo, bhi)`
    /// — the evidence behind `cone_pruned`, re-checkable by interval
    /// division against `cone_direction`.
    pub pruned_boxes: Vec<(i64, i64, i64, i64)>,
}

#[derive(Clone, Copy, Debug)]
struct Box2 {
    alo: i64,
    ahi: i64,
    blo: i64,
    bhi: i64,
}

impl Box2 {
    fn is_point(&self) -> bool {
        self.alo == self.ahi && self.blo == self.bhi
    }

    fn split(&self) -> (Box2, Box2) {
        if self.ahi - self.alo >= self.bhi - self.blo {
            let mid = self.alo + (self.ahi - self.alo) / 2;
            (
                Box2 { ahi: mid, ..*self },
                Box2 {
                    alo: mid + 1,
                    ..*self
                },
            )
        } else {
            let mid = self.blo + (self.bhi - self.blo) / 2;
            (
                Box2 { bhi: mid, ..*self },
                Box2 {
                    blo: mid + 1,
                    ..*self
                },
            )
        }
    }
}

/// Minimizes the §4.2 objective over coprime, tiling-legal leading rows
/// with `|a|, |b| ≤ bound`. Returns `None` when no feasible row exists
/// (then not even `(1, 0)` is tileable, which cannot happen for distance
/// vectors of a sequentially valid loop).
///
/// # Panics
///
/// Panics if `bound <= 0` or extents are not positive.
pub fn branch_and_bound(
    alpha: (i64, i64),
    deps: &DependenceSet,
    extents: (i64, i64),
    bound: i64,
) -> Option<BnbResult> {
    assert!(bound > 0, "search bound must be positive");
    assert!(extents.0 > 0 && extents.1 > 0, "extents must be positive");
    let tracker = BudgetTracker::unlimited();
    bnb_impl(alpha, deps, extents, bound, &tracker)
        .unwrap_or_else(|_| unreachable!("unlimited budget tripped"))
}

/// Governed [`branch_and_bound`]: never panics and charges one search node
/// per box examined against `budget`
/// ([`AnalysisBudget::with_max_search_nodes`] and the deadline both
/// apply). Invalid arguments report [`AnalysisError::Invalid`] instead of
/// panicking. On a trip the `Exhausted` payload bounds the *objective*
/// (not an MWS): the best feasible value seen so far bounds it from above
/// (rounded up; `u64::MAX` when none was reached), zero always bounds it
/// from below.
pub fn try_branch_and_bound(
    alpha: (i64, i64),
    deps: &DependenceSet,
    extents: (i64, i64),
    bound: i64,
    budget: &AnalysisBudget,
) -> Result<Option<BnbResult>, AnalysisError> {
    if bound <= 0 {
        return Err(AnalysisError::Invalid {
            message: format!("search bound must be positive, got {bound}"),
        });
    }
    if extents.0 <= 0 || extents.1 <= 0 {
        return Err(AnalysisError::Invalid {
            message: format!("loop extents must be positive, got {extents:?}"),
        });
    }
    let tracker = BudgetTracker::new(budget);
    bnb_impl(alpha, deps, extents, bound, &tracker).map_err(|(reason, best)| {
        let upper = best
            .map(|obj| obj.ceil().clamp(0, i128::from(u64::MAX)) as u64)
            .unwrap_or(u64::MAX);
        AnalysisError::Exhausted {
            reason,
            partial: Bounds {
                lower: 0,
                upper,
                method: BoundsMethod::ClosedForm,
            },
        }
    })
}

/// Upper limit on the candidate-box point count for which the cone
/// certificate is computed. The certificate enumerates the whole
/// `(2·bound+1)²` coefficient box once up front (the scan exits early
/// only when the cone is full-rank), so it is computed only when even
/// the rank-deficient worst case is negligible next to the search it
/// prunes.
const CONE_CERT_MAX_POINTS: u128 = 1 << 17;

/// What the dependence cone proves about the search box, computed once
/// per search from the same constraining distance vectors the LM0004
/// lint reports ([`constraining_distances`] / [`tileable_row_basis`]).
/// Soundness requires the certificate and the search to use the *same*
/// box: a rank computed over a smaller box says nothing about rows
/// outside it (e.g. distances `(1, ∓3)` admit only multiples of `(1,0)`
/// inside `[-2,2]²`, yet `(3,1)` is tileable).
#[derive(Clone, Copy, Debug)]
enum ConeCert {
    /// The box admits a full-rank tileable family, or the certificate was
    /// declined (deep box, cost gate): no structural pruning available.
    FullRank,
    /// Every tileable row in the box is an integer multiple of this
    /// primitive direction: boxes whose integer points miss the line
    /// `t·(v₁, v₂)` (for some `t ≠ 0`) cannot contain a feasible row.
    Line(i64, i64),
    /// No tileable row exists anywhere in the box.
    Empty,
}

fn cone_certificate(deps: &DependenceSet, bound: i64) -> ConeCert {
    if constraining_distances(deps).is_empty() {
        // Nothing constrains: every nonzero row is tileable, rank 2.
        return ConeCert::FullRank;
    }
    let width = 2 * bound as u128 + 1;
    if width * width > CONE_CERT_MAX_POINTS {
        return ConeCert::FullRank; // declined: certificate too costly
    }
    match tileable_row_basis(deps, 2, bound) {
        Some(basis) if basis.is_empty() => ConeCert::Empty,
        Some(basis) if basis.len() == 1 => {
            let (a, b) = (basis[0][0], basis[0][1]);
            let g = gcd_i64(a, b); // ≥ 1: basis rows are nonzero
            ConeCert::Line(a / g, b / g)
        }
        _ => ConeCert::FullRank,
    }
}

/// Floor division for `b != 0`.
fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division for `b != 0`.
fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

/// `true` when no *nonzero* integer multiple of the primitive direction
/// `(v1, v2)` lies in the box: the rank-1 cone certificate then discards
/// the box outright. Intersects the integer solution ranges of
/// `t·v1 ∈ [alo, ahi]` and `t·v2 ∈ [blo, bhi]` (division only, so no
/// overflow near the `i64` limits).
fn box_misses_line(bx: &Box2, v1: i64, v2: i64) -> bool {
    let (mut tlo, mut thi) = (i64::MIN, i64::MAX);
    for (v, lo, hi) in [(v1, bx.alo, bx.ahi), (v2, bx.blo, bx.bhi)] {
        if v == 0 {
            // This coordinate of every multiple is 0; it must be inside.
            if lo > 0 || hi < 0 {
                return true;
            }
            continue;
        }
        let (a, b) = if v > 0 {
            (div_ceil(lo, v), div_floor(hi, v))
        } else {
            (div_ceil(hi, v), div_floor(lo, v))
        };
        tlo = tlo.max(a);
        thi = thi.min(b);
    }
    tlo > thi || (tlo, thi) == (0, 0)
}

/// The branch-and-bound loop, polling `tracker` once per popped box. A
/// trip returns the reason plus the best objective reached so far.
fn bnb_impl(
    alpha: (i64, i64),
    deps: &DependenceSet,
    extents: (i64, i64),
    bound: i64,
    tracker: &BudgetTracker,
) -> Result<Option<BnbResult>, (TripReason, Option<Rational>)> {
    let root = Box2 {
        alo: -bound,
        ahi: bound,
        blo: -bound,
        bhi: bound,
    };
    let cert = cone_certificate(deps, bound);
    let mut best: Option<((i64, i64), Rational)> = None;
    let mut explored = 0u64;
    let mut pruned = 0u64;
    let mut cone_pruned = 0u64;
    let mut pruned_boxes: Vec<(i64, i64, i64, i64)> = Vec::new();
    let mut stack = vec![root];
    while let Some(bx) = stack.pop() {
        if let Err(reason) = tracker.charge_search_nodes(1) {
            return Err((reason, best.map(|(_, obj)| obj)));
        }
        explored += 1;
        // Cone-certificate pruning: a box that provably contains no
        // tileable row (outside the proven rank-r row space) is discarded
        // before any bounding or window work.
        let off_cone = match cert {
            ConeCert::Empty => true,
            ConeCert::Line(v1, v2) => box_misses_line(&bx, v1, v2),
            ConeCert::FullRank => false,
        };
        if off_cone {
            pruned += 1;
            cone_pruned += 1;
            pruned_boxes.push((bx.alo, bx.ahi, bx.blo, bx.bhi));
            continue;
        }
        // Infeasibility pruning: a tiling half-plane violated everywhere.
        if box_infeasible(&bx, deps) {
            pruned += 1;
            continue;
        }
        // Bounding.
        if let Some((_, cur)) = &best {
            if objective_lower_bound(alpha, extents, &bx) >= *cur {
                pruned += 1;
                continue;
            }
        }
        if bx.is_point() {
            let (a, b) = (bx.alo, bx.blo);
            if (a, b) == (0, 0) || gcd_i64(a, b) != 1 || !row_tileable(&[a, b], deps) {
                continue;
            }
            let obj = two_level_objective(alpha, (a, b), extents);
            let better = best.as_ref().is_none_or(|(_, cur)| obj < *cur);
            if better {
                best = Some(((a, b), obj));
            }
        } else {
            let (l, r) = bx.split();
            stack.push(l);
            stack.push(r);
        }
    }
    // The search is a serial deterministic scan, so the node counts are
    // reproducible; emitted only on completion (a tripped search's
    // progress depends on where the budget landed).
    if let Some(sink) = tracker.trace() {
        sink.record(TraceEvent {
            phase: Phase::Search,
            nest: None,
            ord: (0, 1),
            thread: 0,
            kind: EventKind::ConePrune {
                boxes: cone_pruned,
                explored,
                pruned,
            },
        });
    }
    Ok(best.map(|(row, objective)| BnbResult {
        row,
        objective,
        nodes_explored: explored,
        nodes_pruned: pruned,
        cone_pruned,
        cone_direction: match cert {
            ConeCert::Line(v1, v2) => Some((v1, v2)),
            _ => None,
        },
        pruned_boxes,
    }))
}

/// `true` when some tiling constraint `a·d₁ + b·d₂ ≥ 0` is violated by
/// every point of the box (its maximum over the box — attained at a
/// corner of the linear form — is negative).
fn box_infeasible(bx: &Box2, deps: &DependenceSet) -> bool {
    deps.iter()
        .filter(|d| d.kind.constrains_legality())
        .any(|d| {
            let (d1, d2) = (d.distance[0], d.distance[1]);
            let corners = [
                bx.alo * d1 + bx.blo * d2,
                bx.alo * d1 + bx.bhi * d2,
                bx.ahi * d1 + bx.blo * d2,
                bx.ahi * d1 + bx.bhi * d2,
            ];
            corners.iter().all(|&c| c < 0)
        })
}

/// Lower bound of the objective over a box: the weight's box minimum
/// (corner minimum, or 0 when the kernel line `α₂a = α₁b` crosses the
/// box) times the maxspan at the largest coefficients. Weight 0 means a
/// window of 1, the global minimum of the objective.
fn objective_lower_bound(alpha: (i64, i64), extents: (i64, i64), bx: &Box2) -> Rational {
    let w = |a: i64, b: i64| (alpha.1 * a - alpha.0 * b).abs();
    let corners = [
        w(bx.alo, bx.blo),
        w(bx.alo, bx.bhi),
        w(bx.ahi, bx.blo),
        w(bx.ahi, bx.bhi),
    ];
    // Sign change of the (signed) linear form means 0 is attainable.
    let s = |a: i64, b: i64| alpha.1 * a - alpha.0 * b;
    let signs = [
        s(bx.alo, bx.blo),
        s(bx.alo, bx.bhi),
        s(bx.ahi, bx.blo),
        s(bx.ahi, bx.bhi),
    ];
    let min_w = if signs.iter().any(|&x| x >= 0) && signs.iter().any(|&x| x <= 0) {
        0
    } else {
        *corners.iter().min().expect("four corners")
    };
    if min_w == 0 {
        return Rational::ONE;
    }
    let max_abs_a = bx.alo.abs().max(bx.ahi.abs());
    let max_abs_b = bx.blo.abs().max(bx.bhi.abs());
    let (n1, n2) = extents;
    let s1 = (max_abs_b > 0).then(|| Rational::new((n1 - 1) as i128, max_abs_b as i128));
    let s2 = (max_abs_a > 0).then(|| Rational::new((n2 - 1) as i128, max_abs_a as i128));
    let span = match (s1, s2) {
        (Some(x), Some(y)) => x.min(y),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => return Rational::ONE, // the all-zero box: no row
    };
    (span + Rational::ONE) * Rational::from(min_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_dep::analyze;
    use loopmem_ir::parse;

    fn example8_deps() -> DependenceSet {
        analyze(
            &parse(
                "array X[200]\n\
                 for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
            )
            .unwrap(),
        )
    }

    /// Reference: exhaustive scan over the same space.
    fn exhaustive(
        alpha: (i64, i64),
        deps: &DependenceSet,
        extents: (i64, i64),
        bound: i64,
    ) -> Option<((i64, i64), Rational)> {
        let mut best: Option<((i64, i64), Rational)> = None;
        for a in -bound..=bound {
            for b in -bound..=bound {
                if (a, b) == (0, 0) || gcd_i64(a, b) != 1 || !row_tileable(&[a, b], deps) {
                    continue;
                }
                let obj = two_level_objective(alpha, (a, b), extents);
                if best.as_ref().is_none_or(|(_, cur)| obj < *cur) {
                    best = Some(((a, b), obj));
                }
            }
        }
        best
    }

    #[test]
    fn example8_optimum_is_22_at_2_3() {
        let deps = example8_deps();
        let r = branch_and_bound((2, 5), &deps, (25, 10), 6).unwrap();
        assert_eq!(r.objective, Rational::from(22), "the paper's value");
        assert_eq!(r.row, (2, 3), "the paper's optimal leading row");
        assert!(r.nodes_pruned > 0, "bounding must actually prune");
    }

    #[test]
    fn agrees_with_exhaustive_scan() {
        let deps = example8_deps();
        for bound in [2i64, 4, 6, 8] {
            let bnb = branch_and_bound((2, 5), &deps, (25, 10), bound).unwrap();
            let (_, obj) = exhaustive((2, 5), &deps, (25, 10), bound).unwrap();
            assert_eq!(bnb.objective, obj, "bound {bound}");
        }
    }

    #[test]
    fn agrees_on_example7() {
        // Only an input dependence: every row is feasible; the kernel
        // direction (2,-3) gives objective 1.
        let nest =
            parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap();
        let deps = analyze(&nest);
        let r = branch_and_bound((2, -3), &deps, (20, 30), 4).unwrap();
        assert_eq!(r.objective, Rational::ONE);
        let (_, obj) = exhaustive((2, -3), &deps, (20, 30), 4).unwrap();
        assert_eq!(obj, Rational::ONE);
    }

    #[test]
    fn agrees_across_random_alphas() {
        let deps = example8_deps();
        for alpha in [(1i64, 3i64), (3, 1), (1, -2), (4, 7), (0, 1), (1, 0)] {
            let bnb = branch_and_bound(alpha, &deps, (25, 10), 5).unwrap();
            let (_, obj) = exhaustive(alpha, &deps, (25, 10), 5).unwrap();
            assert_eq!(bnb.objective, obj, "alpha {alpha:?}");
        }
    }

    #[test]
    fn pruning_is_effective() {
        let deps = example8_deps();
        let r = branch_and_bound((2, 5), &deps, (25, 10), 16).unwrap();
        // The full box has (2*16+1)^2 = 1089 points; with interior-node
        // overhead a no-prune search would explore ~2x that.
        assert!(
            r.nodes_explored < 1500,
            "explored {} nodes",
            r.nodes_explored
        );
        assert_eq!(r.objective, Rational::from(22));
    }

    #[test]
    fn rank1_cone_collapses_the_search_to_a_line() {
        // Opposed skews: distances (1,-9) and (1,9) admit only multiples
        // of (1,0) inside [-8,8]², so the cone certificate is Line(1,0)
        // and every box off the a-axis line is discarded without
        // bounding work — while the optimum still matches the exhaustive
        // scan exactly.
        let nest = parse(
            "array A[100][100]\n\
             for i = 2 to 99 {\n\
               for j = 10 to 90 {\n\
                 A[i][j] = A[i-1][j+9] + A[i-1][j-9];\n\
               }\n\
             }",
        )
        .unwrap();
        let deps = analyze(&nest);
        let bound = 8;
        let r = branch_and_bound((1, 2), &deps, (98, 81), bound).unwrap();
        assert!(r.cone_pruned > 0, "certificate must fire: {r:?}");
        assert!(r.cone_pruned <= r.nodes_pruned);
        let (row, obj) = exhaustive((1, 2), &deps, (98, 81), bound).unwrap();
        assert_eq!(r.objective, obj);
        assert_eq!(r.row, row);
        // The only coprime rows on the certified line are ±(1,0).
        assert_eq!(r.row, (1, 0));
    }

    #[test]
    fn full_rank_cone_prunes_nothing_extra() {
        // Example 8's cone is full-rank, so the certificate must stay
        // inert and the node counts must match the pre-certificate search.
        let deps = example8_deps();
        let r = branch_and_bound((2, 5), &deps, (25, 10), 6).unwrap();
        assert_eq!(r.cone_pruned, 0);
    }

    /// Satellite: the cone-certificate pruning must never change the
    /// optimum on any repository kernel (2-deep nests; the §4.2 search
    /// family is two-level).
    #[test]
    fn cone_pruning_agrees_with_exhaustive_on_kernels() {
        let sources = [
            ("example6", include_str!("../../../kernels/example6.loop")),
            ("example8", include_str!("../../../kernels/example8.loop")),
            ("matmult", include_str!("../../../kernels/matmult.loop")),
            ("pipeline", include_str!("../../../kernels/pipeline.loop")),
            ("rasta_flt", include_str!("../../../kernels/rasta_flt.loop")),
            ("sor", include_str!("../../../kernels/sor.loop")),
        ];
        let mut checked = 0;
        for (name, src) in sources {
            let program =
                loopmem_ir::parse_program(src).unwrap_or_else(|e| panic!("{name}: {e:?}"));
            for nest in program.nests() {
                if nest.depth() != 2 {
                    continue;
                }
                let Some(vr) = nest.var_ranges() else {
                    continue;
                };
                let extents = (vr[0].1 - vr[0].0 + 1, vr[1].1 - vr[1].0 + 1);
                if extents.0 <= 1 || extents.1 <= 1 {
                    continue;
                }
                let deps = analyze(nest);
                for alpha in [(1i64, 0i64), (0, 1), (2, 5), (1, -2), (3, 1)] {
                    for bound in [3i64, 5] {
                        let bnb = branch_and_bound(alpha, &deps, extents, bound);
                        let ex = exhaustive(alpha, &deps, extents, bound);
                        match (&bnb, &ex) {
                            (Some(r), Some((_, obj))) => assert_eq!(
                                r.objective, *obj,
                                "{name} alpha {alpha:?} bound {bound}"
                            ),
                            (None, None) => {}
                            _ => panic!(
                                "{name} alpha {alpha:?} bound {bound}: bnb {bnb:?} vs exhaustive {ex:?}"
                            ),
                        }
                        checked += 1;
                    }
                }
            }
        }
        assert!(
            checked >= 30,
            "expected to exercise several kernels, got {checked}"
        );
    }
}
