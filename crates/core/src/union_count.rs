//! Exact distinct-access counting for full-rank uniformly generated
//! groups by inclusion–exclusion — our fix for the §3.1 formula's
//! higher-order overlap blindness.
//!
//! With a full-rank access matrix, each reference's element set is the
//! image of the iteration box shifted by `A⁻¹·c_k`; two references
//! overlap only if their shift difference is integral (otherwise their
//! lattices are disjoint). Within such a *lattice class* the union of `r`
//! shifted copies of a box is computed exactly by inclusion–exclusion:
//! every intersection of shifted boxes is itself a box, so each of the
//! `2^r − 1` terms is a closed-form volume. Example 3 — where the paper's
//! formula reports 139 — comes out at the true 121.

use crate::distinct::{DistinctEstimate, Method};
use loopmem_dep::uniform::UniformGroup;
use loopmem_dep::vectors::lex_positive;
use loopmem_linalg::hnf::solve_diophantine;

/// Exact distinct-element count of a full-rank uniformly generated group
/// over the rectangular iteration ranges, or `None` when the group's
/// access matrix is rank-deficient (use the null-space machinery instead)
/// or too many references would make inclusion–exclusion explode
/// (`r > 20`).
pub fn exact_union_count(g: &UniformGroup, ranges: &[(i64, i64)]) -> Option<DistinctEstimate> {
    let n = g.matrix.ncols();
    if g.matrix.rank() != n || g.len() > 20 {
        return None;
    }
    // Integer shifts relative to each lattice class representative.
    let offsets: Vec<&Vec<i64>> = g.members.iter().map(|(_, o, _)| o).collect();
    let shift = |a: usize, b: usize| -> Option<Vec<i64>> {
        let rhs: Vec<i64> = offsets[a]
            .iter()
            .zip(offsets[b])
            .map(|(&x, &y)| x - y)
            .collect();
        solve_diophantine(&g.matrix, &rhs).map(|s| s.particular)
    };

    // Partition references into lattice classes (disjoint element sets).
    let r = offsets.len();
    let mut class_of: Vec<Option<usize>> = vec![None; r];
    let mut classes: Vec<Vec<(usize, Vec<i64>)>> = Vec::new(); // (ref, shift vs rep)
    for k in 0..r {
        if class_of[k].is_some() {
            continue;
        }
        let cid = classes.len();
        class_of[k] = Some(cid);
        let mut members = vec![(k, vec![0i64; n])];
        #[allow(clippy::needless_range_loop)] // class_of is mutated while scanning
        for j in k + 1..r {
            if class_of[j].is_some() {
                continue;
            }
            if let Some(d) = shift(j, k) {
                class_of[j] = Some(cid);
                members.push((j, d));
            }
        }
        classes.push(members);
    }

    // Inclusion–exclusion within each class; classes are disjoint.
    let mut total: i64 = 0;
    for class in &classes {
        // Deduplicate identical shifts (identical element sets).
        let mut shifts: Vec<&Vec<i64>> = class.iter().map(|(_, d)| d).collect();
        shifts.sort();
        shifts.dedup();
        let m = shifts.len();
        debug_assert!(m <= 20);
        for mask in 1u32..(1 << m) {
            // Intersection of the selected shifted boxes: per dimension,
            // [max (lo + d), min (hi + d)].
            let mut vol: i64 = 1;
            for (dim, &(lo, hi)) in ranges.iter().enumerate() {
                let mut ilo = i64::MIN;
                let mut ihi = i64::MAX;
                for (bit, d) in shifts.iter().enumerate() {
                    if mask & (1 << bit) != 0 {
                        ilo = ilo.max(lo + d[dim]);
                        ihi = ihi.min(hi + d[dim]);
                    }
                }
                vol *= (ihi - ilo + 1).max(0);
                if vol == 0 {
                    break;
                }
            }
            if mask.count_ones() % 2 == 1 {
                total += vol;
            } else {
                total -= vol;
            }
        }
    }
    let _ = lex_positive; // (kept for symmetry with the §3.1 module)
    Some(DistinctEstimate {
        lower: total,
        upper: total,
        method: Method::InclusionExclusion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_dep::uniform::uniform_groups;
    use loopmem_ir::{parse, ArrayId};
    use loopmem_poly::count::distinct_accesses_for;

    fn group_of(src: &str) -> (loopmem_ir::LoopNest, UniformGroup) {
        let nest = parse(src).expect("test source parses");
        let g = uniform_groups(&nest).into_iter().next().expect("one group");
        (nest, g)
    }

    #[test]
    fn example3_true_union_is_121() {
        let (nest, g) = group_of(
            "array A[11][11]\nfor i = 1 to 10 { for j = 1 to 10 {\
               A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1]; } }",
        );
        let e = exact_union_count(&g, &[(1, 10), (1, 10)]).unwrap();
        assert_eq!(e.value(), Some(121), "the paper's formula says 139");
        assert_eq!(
            distinct_accesses_for(&nest, ArrayId(0)),
            121,
            "enumeration agrees"
        );
    }

    #[test]
    fn pairwise_case_matches_paper_formula() {
        // r = 2 has no higher-order terms: IE == the §3.1 formula.
        let (nest, g) = group_of(
            "array A[30][30]\nfor i = 1 to 25 { for j = 1 to 20 { A[i][j] = A[i-1][j+2]; } }",
        );
        let e = exact_union_count(&g, &[(1, 25), (1, 20)]).unwrap();
        assert_eq!(e.value(), Some(2 * 500 - 24 * 18));
        assert_eq!(
            e.value().unwrap() as u64,
            distinct_accesses_for(&nest, ArrayId(0))
        );
    }

    #[test]
    fn disjoint_lattice_classes_sum() {
        // A[2i][j] and A[2i+1][j]: two classes, no overlap.
        let (nest, g) = group_of(
            "array A[25][12]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i][j] = A[2i+1][j]; } }",
        );
        let e = exact_union_count(&g, &[(1, 10), (1, 10)]).unwrap();
        assert_eq!(e.value(), Some(200));
        assert_eq!(distinct_accesses_for(&nest, ArrayId(0)), 200);
    }

    #[test]
    fn identical_offsets_dedupe() {
        let (_, g) = group_of(
            "array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i][j] + 1; } }",
        );
        let e = exact_union_count(&g, &[(1, 10), (1, 10)]).unwrap();
        assert_eq!(e.value(), Some(100));
    }

    #[test]
    fn rank_deficient_is_rejected() {
        let (_, g) =
            group_of("array A[200]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }");
        assert!(exact_union_count(&g, &[(1, 20), (1, 10)]).is_none());
    }

    #[test]
    fn random_stencils_match_enumeration() {
        // A handful of irregular multi-reference stencils: IE must equal
        // enumeration exactly.
        for (o1, o2, o3, o4, o5, o6) in [
            (0i64, 0i64, -2i64, 1i64, 1i64, -3i64),
            (1, 1, -1, -1, 2, 2),
            (0, 3, 3, 0, -3, -3),
            (2, 0, 0, 2, -2, 0),
        ] {
            let src = format!(
                "array A[40][40]\nfor i = 1 to 12 {{ for j = 1 to 12 {{ \
                 A[i + 10][j + 10] = A[i + {a}][j + {b}] + A[i + {c}][j + {d}]; }} }}",
                a = o1 + 10,
                b = o2 + 10,
                c = o3 + 10,
                d = o4 + 10,
            );
            let _ = (o5, o6);
            let nest = parse(&src).unwrap();
            let g = uniform_groups(&nest).into_iter().next().unwrap();
            let e = exact_union_count(&g, &[(1, 12), (1, 12)]).unwrap();
            assert_eq!(
                e.value().unwrap() as u64,
                distinct_accesses_for(&nest, ArrayId(0)),
                "{src}"
            );
        }
    }
}
