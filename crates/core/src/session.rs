//! The unified front door: one builder carrying every cross-cutting
//! concern — worker threads, analysis budget, fault injection, trace
//! sink, certificate emission — into every analysis entry point.
//!
//! Prior to this module the workspace's public surface had sprawled into
//! ~28 `simulate` / `try_*` / `*_with_threads` / `*_tracked` permutations
//! across `loopmem-sim` and `loopmem-core`; threading one more concern (a
//! [`TraceSink`]) through that zoo was the forcing function to collapse
//! it. A [`Session`] is built once and reused across calls; each legacy
//! entry point is now a thin wrapper over the equivalent `Session` call
//! (pinned bit-identical by the facade's `session_equivalence` tests),
//! kept for source compatibility.
//!
//! ```
//! use loopmem_core::Session;
//! use loopmem_sim::AnalysisBudget;
//!
//! let nest = loopmem_ir::parse(r#"
//!     array X[200]
//!     for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }
//! "#).unwrap();
//!
//! let session = Session::new()
//!     .threads(2)
//!     .budget(AnalysisBudget::unlimited().with_max_iterations(100_000));
//! let sim = session.simulate(&nest).unwrap();
//! let opt = session.optimize(&nest).unwrap();
//! assert_eq!(opt.mws_before, sim.mws_total);
//! assert!(opt.mws_after <= opt.mws_before);
//! ```

use crate::optimize::{try_minimize_mws_tracked, Optimization, SearchMode};
use crate::program_opt::{governed_optimize_program, GovernedProgramOptimization};
use crate::scratchpad::{
    fusion_step_events, scratchpad_with_fusion, try_scratchpad_program_tracked, GovernedScratchpad,
    ScratchpadPlan,
};
use loopmem_ir::{AnalysisError, Bounds, LoopNest, Program};
use loopmem_obs::TraceSink;
use loopmem_sim::{
    try_simulate_program_with_threads, try_simulate_with_threads, AnalysisBudget, BudgetTracker,
    FaultPlan, GovernedProgramSim, SimResult,
};
use loopmem_verify::Certificate;
use std::sync::Arc;

/// A reusable, cloneable bundle of analysis configuration: thread count,
/// budget (with optional fault plan and trace sink), search mode, and
/// certificate emission. See the [module docs](self) for the rationale
/// and an example.
///
/// Every method is governed: it respects the configured
/// [`AnalysisBudget`], never panics, and returns the same typed results
/// as the legacy `try_*` entry points it replaces. The default session
/// (`Session::new()`) carries an unlimited budget, so it matches the
/// legacy ungoverned functions bit-for-bit on everything they report —
/// except the optimizer's `cache_hits`, which is 0 on governed paths by
/// contract.
#[derive(Clone, Debug, Default)]
pub struct Session {
    threads: Option<usize>,
    budget: AnalysisBudget,
    mode: SearchMode,
    certify: bool,
}

impl Session {
    /// A session with auto thread count, unlimited budget, the default
    /// compound search mode, and certification off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker-thread count (clamped to at least 1). Every result
    /// is bit-identical for every thread count; unset means
    /// [`loopmem_sim::thread_count`].
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Replaces the whole analysis budget (including any fault plan or
    /// trace sink set earlier — set those after the budget).
    pub fn budget(mut self, budget: AnalysisBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Injects a deterministic fault plan into the budget (see
    /// [`FaultPlan`]).
    pub fn fault_plan(self, plan: Arc<FaultPlan>) -> Self {
        Self {
            budget: self.budget.with_fault_plan(plan),
            ..self
        }
    }

    /// Attaches a trace sink; every governed call narrates its phases,
    /// polls, chunk commits, memo probes, prunes, faults, sizing terms
    /// and fusion steps into it. A disabled sink (e.g.
    /// [`loopmem_obs::NullSink`]) keeps the zero-cost fast paths.
    pub fn trace(self, sink: Arc<dyn TraceSink>) -> Self {
        Self {
            budget: self.budget.with_trace(sink),
            ..self
        }
    }

    /// Selects the transformation search mode used by [`optimize`]
    /// (`Session::optimize`) and [`optimize_program`]
    /// (`Session::optimize_program`).
    pub fn search_mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// When on *and* a trace sink is attached, every answer additionally
    /// emits its proof-carrying certificates (see [`crate::cert`]) as
    /// `certificate` trace events. To obtain certificate payloads for the
    /// independent checker, call the `certify_*` functions directly.
    pub fn certify(mut self, on: bool) -> Self {
        self.certify = on;
        self
    }

    /// The session's budget, exactly as the governed calls consume it.
    pub fn analysis_budget(&self) -> &AnalysisBudget {
        &self.budget
    }

    fn thread_count(&self) -> usize {
        self.threads.unwrap_or_else(loopmem_sim::thread_count)
    }

    fn wants_certs(&self) -> bool {
        self.certify && self.budget.trace().is_some()
    }

    fn emit_certs(&self, certs: &[Certificate]) {
        if let Some(sink) = self.budget.trace() {
            crate::cert::trace_certificates(sink, certs);
        }
    }

    /// Governed exact simulation of one nest (legacy:
    /// `loopmem_sim::try_simulate_with_threads`).
    ///
    /// # Errors
    ///
    /// A budget trip degrades to [`AnalysisError::Exhausted`] with
    /// salvaged or analytic bounds; contained panics surface as
    /// [`AnalysisError::NestPanicked`].
    pub fn simulate(&self, nest: &LoopNest) -> Result<SimResult, AnalysisError> {
        let sim = try_simulate_with_threads(nest, false, self.thread_count(), &self.budget)?;
        if self.wants_certs() {
            let bounds = Bounds::exact(sim.mws_total);
            self.emit_certs(&[crate::cert::certify_bounds(
                Some(0),
                "nest-mws",
                &bounds,
                "exact simulation",
            )]);
        }
        Ok(sim)
    }

    /// Governed whole-program simulation (legacy:
    /// `loopmem_sim::try_simulate_program_with_threads`). Per-nest
    /// failures degrade inside the result; see [`GovernedProgramSim`].
    ///
    /// # Errors
    ///
    /// Whole-program failures only (e.g. the global table fold exceeding
    /// the budget's table cap).
    pub fn simulate_program(&self, program: &Program) -> Result<GovernedProgramSim, AnalysisError> {
        try_simulate_program_with_threads(program, self.thread_count(), &self.budget)
    }

    /// Governed §4 transformation search on one nest (legacy:
    /// [`crate::optimize::try_minimize_mws_with_threads`]).
    ///
    /// # Errors
    ///
    /// See [`crate::optimize::try_minimize_mws_with_threads`].
    pub fn optimize(&self, nest: &LoopNest) -> Result<Optimization, AnalysisError> {
        let tracker = BudgetTracker::new(&self.budget);
        let opt = try_minimize_mws_tracked(
            0,
            nest,
            self.mode,
            self.thread_count(),
            &tracker,
            &self.budget,
        )?;
        if self.wants_certs() {
            self.emit_certs(&crate::cert::certify_optimization(0, nest, &opt));
        }
        Ok(opt)
    }

    /// Governed program-wide optimization (legacy:
    /// [`crate::program_opt::try_optimize_program_with_threads`]).
    ///
    /// # Errors
    ///
    /// See [`crate::program_opt::try_optimize_program_with_threads`].
    pub fn optimize_program(
        &self,
        program: &Program,
    ) -> Result<GovernedProgramOptimization, AnalysisError> {
        governed_optimize_program(program, self.mode, self.thread_count(), &self.budget)
    }

    /// Governed shared-scratchpad sizing without the fusion search
    /// (legacy: [`crate::scratchpad::try_scratchpad_program_with_threads`]).
    ///
    /// # Errors
    ///
    /// See [`crate::scratchpad::try_scratchpad_program`].
    pub fn scratchpad_sizing(
        &self,
        program: &Program,
    ) -> Result<GovernedScratchpad, AnalysisError> {
        let tracker = BudgetTracker::new(&self.budget);
        let governed = try_scratchpad_program_tracked(
            program,
            self.thread_count(),
            &tracker,
            self.budget.max_table_bytes(),
        )?;
        if self.wants_certs() {
            self.emit_certs(&crate::cert::certify_governed_scratchpad(&governed));
        }
        Ok(governed)
    }

    /// Governed scratchpad sizing plus the greedy fusion search (legacy:
    /// [`crate::scratchpad::try_scratchpad_with_fusion`]). The search
    /// runs only when the baseline sizing is exact; on a degraded
    /// baseline the plan is `None` and the interval stands alone.
    ///
    /// # Errors
    ///
    /// See [`crate::scratchpad::try_scratchpad_program`].
    pub fn scratchpad(
        &self,
        program: &Program,
    ) -> Result<(GovernedScratchpad, Option<ScratchpadPlan>), AnalysisError> {
        let baseline = self.scratchpad_sizing(program)?;
        let plan = baseline
            .all_exact()
            .then(|| scratchpad_with_fusion(program, self.thread_count()));
        if let (Some(sink), Some(plan)) = (self.budget.trace(), plan.as_ref()) {
            sink.record_all(fusion_step_events(&plan.steps));
        }
        if self.wants_certs() {
            if let Some(plan) = plan.as_ref() {
                self.emit_certs(&[crate::cert::certify_fusion(plan)]);
            }
        }
        Ok((baseline, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::{parse, parse_program};
    use loopmem_obs::CollectingSink;

    const EXAMPLE8: &str = "array X[200]\n\
        for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }";

    #[test]
    fn default_session_simulates_exactly() {
        let nest = parse(EXAMPLE8).unwrap();
        let sim = Session::new().simulate(&nest).unwrap();
        assert_eq!(sim.mws_total, 44);
    }

    #[test]
    fn certify_with_trace_emits_certificate_events() {
        let nest = parse(EXAMPLE8).unwrap();
        let sink = Arc::new(CollectingSink::new());
        let session = Session::new()
            .threads(1)
            .budget(AnalysisBudget::unlimited().with_max_iterations(100_000))
            .trace(sink.clone())
            .certify(true);
        session.optimize(&nest).unwrap();
        let report = sink.drain();
        assert!(
            report.counters.certificates >= 3,
            "optimization certifies legality + optimality + bounds, got {}",
            report.counters.certificates
        );
    }

    #[test]
    fn certify_without_sink_is_inert() {
        let nest = parse(EXAMPLE8).unwrap();
        let with = Session::new().certify(true).optimize(&nest).unwrap();
        let without = Session::new().optimize(&nest).unwrap();
        assert_eq!(with.transform, without.transform);
        assert_eq!(with.mws_after, without.mws_after);
    }

    #[test]
    fn session_scratchpad_matches_fusion_search() {
        let program = parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let (baseline, plan) = Session::new().threads(1).scratchpad(&program).unwrap();
        assert!(baseline.all_exact());
        let plan = plan.expect("exact baseline runs the fusion search");
        assert!(plan.fused.words < plan.unfused.words);
    }
}
