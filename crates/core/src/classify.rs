//! Static classification of which §3 estimator applies to each array.
//!
//! [`crate::estimate_distinct`] *runs* an estimate (falling back to exact
//! enumeration, whose cost grows with the iteration count). This module
//! answers the cheaper, purely structural question the static analyzer
//! asks first: *which* formula would apply, and what reuse structure makes
//! it apply — without enumerating anything. The classification mirrors the
//! dispatch in `estimate_impl` exactly, so `loopmem check` can explain a
//! nest's analysis path (and the sanitizer can skip knowingly-approximate
//! paths) in time polynomial in the nest description.

use loopmem_dep::uniform::{uniform_groups, UniformGroup};
use loopmem_ir::{ArrayId, LoopNest};
use loopmem_linalg::integer_nullspace;

/// Which distinct-access estimation path applies to one array (§3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FormulaClass {
    /// §3.1: access matrix has full rank `d = n`; the closed form
    /// `r·ΠN_k − Σ reuse` applies (exact for `r ≤ 2`, the paper's
    /// over-counting approximation for `r > 2`).
    FullRank,
    /// §3.2: rank `n − 1` with a one-dimensional integer null space;
    /// reuse flows along the stored primitive null-space vector and
    /// `A_d = ΠN_k − Π(N_k − |v_k|)` is exact.
    Nullspace,
    /// Our separable-product extension: kernel dimension ≥ 2 but the
    /// subscript rows read pairwise-disjoint loop variables, so the count
    /// is an exact product of per-row counts.
    Separable,
    /// §3.2 / Example 6: references are not uniformly generated; only
    /// value-range *bounds* exist, no exact closed form.
    NonUniformBounds,
    /// Outside every closed form (multi-offset rank-deficient groups,
    /// entangled kernels): the estimator would enumerate exactly.
    Enumerated,
    /// The nest is not rectangular (e.g. post-transformation triangular
    /// bounds); every estimate enumerates.
    NonRectangular,
}

/// Structural facts about one array's reference set, enough for the
/// analyzer to explain (and the sanitizer to trust or skip) the estimate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayClassification {
    /// Which array.
    pub array: ArrayId,
    /// Which estimation path applies.
    pub class: FormulaClass,
    /// Rank of the (first group's) access matrix.
    pub rank: usize,
    /// Nest depth `n` (the rank ceiling).
    pub depth: usize,
    /// Primitive integer null-space basis of the (first group's) access
    /// matrix; empty when full-rank or when no single group exists.
    pub kernel: Vec<Vec<i64>>,
    /// Number of uniformly generated groups referencing the array.
    pub group_count: usize,
    /// Total references to the array across all groups.
    pub ref_count: usize,
}

impl ArrayClassification {
    /// `true` when the §3 closed form for this array is exact (never
    /// over-counts): single full-rank reference, any `r ≤ 2` full-rank
    /// group, the null-space form, or the separable product.
    pub fn closed_form_is_exact(&self) -> bool {
        match self.class {
            FormulaClass::FullRank => self.ref_count <= 2,
            FormulaClass::Nullspace | FormulaClass::Separable => true,
            _ => false,
        }
    }
}

/// Classifies every *referenced* array of the nest (declared-but-unused
/// arrays are omitted, as in [`crate::estimate_distinct`]). Deterministic
/// and polynomial in the nest description; never enumerates iterations.
pub fn classify_formulas(nest: &LoopNest) -> Vec<ArrayClassification> {
    let rect = nest.rectangular_ranges();
    let groups = uniform_groups(nest);
    let mut out = Vec::new();
    for (a, _) in nest.arrays().iter().enumerate() {
        let id = ArrayId(a);
        let my: Vec<&UniformGroup> = groups.iter().filter(|g| g.array == id).collect();
        let Some(first) = my.first() else {
            continue; // never referenced
        };
        let rank = first.matrix.rank();
        let kernel = if my.len() == 1 {
            integer_nullspace(&first.matrix)
        } else {
            Vec::new()
        };
        let ref_count = my.iter().map(|g| g.len()).sum();
        let class = if rect.is_none() {
            FormulaClass::NonRectangular
        } else if my.len() > 1 {
            FormulaClass::NonUniformBounds
        } else {
            classify_single_group(first, nest.depth(), &kernel)
        };
        out.push(ArrayClassification {
            array: id,
            class,
            rank,
            depth: nest.depth(),
            kernel,
            group_count: my.len(),
            ref_count,
        });
    }
    out
}

/// Mirrors `estimate_single_group`'s dispatch without running it.
fn classify_single_group(g: &UniformGroup, depth: usize, kernel: &[Vec<i64>]) -> FormulaClass {
    if g.matrix.rank() == depth {
        return FormulaClass::FullRank;
    }
    let mut offsets: Vec<&Vec<i64>> = g.members.iter().map(|(_, o, _)| o).collect();
    offsets.sort();
    offsets.dedup();
    if offsets.len() > 1 {
        return FormulaClass::Enumerated;
    }
    if kernel.len() == 1 {
        return FormulaClass::Nullspace;
    }
    // Kernel dimension ≥ 2: separable iff no loop variable feeds two
    // subscript rows (the `separable_product` precondition).
    let d = g.matrix.nrows();
    let n = g.matrix.ncols();
    let disjoint = (0..n).all(|col| (0..d).filter(|&row| g.matrix[(row, col)] != 0).count() <= 1);
    if disjoint {
        FormulaClass::Separable
    } else {
        FormulaClass::Enumerated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distinct::{estimate_distinct, Method};
    use loopmem_ir::parse;

    fn class_of(src: &str) -> ArrayClassification {
        classify_formulas(&parse(src).unwrap())
            .into_iter()
            .next()
            .unwrap()
    }

    #[test]
    fn example2_is_full_rank() {
        let c = class_of(
            "array A[30][30]\nfor i = 1 to 25 { for j = 1 to 20 { A[i][j] = A[i-1][j+2]; } }",
        );
        assert_eq!(c.class, FormulaClass::FullRank);
        assert_eq!((c.rank, c.depth, c.ref_count), (2, 2, 2));
        assert!(c.kernel.is_empty());
        assert!(c.closed_form_is_exact());
    }

    #[test]
    fn example4_nullspace_vector_is_named() {
        let c = class_of("array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }");
        assert_eq!(c.class, FormulaClass::Nullspace);
        assert_eq!(c.kernel, vec![vec![5, -2]]);
        assert!(c.closed_form_is_exact());
    }

    #[test]
    fn example6_is_non_uniform() {
        let c = class_of(
            "array A[200]\nfor i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        );
        assert_eq!(c.class, FormulaClass::NonUniformBounds);
        assert_eq!(c.group_count, 2);
        assert!(!c.closed_form_is_exact());
    }

    #[test]
    fn three_ref_full_rank_is_flagged_approximate() {
        // Example 3: the paper's 139 vs the true 121 — exactness lost.
        let c = class_of(
            "array A[11][11]\nfor i = 1 to 10 { for j = 1 to 10 {\n\
             A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1];\n} }",
        );
        assert_eq!(c.class, FormulaClass::FullRank);
        assert_eq!(c.ref_count, 4); // write + three reads
        assert!(!c.closed_form_is_exact());
    }

    #[test]
    fn classification_matches_estimator_method() {
        // The classes must mirror what estimate_distinct actually does.
        let cases = [
            (
                "array A[10][20]\nfor i = 1 to 10 { for j = 1 to 20 { A[i][j]; } }",
                Method::FullRankFormula,
                FormulaClass::FullRank,
            ),
            (
                "array A[61][51]\nfor i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
                Method::NullspaceFormula,
                FormulaClass::Nullspace,
            ),
            (
                "array R[40][40]\nfor cy = 1 to 3 { for cx = 1 to 3 { for py = 1 to 16 { for px = 1 to 16 {\nR[8*cy + py][8*cx + px];\n} } } }",
                Method::SeparableProduct,
                FormulaClass::Separable,
            ),
            (
                "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
                Method::Enumerated,
                FormulaClass::Enumerated,
            ),
            (
                "array A[10][10]\nfor i = 1 to 10 { for j = i to 10 { A[i][j]; } }",
                Method::Enumerated,
                FormulaClass::NonRectangular,
            ),
        ];
        for (src, method, class) in cases {
            let nest = parse(src).unwrap();
            let est = estimate_distinct(&nest);
            let c = classify_formulas(&nest).into_iter().next().unwrap();
            assert_eq!(est[&c.array].method, method, "{src}");
            assert_eq!(c.class, class, "{src}");
        }
    }

    #[test]
    fn unreferenced_arrays_are_omitted() {
        let nest = parse("array A[10]\narray B[10]\nfor i = 1 to 10 { A[i]; }").unwrap();
        let cs = classify_formulas(&nest);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].array, ArrayId(0));
    }
}
