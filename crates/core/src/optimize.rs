//! Window-minimizing transformation search (§4 of the paper).
//!
//! The optimizer looks for a legal unimodular transformation that minimizes
//! the maximum window size. Three search modes reproduce the paper's
//! comparison:
//!
//! * [`SearchMode::Compound`] — the paper's technique. For 2-deep nests it
//!   enumerates coprime leading rows `(a, b)` inside a coefficient bound
//!   (the integer equivalent of §4.2's branch and bound: the objective is
//!   evaluated exactly on every feasible point), keeps the rows that admit
//!   a tileable unimodular completion, ranks completions by the closed-form
//!   objective, and re-evaluates the best few *exactly* with the simulator.
//!   Deeper nests combine signed permutations with §4.3's access-matrix
//!   completions.
//! * [`SearchMode::InterchangeReversal`] — the Eisenbeis et al. baseline:
//!   only signed permutation matrices (interchange + reversal).
//! * [`SearchMode::LiPingali`] — the Li–Pingali baseline: the leading rows
//!   come from the data access matrix (± sign); when no legal completion
//!   exists the search *fails*, reproducing the paper's Example 8 claim.

use crate::mws::{lex_delay_estimate, two_level_estimate};
use crate::transform::{apply_transform, TransformError};
use loopmem_dep::legality::{is_legal, is_tileable, row_tileable};
use loopmem_dep::uniform::uniform_groups;
use loopmem_dep::{analyze, DependenceSet};
use loopmem_ir::LoopNest;
use loopmem_ir::{AnalysisError, TripReason};
use loopmem_linalg::gcd::{extended_gcd, gcd_i64};
use loopmem_linalg::{complete_unimodular_rows, IMat};
use loopmem_obs::{EventKind, Phase, TraceEvent, TraceSink};
use loopmem_sim::{
    panic_message, simulate_with_threads, try_simulate_tracked, AnalysisBudget, BudgetTracker,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which transformation space to search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchMode {
    /// The paper's compound-transformation search.
    Compound {
        /// Bound on `|a|, |b|` (and completion coefficients) for 2-deep
        /// nests. 6 covers every kernel in the paper.
        max_coeff: i64,
        /// How many top-ranked candidates to re-evaluate exactly with the
        /// simulator.
        simulate_top: usize,
    },
    /// Interchange + reversal only (Eisenbeis et al. baseline).
    InterchangeReversal,
    /// Li–Pingali access-matrix completion baseline.
    LiPingali,
}

impl Default for SearchMode {
    fn default() -> Self {
        SearchMode::Compound {
            max_coeff: 6,
            simulate_top: 12,
        }
    }
}

/// Why no transformation was produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OptimizeError {
    /// The mode's candidate space contains no legal transformation
    /// (Li–Pingali on Example 8).
    NoLegalTransform,
    /// A candidate could not be applied.
    Transform(TransformError),
}

impl fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeError::NoLegalTransform => {
                write!(f, "no legal transformation in the search space")
            }
            OptimizeError::Transform(e) => write!(f, "transformation failed: {e}"),
        }
    }
}

impl Error for OptimizeError {}

impl From<TransformError> for OptimizeError {
    fn from(e: TransformError) -> Self {
        OptimizeError::Transform(e)
    }
}

/// A successful optimization.
#[derive(Clone, Debug)]
pub struct Optimization {
    /// The chosen unimodular transformation.
    pub transform: IMat,
    /// The transformed nest.
    pub transformed: LoopNest,
    /// Exact MWS of the original nest.
    pub mws_before: u64,
    /// Exact MWS of the transformed nest.
    pub mws_after: u64,
    /// Number of legal candidates the search considered.
    pub candidates_considered: usize,
    /// How many candidate simulations this search served from the
    /// process-wide memo table instead of re-simulating.
    pub cache_hits: usize,
    /// Every candidate the search exactly simulated, as
    /// `(transform, exact MWS)` pairs in candidate-rank order — the
    /// evidence frontier behind the winner's minimality claim, exported
    /// into optimality certificates (see [`crate::cert`]).
    pub evaluated: Vec<(IMat, u64)>,
}

// ------------------------------------------------------------------ memo --

/// Process-wide memo of exact simulation results, keyed by the canonical
/// printed form of the nest. Different candidate matrices frequently
/// produce the *same* transformed nest (and every search re-simulates the
/// identity), so repeated and multi-mode searches hit this table hard.
struct Memo {
    map: Mutex<HashMap<String, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| Memo {
        map: Mutex::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

/// `(hits, misses)` of the process-wide simulation memo since startup.
pub fn memo_stats() -> (u64, u64) {
    let m = memo();
    (
        m.hits.load(Ordering::Relaxed),
        m.misses.load(Ordering::Relaxed),
    )
}

/// Exact MWS of a nest, served from (and recorded in) the process-wide
/// simulation memo. The key is the *canonical* nest form — loop-variable
/// names are erased — so batch analyses of programs that repeat a kernel
/// under different variable names simulate it exactly once.
pub fn nest_mws_memoized(nest: &LoopNest) -> u64 {
    memoized_mws(nest).0
}

/// Canonical memo key: everything the simulator observes — array decls,
/// bound pieces, reference matrices/offsets — but *not* loop-variable
/// names, so a nest and its identity transform (which renames `i, j` to
/// `t1, t2`) key identically.
fn canonical_key(nest: &LoopNest) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for a in nest.arrays() {
        let _ = write!(s, "A{}:{:?};", a.name, a.dims);
    }
    for l in nest.loops() {
        s.push('L');
        for p in l.lower.pieces() {
            let _ = write!(
                s,
                "l{:?}+{}/{};",
                p.expr.coeffs(),
                p.expr.constant_term(),
                p.div
            );
        }
        for p in l.upper.pieces() {
            let _ = write!(
                s,
                "u{:?}+{}/{};",
                p.expr.coeffs(),
                p.expr.constant_term(),
                p.div
            );
        }
    }
    for st in nest.statements() {
        for r in st.refs() {
            let _ = write!(s, "R{}:{:?}:", r.array.0, r.kind);
            for d in 0..r.rank() {
                let _ = write!(s, "{:?}+{};", r.matrix.row(d), r.offset[d]);
            }
        }
    }
    s
}

/// Memoized exact MWS of a nest; `true` when served from the table.
/// Simulations run single-threaded — the optimizer parallelizes over
/// candidates, so nesting parallel sweeps would only oversubscribe.
fn memoized_mws(nest: &LoopNest) -> (u64, bool) {
    let m = memo();
    let key = canonical_key(nest);
    if let Some(&v) = m.map.lock().expect("memo poisoned").get(&key) {
        m.hits.fetch_add(1, Ordering::Relaxed);
        return (v, true);
    }
    let v = simulate_with_threads(nest, false, 1).mws_total;
    m.misses.fetch_add(1, Ordering::Relaxed);
    m.map.lock().expect("memo poisoned").insert(key, v);
    (v, false)
}

/// Serial [`minimize_mws`] that narrates the search into `sink`: one
/// `memo-lookup` event per exact-simulation probe of the process-wide
/// memo (the baseline probe first, then candidates in rank order),
/// bracketed by a `search` span charging the candidate count. Runs
/// single-threaded so the event order *is* the serial scan order. Falls
/// back to the plain serial search when `sink` is disabled (the
/// zero-cost contract).
///
/// Hit/miss flags reflect the process-wide memo's state, so they depend
/// on what ran earlier in the process; the event *structure* (count,
/// order) is deterministic for a given nest and mode.
///
/// # Errors
///
/// Same as [`minimize_mws`].
pub fn minimize_mws_traced(
    nest: &LoopNest,
    mode: SearchMode,
    sink: &Arc<dyn TraceSink>,
) -> Result<Optimization, OptimizeError> {
    if !sink.enabled() {
        return minimize_mws_with_threads(nest, mode, 1);
    }
    let started = std::time::Instant::now();
    let deps = analyze(nest);
    let candidates = generate_candidates(nest, &deps, mode);
    if candidates.is_empty() {
        return Err(OptimizeError::NoLegalTransform);
    }
    let mut events = vec![TraceEvent {
        phase: Phase::Search,
        nest: None,
        ord: (0, 0),
        thread: 0,
        kind: EventKind::SpanBegin { label: "search" },
    }];
    let mut seq = 0u64;
    let mut probe = |events: &mut Vec<TraceEvent>, hit: bool| {
        seq += 1;
        events.push(TraceEvent {
            phase: Phase::Search,
            nest: None,
            ord: (seq, 0),
            thread: 0,
            kind: EventKind::MemoLookup { hit },
        });
    };
    let mut hits = 0usize;
    let (mws_before, before_hit) = memoized_mws(nest);
    probe(&mut events, before_hit);
    if before_hit {
        hits += 1;
    }
    let considered = candidates.len();
    let mut by_rank: Vec<(usize, u64)> = Vec::with_capacity(considered);
    for (rank, t) in candidates.iter().enumerate() {
        let out = apply_transform(nest, t)?;
        let (mws, hit) = memoized_mws(&out);
        probe(&mut events, hit);
        if hit {
            hits += 1;
        }
        by_rank.push((rank, mws));
    }
    let (mws_after, rank) = by_rank
        .iter()
        .map(|&(rank, mws)| (mws, rank))
        .min()
        .expect("candidates were non-empty");
    let evaluated: Vec<(IMat, u64)> = by_rank
        .into_iter()
        .map(|(rank, mws)| (candidates[rank].clone(), mws))
        .collect();
    let transform = candidates.into_iter().nth(rank).expect("rank is in range");
    let transformed = apply_transform(nest, &transform)?;
    events.push(TraceEvent {
        phase: Phase::Search,
        nest: None,
        ord: (u64::MAX, 0),
        thread: 0,
        kind: EventKind::SpanEnd {
            label: "search",
            micros: started.elapsed().as_micros() as u64,
            charged: considered as u64,
        },
    });
    sink.record_all(events);
    Ok(Optimization {
        transform,
        transformed,
        mws_before,
        mws_after,
        candidates_considered: considered,
        cache_hits: hits,
        evaluated,
    })
}

/// Searches `mode`'s space for the transformation minimizing the exact MWS.
///
/// The identity is always a candidate, so `mws_after <= mws_before` holds
/// whenever the search succeeds. Candidates are ranked with the closed-form
/// estimates and the best few re-simulated, so the reported `mws_after` is
/// exact, not estimated.
///
/// # Errors
///
/// [`OptimizeError::NoLegalTransform`] when the candidate space is empty
/// (possible for [`SearchMode::LiPingali`]).
pub fn minimize_mws(nest: &LoopNest, mode: SearchMode) -> Result<Optimization, OptimizeError> {
    minimize_mws_with_threads(nest, mode, loopmem_sim::thread_count())
}

/// [`minimize_mws`] with a pinned evaluator-thread count. The winner is
/// chosen by `(exact MWS, candidate rank)`, so the result is bit-identical
/// for every `threads` value.
pub fn minimize_mws_with_threads(
    nest: &LoopNest,
    mode: SearchMode,
    threads: usize,
) -> Result<Optimization, OptimizeError> {
    let deps = analyze(nest);
    let candidates = generate_candidates(nest, &deps, mode);
    if candidates.is_empty() {
        return Err(OptimizeError::NoLegalTransform);
    }

    let hits = AtomicUsize::new(0);
    let (mws_before, before_hit) = memoized_mws(nest);
    if before_hit {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    let considered = candidates.len();
    let evals = evaluate_candidates(nest, &candidates, threads, &hits);

    // Serial semantics: an apply failure aborts the scan, so the earliest
    // failing candidate wins over any simulated result.
    if let Some((_, Err(e))) = evals
        .iter()
        .filter(|(_, r)| r.is_err())
        .min_by_key(|(rank, _)| *rank)
    {
        return Err(e.clone());
    }
    let mut by_rank: Vec<(usize, u64)> = evals
        .into_iter()
        .map(|(rank, r)| (rank, r.expect("errors were handled above")))
        .collect();
    by_rank.sort_unstable_by_key(|&(rank, _)| rank);
    let (mws_after, rank) = by_rank
        .iter()
        .map(|&(rank, mws)| (mws, rank))
        .min()
        .expect("candidates were non-empty");
    let evaluated: Vec<(IMat, u64)> = by_rank
        .into_iter()
        .map(|(rank, mws)| (candidates[rank].clone(), mws))
        .collect();
    let transform = candidates.into_iter().nth(rank).expect("rank is in range");
    let transformed = apply_transform(nest, &transform)?;
    Ok(Optimization {
        transform,
        transformed,
        mws_before,
        mws_after,
        candidates_considered: considered,
        cache_hits: hits.into_inner(),
        evaluated,
    })
}

/// Evaluates each candidate's exact MWS (memoized), in parallel on a
/// scoped-thread pool when `threads > 1`. Returns `(rank, result)` pairs;
/// order of the returned vector is unspecified, ranks identify candidates.
fn evaluate_candidates(
    nest: &LoopNest,
    candidates: &[IMat],
    threads: usize,
    hits: &AtomicUsize,
) -> Vec<(usize, Result<u64, OptimizeError>)> {
    let eval_one = |t: &IMat| -> Result<u64, OptimizeError> {
        let out = apply_transform(nest, t)?;
        let (mws, hit) = memoized_mws(&out);
        if hit {
            hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(mws)
    };
    let workers = threads.max(1).min(candidates.len());
    if workers <= 1 {
        return candidates
            .iter()
            .enumerate()
            .map(|(rank, t)| (rank, eval_one(t)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results = Mutex::new(Vec::with_capacity(candidates.len()));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let rank = next.fetch_add(1, Ordering::Relaxed);
                if rank >= candidates.len() {
                    break;
                }
                let r = eval_one(&candidates[rank]);
                results.lock().expect("results poisoned").push((rank, r));
            });
        }
    });
    results.into_inner().expect("results poisoned")
}

// ------------------------------------------------------- governed search --

/// The search's degradation payload: closed-form §3 MWS bounds when they
/// apply, the union-box enclosure otherwise. Always computed on the
/// *original* nest — the identity candidate makes the search's answer
/// subject to the same bounds, and a payload that never depends on which
/// candidate tripped keeps the governed search deterministic across
/// thread counts and steal orders.
fn exhausted(nest: &LoopNest, reason: TripReason) -> AnalysisError {
    AnalysisError::Exhausted {
        reason,
        partial: crate::distinct::analytic_mws_bounds(nest),
    }
}

/// Rebases any `Exhausted` payload onto the original nest's analytical
/// bounds (see [`exhausted`]); other errors pass through.
fn normalize_error(nest: &LoopNest, e: AnalysisError) -> AnalysisError {
    match e {
        AnalysisError::Exhausted { reason, .. } => exhausted(nest, reason),
        other => other,
    }
}

/// Exact iteration count of a rectangular nest (`None` when bounds are not
/// rectangular). Cheap — used for budget pre-flight, not execution.
fn exact_iteration_count(nest: &LoopNest) -> Option<u128> {
    nest.rectangular_ranges().map(|rs| {
        rs.iter().fold(1u128, |acc, &(lo, hi)| {
            acc.saturating_mul((i128::from(hi) - i128::from(lo) + 1).max(0) as u128)
        })
    })
}

/// Governed [`minimize_mws`]: auto thread count, see
/// [`try_minimize_mws_with_threads`].
///
/// Thin wrapper over [`Session::optimize`](crate::Session) — prefer the
/// session builder in new code.
pub fn try_minimize_mws(
    nest: &LoopNest,
    mode: SearchMode,
    budget: &AnalysisBudget,
) -> Result<Optimization, AnalysisError> {
    crate::Session::new()
        .search_mode(mode)
        .budget(budget.clone())
        .optimize(nest)
}

/// Governed [`minimize_mws_with_threads`]: never panics and respects
/// `budget`, which governs the *whole* search — one deadline, one
/// cumulative iteration count across every candidate simulation, and one
/// search node charged per candidate (capped by
/// [`AnalysisBudget::with_max_search_nodes`]).
///
/// On a budget trip the error degrades to analytical MWS bounds on the
/// original nest ([`crate::distinct::analytic_mws_bounds`]). An empty
/// candidate space or an inapplicable transformation reports
/// [`AnalysisError::Invalid`]; contained panics surface as
/// [`AnalysisError::NestPanicked`]. The governed path skips the process
/// -wide simulation memo so repeated calls charge the same work and trip
/// (or not) reproducibly; `cache_hits` is therefore always 0.
///
/// Thin wrapper over [`Session::optimize`](crate::Session) — prefer the
/// session builder in new code.
pub fn try_minimize_mws_with_threads(
    nest: &LoopNest,
    mode: SearchMode,
    threads: usize,
    budget: &AnalysisBudget,
) -> Result<Optimization, AnalysisError> {
    crate::Session::new()
        .threads(threads)
        .search_mode(mode)
        .budget(budget.clone())
        .optimize(nest)
}

/// Tracker-sharing variant backing the program-level governed optimizer:
/// `nest_index` tags [`AnalysisError::NestPanicked`] with the nest's
/// position in its program.
pub(crate) fn try_minimize_mws_tracked(
    nest_index: usize,
    nest: &LoopNest,
    mode: SearchMode,
    threads: usize,
    tracker: &BudgetTracker,
    budget: &AnalysisBudget,
) -> Result<Optimization, AnalysisError> {
    match catch_unwind(AssertUnwindSafe(|| {
        try_minimize_impl(nest, mode, threads, tracker, budget)
    })) {
        Ok(r) => r.map_err(|e| match e {
            // Panics contained deeper in the stack (inside a single-nest
            // simulation) report nest 0 — rebase onto the caller's index.
            AnalysisError::NestPanicked { message, .. } => AnalysisError::NestPanicked {
                nest: nest_index,
                message,
            },
            other => other,
        }),
        Err(payload) => Err(AnalysisError::NestPanicked {
            nest: nest_index,
            message: panic_message(payload),
        }),
    }
}

fn try_minimize_impl(
    nest: &LoopNest,
    mode: SearchMode,
    threads: usize,
    tracker: &BudgetTracker,
    budget: &AnalysisBudget,
) -> Result<Optimization, AnalysisError> {
    // Pre-flight: a rectangular nest's iteration count is exact and free,
    // so refuse immediately when even one candidate simulation would blow
    // the iteration cap (unimodular transformations preserve the count).
    if let (Some(cap), Some(n)) = (budget.max_iterations(), exact_iteration_count(nest)) {
        if n > u128::from(cap) {
            return Err(exhausted(nest, TripReason::MaxIterations));
        }
    }
    // The span is flushed only on success: on a budget trip the set of
    // candidates that completed is schedule-dependent, so nothing about
    // the failed search may reach the sink.
    let search_started = tracker.trace().map(|_| std::time::Instant::now());
    tracker.check().map_err(|r| exhausted(nest, r))?;
    let deps = analyze(nest);
    let candidates = generate_candidates(nest, &deps, mode);
    if candidates.is_empty() {
        return Err(AnalysisError::Invalid {
            message: "no legal transformation in the search space".into(),
        });
    }
    let simulate = |n: &LoopNest| -> Result<u64, AnalysisError> {
        try_simulate_tracked(n, false, 1, tracker, budget.max_table_bytes()).map(|s| s.mws_total)
    };
    let mws_before = simulate(nest).map_err(|e| normalize_error(nest, e))?;
    let considered = candidates.len();

    let eval_one = |t: &IMat| -> Result<u64, AnalysisError> {
        tracker
            .charge_search_nodes(1)
            .map_err(|r| exhausted(nest, r))?;
        let out = apply_transform(nest, t).map_err(|e| AnalysisError::Invalid {
            message: e.to_string(),
        })?;
        simulate(&out)
    };
    let workers = threads.max(1).min(candidates.len());
    let evals: Vec<(usize, Result<u64, AnalysisError>)> = if workers <= 1 {
        candidates
            .iter()
            .enumerate()
            .map(|(rank, t)| (rank, eval_one(t)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let results = Mutex::new(Vec::with_capacity(candidates.len()));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let rank = next.fetch_add(1, Ordering::Relaxed);
                    if rank >= candidates.len() {
                        break;
                    }
                    let r = eval_one(&candidates[rank]);
                    results.lock().expect("results poisoned").push((rank, r));
                });
            }
        });
        results.into_inner().expect("results poisoned")
    };

    // Budget trips dominate other failures (once the shared counters trip,
    // *which* candidates observe it depends on scheduling — the normalized
    // error does not); among equals the earliest candidate wins.
    let pick = |errs: &[(usize, &AnalysisError)]| -> Option<AnalysisError> {
        errs.iter()
            .min_by_key(|(rank, _)| *rank)
            .map(|(_, e)| (*e).clone())
    };
    let trips: Vec<(usize, &AnalysisError)> = evals
        .iter()
        .filter_map(|(rank, r)| match r {
            Err(e @ AnalysisError::Exhausted { .. }) => Some((*rank, e)),
            _ => None,
        })
        .collect();
    let others: Vec<(usize, &AnalysisError)> = evals
        .iter()
        .filter_map(|(rank, r)| match r {
            Err(e) if !matches!(e, AnalysisError::Exhausted { .. }) => Some((*rank, e)),
            _ => None,
        })
        .collect();
    if let Some(e) = pick(&trips).or_else(|| pick(&others)) {
        return Err(normalize_error(nest, e));
    }

    let mut by_rank: Vec<(usize, u64)> = evals
        .into_iter()
        .map(|(rank, r)| (rank, r.expect("errors were handled above")))
        .collect();
    by_rank.sort_unstable_by_key(|&(rank, _)| rank);
    let (mws_after, rank) = by_rank
        .iter()
        .map(|&(rank, mws)| (mws, rank))
        .min()
        .expect("candidates were non-empty");
    let evaluated: Vec<(IMat, u64)> = by_rank
        .into_iter()
        .map(|(rank, mws)| (candidates[rank].clone(), mws))
        .collect();
    let transform = candidates.into_iter().nth(rank).expect("rank is in range");
    let transformed = apply_transform(nest, &transform).map_err(|e| AnalysisError::Invalid {
        message: e.to_string(),
    })?;
    if let Some(sink) = tracker.trace() {
        let micros = search_started.map_or(0, |s| s.elapsed().as_micros() as u64);
        sink.record_all(vec![
            TraceEvent {
                phase: Phase::Search,
                nest: None,
                ord: (0, 0),
                thread: 0,
                kind: EventKind::SpanBegin { label: "search" },
            },
            TraceEvent {
                phase: Phase::Search,
                nest: None,
                ord: (u64::MAX, 0),
                thread: 0,
                kind: EventKind::SpanEnd {
                    label: "search",
                    micros,
                    charged: considered as u64,
                },
            },
        ]);
    }
    Ok(Optimization {
        transform,
        transformed,
        mws_before,
        mws_after,
        candidates_considered: considered,
        cache_hits: 0,
        evaluated,
    })
}

// ------------------------------------------------------------ candidates --

/// The mode's full (ranked, truncated) candidate list. The identity is
/// always a member for [`SearchMode::Compound`] and
/// [`SearchMode::InterchangeReversal`]; [`SearchMode::LiPingali`] may come
/// back empty.
fn generate_candidates(nest: &LoopNest, deps: &DependenceSet, mode: SearchMode) -> Vec<IMat> {
    let n = nest.depth();
    match mode {
        SearchMode::Compound {
            max_coeff,
            simulate_top,
        } => {
            let mut cands = if n == 2 {
                two_level_candidates(nest, deps, max_coeff)
            } else {
                deep_candidates(nest, deps)
            };
            rank_and_truncate(nest, deps, &mut cands, simulate_top);
            cands
        }
        SearchMode::InterchangeReversal => {
            let mut cands: Vec<IMat> = signed_permutations(n)
                .into_iter()
                .filter(|t| is_legal(t, deps))
                .collect();
            rank_and_truncate(nest, deps, &mut cands, 16);
            cands
        }
        SearchMode::LiPingali => li_pingali_candidates(nest, deps),
    }
}

/// 2-deep compound candidates: coprime tileable leading rows completed to
/// tileable unimodular matrices (§4.2). The identity is always included.
fn two_level_candidates(nest: &LoopNest, deps: &DependenceSet, max_coeff: i64) -> Vec<IMat> {
    let _ = nest;
    let mut out = vec![IMat::identity(2)];
    for a in -max_coeff..=max_coeff {
        for b in -max_coeff..=max_coeff {
            if (a, b) == (0, 0) || gcd_i64(a, b) != 1 {
                continue;
            }
            if !row_tileable(&[a, b], deps) {
                continue;
            }
            if let Some(t) = complete_tileable(a, b, deps, max_coeff) {
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Completes a tileable leading row `(a, b)` with a second row `(c, d)`
/// such that `a·d − b·c = ±1` and `(c, d)` is itself tileable. Both
/// determinant signs must be tried: for Example 8's optimum `(2, 3)`,
/// every `det = +1` completion has `3c − 2d = −1` (never tileable), while
/// `det = −1` admits the paper's actual transformation `[[2,3],[1,1]]`.
/// Among each family `(c₀ + t·a, d₀ + t·b)`, the smallest-coefficient
/// member wins.
fn complete_tileable(a: i64, b: i64, deps: &DependenceSet, max_coeff: i64) -> Option<IMat> {
    let (g, x, y) = extended_gcd(a, b);
    debug_assert_eq!(g, 1);
    // a·x + b·y = 1: (−y, x) gives det +1, (y, −x) gives det −1.
    let mut best: Option<(i64, i64, i64)> = None; // (score, c, d)
    for (c0, d0) in [(-y, x), (y, -x)] {
        for t in -(3 * max_coeff + 3)..=(3 * max_coeff + 3) {
            let (c, d) = (c0 + t * a, d0 + t * b);
            if !row_tileable(&[c, d], deps) {
                continue;
            }
            let score = c.abs() + d.abs();
            if best.is_none_or(|(s, _, _)| score < s) {
                best = Some((score, c, d));
            }
        }
    }
    let (_, c, d) = best?;
    let t = IMat::from_rows(&[vec![a, b], vec![c, d]]);
    debug_assert!(is_tileable(&t, deps));
    Some(t)
}

/// Candidates for nests deeper than two: signed permutations, §4.3's
/// access-matrix completions, and skew-composed permutations, all
/// filtered for legality.
fn deep_candidates(nest: &LoopNest, deps: &DependenceSet) -> Vec<IMat> {
    let n = nest.depth();
    let mut out = vec![IMat::identity(n)];
    let perms = signed_permutations(n);
    for t in &perms {
        if is_legal(t, deps) && !out.contains(t) {
            out.push(t.clone());
        }
    }
    // §4.3: leading rows = data access matrix rows, so the innermost
    // transformed loop carries the reuse.
    for r in nest.refs() {
        if r.matrix.nrows() >= n {
            continue;
        }
        for rows in access_row_variants(&r.matrix) {
            if let Some(t) = complete_unimodular_rows(&rows) {
                if is_legal(&t, deps) && !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    // Compound candidates: an elementary skew composed with each signed
    // permutation. This reaches orders like "wavefront over a permuted
    // nest" that neither family contains alone; the analytic ranking in
    // `rank_and_truncate` keeps the exact re-simulation budget fixed.
    if n <= 4 {
        let base = out.clone();
        for skew in elementary_skews(n) {
            for p in &base {
                let t = &skew * p;
                if is_legal(&t, deps) && !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// Elementary skew matrices `I + k·e_i·e_jᵀ` for `i ≠ j`, `k ∈ {−2…2}`.
fn elementary_skews(n: usize) -> Vec<IMat> {
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            for k in [-2i64, -1, 1, 2] {
                let mut m = IMat::identity(n);
                m[(i, j)] = k;
                out.push(m);
            }
        }
    }
    out
}

/// Row orderings/signs of an access matrix worth trying as leading rows.
fn access_row_variants(m: &IMat) -> Vec<IMat> {
    let rows: Vec<Vec<i64>> = (0..m.nrows()).map(|i| m.row(i).to_vec()).collect();
    let neg = |r: &Vec<i64>| r.iter().map(|&x| -x).collect::<Vec<i64>>();
    let mut out = vec![IMat::from_rows(&rows)];
    if rows.len() == 2 {
        out.push(IMat::from_rows(&[rows[1].clone(), rows[0].clone()]));
        out.push(IMat::from_rows(&[neg(&rows[0]), rows[1].clone()]));
        out.push(IMat::from_rows(&[rows[0].clone(), neg(&rows[1])]));
    } else if rows.len() == 1 {
        out.push(IMat::from_rows(&[neg(&rows[0])]));
    }
    out
}

/// All `n! · 2ⁿ` signed permutation matrices for `n ≤ 4`; permutations
/// plus single-loop reversals beyond that (the full set would explode).
fn signed_permutations(n: usize) -> Vec<IMat> {
    let mut perms = Vec::new();
    let mut idx: Vec<usize> = (0..n).collect();
    permute(&mut idx, 0, &mut perms);
    let mut out = Vec::new();
    if n <= 4 {
        for p in &perms {
            for signs in 0..(1u32 << n) {
                let mut m = IMat::zeros(n, n);
                for (row, &col) in p.iter().enumerate() {
                    m[(row, col)] = if signs & (1 << row) != 0 { -1 } else { 1 };
                }
                out.push(m);
            }
        }
    } else {
        for p in &perms {
            let mut m = IMat::zeros(n, n);
            for (row, &col) in p.iter().enumerate() {
                m[(row, col)] = 1;
            }
            out.push(m.clone());
            for flip in 0..n {
                let mut f = m.clone();
                for j in 0..n {
                    f[(flip, j)] = -f[(flip, j)];
                }
                out.push(f);
            }
        }
    }
    out
}

fn permute(idx: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == idx.len() {
        out.push(idx.clone());
        return;
    }
    for i in k..idx.len() {
        idx.swap(k, i);
        permute(idx, k + 1, out);
        idx.swap(k, i);
    }
}

/// Li–Pingali candidates: transformations whose leading row(s) are the
/// (±) data access matrix, completed to unimodular and *then* checked for
/// legality. Empty when every completion breaks a dependence.
fn li_pingali_candidates(nest: &LoopNest, deps: &DependenceSet) -> Vec<IMat> {
    let mut out = Vec::new();
    for r in nest.refs() {
        if r.matrix.nrows() >= nest.depth() {
            continue;
        }
        for rows in access_row_variants(&r.matrix) {
            if let Some(t) = complete_unimodular_rows(&rows) {
                if is_legal(&t, deps) && !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    out
}

// --------------------------------------------------------------- ranking --

/// Ranks candidates by the closed-form MWS estimate and keeps the best
/// `keep` (the identity always survives as the do-nothing baseline).
fn rank_and_truncate(nest: &LoopNest, deps: &DependenceSet, cands: &mut Vec<IMat>, keep: usize) {
    if cands.len() <= keep {
        return;
    }
    let mut scored: Vec<(i64, IMat)> = cands
        .drain(..)
        .map(|t| (analytic_objective(nest, deps, &t), t))
        .collect();
    scored.sort_by_key(|(s, _)| *s);
    let id = IMat::identity(nest.depth());
    let mut kept: Vec<IMat> = scored.into_iter().take(keep).map(|(_, t)| t).collect();
    if !kept.contains(&id) {
        kept.push(id);
    }
    *cands = kept;
}

/// Cheap closed-form objective used only for ranking: per uniformly
/// generated group, eq. (2) where it applies (2-deep, 1-D arrays), the
/// lexicographic-delay estimate otherwise, summed over groups.
fn analytic_objective(nest: &LoopNest, deps: &DependenceSet, t: &IMat) -> i64 {
    let n = nest.depth();
    let extents: Vec<i64> = nest
        .rectangular_ranges()
        .map(|rs| rs.iter().map(|&(lo, hi)| hi - lo + 1).collect())
        .unwrap_or_else(|| vec![16; n]);
    // Extents of the transformed space, over-approximated per row.
    let t_extents: Vec<i64> = (0..n)
        .map(|k| {
            1 + (0..n)
                .map(|j| t[(k, j)].abs() * (extents[j] - 1))
                .sum::<i64>()
        })
        .collect();
    let mut total = 0i64;
    for g in uniform_groups(nest) {
        if n == 2 && g.matrix.nrows() == 1 {
            let alpha = (g.matrix[(0, 0)], g.matrix[(0, 1)]);
            total += two_level_estimate(alpha, (t[(0, 0)], t[(0, 1)]), (extents[0], extents[1]));
        } else {
            let distances: Vec<Vec<i64>> = deps
                .iter()
                .filter(|d| d.array == g.array)
                .map(|d| t.mul_vec(&d.distance))
                .collect();
            if !distances.is_empty() {
                total += lex_delay_estimate(&distances, &t_extents);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    fn example7() -> LoopNest {
        parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap()
    }

    fn example8() -> LoopNest {
        parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap()
    }

    #[test]
    fn example7_compound_reaches_one() {
        let opt = minimize_mws(&example7(), SearchMode::default()).unwrap();
        assert_eq!(opt.mws_after, 1, "paper: cost reduced to 1");
        assert_eq!(opt.mws_before, 86); // exact (paper's metric says 89)
    }

    #[test]
    fn example7_interchange_reversal_baseline() {
        let opt = minimize_mws(&example7(), SearchMode::InterchangeReversal).unwrap();
        // Best interchange+reversal order: exact MWS 34 (paper's cost
        // metric reports 36); far worse than the compound result of 1.
        assert_eq!(opt.mws_after, 34);
    }

    #[test]
    fn example8_compound_reaches_21() {
        let opt = minimize_mws(&example8(), SearchMode::default()).unwrap();
        assert_eq!(opt.mws_after, 21, "paper's actual minimum MWS");
        assert_eq!(opt.mws_before, 44); // formula says 50
    }

    #[test]
    fn example8_li_pingali_fails() {
        // The paper: "Li and Pingali's technique will not find any partial
        // transformation that can be completed to a legal transformation."
        assert_eq!(
            minimize_mws(&example8(), SearchMode::LiPingali).unwrap_err(),
            OptimizeError::NoLegalTransform
        );
    }

    #[test]
    fn example8_interchange_reversal_cannot_improve() {
        // Paper: "A combination of reversal and interchange does not
        // change the maximum window size from 50" (exact: 44).
        let opt = minimize_mws(&example8(), SearchMode::InterchangeReversal).unwrap();
        assert_eq!(opt.mws_after, opt.mws_before);
        assert_eq!(opt.mws_after, 44);
    }

    #[test]
    fn example7_li_pingali_succeeds() {
        // Example 7 has only an input dependence; the access row (2,-3)
        // completes legally and collapses the window.
        let opt = minimize_mws(&example7(), SearchMode::LiPingali).unwrap();
        assert_eq!(opt.mws_after, 1);
    }

    #[test]
    fn example10_deep_search_collapses_window() {
        let nest = parse(
            "array A[61][51]\n\
             for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        )
        .unwrap();
        let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
        assert_eq!(opt.mws_after, 1, "§4.3: access-matrix rows lead T");
        assert!(opt.mws_before > 400, "original window is hundreds wide");
    }

    #[test]
    fn identity_is_floor_never_worse() {
        for src in [
            "array A[20][20]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
            "array A[40]\nfor i = 1 to 10 { for j = 1 to 10 { A[i + j] = A[i + j - 1]; } }",
        ] {
            let nest = parse(src).unwrap();
            let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
            assert!(opt.mws_after <= opt.mws_before, "{src}");
        }
    }

    #[test]
    fn memoization_serves_repeated_searches() {
        // The identity candidate re-simulates the input nest, which the
        // mws_before computation already inserted into the memo — so even
        // a single search records hits, and a repeat is almost all hits.
        // The nest is unique to this test: the memo is process-wide and
        // concurrently running tests would otherwise pre-populate it.
        let nest = parse("array X[160]\nfor i = 1 to 21 { for j = 1 to 17 { X[3i - 7j + 120]; } }")
            .unwrap();
        let first = minimize_mws(&nest, SearchMode::default()).unwrap();
        assert!(first.cache_hits > 0, "identity candidate must hit the memo");
        let again = minimize_mws(&nest, SearchMode::default()).unwrap();
        assert!(again.cache_hits > first.cache_hits);
        assert_eq!(again.mws_after, first.mws_after);
        assert_eq!(again.transform, first.transform);
        let (hits, misses) = memo_stats();
        assert!(hits > 0 && misses > 0);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        for src in [
            "array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }",
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        ] {
            let nest = parse(src).unwrap();
            let serial = minimize_mws_with_threads(&nest, SearchMode::default(), 1).unwrap();
            for threads in [2, 4, 7] {
                let par = minimize_mws_with_threads(&nest, SearchMode::default(), threads).unwrap();
                assert_eq!(par.transform, serial.transform, "{src}");
                assert_eq!(par.mws_after, serial.mws_after);
                assert_eq!(par.mws_before, serial.mws_before);
                assert_eq!(par.candidates_considered, serial.candidates_considered);
            }
        }
    }

    #[test]
    fn signed_permutation_count() {
        assert_eq!(signed_permutations(2).len(), 8);
        assert_eq!(signed_permutations(3).len(), 48);
        for t in signed_permutations(3) {
            assert_eq!(t.det().abs(), 1);
        }
    }
}
