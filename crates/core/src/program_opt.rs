//! Program-level analysis and optimization (multi-nest extension).
//!
//! Each nest is transformed with the §4 search; the program is then
//! re-simulated as a whole, because inter-nest liveness (values crossing a
//! nest boundary) caps what loop reordering alone can achieve — a producer
//!/consumer pair needs fusion, not reordering, to shrink its boundary set.
//! The analysis reports both numbers so the gap is visible.

use crate::optimize::{
    minimize_mws_with_threads, nest_mws_memoized, try_minimize_mws_tracked, Optimization,
    OptimizeError, SearchMode,
};
use loopmem_ir::{AnalysisError, ArrayId, Bounds, Program};
use loopmem_sim::{
    simulate_program, simulate_program_with_threads, try_simulate_program_tracked, AnalysisBudget,
    BudgetTracker, ProgramSimResult,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Memory analysis of a whole program.
#[derive(Clone, Debug)]
pub struct ProgramAnalysis {
    /// Declared words over all arrays.
    pub default_words: i64,
    /// Exact whole-program MWS.
    pub mws_exact: u64,
    /// Live words at each internal nest boundary.
    pub boundary_live: Vec<u64>,
    /// Distinct elements per array.
    pub distinct: HashMap<ArrayId, u64>,
    /// Which nest hosts the window peak.
    pub peak_nest: usize,
    /// Exact single-nest MWS per nest (memoized: a kernel repeated under
    /// different loop-variable names is simulated once).
    pub per_nest_mws: Vec<u64>,
}

/// Analyzes a program's memory behaviour exactly.
pub fn analyze_program(program: &Program) -> ProgramAnalysis {
    let sim: ProgramSimResult = simulate_program(program);
    ProgramAnalysis {
        default_words: program.default_memory(),
        mws_exact: sim.mws_total,
        boundary_live: sim.boundary_live,
        distinct: sim.distinct,
        peak_nest: sim.peak_nest,
        per_nest_mws: program.nests().iter().map(nest_mws_memoized).collect(),
    }
}

/// Result of optimizing every nest of a program.
#[derive(Clone, Debug)]
pub struct ProgramOptimization {
    /// The program with each nest transformed.
    pub transformed: Program,
    /// Whole-program MWS before.
    pub mws_before: u64,
    /// Whole-program MWS after.
    pub mws_after: u64,
    /// Per-nest `(before, after)` single-nest windows.
    pub per_nest: Vec<(u64, u64)>,
}

/// Runs the §4 search on every nest independently and re-evaluates the
/// whole program. `mws_after <= mws_before` is *not* guaranteed at the
/// program level (a per-nest win can shift a boundary), so the result
/// keeps whichever whole-program choice is better per nest, greedily in
/// execution order.
///
/// Uses every available worker thread ([`loopmem_sim::thread_count`]).
///
/// # Errors
///
/// Propagates the first nest-level [`OptimizeError`].
pub fn optimize_program(
    program: &Program,
    mode: SearchMode,
) -> Result<ProgramOptimization, OptimizeError> {
    optimize_program_with_threads(program, mode, loopmem_sim::thread_count())
}

/// [`optimize_program`] with a pinned worker-thread count.
///
/// The per-nest §4 searches are independent, so they shard across one
/// scoped-thread pool (workers steal nest indices from an atomic queue;
/// each search then runs its own evaluation single-threaded to avoid
/// oversubscribing). All searches share the process-wide simulation memo,
/// so a kernel repeated across nests — even under different loop-variable
/// names — is simulated once. The greedy accept pass that follows is
/// serial and the searches themselves are deterministic, so the result is
/// bit-identical for every `threads` value.
///
/// # Errors
///
/// Propagates the earliest (by nest index) nest-level [`OptimizeError`],
/// matching the serial path's first-failure semantics.
pub fn optimize_program_with_threads(
    program: &Program,
    mode: SearchMode,
    threads: usize,
) -> Result<ProgramOptimization, OptimizeError> {
    let mws_before = simulate_program_with_threads(program, threads).mws_total;
    let opts = optimize_nests_sharded(program, mode, threads)?;
    let mut current = program.clone();
    let mut current_mws = mws_before;
    let mut per_nest = Vec::with_capacity(program.len());
    for (k, opt) in opts.into_iter().enumerate() {
        per_nest.push((opt.mws_before, opt.mws_after));
        let candidate = current
            .with_nest(k, opt.transformed)
            .expect("transformation preserves the array table");
        // Keep the per-nest transformation only if the whole program does
        // not regress.
        let candidate_mws = simulate_program_with_threads(&candidate, threads).mws_total;
        if candidate_mws <= current_mws {
            current = candidate;
            current_mws = candidate_mws;
        }
    }
    Ok(ProgramOptimization {
        transformed: current,
        mws_before,
        mws_after: current_mws,
        per_nest,
    })
}

/// Runs the nest-level search for every nest, sharded across `threads`
/// scoped workers pulling nest indices from an atomic queue. In the
/// serial loop each nest is searched in its *original* form (earlier
/// replacements never touch later nests), so the searches are independent
/// and order-free; outputs land in their nest's slot.
fn optimize_nests_sharded(
    program: &Program,
    mode: SearchMode,
    threads: usize,
) -> Result<Vec<Optimization>, OptimizeError> {
    let nests = program.nests();
    if nests.len() == 1 {
        // A single nest cannot shard; give the search every thread.
        return Ok(vec![minimize_mws_with_threads(&nests[0], mode, threads)?]);
    }
    let workers = threads.max(1).min(nests.len());
    if workers <= 1 {
        return nests
            .iter()
            .map(|n| minimize_mws_with_threads(n, mode, 1))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<Optimization, OptimizeError>>>> =
        nests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= nests.len() {
                    break;
                }
                let r = minimize_mws_with_threads(&nests[k], mode, 1);
                *slots[k].lock().expect("slot poisoned") = Some(r);
            });
        }
    });
    // Earliest failing nest wins, as in the serial scan.
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every nest searched")
        })
        .collect()
}

// --------------------------------------------------- governed optimizer --

/// Outcome of a governed program optimization: every nest either improved
/// or kept its original form with a typed reason, and the whole-program
/// numbers are bounds that stay honest when some nest degraded.
#[derive(Debug)]
pub struct GovernedProgramOptimization {
    /// The program with every accepted per-nest transformation applied
    /// (nests whose search failed, or whose acceptance check could not be
    /// completed exactly, keep their original form).
    pub transformed: Program,
    /// Whole-program MWS bounds before optimization (a point interval
    /// when the baseline simulation was exact for every nest).
    pub mws_before: Bounds,
    /// Whole-program MWS bounds of `transformed`.
    pub mws_after: Bounds,
    /// Per nest, in program order: `(before, after)` single-nest windows
    /// of its §4 search, or why that nest's search was abandoned.
    pub per_nest: Vec<Result<(u64, u64), AnalysisError>>,
}

/// Governed [`optimize_program`]: auto thread count, see
/// [`try_optimize_program_with_threads`].
///
/// Thin wrapper over [`Session::optimize_program`](crate::Session) —
/// prefer the session builder in new code.
pub fn try_optimize_program(
    program: &Program,
    mode: SearchMode,
    budget: &AnalysisBudget,
) -> Result<GovernedProgramOptimization, AnalysisError> {
    crate::Session::new()
        .search_mode(mode)
        .budget(budget.clone())
        .optimize_program(program)
}

/// Governed [`optimize_program_with_threads`]: never panics and runs the
/// whole pipeline — baseline simulation, per-nest §4 searches, greedy
/// accept re-simulations — under one [`BudgetTracker`] (one deadline, one
/// cumulative iteration count, one search-node count).
///
/// Per-nest failures are contained: a nest whose search trips the budget,
/// overflows, or panics keeps its original form and reports the typed
/// error in `per_nest` while every other nest completes. A candidate
/// acceptance is taken only when its governed program re-simulation is
/// exact and does not worsen the current upper bound, so `mws_after.upper
/// <= mws_before.upper` always holds. The top-level `Err` is reserved for
/// whole-program failures of the *baseline* simulation (e.g. the global
/// table fold exceeding `max_table_bytes`).
///
/// Thin wrapper over [`Session::optimize_program`](crate::Session) —
/// prefer the session builder in new code.
pub fn try_optimize_program_with_threads(
    program: &Program,
    mode: SearchMode,
    threads: usize,
    budget: &AnalysisBudget,
) -> Result<GovernedProgramOptimization, AnalysisError> {
    crate::Session::new()
        .threads(threads)
        .search_mode(mode)
        .budget(budget.clone())
        .optimize_program(program)
}

/// The governed optimizer body shared by [`crate::Session`] and the
/// legacy `try_optimize_program*` wrappers above.
pub(crate) fn governed_optimize_program(
    program: &Program,
    mode: SearchMode,
    threads: usize,
    budget: &AnalysisBudget,
) -> Result<GovernedProgramOptimization, AnalysisError> {
    let tracker = BudgetTracker::new(budget);
    let table_cap = budget.max_table_bytes();
    let baseline = try_simulate_program_tracked(program, threads, &tracker, table_cap)?;
    let mws_before = baseline.mws_bounds;

    let searches = try_optimize_nests_sharded(program, mode, threads, &tracker, budget);

    let mut current = program.clone();
    let mut current_bounds = mws_before;
    let mut per_nest = Vec::with_capacity(program.len());
    for (k, search) in searches.into_iter().enumerate() {
        let opt = match search {
            Ok(o) => o,
            Err(e) => {
                per_nest.push(Err(e));
                continue;
            }
        };
        per_nest.push(Ok((opt.mws_before, opt.mws_after)));
        let Ok(candidate) = current.with_nest(k, opt.transformed) else {
            continue; // transformation changed the array table: reject
        };
        // Keep the per-nest transformation only when the whole program
        // verifiably does not regress: the governed re-simulation must be
        // exact (a degraded candidate cannot be compared) and its MWS must
        // not exceed the current upper bound.
        if let Ok(gov) = try_simulate_program_tracked(&candidate, threads, &tracker, table_cap) {
            if gov.all_exact() && gov.mws_bounds.upper <= current_bounds.upper {
                current = candidate;
                current_bounds = gov.mws_bounds;
            }
        }
    }
    Ok(GovernedProgramOptimization {
        transformed: current,
        mws_before,
        mws_after: current_bounds,
        per_nest,
    })
}

/// Governed sibling of [`optimize_nests_sharded`]: same sharding, but
/// failures stay in their nest's slot instead of aborting the batch, and
/// every search charges the shared tracker.
fn try_optimize_nests_sharded(
    program: &Program,
    mode: SearchMode,
    threads: usize,
    tracker: &BudgetTracker,
    budget: &AnalysisBudget,
) -> Vec<Result<Optimization, AnalysisError>> {
    let nests = program.nests();
    if nests.len() == 1 {
        return vec![try_minimize_mws_tracked(
            0, &nests[0], mode, threads, tracker, budget,
        )];
    }
    let workers = threads.max(1).min(nests.len());
    if workers <= 1 {
        return nests
            .iter()
            .enumerate()
            .map(|(k, n)| try_minimize_mws_tracked(k, n, mode, 1, tracker, budget))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<Optimization, AnalysisError>>>> =
        nests.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= nests.len() {
                    break;
                }
                let r = try_minimize_mws_tracked(k, &nests[k], mode, 1, tracker, budget);
                *slots[k].lock().expect("slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every nest searched")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse_program;

    #[test]
    fn analysis_reports_boundary_sets() {
        let p = parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.default_words, 192);
        assert_eq!(a.boundary_live, vec![64]);
        assert!(a.mws_exact >= 64);
    }

    #[test]
    fn optimization_never_regresses_the_program() {
        let p = parse_program(
            "array A[24][24]\narray B[24][24]\n\
             for i = 2 to 24 { for j = 1 to 24 { A[i][j] = A[i-1][j] + A[i][j]; } }\n\
             for i = 1 to 24 { for j = 1 to 24 { B[i][j] = B[i][j] + 1; } }",
        )
        .unwrap();
        let o = optimize_program(&p, SearchMode::default()).unwrap();
        assert!(
            o.mws_after <= o.mws_before,
            "{} -> {}",
            o.mws_before,
            o.mws_after
        );
        // The stencil nest improves on its own.
        assert!(o.per_nest[0].1 < o.per_nest[0].0);
    }

    #[test]
    fn sharded_optimize_matches_serial_for_all_thread_counts() {
        // One stencil, one triangular nest, one Example-8-style reuse
        // kernel — exercised at t ∈ {1, 2, 4} against the serial path.
        let p = parse_program(
            "array A[24][24]\narray X[200]\n\
             for i = 2 to 24 { for j = 1 to 24 { A[i][j] = A[i-1][j] + A[i][j]; } }\n\
             for i = 1 to 24 { for j = i to 24 { A[i][j] = A[j][i]; } }\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        let serial = optimize_program_with_threads(&p, SearchMode::default(), 1).unwrap();
        for threads in [2, 4] {
            let par = optimize_program_with_threads(&p, SearchMode::default(), threads).unwrap();
            assert_eq!(par.mws_before, serial.mws_before);
            assert_eq!(par.mws_after, serial.mws_after);
            assert_eq!(par.per_nest, serial.per_nest);
            assert_eq!(par.transformed, serial.transformed);
        }
        let auto = optimize_program(&p, SearchMode::default()).unwrap();
        assert_eq!(auto.transformed, serial.transformed);
    }

    #[test]
    fn sharded_optimize_propagates_earliest_error() {
        // Li–Pingali fails on Example 8 (no legal completion); the batch
        // path must surface that error just like the serial scan.
        let p = parse_program(
            "array X[200]\narray Y[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }\n\
             for i = 1 to 25 { for j = 1 to 10 { Y[2i + 5j + 1] = Y[2i + 5j + 5]; } }",
        )
        .unwrap();
        for threads in [1, 4] {
            assert_eq!(
                optimize_program_with_threads(&p, SearchMode::LiPingali, threads).unwrap_err(),
                OptimizeError::NoLegalTransform
            );
        }
    }

    #[test]
    fn analysis_reports_per_nest_mws() {
        let p = parse_program(
            "array A[16][16]\n\
             for i = 2 to 16 { for j = 1 to 16 { A[i][j] = A[i-1][j]; } }\n\
             for i = 1 to 16 { for j = 1 to 16 { A[i][j] = A[i][j] + 1; } }",
        )
        .unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.per_nest_mws.len(), 2);
        assert!((16..=17).contains(&a.per_nest_mws[0]));
        assert_eq!(a.per_nest_mws[1], 0, "single-touch nest has no window");
    }

    #[test]
    fn boundary_liveness_caps_reordering_gains() {
        // Producer/consumer of a whole array: no legal reordering can
        // shrink the 36-word boundary; the optimizer must report that
        // honestly.
        let p = parse_program(
            "array A[6][6]\narray B[6][6]\narray C[6][6]\n\
             for i = 1 to 6 { for j = 1 to 6 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 6 { for j = 1 to 6 { C[i][j] = A[i][j]; } }",
        )
        .unwrap();
        let o = optimize_program(&p, SearchMode::default()).unwrap();
        assert!(
            o.mws_after >= 36,
            "boundary set is irreducible by reordering"
        );
    }
}
