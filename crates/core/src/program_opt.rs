//! Program-level analysis and optimization (multi-nest extension).
//!
//! Each nest is transformed with the §4 search; the program is then
//! re-simulated as a whole, because inter-nest liveness (values crossing a
//! nest boundary) caps what loop reordering alone can achieve — a producer
//!/consumer pair needs fusion, not reordering, to shrink its boundary set.
//! The analysis reports both numbers so the gap is visible.

use crate::optimize::{minimize_mws, OptimizeError, SearchMode};
use loopmem_ir::{ArrayId, Program};
use loopmem_sim::{simulate_program, ProgramSimResult};
use std::collections::HashMap;

/// Memory analysis of a whole program.
#[derive(Clone, Debug)]
pub struct ProgramAnalysis {
    /// Declared words over all arrays.
    pub default_words: i64,
    /// Exact whole-program MWS.
    pub mws_exact: u64,
    /// Live words at each internal nest boundary.
    pub boundary_live: Vec<u64>,
    /// Distinct elements per array.
    pub distinct: HashMap<ArrayId, u64>,
    /// Which nest hosts the window peak.
    pub peak_nest: usize,
}

/// Analyzes a program's memory behaviour exactly.
pub fn analyze_program(program: &Program) -> ProgramAnalysis {
    let sim: ProgramSimResult = simulate_program(program);
    ProgramAnalysis {
        default_words: program.default_memory(),
        mws_exact: sim.mws_total,
        boundary_live: sim.boundary_live,
        distinct: sim.distinct,
        peak_nest: sim.peak_nest,
    }
}

/// Result of optimizing every nest of a program.
#[derive(Clone, Debug)]
pub struct ProgramOptimization {
    /// The program with each nest transformed.
    pub transformed: Program,
    /// Whole-program MWS before.
    pub mws_before: u64,
    /// Whole-program MWS after.
    pub mws_after: u64,
    /// Per-nest `(before, after)` single-nest windows.
    pub per_nest: Vec<(u64, u64)>,
}

/// Runs the §4 search on every nest independently and re-evaluates the
/// whole program. `mws_after <= mws_before` is *not* guaranteed at the
/// program level (a per-nest win can shift a boundary), so the result
/// keeps whichever whole-program choice is better per nest, greedily in
/// execution order.
///
/// # Errors
///
/// Propagates the first nest-level [`OptimizeError`].
pub fn optimize_program(
    program: &Program,
    mode: SearchMode,
) -> Result<ProgramOptimization, OptimizeError> {
    let mws_before = simulate_program(program).mws_total;
    let mut current = program.clone();
    let mut per_nest = Vec::with_capacity(program.len());
    for k in 0..program.len() {
        let opt = minimize_mws(&current.nests()[k], mode)?;
        per_nest.push((opt.mws_before, opt.mws_after));
        let candidate = current
            .with_nest(k, opt.transformed)
            .expect("transformation preserves the array table");
        // Keep the per-nest transformation only if the whole program does
        // not regress.
        if simulate_program(&candidate).mws_total <= simulate_program(&current).mws_total {
            current = candidate;
        }
    }
    let mws_after = simulate_program(&current).mws_total;
    Ok(ProgramOptimization {
        transformed: current,
        mws_before,
        mws_after,
        per_nest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse_program;

    #[test]
    fn analysis_reports_boundary_sets() {
        let p = parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let a = analyze_program(&p);
        assert_eq!(a.default_words, 192);
        assert_eq!(a.boundary_live, vec![64]);
        assert!(a.mws_exact >= 64);
    }

    #[test]
    fn optimization_never_regresses_the_program() {
        let p = parse_program(
            "array A[24][24]\narray B[24][24]\n\
             for i = 2 to 24 { for j = 1 to 24 { A[i][j] = A[i-1][j] + A[i][j]; } }\n\
             for i = 1 to 24 { for j = 1 to 24 { B[i][j] = B[i][j] + 1; } }",
        )
        .unwrap();
        let o = optimize_program(&p, SearchMode::default()).unwrap();
        assert!(o.mws_after <= o.mws_before, "{} -> {}", o.mws_before, o.mws_after);
        // The stencil nest improves on its own.
        assert!(o.per_nest[0].1 < o.per_nest[0].0);
    }

    #[test]
    fn boundary_liveness_caps_reordering_gains() {
        // Producer/consumer of a whole array: no legal reordering can
        // shrink the 36-word boundary; the optimizer must report that
        // honestly.
        let p = parse_program(
            "array A[6][6]\narray B[6][6]\narray C[6][6]\n\
             for i = 1 to 6 { for j = 1 to 6 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 6 { for j = 1 to 6 { C[i][j] = A[i][j]; } }",
        )
        .unwrap();
        let o = optimize_program(&p, SearchMode::default()).unwrap();
        assert!(o.mws_after >= 36, "boundary set is irreducible by reordering");
    }
}
