//! Bounds for non-uniformly generated references (§3.2, Example 6).
//!
//! With different access matrices, reference pairs have direction — not
//! distance — dependences, so the reuse formulas do not apply. For
//! one-dimensional affine access functions the paper bounds the distinct
//! count from the value ranges:
//!
//! * **upper bound** — the union of the ranges can cover at most
//!   `UB_max − LB_min + 1` values;
//! * **lower bound** — a single function `p·i + q·j + c` with coprime
//!   coefficients over a (large enough) box misses exactly `(p−1)(q−1)`
//!   values inside its span (Frobenius-gap structure), so it alone
//!   contributes `span + 1 − (p−1)(q−1)` distinct values; the union is at
//!   least the largest single-function count.
//!
//! Example 6 reproduces exactly: `179 ≤ actual ≤ 191`.

use crate::distinct::{DistinctEstimate, Method};
use loopmem_dep::uniform::UniformGroup;
use loopmem_linalg::gcd::gcd_slice;

/// Value range `(min, max)` of `Σ p_k x_k + c` over the box `ranges`.
fn value_range(coeffs: &[i64], constant: i64, ranges: &[(i64, i64)]) -> (i64, i64) {
    let mut lo = constant;
    let mut hi = constant;
    for (&p, &(a, b)) in coeffs.iter().zip(ranges) {
        if p >= 0 {
            lo += p * a;
            hi += p * b;
        } else {
            lo += p * b;
            hi += p * a;
        }
    }
    (lo, hi)
}

/// Exact distinct-value count of one affine function over a box, valid
/// when every extent exceeds the magnitude of the complementary
/// coefficient (the regime of all the paper's kernels). Returns `None`
/// when the closed form does not apply (more than two non-zero
/// coefficients with gaps, degenerate boxes, or extents too small).
pub fn single_function_count(coeffs: &[i64], ranges: &[(i64, i64)]) -> Option<i64> {
    let g = gcd_slice(coeffs);
    if g == 0 {
        return Some(1); // constant function
    }
    // Distinct values are invariant under dividing by the content.
    let reduced: Vec<i64> = coeffs.iter().map(|&p| p / g).collect();
    let (lo, hi) = value_range(&reduced, 0, ranges);
    let span = hi - lo;
    let nz: Vec<(i64, i64)> = reduced
        .iter()
        .zip(ranges)
        .filter(|(&p, _)| p != 0)
        .map(|(&p, &(a, b))| (p.abs(), b - a + 1))
        .collect();
    match nz.as_slice() {
        [] => Some(1),
        [(_, n)] => Some(*n),
        [(p, n1), (q, n2)] => {
            // Gap count (p−1)(q−1) holds once each extent can bridge the
            // other coefficient's stride.
            if *n1 > *q && *n2 > *p {
                Some(span + 1 - (p - 1) * (q - 1))
            } else {
                None
            }
        }
        _ => {
            // Three or more free strides: the image is dense inside its
            // span when the extents dominate the coefficients.
            let max_coeff = nz.iter().map(|(p, _)| *p).max().expect("non-empty");
            let min_extent = nz.iter().map(|(_, n)| *n).min().expect("non-empty");
            (min_extent > max_coeff).then_some(span + 1)
        }
    }
}

/// §3.2 bounds for several uniformly generated groups referencing the same
/// one-dimensional array. Returns `None` when any group is
/// multi-dimensional or a closed form is unavailable — callers then
/// enumerate.
pub fn estimate_groups(
    groups: &[&UniformGroup],
    ranges: &[(i64, i64)],
) -> Option<DistinctEstimate> {
    if groups.iter().any(|g| g.matrix.nrows() != 1) {
        return None;
    }
    let mut union_lo = i64::MAX;
    let mut union_hi = i64::MIN;
    let mut best_single = 0i64;
    for g in groups {
        let coeffs = g.matrix.row(0);
        for (_, offset, _) in &g.members {
            let (lo, hi) = value_range(coeffs, offset[0], ranges);
            union_lo = union_lo.min(lo);
            union_hi = union_hi.max(hi);
        }
        best_single = best_single.max(single_function_count(coeffs, ranges)?);
    }
    let upper = union_hi - union_lo + 1;
    let lower = best_single.min(upper);
    Some(DistinctEstimate {
        lower,
        upper,
        method: Method::NonUniformBounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_dep::uniform::uniform_groups;
    use loopmem_ir::parse;

    #[test]
    fn single_function_counts_match_brute_force() {
        // f = 3i + 7j over 20×20: span 0..=180 relative, 179 values.
        assert_eq!(
            single_function_count(&[3, 7], &[(1, 20), (1, 20)]),
            Some(3 * 19 + 7 * 19 + 1 - 12)
        );
        // f = 4i − 3j: (4−1)(3−1) = 6 gaps.
        assert_eq!(
            single_function_count(&[4, -3], &[(1, 20), (1, 20)]),
            Some(4 * 19 + 3 * 19 + 1 - 6)
        );
        // Single variable: one value per iteration of that loop.
        assert_eq!(single_function_count(&[0, 5], &[(1, 20), (1, 8)]), Some(8));
        // Content > 1 reduces: 4i + 10j ~ 2i + 5j.
        assert_eq!(
            single_function_count(&[4, 10], &[(1, 20), (1, 10)]),
            single_function_count(&[2, 5], &[(1, 20), (1, 10)]),
        );
        // Constant function.
        assert_eq!(single_function_count(&[0, 0], &[(1, 5), (1, 5)]), Some(1));
    }

    #[test]
    fn single_function_brute_force_sweep() {
        // Validate the closed form against enumeration for a grid of
        // coefficient pairs.
        for p in 1..=5i64 {
            for q in 1..=5i64 {
                for (s1, s2) in [(1i64, 1i64), (1, -1), (-1, 1)] {
                    let coeffs = [s1 * p, s2 * q];
                    let ranges = [(1, 12), (1, 12)];
                    let Some(predicted) = single_function_count(&coeffs, &ranges) else {
                        continue;
                    };
                    let mut vals = std::collections::HashSet::new();
                    for i in 1..=12 {
                        for j in 1..=12 {
                            vals.insert(coeffs[0] * i + coeffs[1] * j);
                        }
                    }
                    assert_eq!(
                        predicted,
                        vals.len() as i64,
                        "mismatch for coeffs {coeffs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn example6_bounds_match_paper() {
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let groups = uniform_groups(&nest);
        let refs: Vec<&UniformGroup> = groups.iter().collect();
        let e = estimate_groups(&refs, &[(1, 20), (1, 20)]).unwrap();
        assert_eq!(e.lower, 179);
        assert_eq!(e.upper, 191);
    }

    #[test]
    fn three_variable_dense_case() {
        // i + j + k over 6³: dense span.
        let c = single_function_count(&[1, 1, 1], &[(1, 6), (1, 6), (1, 6)]);
        assert_eq!(c, Some(16)); // values 3..=18
    }

    #[test]
    fn too_small_extents_refuse_closed_form() {
        // 5i + 7j over 3×3: extents cannot bridge the strides.
        assert_eq!(single_function_count(&[5, 7], &[(1, 3), (1, 3)]), None);
    }

    #[test]
    fn multidimensional_groups_are_rejected() {
        let nest = parse(
            "array A[10][10]\n\
             for i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[j][i]; } }",
        )
        .unwrap();
        let groups = uniform_groups(&nest);
        let refs: Vec<&UniformGroup> = groups.iter().collect();
        assert!(estimate_groups(&refs, &[(1, 10), (1, 10)]).is_none());
    }
}
