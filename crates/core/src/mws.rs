//! Maximum-window-size closed forms (§2.3, §4.1–§4.3).
//!
//! The reference window of an array at iteration `I` holds every element
//! already touched that will be touched again; its peak size (MWS) is the
//! minimum buffer that captures all reuse on-chip. `loopmem-sim` measures
//! MWS exactly; this module provides the paper's *closed forms*, which are
//! what the optimizer can afford to evaluate inside its search loop:
//!
//! * [`two_level_estimate`] — eq. (2): a 2-deep nest with uniformly
//!   generated references `α₁·i + α₂·j + c` under a transformation whose
//!   leading row is `(a, b)`;
//! * [`two_level_objective`] — the same quantity without the floor, the
//!   continuous objective minimized by §4.2's branch and bound
//!   (its value at `a=2, b=3` is the paper's 22, vs. the exact 21);
//! * [`three_level_estimate`] — §4.3: a 3-deep nest from the reuse
//!   (null-space) vector (Example 10's 540);
//! * [`lex_delay_estimate`] — our documented generalization for full-rank
//!   accesses: the number of iterations separating dependent iterations.

use loopmem_linalg::Rational;

/// Maximum trip count of the inner loop after a transformation with
/// leading row `(a, b)` over an `N₁ × N₂` rectangular nest (`maxspan`,
/// §4.1): the inner loop walks the lattice direction `(b, −a)`, so its
/// span is limited by whichever axis it exhausts first.
///
/// Returns the floored integer count. `(0, 0)` is rejected.
///
/// # Panics
///
/// Panics if `a == 0 && b == 0` or extents are not positive.
pub fn maxspan(row: (i64, i64), n: (i64, i64)) -> i64 {
    let (a, b) = row;
    let (n1, n2) = n;
    assert!(a != 0 || b != 0, "zero leading row");
    assert!(n1 > 0 && n2 > 0, "extents must be positive");
    let s1 = if b != 0 {
        Some((n1 - 1) / b.abs())
    } else {
        None
    };
    let s2 = if a != 0 {
        Some((n2 - 1) / a.abs())
    } else {
        None
    };
    match (s1, s2) {
        (Some(x), Some(y)) => x.min(y) + 1,
        (Some(x), None) => x + 1,
        (None, Some(y)) => y + 1,
        (None, None) => unreachable!("row is non-zero"),
    }
}

/// Rational (un-floored) maxspan, for the optimizer's objective.
pub fn maxspan_rational(row: (i64, i64), n: (i64, i64)) -> Rational {
    let (a, b) = row;
    let (n1, n2) = n;
    assert!(a != 0 || b != 0, "zero leading row");
    let s1 = (b != 0).then(|| Rational::new((n1 - 1) as i128, b.unsigned_abs() as i128));
    let s2 = (a != 0).then(|| Rational::new((n2 - 1) as i128, a.unsigned_abs() as i128));
    let s = match (s1, s2) {
        (Some(x), Some(y)) => x.min(y),
        (Some(x), None) => x,
        (None, Some(y)) => y,
        (None, None) => unreachable!(),
    };
    s + Rational::ONE
}

/// Eq. (2): estimated MWS of a 2-deep nest with uniformly generated
/// references `α₁·i + α₂·j + c_k` under a unimodular transformation with
/// leading row `(a, b)`:
/// `MWS ≈ maxspan · |α₂·a − α₁·b|`.
///
/// When `α₂·a − α₁·b = 0` the outer loop tracks the access function and
/// every inner iteration revisits one element: the window collapses to 1
/// (Example 7's compound transformation).
///
/// ```
/// // Example 8's original loop (identity transformation): 10·5 = 50.
/// assert_eq!(loopmem_core::two_level_estimate((2, 5), (1, 0), (25, 10)), 50);
/// // §4.2's optimum (a,b) = (2,3): 5·4 = 20 (exact value is 21).
/// assert_eq!(loopmem_core::two_level_estimate((2, 5), (2, 3), (25, 10)), 20);
/// ```
pub fn two_level_estimate(alpha: (i64, i64), row: (i64, i64), n: (i64, i64)) -> i64 {
    let w = (alpha.1 * row.0 - alpha.0 * row.1).abs();
    if w == 0 {
        return 1;
    }
    maxspan(row, n) * w
}

/// The continuous variant of [`two_level_estimate`] — §4.2's
/// branch-and-bound objective. At `α = (2,5)`, `row = (2,3)`,
/// `n = (25,10)` it evaluates to the paper's 22.
pub fn two_level_objective(alpha: (i64, i64), row: (i64, i64), n: (i64, i64)) -> Rational {
    let w = (alpha.1 * row.0 - alpha.0 * row.1).abs();
    if w == 0 {
        return Rational::ONE;
    }
    maxspan_rational(row, n) * Rational::from(w)
}

/// §4.3: estimated MWS of a 3-deep rectangular nest whose array reuses
/// along the (lexicographically positive) vector `d = (d₁, d₂, d₃)`:
///
/// * `d₂ ≤ 0`: `d₁(N₂−|d₂|)(N₃−|d₃|) + 1`
/// * `d₂ > 0`: `d₁(N₂−|d₂|)(N₃−|d₃|) + d₂(N₃−|d₃|)`
///
/// Example 10 (`d = (1,3,±3)`, `N = (10,20,30)`) yields the paper's 540.
///
/// # Panics
///
/// Panics if `d₁ < 0` (normalize reuse vectors lex-positive first).
pub fn three_level_estimate(d: (i64, i64, i64), n: (i64, i64, i64)) -> i64 {
    let (d1, d2, d3) = d;
    assert!(d1 >= 0, "reuse vector must be lexicographically positive");
    let (_, n2, n3) = n;
    let base = d1 * (n2 - d2.abs()).max(0) * (n3 - d3.abs()).max(0);
    if d2 <= 0 {
        base + 1
    } else {
        base + d2 * (n3 - d3.abs()).max(0)
    }
}

/// Our generalization for full-rank (`d = n`) accesses, documented in
/// DESIGN.md: a dependence of distance `δ` keeps its element live for the
/// number of iterations executed between source and sink,
/// `Σ_k δ_k · Π_{j>k} N_j`, so the window is at most one element per
/// intervening iteration (each iteration introduces at most one new live
/// element per uniformly generated group). The estimate is the maximum
/// over the dependence distances, plus the element entering at the sink.
pub fn lex_delay_estimate(distances: &[Vec<i64>], extents: &[i64]) -> i64 {
    let mut best = 0i64;
    for d in distances {
        assert_eq!(d.len(), extents.len(), "arity mismatch");
        let mut delay = 0i64;
        for k in 0..d.len() {
            let inner: i64 = extents[k + 1..].iter().product();
            delay += d[k].abs() * inner;
        }
        best = best.max(delay);
    }
    best + 1
}

/// Closed-form MWS estimate for a whole rectangular nest, without
/// simulation (the per-group §2.3 sum): eq. (2) at the identity
/// transformation for 2-deep 1-D uniformly generated groups, the §4.3
/// formula for 3-deep rank-deficient groups, and the lexicographic-delay
/// bound for everything else. Returns `None` for non-rectangular nests.
///
/// This is the cheap counterpart of `loopmem_sim::simulate(..).mws_total`
/// — an upper estimate in the paper's dense-reuse regime, used for quick
/// sizing and by the optimizer's candidate ranking.
pub fn estimate_nest_mws(nest: &loopmem_ir::LoopNest) -> Option<i64> {
    use loopmem_dep::uniform::uniform_groups;
    use loopmem_linalg::integer_nullspace;
    let ranges = nest.rectangular_ranges()?;
    let extents: Vec<i64> = ranges.iter().map(|&(lo, hi)| hi - lo + 1).collect();
    let n = nest.depth();
    let deps = loopmem_dep::analyze(nest);
    let mut total = 0i64;
    for g in uniform_groups(nest) {
        if n == 2 && g.matrix.nrows() == 1 {
            let alpha = (g.matrix[(0, 0)], g.matrix[(0, 1)]);
            total += two_level_estimate(alpha, (1, 0), (extents[0], extents[1]));
            continue;
        }
        let kernel = integer_nullspace(&g.matrix);
        if n == 3 && kernel.len() == 1 && g.len() == 1 {
            let v = loopmem_dep::vectors::make_lex_positive(&kernel[0]);
            total += three_level_estimate((v[0], v[1], v[2]), (extents[0], extents[1], extents[2]));
            continue;
        }
        let distances: Vec<Vec<i64>> = deps
            .iter()
            .filter(|d| d.array == g.array)
            .map(|d| d.distance.clone())
            .collect();
        if !distances.is_empty() {
            total += lex_delay_estimate(&distances, &extents);
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn maxspan_identity_rows() {
        // Row (1,0): inner loop is the original j loop => span N2.
        assert_eq!(maxspan((1, 0), (20, 30)), 30);
        // Row (0,1): interchange => span N1.
        assert_eq!(maxspan((0, 1), (20, 30)), 20);
    }

    #[test]
    fn maxspan_skewed_row() {
        // Row (2,3) over 25×10: min(24/3, 9/2) + 1 = min(8,4)+1 = 5.
        assert_eq!(maxspan((2, 3), (25, 10)), 5);
        assert_eq!(
            maxspan_rational((2, 3), (25, 10)),
            loopmem_linalg::Rational::new(11, 2)
        );
    }

    #[test]
    fn paper_4_2_objective_is_22() {
        let obj = two_level_objective((2, 5), (2, 3), (25, 10));
        assert_eq!(obj, loopmem_linalg::Rational::from(22));
    }

    #[test]
    fn example7_estimates() {
        let alpha = (2, -3);
        let n = (20, 30);
        // Original: row (1,0): 30·3 = 90 (Eisenbeis reports 89; exact 86).
        assert_eq!(two_level_estimate(alpha, (1, 0), n), 90);
        // Interchange: row (0,1): 20·2 = 40 (paper 41; exact 37).
        assert_eq!(two_level_estimate(alpha, (0, 1), n), 40);
        // Compound with leading row parallel to alpha: window collapses.
        assert_eq!(two_level_estimate(alpha, (2, -3), n), 1);
    }

    #[test]
    fn example10_is_540() {
        assert_eq!(three_level_estimate((1, 3, 3), (10, 20, 30)), 540);
        assert_eq!(three_level_estimate((1, 3, -3), (10, 20, 30)), 540);
    }

    #[test]
    fn three_level_nonpositive_d2_gets_plus_one() {
        // d = (1, 0, 2) over (10, 20, 30): 1·20·28 + 1 = 561.
        assert_eq!(three_level_estimate((1, 0, 2), (10, 20, 30)), 561);
        // Innermost-only reuse: d = (0,0,1): window of 1 element.
        assert_eq!(three_level_estimate((0, 0, 1), (10, 20, 30)), 1);
    }

    #[test]
    fn lex_delay_for_stencils() {
        // A[i][j] = A[i-1][j] over 16×16: distance (1,0) => 16 iterations
        // between def and use, window ≈ 17 (simulator: 16..17).
        assert_eq!(lex_delay_estimate(&[vec![1, 0]], &[16, 16]), 17);
        // Distance (0,1): immediate reuse, window 2.
        assert_eq!(lex_delay_estimate(&[vec![0, 1]], &[16, 16]), 2);
        // Maximum over several distances.
        assert_eq!(lex_delay_estimate(&[vec![0, 1], vec![1, 1]], &[16, 16]), 18);
    }

    #[test]
    #[should_panic(expected = "zero leading row")]
    fn zero_row_panics() {
        maxspan((0, 0), (10, 10));
    }

    #[test]
    fn nest_level_estimate_covers_the_paper_examples() {
        // Example 8 original order: eq. (2) gives 50.
        let e8 = parse(
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        // One uniformly generated group -> a single eq.(2) term of 50.
        assert_eq!(estimate_nest_mws(&e8), Some(50));
    }

    #[test]
    fn nest_level_estimate_example10_is_540() {
        let e10 = parse(
            "array A[61][51]\n\
             for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        )
        .unwrap();
        assert_eq!(estimate_nest_mws(&e10), Some(540));
    }

    #[test]
    fn nest_level_estimate_upper_bounds_simulation() {
        for src in [
            "array A[66][66]\nfor i = 2 to 64 { for j = 1 to 64 { A[i][j] = A[i-1][j] + A[i][j]; } }",
            "array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }",
        ] {
            let nest = parse(src).unwrap();
            let est = estimate_nest_mws(&nest).unwrap();
            let exact = loopmem_sim::simulate(&nest).mws_total as i64;
            assert!(exact <= est + 1, "{src}: exact {exact} vs est {est}");
        }
    }

    #[test]
    fn non_rectangular_returns_none() {
        let tri =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = i to 10 { A[i][j]; } }").unwrap();
        assert_eq!(estimate_nest_mws(&tri), None);
    }
}
