//! Distinct-access estimation (§3 of the paper).
//!
//! The number of distinct elements a nest references is the quantity that
//! actually has to fit in memory, and it is usually far below both the
//! declared array sizes and the iteration count because of reuse. The
//! paper's estimators read the reuse straight off the dependence structure:
//!
//! * `d = n`, `r` uniformly generated references (§3.1): one dependence per
//!   reference pair; the reuse claimed by the designated sink reference is
//!   `Σ Π_k (N_k − |δ_k|)` and `A_d = r·Π N_k − reuse`;
//! * `d = n − 1`, single reference (§3.2): reuse flows along the access
//!   matrix's null-space vector `v` and `A_d = Π N_k − Π (N_k − |v_k|)`;
//! * non-uniformly generated references (§3.2): exact distances do not
//!   exist; value-range bounds with coefficient-gap corrections give a
//!   close interval (module [`crate::nonuniform`]).
//!
//! Anything outside these shapes (the paper's "multiple references" case it
//! omits for space, kernels of dimension ≥ 2 with several references,
//! non-rectangular nests) falls back to exact enumeration via
//! `loopmem-poly`, flagged as [`Method::Enumerated`].

use crate::nonuniform;
use loopmem_dep::uniform::{uniform_groups, UniformGroup};
use loopmem_dep::vectors::lex_positive;
use loopmem_ir::{ArrayId, Bounds, BoundsMethod, LoopNest};
use loopmem_linalg::hnf::solve_diophantine;
use loopmem_linalg::integer_nullspace;
use std::collections::HashMap;

/// How an estimate was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// §3.1 closed form (`d = n`, uniformly generated).
    FullRankFormula,
    /// §3.2 null-space closed form (`d < n`, single reference).
    NullspaceFormula,
    /// Product of per-dimension counts for accesses whose subscript rows
    /// read disjoint loop variables (our documented extension; exact).
    SeparableProduct,
    /// Exact union of shifted boxes by inclusion–exclusion (our
    /// documented extension; fixes the §3.1 formula's overlap blindness).
    InclusionExclusion,
    /// §3.2 non-uniform value-range bounds.
    NonUniformBounds,
    /// Exact enumeration fallback (Clauss/Pugh-style, `loopmem-poly`).
    Enumerated,
}

/// A distinct-access estimate: an interval `[lower, upper]` plus the method
/// that produced it. Exact results have `lower == upper`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistinctEstimate {
    /// Lower bound on the distinct-access count.
    pub lower: i64,
    /// Upper bound on the distinct-access count.
    pub upper: i64,
    /// Provenance of the numbers.
    pub method: Method,
}

impl DistinctEstimate {
    fn exact(value: i64, method: Method) -> Self {
        DistinctEstimate {
            lower: value,
            upper: value,
            method,
        }
    }

    /// `true` when the interval is a single point.
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// The exact value, when there is one.
    pub fn value(&self) -> Option<i64> {
        self.is_exact().then_some(self.lower)
    }
}

/// Reuse volume of one dependence distance over extents `N_k`:
/// `Π_k max(0, N_k − |δ_k|)` — the shaded overlap region of Figure 1.
///
/// ```
/// // Example 1: dependence (3,2) on a 10×10 nest reuses 56 elements.
/// assert_eq!(loopmem_core::distinct::reuse_volume(&[10, 10], &[3, 2]), 56);
/// ```
pub fn reuse_volume(extents: &[i64], delta: &[i64]) -> i64 {
    assert_eq!(extents.len(), delta.len(), "arity mismatch");
    extents
        .iter()
        .zip(delta)
        .map(|(&n, &d)| (n - d.abs()).max(0))
        .product()
}

/// Estimates the distinct-access count of every array in the nest.
///
/// Applies the §3 formulas where their hypotheses hold and falls back to
/// exact enumeration elsewhere; the per-array [`Method`] records which path
/// ran. Non-rectangular (transformed) nests always enumerate.
pub fn estimate_distinct(nest: &LoopNest) -> HashMap<ArrayId, DistinctEstimate> {
    estimate_impl(nest, false)
}

/// Like [`estimate_distinct`], but replaces the §3.1 multi-reference
/// formula with the exact inclusion–exclusion union count
/// ([`crate::union_count`]) wherever it applies — our improvement over
/// the paper, exact for any number of full-rank uniformly generated
/// references.
pub fn estimate_distinct_exact(nest: &LoopNest) -> HashMap<ArrayId, DistinctEstimate> {
    estimate_impl(nest, true)
}

fn estimate_impl(nest: &LoopNest, exact_multiref: bool) -> HashMap<ArrayId, DistinctEstimate> {
    let mut out = HashMap::new();
    let rect = nest.rectangular_ranges();
    let groups = uniform_groups(nest);
    for (a, _) in nest.arrays().iter().enumerate() {
        let id = ArrayId(a);
        let my_groups: Vec<&UniformGroup> = groups.iter().filter(|g| g.array == id).collect();
        if my_groups.is_empty() {
            continue; // declared but never referenced
        }
        let est = match (&rect, my_groups.as_slice()) {
            (Some(ranges), [g]) => {
                let ie = (exact_multiref && g.len() > 1)
                    .then(|| crate::union_count::exact_union_count(g, ranges))
                    .flatten();
                ie.unwrap_or_else(|| estimate_single_group(nest, g, ranges))
            }
            (Some(ranges), gs) => {
                nonuniform::estimate_groups(gs, ranges).unwrap_or_else(|| enumerate(nest, id))
            }
            (None, _) => enumerate(nest, id),
        };
        out.insert(id, est);
    }
    out
}

/// Distinct-access estimates from the §3 closed forms *only* — no
/// enumeration fallback, ever. Returns `None` when the nest is not
/// rectangular, when any referenced array's reference shape falls outside
/// the formulas, or when the numbers are large enough that the formulas'
/// `i64` products could overflow.
///
/// The cost is polynomial in the nest *description*, never in the
/// iteration count, so budget-governed callers use it to produce
/// degradation bounds for nests far too large to sweep or enumerate.
pub fn estimate_distinct_closed_form(
    nest: &LoopNest,
) -> Option<HashMap<ArrayId, DistinctEstimate>> {
    let ranges = nest.rectangular_ranges()?;
    // Overflow guards: the closed forms multiply loop extents and sum one
    // term per reference, so cap the iteration volume (times the widest
    // group) well inside i64, and keep subscript coefficients and offsets
    // small enough that dependence-distance arithmetic stays exact.
    let volume: i128 = ranges.iter().fold(1i128, |acc, &(lo, hi)| {
        acc.saturating_mul((i128::from(hi) - i128::from(lo) + 1).max(0))
    });
    let groups = uniform_groups(nest);
    let widest = groups.iter().map(|g| g.len() as i128).max().unwrap_or(1);
    if volume.saturating_mul(widest + 1) >= 1 << 62 {
        return None;
    }
    let small = |v: i64| v.abs() <= 1 << 31;
    let tame = groups.iter().all(|g| {
        (0..g.matrix.nrows()).all(|r| g.matrix.row(r).iter().copied().all(small))
            && g.members
                .iter()
                .all(|(_, o, _)| o.iter().copied().all(small))
    });
    if !tame {
        return None;
    }
    let mut out = HashMap::new();
    for (a, _) in nest.arrays().iter().enumerate() {
        let id = ArrayId(a);
        let my: Vec<&UniformGroup> = groups.iter().filter(|g| g.array == id).collect();
        if my.is_empty() {
            continue;
        }
        let [g] = my.as_slice() else { return None };
        out.insert(id, closed_form_single_group(nest, g, &ranges)?);
    }
    Some(out)
}

/// [`estimate_single_group`] restricted to the pure closed forms: `None`
/// exactly where that function would fall back to enumeration.
fn closed_form_single_group(
    nest: &LoopNest,
    g: &UniformGroup,
    ranges: &[(i64, i64)],
) -> Option<DistinctEstimate> {
    let extents: Vec<i64> = ranges
        .iter()
        .map(|&(lo, hi)| (hi - lo + 1).max(0))
        .collect();
    let iter_count: i64 = extents.iter().product();
    let r = g.len() as i64;
    if g.matrix.rank() == nest.depth() {
        if r == 1 {
            return Some(DistinctEstimate::exact(iter_count, Method::FullRankFormula));
        }
        let reuse = full_rank_reuse(g, &extents)?;
        return Some(DistinctEstimate::exact(
            r * iter_count - reuse,
            Method::FullRankFormula,
        ));
    }
    let kernel = integer_nullspace(&g.matrix);
    let mut offsets: Vec<&Vec<i64>> = g.members.iter().map(|(_, o, _)| o).collect();
    offsets.sort();
    offsets.dedup();
    if offsets.len() > 1 {
        return None; // the paper's omitted multi-offset case: needs enumeration
    }
    if kernel.len() == 1 {
        let reuse = reuse_volume(&extents, &kernel[0]);
        return Some(DistinctEstimate::exact(
            iter_count - reuse,
            Method::NullspaceFormula,
        ));
    }
    separable_product(g, ranges)
}

/// Guaranteed MWS bounds without running anything: a nest's reference
/// window can never exceed the distinct elements it touches, so the summed
/// closed-form distinct uppers ([`estimate_distinct_closed_form`]) bound
/// the MWS from above whenever the §3 formulas apply; otherwise the
/// interval-analysis union-box enclosure
/// ([`loopmem_sim::analytic_nest_bounds`]) stands. Governed searches
/// return these bounds when a budget trips before the exact answer lands.
pub fn analytic_mws_bounds(nest: &LoopNest) -> Bounds {
    let base = loopmem_sim::analytic_nest_bounds(nest);
    let Some(ests) = estimate_distinct_closed_form(nest) else {
        return base;
    };
    let upper = ests
        .values()
        .fold(0u64, |acc, e| acc.saturating_add(e.upper.max(0) as u64));
    if upper < base.upper {
        Bounds {
            lower: 0,
            upper,
            method: BoundsMethod::ClosedForm,
        }
    } else {
        base
    }
}

/// Estimate for one array that the nest references (panics otherwise).
pub fn estimate_distinct_for(nest: &LoopNest, array: ArrayId) -> DistinctEstimate {
    *estimate_distinct(nest)
        .get(&array)
        .expect("array is not referenced by the nest")
}

fn enumerate(nest: &LoopNest, id: ArrayId) -> DistinctEstimate {
    let exact = loopmem_poly::count::distinct_accesses_for(nest, id) as i64;
    DistinctEstimate::exact(exact, Method::Enumerated)
}

fn estimate_single_group(
    nest: &LoopNest,
    g: &UniformGroup,
    ranges: &[(i64, i64)],
) -> DistinctEstimate {
    let extents: Vec<i64> = ranges.iter().map(|&(lo, hi)| hi - lo + 1).collect();
    let iter_count: i64 = extents.iter().product();
    let n = nest.depth();
    let r = g.len() as i64;
    let full_rank = g.matrix.rank() == n;

    if full_rank {
        if r == 1 {
            // Injective access: every iteration touches a fresh element.
            return DistinctEstimate::exact(iter_count, Method::FullRankFormula);
        }
        // §3.1: designate the sink reference (the one every other
        // reference's dependence points to) and sum the pairwise reuse.
        match full_rank_reuse(g, &extents) {
            Some(reuse) => DistinctEstimate::exact(r * iter_count - reuse, Method::FullRankFormula),
            None => enumerate_group(nest, g),
        }
    } else {
        let kernel = integer_nullspace(&g.matrix);
        // References with identical offsets touch identical elements, so
        // only the distinct offsets matter (this covers accumulation
        // statements like `C[i][j] = C[i][j] + ...`).
        let mut offsets: Vec<&Vec<i64>> = g.members.iter().map(|(_, o, _)| o).collect();
        offsets.sort();
        offsets.dedup();
        if offsets.len() == 1 && kernel.len() == 1 {
            // §3.2: reuse along the null-space vector.
            let reuse = reuse_volume(&extents, &kernel[0]);
            DistinctEstimate::exact(iter_count - reuse, Method::NullspaceFormula)
        } else if offsets.len() == 1 {
            // Kernels of dimension ≥ 2: try the separable product
            // extension, else enumerate.
            let _ = r;
            separable_product(g, ranges).unwrap_or_else(|| enumerate_group(nest, g))
        } else {
            // Multiple distinct offsets to a rank-deficient access — the
            // paper omits these ("multiple references ... not discussed
            // for lack of space"); we enumerate exactly.
            enumerate_group(nest, g)
        }
    }
}

fn enumerate_group(nest: &LoopNest, g: &UniformGroup) -> DistinctEstimate {
    enumerate(nest, g.array)
}

/// Exact distinct count when the subscript rows read pairwise-disjoint
/// loop variables: the image is then a Cartesian product, so the count is
/// the product of per-row distinct-value counts (each a 1-D closed form
/// from [`crate::nonuniform`]). Motion-estimation accesses like
/// `R[8cy + py][8cx + px]` are the canonical instance. Returns `None`
/// when rows share variables or a per-row closed form is unavailable.
fn separable_product(g: &UniformGroup, ranges: &[(i64, i64)]) -> Option<DistinctEstimate> {
    let d = g.matrix.nrows();
    let n = g.matrix.ncols();
    // Disjointness check.
    for col in 0..n {
        let users = (0..d).filter(|&row| g.matrix[(row, col)] != 0).count();
        if users > 1 {
            return None;
        }
    }
    let mut product: i64 = 1;
    for row in 0..d {
        let count = crate::nonuniform::single_function_count(g.matrix.row(row), ranges)?;
        product = product.checked_mul(count)?;
    }
    Some(DistinctEstimate::exact(product, Method::SeparableProduct))
}

/// §3.1 reuse: solve `A·δ = c_sink − c_other` for each non-sink reference
/// and sum the overlap volumes. The sink is the member whose incoming
/// distances are all lexicographically non-negative (it exists for
/// uniformly generated groups; ties collapse to equal offsets).
fn full_rank_reuse(g: &UniformGroup, extents: &[i64]) -> Option<i64> {
    let offsets: Vec<&Vec<i64>> = g.members.iter().map(|(_, o, _)| o).collect();
    let r = offsets.len();
    // Distance from member `a` toward member `b`: A·δ = c_a − c_b.
    let dist = |a: usize, b: usize| -> Option<Vec<i64>> {
        let rhs: Vec<i64> = offsets[a]
            .iter()
            .zip(offsets[b])
            .map(|(&x, &y)| x - y)
            .collect();
        solve_diophantine(&g.matrix, &rhs).map(|s| s.particular)
    };
    // Pick the sink: all incoming distances lex-positive or zero.
    let sink = (0..r).find(|&s| {
        (0..r).filter(|&o| o != s).all(|o| {
            dist(o, s)
                .map(|d| lex_positive(&d) || d.iter().all(|&x| x == 0))
                .unwrap_or(true) // no integer distance = no constraint
        })
    })?;
    let mut reuse = 0i64;
    for o in 0..r {
        if o == sink {
            continue;
        }
        if let Some(d) = dist(o, sink) {
            reuse += reuse_volume(extents, &d);
        }
    }
    Some(reuse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn reuse_volume_examples() {
        // Example 1(a)/(b): (10−3)(10−2) = 56 for dependence (3, 2).
        assert_eq!(reuse_volume(&[10, 10], &[3, 2]), 56);
        assert_eq!(reuse_volume(&[10, 10], &[-3, 2]), 56); // signs ignored
        assert_eq!(reuse_volume(&[10, 10], &[11, 0]), 0); // out of range
    }

    #[test]
    fn example2_exact() {
        // A_d = 2·N1·N2 − (N1−1)(N2−2).
        let nest = parse(
            "array A[30][30]\nfor i = 1 to 25 { for j = 1 to 20 { A[i][j] = A[i-1][j+2]; } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::FullRankFormula);
        assert_eq!(e.value(), Some(2 * 500 - 24 * 18));
        // Cross-check against enumeration (r = 2 is exact).
        assert_eq!(
            e.value().unwrap() as u64,
            loopmem_poly::count::distinct_accesses_for(&nest, ArrayId(0))
        );
    }

    #[test]
    fn example3_reproduces_papers_139() {
        let nest = parse(
            "array A[11][11]\n\
             for i = 1 to 10 { for j = 1 to 10 {\n\
               A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1];\n\
             } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::FullRankFormula);
        // reuse = 90 + 90 + 81 = 261; A_d = 400 − 261 = 139 (the paper's
        // number; the true union is 121 — see DESIGN.md).
        assert_eq!(e.value(), Some(139));
    }

    #[test]
    fn example4_exact_80() {
        let nest =
            parse("array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }").unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::NullspaceFormula);
        assert_eq!(e.value(), Some(80));
    }

    #[test]
    fn example5_exact_1869() {
        let nest = parse(
            "array A[61][51]\n\
             for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::NullspaceFormula);
        assert_eq!(e.value(), Some(1869));
    }

    #[test]
    fn example6_bounds() {
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::NonUniformBounds);
        assert_eq!(e.lower, 179); // the paper's lower bound
        assert_eq!(e.upper, 191); // the paper's upper bound
                                  // Exact count (182) sits inside.
        let exact = loopmem_poly::count::distinct_accesses_for(&nest, ArrayId(0)) as i64;
        assert!(e.lower <= exact && exact <= e.upper);
    }

    #[test]
    fn single_full_rank_reference_counts_iterations() {
        let nest =
            parse("array A[10][20]\nfor i = 1 to 10 { for j = 1 to 20 { A[i][j]; } }").unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.value(), Some(200));
        assert_eq!(e.method, Method::FullRankFormula);
    }

    #[test]
    fn pairs_without_integer_distance_contribute_no_reuse() {
        // A[2i][j] and A[2i+1][j]: disjoint parity classes, distinct
        // accesses are simply 2·N1·N2.
        let nest = parse(
            "array A[25][12]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i][j] = A[2i+1][j]; } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.value(), Some(200));
        assert_eq!(
            loopmem_poly::count::distinct_accesses_for(&nest, ArrayId(0)),
            200
        );
    }

    #[test]
    fn transformed_nest_falls_back_to_enumeration() {
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = i to 10 { A[i][j]; } }").unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::Enumerated);
        assert_eq!(e.value(), Some(55));
    }

    #[test]
    fn rank_deficient_multi_ref_enumerates() {
        // Example 8's X: two refs, rank-deficient — the paper's omitted
        // case; we enumerate exactly.
        let nest = parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::Enumerated);
        assert!(e.is_exact());
    }

    #[test]
    fn separable_product_on_motion_estimation_reference() {
        // R[8cy + py][8cx + px]: rows over disjoint variable pairs.
        let nest = parse(
            "array R[40][40]\n\
             for cy = 1 to 3 { for cx = 1 to 3 { for py = 1 to 16 { for px = 1 to 16 {\n\
               R[8*cy + py][8*cx + px];\n\
             } } } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::SeparableProduct);
        assert_eq!(e.value(), Some(32 * 32));
        assert_eq!(
            loopmem_poly::count::distinct_accesses_for(&nest, ArrayId(0)),
            1024
        );
    }

    #[test]
    fn separable_product_rejected_when_rows_share_variables() {
        // A[3i + k][j + k]: both rows read k — not separable, and the
        // kernel is 1-dimensional so the §3.2 formula applies instead.
        let nest = parse(
            "array A[61][51]\n\
             for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        )
        .unwrap();
        assert_eq!(
            estimate_distinct_for(&nest, ArrayId(0)).method,
            Method::NullspaceFormula
        );
    }

    #[test]
    fn accumulator_array_uses_separable_product() {
        // S[cy][cx] written and read with identical subscripts in a 4-deep
        // nest: offsets dedup, kernel dimension 2, rows separable.
        let nest = parse(
            "array S[3][3]\n\
             for cy = 1 to 3 { for cx = 1 to 3 { for py = 1 to 4 { for px = 1 to 4 {\n\
               S[cy][cx] = S[cy][cx] + 1;\n\
             } } } }",
        )
        .unwrap();
        let e = estimate_distinct_for(&nest, ArrayId(0));
        assert_eq!(e.method, Method::SeparableProduct);
        assert_eq!(e.value(), Some(9));
    }

    #[test]
    fn unreferenced_arrays_are_skipped() {
        let nest = parse("array A[10]\narray B[10]\nfor i = 1 to 10 { A[i]; }").unwrap();
        let all = estimate_distinct(&nest);
        assert!(all.contains_key(&ArrayId(0)));
        assert!(!all.contains_key(&ArrayId(1)));
    }
}
