//! Symbolic (parametric) versions of the paper's closed forms.
//!
//! The paper states its results as formulas over the loop limits —
//! `A_d = 2N₁N₂ − (N₁−1)(N₂−2)`, `MWS = d₁(N₂−|d₂|)(N₃−|d₃|)+…` — because
//! an embedded designer sizes memory before freezing the problem size.
//! This module re-derives those formulas *symbolically*: a small exact
//! multivariate polynomial type over named parameters, plus generators
//! that run the same §3/§4.3 case analysis as the numeric estimators but
//! keep the extents `N₁ … N_n` as variables.
//!
//! Dependence distances and reuse vectors never depend on the extents
//! (they come from access-matrix arithmetic alone), so the symbolic and
//! numeric paths share them; property tests pin
//! `formula.eval(sizes) == numeric(sizes)` across random sizes.

use crate::distinct::Method;
use loopmem_dep::uniform::uniform_groups;
use loopmem_ir::{ArrayId, LoopNest};
use loopmem_linalg::integer_nullspace;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A monomial: parameter name → exponent (empty = the constant monomial).
type Monomial = BTreeMap<String, u32>;

/// An exact multivariate polynomial with `i64` coefficients over named
/// parameters.
///
/// ```
/// use loopmem_core::symbolic::Poly;
/// let n1 = Poly::var("N1");
/// let n2 = Poly::var("N2");
/// let f = Poly::constant(2) * n1.clone() * n2.clone()
///     - (n1 - Poly::constant(1)) * (n2 - Poly::constant(2));
/// assert_eq!(f.to_string(), "N1*N2 + 2*N1 + N2 - 2");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i64) -> Poly {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Monomial::new(), c);
        }
        Poly { terms }
    }

    /// A single parameter.
    pub fn var(name: impl Into<String>) -> Poly {
        let mut m = Monomial::new();
        m.insert(name.into(), 1);
        let mut terms = BTreeMap::new();
        terms.insert(m, 1);
        Poly { terms }
    }

    /// `true` when the polynomial is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates with the given parameter values.
    ///
    /// # Panics
    ///
    /// Panics if a parameter is missing from `values` or on overflow.
    pub fn eval(&self, values: &HashMap<String, i64>) -> i64 {
        let mut acc: i128 = 0;
        for (m, &c) in &self.terms {
            let mut term: i128 = c as i128;
            for (name, &exp) in m {
                let v = *values
                    .get(name)
                    .unwrap_or_else(|| panic!("missing parameter '{name}'"))
                    as i128;
                for _ in 0..exp {
                    term = term.checked_mul(v).expect("symbolic eval overflow");
                }
            }
            acc = acc.checked_add(term).expect("symbolic eval overflow");
        }
        acc.try_into().expect("symbolic eval overflow")
    }

    fn insert(&mut self, m: Monomial, c: i64) {
        if c == 0 {
            return;
        }
        let entry = self.terms.entry(m).or_insert(0);
        *entry += c;
        if *entry == 0 {
            let key = self
                .terms
                .iter()
                .find(|(_, &v)| v == 0)
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.terms.remove(&k);
            }
        }
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        let mut out = self;
        for (m, c) in rhs.terms {
            out.insert(m, c);
        }
        out
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        self + (-rhs)
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        Poly {
            terms: self.terms.into_iter().map(|(m, c)| (m, -c)).collect(),
        }
    }
}

impl Mul for Poly {
    type Output = Poly;
    #[allow(clippy::suspicious_arithmetic_impl)] // monomial product adds exponents
    fn mul(self, rhs: Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, &ca) in &self.terms {
            for (mb, &cb) in &rhs.terms {
                let mut m = ma.clone();
                for (name, &exp) in mb {
                    *m.entry(name.clone()).or_insert(0) += exp;
                }
                out.insert(m, ca.checked_mul(cb).expect("symbolic mul overflow"));
            }
        }
        out
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Sort by descending total degree, then by monomial order, for a
        // stable human-friendly rendering.
        let mut terms: Vec<(&Monomial, &i64)> = self.terms.iter().collect();
        terms.sort_by(|(ma, _), (mb, _)| {
            let da: u32 = ma.values().sum();
            let db: u32 = mb.values().sum();
            db.cmp(&da).then_with(|| ma.cmp(mb))
        });
        for (idx, (m, &c)) in terms.iter().enumerate() {
            let mag = c.abs();
            if idx == 0 {
                if c < 0 {
                    write!(f, "-")?;
                }
            } else {
                write!(f, " {} ", if c < 0 { "-" } else { "+" })?;
            }
            let vars: Vec<String> = m
                .iter()
                .map(|(name, &e)| {
                    if e == 1 {
                        name.clone()
                    } else {
                        format!("{name}^{e}")
                    }
                })
                .collect();
            if vars.is_empty() {
                write!(f, "{mag}")?;
            } else if mag == 1 {
                write!(f, "{}", vars.join("*"))?;
            } else {
                write!(f, "{mag}*{}", vars.join("*"))?;
            }
        }
        Ok(())
    }
}

/// Default parameter names `N1 … Nn` for a nest's loop extents.
pub fn extent_names(n: usize) -> Vec<String> {
    (1..=n).map(|k| format!("N{k}")).collect()
}

/// Parameter assignment mapping each extent name to the nest's actual
/// extent (for checking formulas against the numeric path).
pub fn extent_values(nest: &LoopNest) -> Option<HashMap<String, i64>> {
    let ranges = nest.rectangular_ranges()?;
    Some(
        extent_names(nest.depth())
            .into_iter()
            .zip(ranges.iter().map(|&(lo, hi)| hi - lo + 1))
            .collect(),
    )
}

/// Symbolic reuse volume `Π_k (N_k − |δ_k|)` (Figure 1's region).
pub fn reuse_volume_sym(names: &[String], delta: &[i64]) -> Poly {
    assert_eq!(names.len(), delta.len(), "arity mismatch");
    names
        .iter()
        .zip(delta)
        .map(|(n, &d)| Poly::var(n.clone()) - Poly::constant(d.abs()))
        .fold(Poly::constant(1), |acc, f| acc * f)
}

/// A symbolic distinct-access formula with its provenance.
#[derive(Clone, Debug)]
pub struct SymbolicEstimate {
    /// The formula over `N1 … Nn`.
    pub formula: Poly,
    /// Which closed form produced it.
    pub method: Method,
}

/// Derives symbolic distinct-access formulas for every array the §3 closed
/// forms cover (full-rank, null-space, and separable cases whose per-row
/// counts are polynomial). Arrays needing enumeration or bounds are
/// omitted — there is no closed form to print.
pub fn distinct_formulas(nest: &LoopNest) -> HashMap<ArrayId, SymbolicEstimate> {
    let mut out = HashMap::new();
    let n = nest.depth();
    let names = extent_names(n);
    if nest.rectangular_ranges().is_none() {
        return out;
    }
    let total: Poly = names
        .iter()
        .fold(Poly::constant(1), |acc, nm| acc * Poly::var(nm.clone()));
    for g in uniform_groups(nest) {
        // One group per array only (non-uniform arrays have no closed form).
        if out.contains_key(&g.array) {
            out.remove(&g.array);
            continue;
        }
        let full_rank = g.matrix.rank() == n;
        let mut offsets: Vec<&Vec<i64>> = g.members.iter().map(|(_, o, _)| o).collect();
        offsets.sort();
        offsets.dedup();
        let est = if full_rank && offsets.len() == 1 {
            Some(SymbolicEstimate {
                formula: total.clone(),
                method: Method::FullRankFormula,
            })
        } else if full_rank {
            full_rank_sym(&g, &names, &total)
        } else if offsets.len() == 1 {
            let kernel = integer_nullspace(&g.matrix);
            if kernel.len() == 1 {
                Some(SymbolicEstimate {
                    formula: total.clone() - reuse_volume_sym(&names, &kernel[0]),
                    method: Method::NullspaceFormula,
                })
            } else {
                None // separable counts are affine in N but need the gap
                     // analysis; numeric path covers them
            }
        } else {
            None
        };
        if let Some(est) = est {
            out.insert(g.array, est);
        }
    }
    out
}

fn full_rank_sym(
    g: &loopmem_dep::UniformGroup,
    names: &[String],
    total: &Poly,
) -> Option<SymbolicEstimate> {
    use loopmem_dep::vectors::lex_positive;
    use loopmem_linalg::hnf::solve_diophantine;
    let offsets: Vec<&Vec<i64>> = g.members.iter().map(|(_, o, _)| o).collect();
    let r = offsets.len();
    let dist = |a: usize, b: usize| -> Option<Vec<i64>> {
        let rhs: Vec<i64> = offsets[a]
            .iter()
            .zip(offsets[b])
            .map(|(&x, &y)| x - y)
            .collect();
        solve_diophantine(&g.matrix, &rhs).map(|s| s.particular)
    };
    let sink = (0..r).find(|&s| {
        (0..r).filter(|&o| o != s).all(|o| {
            dist(o, s)
                .map(|d| lex_positive(&d) || d.iter().all(|&x| x == 0))
                .unwrap_or(true)
        })
    })?;
    let mut reuse = Poly::zero();
    for o in 0..r {
        if o == sink {
            continue;
        }
        if let Some(d) = dist(o, sink) {
            reuse = reuse + reuse_volume_sym(names, &d);
        }
    }
    Some(SymbolicEstimate {
        formula: Poly::constant(r as i64) * total.clone() - reuse,
        method: Method::FullRankFormula,
    })
}

/// Symbolic §4.3 three-level MWS for reuse vector `d` (lex-positive).
///
/// # Panics
///
/// Panics unless `names.len() == 3` or `d₁ < 0`.
pub fn three_level_mws_sym(names: &[String], d: (i64, i64, i64)) -> Poly {
    assert_eq!(names.len(), 3, "three extent names required");
    assert!(d.0 >= 0, "reuse vector must be lexicographically positive");
    let n2 = Poly::var(names[1].clone());
    let n3 = Poly::var(names[2].clone());
    let base = Poly::constant(d.0)
        * (n2 - Poly::constant(d.1.abs()))
        * (n3.clone() - Poly::constant(d.2.abs()));
    if d.1 <= 0 {
        base + Poly::constant(1)
    } else {
        base + Poly::constant(d.1) * (n3 - Poly::constant(d.2.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    fn values(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn poly_algebra() {
        let n = Poly::var("N");
        let f = (n.clone() - Poly::constant(1)) * (n.clone() + Poly::constant(1));
        assert_eq!(f.to_string(), "N^2 - 1");
        assert_eq!(f.eval(&values(&[("N", 7)])), 48);
        assert!((f.clone() - f).is_zero());
        assert_eq!(Poly::zero().to_string(), "0");
        assert_eq!((-Poly::var("x")).to_string(), "-x");
    }

    #[test]
    fn example2_symbolic_formula() {
        let nest = parse(
            "array A[40][40]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
        )
        .unwrap();
        let fs = distinct_formulas(&nest);
        let est = &fs[&ArrayId(0)];
        // 2N1N2 - (N1-1)(N2-2) expanded.
        assert_eq!(est.formula.to_string(), "N1*N2 + 2*N1 + N2 - 2");
        // Evaluating at the nest's own sizes matches the numeric path.
        let v = extent_values(&nest).unwrap();
        assert_eq!(
            est.formula.eval(&v),
            crate::distinct::estimate_distinct_for(&nest, ArrayId(0)).upper
        );
        // And at a different size, it matches the paper's closed form.
        assert_eq!(
            est.formula.eval(&values(&[("N1", 25), ("N2", 20)])),
            2 * 500 - 24 * 18
        );
    }

    #[test]
    fn example4_symbolic_formula() {
        let nest =
            parse("array A[500]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }").unwrap();
        let fs = distinct_formulas(&nest);
        let est = &fs[&ArrayId(0)];
        assert_eq!(est.method, Method::NullspaceFormula);
        // N1N2 - (N1-5)(N2-2) = 2N1 + 5N2 - 10.
        assert_eq!(est.formula.to_string(), "2*N1 + 5*N2 - 10");
        assert_eq!(est.formula.eval(&values(&[("N1", 20), ("N2", 10)])), 80);
    }

    #[test]
    fn example10_symbolic_mws() {
        let names = extent_names(3);
        let f = three_level_mws_sym(&names, (1, 3, 3));
        assert_eq!(f.eval(&values(&[("N1", 10), ("N2", 20), ("N3", 30)])), 540);
        // (N2-3)(N3-3) + 3(N3-3) expands to N2*N3 - 3*N2.
        assert_eq!(f.to_string(), "N2*N3 - 3*N2");
    }

    #[test]
    fn reuse_volume_symbolic_matches_numeric() {
        let names = extent_names(2);
        let f = reuse_volume_sym(&names, &[3, -2]);
        for (n1, n2) in [(10i64, 10i64), (25, 17), (4, 9)] {
            assert_eq!(
                f.eval(&values(&[("N1", n1), ("N2", n2)])),
                // The numeric path clamps at zero; compare in the
                // non-degenerate regime.
                (n1 - 3) * (n2 - 2)
            );
        }
    }

    #[test]
    fn nonuniform_arrays_have_no_formula() {
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        assert!(distinct_formulas(&nest).is_empty());
    }

    #[test]
    fn symbolic_matches_numeric_across_sizes() {
        // Re-parse the same kernel at several sizes; one symbolic formula
        // must predict all of them.
        let template = |n1: i64, n2: i64| {
            format!(
                "array A[99][99]\nfor i = 1 to {n1} {{ for j = 1 to {n2} {{ \
                 A[i + 3][j + 3] = A[i + 1][j + 2] + A[i + 2][j + 1]; }} }}"
            )
        };
        let base = parse(&template(10, 10)).unwrap();
        let est = distinct_formulas(&base)
            .remove(&ArrayId(0))
            .expect("closed form exists");
        for (n1, n2) in [(10i64, 10i64), (14, 9), (20, 20), (7, 13)] {
            let nest = parse(&template(n1, n2)).unwrap();
            let numeric = crate::distinct::estimate_distinct_for(&nest, ArrayId(0)).upper;
            assert_eq!(
                est.formula.eval(&values(&[("N1", n1), ("N2", n2)])),
                numeric,
                "sizes ({n1},{n2})"
            );
        }
    }
}
