//! One-call memory analysis: the numbers behind Figure 2's columns.

use crate::distinct::{estimate_distinct, DistinctEstimate};
use loopmem_ir::{ArrayId, LoopNest};
use loopmem_sim::simulate;
use std::collections::HashMap;

/// Memory-requirement analysis of one nest.
#[derive(Clone, Debug)]
pub struct MemoryAnalysis {
    /// Declared elements over all arrays — Figure 2's *default* column.
    pub default_words: i64,
    /// Estimated distinct accesses per array (§3 formulas or bounds).
    pub distinct: HashMap<ArrayId, DistinctEstimate>,
    /// Exact per-array MWS from the simulator.
    pub mws_per_array: HashMap<ArrayId, u64>,
    /// Exact total MWS (peak of summed windows) — the minimum buffer that
    /// captures all reuse.
    pub mws_exact: u64,
    /// Exact distinct accesses summed over arrays (simulator ground truth).
    pub distinct_exact_total: u64,
}

impl MemoryAnalysis {
    /// Percentage reduction of `value` relative to the declared size
    /// (Figure 2's parenthesized numbers).
    pub fn reduction_percent(&self, value: u64) -> f64 {
        if self.default_words <= 0 {
            return 0.0;
        }
        100.0 * (1.0 - value as f64 / self.default_words as f64)
    }

    /// Summed estimated distinct accesses (upper bounds when inexact).
    pub fn distinct_estimate_total(&self) -> i64 {
        self.distinct.values().map(|e| e.upper).sum()
    }
}

/// Runs both the closed-form estimators and the exact simulator on a nest.
///
/// ```
/// let nest = loopmem_ir::parse(r#"
///     array A[111]
///     for i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }
/// "#).unwrap();
/// let m = loopmem_core::analyze_memory(&nest);
/// assert_eq!(m.default_words, 111);
/// assert_eq!(m.distinct_exact_total, 80);
/// assert_eq!(m.distinct[&loopmem_ir::ArrayId(0)].value(), Some(80));
/// ```
pub fn analyze_memory(nest: &LoopNest) -> MemoryAnalysis {
    let distinct = estimate_distinct(nest);
    let sim = simulate(nest);
    MemoryAnalysis {
        default_words: nest.default_memory(),
        distinct,
        mws_per_array: sim.per_array.iter().map(|(&id, s)| (id, s.mws)).collect(),
        mws_exact: sim.mws_total,
        distinct_exact_total: sim.distinct_total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse;

    #[test]
    fn estimates_match_simulator_when_exact() {
        // Every §3 "exact" case must agree with the trace.
        for src in [
            "array A[30][30]\nfor i = 1 to 25 { for j = 1 to 20 { A[i][j] = A[i-1][j+2]; } }",
            "array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }",
            "array A[61][51]\nfor i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        ] {
            let nest = parse(src).unwrap();
            let m = analyze_memory(&nest);
            for (id, est) in &m.distinct {
                if let Some(v) = est.value() {
                    let exact = loopmem_poly::count::distinct_accesses_for(&nest, *id) as i64;
                    if est.method != crate::distinct::Method::FullRankFormula
                        || nest.refs().count() <= 2
                    {
                        assert_eq!(v, exact, "estimate vs trace for {src}");
                    }
                }
            }
            assert!(m.mws_exact <= m.distinct_exact_total);
        }
    }

    #[test]
    fn bounds_bracket_truth() {
        let nest = parse(
            "array A[200]\n\
             for i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
        )
        .unwrap();
        let m = analyze_memory(&nest);
        let e = m.distinct[&ArrayId(0)];
        let exact = m.distinct_exact_total as i64;
        assert!(e.lower <= exact && exact <= e.upper);
    }

    #[test]
    fn reduction_percent_math() {
        let nest = parse("array A[1000]\nfor i = 1 to 10 { A[i]; }").unwrap();
        let m = analyze_memory(&nest);
        assert_eq!(m.default_words, 1000);
        assert!((m.reduction_percent(100) - 90.0).abs() < 1e-9);
        assert!((m.reduction_percent(1000) - 0.0).abs() < 1e-9);
    }
}
