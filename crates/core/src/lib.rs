#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `loopmem-core` — the paper's contribution: estimating and reducing the
//! memory requirements of nested loops.
//!
//! Reproduction of J. Ramanujam, J. Hong, M. Kandemir, A. Narayan,
//! *"Reducing Memory Requirements of Nested Loops for Embedded Systems"*,
//! DAC 2001. The crate implements both halves of the paper:
//!
//! **Estimation** (§3) — how many distinct array elements does a nest touch,
//! and how large does its reference window get?
//!
//! * [`distinct`] — dependence-based distinct-access formulas: exact for
//!   uniformly generated references with full-rank (`d = n`) and
//!   rank-deficient (`d = n−1`) access matrices, and tight bounds for
//!   non-uniformly generated references ([`nonuniform`]);
//! * [`mws`] — maximum-window-size closed forms: eq. (2) for 2-deep nests
//!   under a unimodular transformation and the §4.3 formula for 3-deep
//!   nests, plus the continuous objective the optimizer minimizes;
//! * [`estimator`] — one-call memory analysis combining the formulas with
//!   the exact simulator.
//!
//! **Optimization** (§4) — find a legal, tileable unimodular transformation
//! minimizing the MWS:
//!
//! * [`transform`] — applies a unimodular matrix to a nest, regenerating
//!   bounds by Fourier–Motzkin and rewriting every reference;
//! * [`optimize`] — the compound-transformation search (branch-and-bound
//!   over the leading row, unimodular completion, exact re-evaluation),
//!   with the paper's two points of comparison as selectable baselines:
//!   interchange+reversal only (Eisenbeis et al.) and Li–Pingali
//!   access-matrix completion.
//!
//! # Quickstart
//!
//! ```
//! use loopmem_core::{estimator::analyze_memory, optimize::{minimize_mws, SearchMode}};
//!
//! // Example 8 of the paper.
//! let nest = loopmem_ir::parse(r#"
//!     array X[200]
//!     for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }
//! "#).unwrap();
//!
//! let before = analyze_memory(&nest);
//! let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
//! assert!(opt.mws_after < before.mws_exact);
//! assert_eq!(opt.mws_after, 21); // the paper's "actual minimum MWS"
//! ```

pub mod bnb;
pub mod cert;
pub mod chaos;
pub mod classify;
pub mod distinct;
pub mod estimator;
pub mod fusion;
pub mod mws;
pub mod nonuniform;
pub mod optimize;
pub mod program_opt;
pub mod scratchpad;
pub mod session;
pub mod symbolic;
pub mod tile;
pub mod transform;
pub mod union_count;

pub use bnb::{branch_and_bound, try_branch_and_bound, BnbResult};
pub use cert::{
    certify_bnb, certify_bounds, certify_degraded, certify_fusion, certify_governed_scratchpad,
    certify_optimization, certify_sizing, trace_certificates,
};
pub use chaos::{chaos_program, chaos_source, ChaosReport};
pub use classify::{classify_formulas, ArrayClassification, FormulaClass};
pub use distinct::{
    analytic_mws_bounds, estimate_distinct, estimate_distinct_closed_form, estimate_distinct_exact,
    DistinctEstimate, Method,
};
pub use estimator::{analyze_memory, MemoryAnalysis};
pub use fusion::{fuse, FusionError};
pub use mws::{estimate_nest_mws, three_level_estimate, two_level_estimate, two_level_objective};
pub use optimize::{
    memo_stats, minimize_mws, minimize_mws_traced, minimize_mws_with_threads, nest_mws_memoized,
    try_minimize_mws, try_minimize_mws_with_threads, Optimization, OptimizeError, SearchMode,
};
pub use program_opt::{
    analyze_program, optimize_program, optimize_program_with_threads, try_optimize_program,
    try_optimize_program_with_threads, GovernedProgramOptimization, ProgramAnalysis,
    ProgramOptimization,
};
pub use scratchpad::{
    scratchpad_program, scratchpad_program_with_threads, scratchpad_with_fusion,
    scratchpad_with_fusion_traced, try_scratchpad_program, try_scratchpad_program_tracked,
    try_scratchpad_program_with_threads, try_scratchpad_with_fusion, FusionStep,
    GovernedScratchpad, NestTerm, ScratchpadPlan, ScratchpadSizing,
};
pub use session::Session;
pub use symbolic::{distinct_formulas, Poly, SymbolicEstimate};
pub use tile::{tile, tile_count, TileError};
pub use transform::{apply_transform, TransformError};
pub use union_count::exact_union_count;
