//! Certificate emission: the bridge from the optimizer's answers to the
//! proof-carrying layer in `loopmem-verify`.
//!
//! Every function here converts a *result the user will act on* into the
//! evidence the independent checker replays: legality certificates carry
//! the full `T·δ` evaluation table, optimality certificates carry the
//! evaluated candidate frontier, cone-prune certificates carry the rank-1
//! direction plus every discarded box, sizing/fusion certificates carry
//! the arithmetic behind the scratchpad number, and degraded (`try_*`)
//! outcomes yield bounds certificates instead of silence. Emission lives
//! in `loopmem-core` on purpose — the checker in `loopmem-verify` never
//! imports this crate, so a bug here is caught rather than inherited
//! (DESIGN.md §14).

use crate::bnb::BnbResult;
use crate::optimize::Optimization;
use crate::scratchpad::{GovernedScratchpad, ScratchpadPlan, ScratchpadSizing};
use loopmem_dep::{analyze, constraining_distances, is_tileable};
use loopmem_ir::{AnalysisError, Bounds, LoopNest};
use loopmem_linalg::IMat;
use loopmem_obs::{EventKind, Phase, TraceEvent, TraceSink};
use loopmem_verify::{
    BoundsCert, Certificate, ConePruneCert, DistanceImage, FrontierEntry, FusionCert, FusionStep,
    LegalityCert, OptimalityCert, PrunedBox, SizingCert, SizingTerm,
};
use std::sync::Arc;

fn rows_of(t: &IMat) -> Vec<Vec<i64>> {
    t.rows_iter().map(<[i64]>::to_vec).collect()
}

/// Certificates for a successful [`minimize_mws`](crate::minimize_mws)-family
/// answer on `nest` (program position `nest_index`): one legality
/// certificate for the winner, one optimality certificate over the
/// evaluated frontier, and one exact bounds certificate pinning the
/// nest's MWS.
///
/// The identity row is appended to the frontier (at `mws_before`) if the
/// search did not record it, so the checker can always confirm
/// `mws_after <= mws_before`.
pub fn certify_optimization(
    nest_index: usize,
    nest: &LoopNest,
    opt: &Optimization,
) -> Vec<Certificate> {
    let deps = analyze(nest);
    let evaluations = constraining_distances(&deps)
        .into_iter()
        .map(|distance| {
            let image = opt.transform.mul_vec(&distance);
            DistanceImage { distance, image }
        })
        .collect();
    let legality = LegalityCert {
        nest: nest_index,
        transform: rows_of(&opt.transform),
        evaluations,
        tileable: is_tileable(&opt.transform, &deps),
    };
    let mut frontier: Vec<FrontierEntry> = opt
        .evaluated
        .iter()
        .map(|(t, mws)| FrontierEntry {
            transform: rows_of(t),
            mws: *mws,
        })
        .collect();
    let identity = rows_of(&IMat::identity(nest.depth()));
    if !frontier.iter().any(|f| f.transform == identity) {
        frontier.push(FrontierEntry {
            transform: identity,
            mws: opt.mws_before,
        });
    }
    let optimality = OptimalityCert {
        nest: nest_index,
        mws_before: opt.mws_before,
        mws_after: opt.mws_after,
        transform: rows_of(&opt.transform),
        frontier,
    };
    let exact = BoundsCert {
        nest: Some(nest_index),
        quantity: "nest-mws".into(),
        method: "exact".into(),
        lower: opt.mws_before,
        upper: opt.mws_before,
        reason: "exact simulation of the original nest".into(),
    };
    vec![
        Certificate::Legality(legality),
        Certificate::Optimality(optimality),
        Certificate::Bounds(exact),
    ]
}

/// Cone-prune certificate for a branch-and-bound run on `nest_index`,
/// when the dependence cone collapsed to a line and actually discarded
/// boxes. `bound` must be the search bound the run used — the rank-1
/// claim is only certified over that box.
pub fn certify_bnb(nest_index: usize, bound: i64, result: &BnbResult) -> Option<Certificate> {
    let (v1, v2) = result.cone_direction?;
    if result.pruned_boxes.is_empty() {
        return None;
    }
    Some(Certificate::ConePrune(ConePruneCert {
        nest: nest_index,
        bound,
        direction: vec![v1, v2],
        boxes: result
            .pruned_boxes
            .iter()
            .map(|&(alo, ahi, blo, bhi)| PrunedBox { alo, ahi, blo, bhi })
            .collect(),
    }))
}

/// Bounds certificate from interval `bounds` on `quantity`
/// (`"nest-mws"` or `"program-words"`).
pub fn certify_bounds(
    nest_index: Option<usize>,
    quantity: &str,
    bounds: &Bounds,
    reason: impl Into<String>,
) -> Certificate {
    Certificate::Bounds(BoundsCert {
        nest: nest_index,
        quantity: quantity.into(),
        method: bounds.method.to_string(),
        lower: bounds.lower,
        upper: bounds.upper,
        reason: reason.into(),
    })
}

/// Bounds certificate for a *degraded* single-nest outcome: the governed
/// ladder's salvaged interval when the error carries one, else the
/// analytic union-box enclosure of the nest — never silence.
pub fn certify_degraded(nest_index: usize, nest: &LoopNest, error: &AnalysisError) -> Certificate {
    let bounds = error
        .bounds()
        .unwrap_or_else(|| crate::distinct::analytic_mws_bounds(nest));
    certify_bounds(Some(nest_index), "nest-mws", &bounds, error.to_string())
}

/// Sizing certificate reproducing the `max_k(MWS_k + live_through_k)`
/// arithmetic of an exact scratchpad sizing.
pub fn certify_sizing(sizing: &ScratchpadSizing) -> Certificate {
    Certificate::Sizing(SizingCert {
        per_nest: sizing
            .per_nest
            .iter()
            .map(|t| SizingTerm {
                mws: t.mws,
                live_through: t.live_through,
            })
            .collect(),
        boundary_live: sizing.boundary_live.clone(),
        peak_nest: sizing.peak_nest,
        words: sizing.words,
    })
}

/// Fusion certificate for a completed fusion search: the strict-decrease
/// chain of accepted steps from the unfused to the fused sizing.
pub fn certify_fusion(plan: &ScratchpadPlan) -> Certificate {
    Certificate::Fusion(FusionCert {
        unfused: plan.unfused.words,
        fused: plan.fused.words,
        steps: plan
            .steps
            .iter()
            .map(|s| FusionStep {
                at: s.at,
                before: s.words_before,
                after: s.words_after,
            })
            .collect(),
    })
}

/// Certificates for a governed scratchpad outcome: a program-words bounds
/// certificate (a point interval when every nest simulated exactly, the
/// honest `PartialProgram` interval otherwise) plus a sizing certificate
/// when the sizing is exact.
pub fn certify_governed_scratchpad(governed: &GovernedScratchpad) -> Vec<Certificate> {
    let mut out = Vec::new();
    let reason = if governed.all_exact() {
        "every nest simulated exactly".to_string()
    } else {
        let failed: Vec<String> = governed
            .per_nest
            .iter()
            .enumerate()
            .filter_map(|(k, r)| r.as_ref().err().map(|e| format!("nest {k}: {e}")))
            .collect();
        failed.join("; ")
    };
    out.push(certify_bounds(
        None,
        "program-words",
        &governed.words,
        reason,
    ));
    if governed.all_exact() {
        out.push(certify_sizing(&governed.sizing));
    }
    out
}

/// Records one `certificate` event per element of `certs` into `sink`
/// (phase `verify`, `ord` = position in the slice), so traces account
/// for every certificate a run emitted without duplicating their
/// payloads. No-op when the sink is disabled.
pub fn trace_certificates(sink: &Arc<dyn TraceSink>, certs: &[Certificate]) {
    if !sink.enabled() {
        return;
    }
    sink.record_all(
        certs
            .iter()
            .enumerate()
            .map(|(i, c)| TraceEvent {
                phase: Phase::Verify,
                nest: None,
                ord: (i as u64, 0),
                thread: 0,
                kind: EventKind::Certificate { kind: c.kind() },
            })
            .collect(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::{minimize_mws, SearchMode};
    use crate::scratchpad::{scratchpad_with_fusion, try_scratchpad_program};
    use loopmem_ir::{parse, parse_program};
    use loopmem_sim::AnalysisBudget;
    use loopmem_verify::check_certificates;

    fn example8() -> LoopNest {
        parse(
            "array X[200]\n\
             for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        )
        .unwrap()
    }

    #[test]
    fn optimizer_answers_carry_valid_certificates() {
        let nest = example8();
        let opt = minimize_mws(&nest, SearchMode::default()).unwrap();
        let certs = certify_optimization(0, &nest, &opt);
        assert_eq!(certs.len(), 3);
        let program = loopmem_ir::Program::new(vec![nest]).unwrap();
        assert_eq!(check_certificates(&program, &certs), vec![]);
    }

    #[test]
    fn bnb_cone_prunes_carry_valid_certificates() {
        let nest = parse(
            "array A[100][100]\n\
             for i = 2 to 99 {\n\
               for j = 10 to 90 {\n\
                 A[i][j] = A[i-1][j+9] + A[i-1][j-9];\n\
               }\n\
             }",
        )
        .unwrap();
        let deps = loopmem_dep::analyze(&nest);
        let r = crate::bnb::branch_and_bound((1, 2), &deps, (98, 81), 8).unwrap();
        let cert = certify_bnb(0, 8, &r).expect("rank-1 cone must certify its prunes");
        let program = loopmem_ir::Program::new(vec![nest]).unwrap();
        assert_eq!(check_certificates(&program, &[cert]), vec![]);
    }

    #[test]
    fn degraded_outcomes_yield_checkable_bounds() {
        let nest = example8();
        let budget = AnalysisBudget::unlimited().with_max_iterations(10);
        let e = crate::optimize::try_minimize_mws(&nest, SearchMode::default(), &budget)
            .expect_err("ten iterations cannot cover 250");
        let cert = certify_degraded(0, &nest, &e);
        let program = loopmem_ir::Program::new(vec![nest]).unwrap();
        assert_eq!(check_certificates(&program, &[cert]), vec![]);
    }

    #[test]
    fn scratchpad_answers_carry_valid_certificates() {
        let program = parse_program(
            "array A[16][16]\narray B[16][16]\narray C[16][16]\n\
             for i = 1 to 16 { for j = 1 to 16 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 16 { for j = 1 to 16 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap();
        let plan = scratchpad_with_fusion(&program, 1);
        let mut certs = vec![certify_sizing(&plan.unfused), certify_fusion(&plan)];
        let governed = try_scratchpad_program(&program, &AnalysisBudget::unlimited()).unwrap();
        certs.extend(certify_governed_scratchpad(&governed));
        assert_eq!(check_certificates(&program, &certs), vec![]);
    }
}
