//! Loop fusion across adjacent nests (multi-nest extension).
//!
//! The program analysis shows that producer/consumer pairs keep whole
//! arrays live across nest boundaries, which no unimodular reordering can
//! fix. Fusion can: executing both bodies in one traversal lets each
//! element die iterations — not nests — after its production. This module
//! fuses *conformable* adjacent nests (identical loop ranges) when no
//! fusion-preventing dependence exists.
//!
//! Legality is checked exactly, on the trace: fusing is illegal iff some
//! element is touched at iteration `I` of the first nest and at a
//! lexicographically *earlier* iteration `J ≺ I` of the second with at
//! least one write among the two touches — in the fused order that
//! access pair would flip.

use loopmem_ir::{AccessKind, LoopNest, Program, ProgramError, Statement};
use loopmem_sim::for_each_iteration;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why two nests could not be fused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusionError {
    /// Index out of range (needs `k + 1 < program.len()`).
    NoSuchPair(usize),
    /// The nests' loop ranges differ (only conformable nests fuse).
    NotConformable,
    /// A dependence would be violated: element of array `array_name`
    /// touched at `first` (nest `k`) and earlier iteration `second`
    /// (nest `k+1`).
    FusionPreventingDependence {
        /// Array involved.
        array_name: String,
        /// Iteration in the first nest.
        first: Vec<i64>,
        /// (Earlier) iteration in the second nest.
        second: Vec<i64>,
    },
    /// Rebuilding the program failed.
    Program(ProgramError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::NoSuchPair(k) => write!(f, "no nest pair at index {k}"),
            FusionError::NotConformable => write!(f, "nests have different loop ranges"),
            FusionError::FusionPreventingDependence {
                array_name,
                first,
                second,
            } => write!(
                f,
                "fusion-preventing dependence on {array_name}: \
                 nest-1 iteration {first:?} vs earlier nest-2 iteration {second:?}"
            ),
            FusionError::Program(e) => write!(f, "program rebuild failed: {e}"),
        }
    }
}

impl Error for FusionError {}

impl From<ProgramError> for FusionError {
    fn from(e: ProgramError) -> Self {
        FusionError::Program(e)
    }
}

/// Fuses nests `k` and `k+1` of the program, validating conformability
/// and (exactly) dependence preservation.
///
/// # Errors
///
/// See [`FusionError`].
pub fn fuse(program: &Program, k: usize) -> Result<Program, FusionError> {
    if k + 1 >= program.len() {
        return Err(FusionError::NoSuchPair(k));
    }
    let first = &program.nests()[k];
    let second = &program.nests()[k + 1];
    if first.rectangular_ranges().is_none()
        || first.rectangular_ranges() != second.rectangular_ranges()
    {
        return Err(FusionError::NotConformable);
    }
    check_legality(first, second, program)?;

    // Fused body: statements of the first nest then of the second; the
    // second nest's variables are positionally identified with the
    // first's.
    let mut statements: Vec<Statement> = first.statements().to_vec();
    statements.extend(second.statements().iter().cloned());
    let fused = LoopNest::new(
        first.loops().to_vec(),
        program.arrays().to_vec(),
        statements,
    )
    .expect("conformable fusion yields a valid nest");

    let mut nests: Vec<LoopNest> = program.nests().to_vec();
    nests.splice(k..=k + 1, [fused]);
    Program::new(nests).map_err(FusionError::from)
}

/// Exact legality. Fusing swaps exactly the access pairs
/// `(nest-1 touch at iteration I, nest-2 touch at iteration J)` with
/// `I ≻ J` (within one iteration the first nest's statements still run
/// first). A swapped pair breaks semantics iff it involves a write:
///
/// * a nest-2 *write* at `J` conflicts with any nest-1 touch after `J`;
/// * a nest-2 *read* at `J` conflicts only with a nest-1 *write* after
///   `J` — later nest-1 reads of the same element reorder harmlessly.
fn check_legality(
    first: &LoopNest,
    second: &LoopNest,
    program: &Program,
) -> Result<(), FusionError> {
    #[derive(Clone)]
    struct Touch {
        last_touch: Vec<i64>,
        last_write: Option<Vec<i64>>,
    }
    let mut in_first: HashMap<(usize, Vec<i64>), Touch> = HashMap::new();
    for_each_iteration(first, |it| {
        for r in first.refs() {
            let e = in_first
                .entry((r.array.0, r.index_at(it)))
                .or_insert(Touch {
                    last_touch: it.to_vec(),
                    last_write: None,
                });
            e.last_touch = it.to_vec();
            if r.kind == AccessKind::Write {
                e.last_write = Some(it.to_vec());
            }
        }
    });
    let mut violation: Option<FusionError> = None;
    for_each_iteration(second, |it| {
        if violation.is_some() {
            return;
        }
        for r in second.refs() {
            let key = (r.array.0, r.index_at(it));
            let Some(t) = in_first.get(&key) else {
                continue;
            };
            let conflicting = match r.kind {
                AccessKind::Write => (it.to_vec() < t.last_touch).then(|| t.last_touch.clone()),
                AccessKind::Read => t.last_write.as_ref().filter(|w| it.to_vec() < **w).cloned(),
            };
            if let Some(first_iter) = conflicting {
                violation = Some(FusionError::FusionPreventingDependence {
                    array_name: program.arrays()[key.0].name.clone(),
                    first: first_iter,
                    second: it.to_vec(),
                });
                return;
            }
        }
    });
    match violation {
        Some(v) => Err(v),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_ir::parse_program;
    use loopmem_sim::simulate_program;

    fn producer_consumer() -> Program {
        parse_program(
            "array A[8][8]\narray B[8][8]\narray C[8][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = B[i][j]; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i][j] + A[i][j]; } }",
        )
        .unwrap()
    }

    #[test]
    fn fusion_collapses_the_boundary_set() {
        let p = producer_consumer();
        let before = simulate_program(&p);
        assert_eq!(before.boundary_live, vec![64]);
        let fused = fuse(&p, 0).unwrap();
        assert_eq!(fused.len(), 1);
        let after = simulate_program(&fused);
        assert!(after.boundary_live.is_empty());
        // Each A element now dies within its own iteration.
        assert!(
            after.mws_total <= 2,
            "window should collapse, got {}",
            after.mws_total
        );
        // Same work, same footprint.
        assert_eq!(after.distinct_total(), before.distinct_total());
    }

    #[test]
    fn forward_shift_dependences_are_legal() {
        // Second nest reads A[i-1][j]: produced strictly earlier — legal.
        let p = parse_program(
            "array A[9][8]\narray C[9][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i][j] + 1; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i - 1][j]; } }",
        )
        .unwrap();
        // Ranges conform (both 8x8); A[i-1] needs iteration (i-1, j) < (i, j).
        let fused = fuse(&p, 0).unwrap();
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn backward_dependence_prevents_fusion() {
        // Second nest reads A[i+1][j]: in fused order the read at (i, j)
        // would run before the write at (i+1, j).
        let p = parse_program(
            "array A[9][8]\narray C[9][8]\n\
             for i = 1 to 8 { for j = 1 to 8 { A[i][j] = A[i][j] + 1; } }\n\
             for i = 1 to 8 { for j = 1 to 8 { C[i][j] = A[i + 1][j]; } }",
        )
        .unwrap();
        let err = fuse(&p, 0).unwrap_err();
        assert!(
            matches!(err, FusionError::FusionPreventingDependence { .. }),
            "{err}"
        );
    }

    #[test]
    fn read_read_overlap_is_always_legal() {
        let p = parse_program(
            "array A[8]\narray B[8]\narray C[8]\n\
             for i = 1 to 8 { B[i] = A[i]; }\n\
             for i = 1 to 8 { C[i] = A[9 - i]; }",
        )
        .unwrap();
        // A is only read in both nests; reversed order is harmless.
        assert!(fuse(&p, 0).is_ok());
    }

    #[test]
    fn non_conformable_rejected() {
        let p = parse_program(
            "array A[8]\narray B[4]\n\
             for i = 1 to 8 { A[i] = A[i] + 1; }\n\
             for i = 1 to 4 { B[i] = A[2i]; }",
        )
        .unwrap();
        assert_eq!(fuse(&p, 0).unwrap_err(), FusionError::NotConformable);
    }

    #[test]
    fn bad_index_rejected() {
        let p = producer_consumer();
        assert_eq!(fuse(&p, 1).unwrap_err(), FusionError::NoSuchPair(1));
    }
}
