//! Chaos-differential harness: sweeps deterministic injected faults across
//! the governed entry points and checks five oracles on every run.
//!
//! One seed expands into a full case matrix — (entry point × fault kind ×
//! fault timing × thread count) — over a parsed source file. Faults are
//! [`FaultPlan`]s pinned to logical positions (poll quanta, nest indices),
//! so each case replays bit-identically; see `loopmem-sim::faults`.
//!
//! The oracles, checked per case and across the matrix:
//!
//! 1. **No panic escapes.** Every governed call runs under `catch_unwind`;
//!    an unwind is a violation (the engines promise containment).
//! 2. **Bounds contain the truth.** A fault-free exact answer is computed
//!    once per quantity (nest-0 MWS, program MWS, scratchpad words); every
//!    [`Bounds`] any case returns — degraded, salvaged or exact — must
//!    contain it. Independently, all bounds for one quantity must pairwise
//!    intersect (`max(lower) ≤ min(upper)`), which catches contradictions
//!    even when the exact answer is too expensive to compute.
//! 3. **Determinism.** The same logical fault point must produce
//!    bit-identical canonicalized results for every thread count whenever
//!    the engine promises it: always for single-nest quantities, and for
//!    multi-nest programs whenever no global budget trip is involved
//!    (a shared iteration counter crossing its threshold mid-program
//!    attributes the trip to a schedule-dependent *nest subset*, so those
//!    cases fall back to the intersection oracle).
//! 4. **Panic rebasing.** An injected panic targeting nest `k` must surface
//!    as [`AnalysisError::NestPanicked`] with exactly `nest == k` and the
//!    fixed [`INJECTED_PANIC`] message.
//! 5. **Degradation certifies.** A fault-tripped run must not be silent:
//!    every `Exhausted` claim converts into a bounds certificate
//!    ([`crate::cert::certify_bounds`]) that the *independent* checker in
//!    `loopmem-verify` replays and accepts.
//!
//! 6. **Observability is read-only.** Every case is replayed with a
//!    [`CollectingSink`] attached: the traced answer must be bit-identical
//!    to the untraced one (same scoping as oracle 3), and the canonical
//!    NDJSON trace must be bit-identical across thread counts wherever the
//!    event multiset is schedule-free — everywhere except the optimizer
//!    entry under fire-once faults, where *which candidate simulation*
//!    absorbs the fault is scheduler-chosen even though the normalized
//!    answer is not.
//!
//! The harness also counts **salvaged-tighter** outcomes: `Exhausted`
//! payloads whose method is `salvaged-prefix` with `lower > 0` — strictly
//! tighter than the analytic fallback, whose lower bound is always 0.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use loopmem_ir::{parse_program, AnalysisError, Bounds, BoundsMethod, LoopNest, Program};
use loopmem_linalg::rng::Lcg;
use loopmem_obs::{CollectingSink, TraceSink};
use loopmem_sim::{
    try_simulate_program_with_threads, try_simulate_with_threads, AnalysisBudget, CancelToken,
    FaultKind, FaultPlan, INJECTED_PANIC,
};

use crate::optimize::{try_minimize_mws_with_threads, SearchMode};
use crate::scratchpad::try_scratchpad_program_with_threads;

/// Iteration cap for each chaos case: big enough that the small kernels
/// complete exactly and every injected fault threshold (at most 16 poll
/// quanta, 16 384 iterations) fires well before the real cap, small
/// enough that adversarial corpus files (huge iteration spaces) degrade
/// in milliseconds. Chaos never uses wall-clock budgets — deadlines are
/// not logical fault points.
pub const CASE_ITER_CAP: u64 = 32_768;

/// Iteration cap for the one-off fault-free baseline runs that establish
/// the exact answers oracle 2 checks containment against.
const EXACT_ITER_CAP: u64 = 100_000;

/// Thread counts every case is replayed at.
const THREADS: [usize; 3] = [1, 2, 4];

/// Outcome of one chaos sweep over one source file.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Logical cases exercised (entry point × fault spec).
    pub cases: usize,
    /// Governed runs executed (cases × thread counts, plus baselines).
    pub runs: usize,
    /// Oracle violations, one human-readable line each. Empty means the
    /// sweep passed.
    pub violations: Vec<String>,
    /// Runs whose degraded result carried a salvaged-prefix lower bound
    /// strictly tighter than the analytic fallback (lower > 0).
    pub salvaged_tighter: usize,
}

impl ChaosReport {
    /// True when every oracle held on every case.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Which governed entry point a case drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    /// `try_simulate_with_threads` on the program's first nest.
    Simulate,
    /// `try_minimize_mws_with_threads` on the program's first nest.
    Optimize,
    /// `try_simulate_program_with_threads` on the whole program.
    Pipeline,
    /// `try_scratchpad_program_with_threads` on the whole program.
    Scratchpad,
}

impl Entry {
    fn label(self) -> &'static str {
        match self {
            Entry::Simulate => "simulate",
            Entry::Optimize => "optimize",
            Entry::Pipeline => "pipeline",
            Entry::Scratchpad => "scratchpad",
        }
    }
}

/// One fault to inject (or `kind: None` for the governed-but-fault-free
/// baseline column of the matrix). A fresh [`FaultPlan`] is built per run
/// so fire-once state never leaks between runs.
#[derive(Debug, Clone, Copy)]
struct FaultSpec {
    kind: Option<FaultKind>,
    at_poll: u64,
    nest: usize,
}

impl FaultSpec {
    fn label(&self) -> String {
        match self.kind {
            None => "none".to_string(),
            Some(FaultKind::Exhaust) => format!("exhaust@{}", self.at_poll),
            Some(FaultKind::Cancel) => format!("cancel@{}", self.at_poll),
            Some(FaultKind::Overflow) => format!("overflow@{}", self.at_poll),
            Some(FaultKind::RejectTables) => "reject-tables".to_string(),
            Some(FaultKind::PanicNest) => format!("panic-nest@{}", self.nest),
        }
    }

    /// The budget for one run of this case: the shared iteration cap, a
    /// fresh fault plan, and (for cancellation faults) a real token for the
    /// plan to flag.
    fn budget(&self) -> AnalysisBudget {
        let mut budget = AnalysisBudget::unlimited().with_max_iterations(CASE_ITER_CAP);
        if let Some(kind) = self.kind {
            budget =
                budget.with_fault_plan(Arc::new(FaultPlan::new(kind, self.at_poll, self.nest)));
            if kind == FaultKind::Cancel {
                budget = budget.with_cancel_token(CancelToken::new());
            }
        }
        budget
    }
}

/// The per-quantity pools oracle 2 accumulates [`Bounds`] into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Quantity {
    /// MWS of the program's first nest (simulate + optimize entries).
    Nest0Mws,
    /// Whole-program MWS (pipeline entry).
    ProgramMws,
    /// Scratchpad words (scratchpad entry).
    Words,
}

impl Quantity {
    fn label(self) -> &'static str {
        match self {
            Quantity::Nest0Mws => "nest0-mws",
            Quantity::ProgramMws => "program-mws",
            Quantity::Words => "words",
        }
    }
}

/// What one governed run produced, reduced to the canonical, comparable
/// core: a deterministic string plus the bounds/panic facts the oracles
/// inspect.
struct RunOutcome {
    /// Canonical serialization (sorted maps, volatile fields dropped);
    /// oracle 3 compares these across thread counts.
    canon: String,
    /// `(quantity, bounds)` claims this run made; oracle 2 pools them.
    claims: Vec<(Quantity, Bounds)>,
    /// Nest indices + messages of every `NestPanicked` the run surfaced.
    panics: Vec<(usize, String)>,
    /// True when the run was degraded by a global `Exhausted` trip (used
    /// to scope oracle 3 on multi-nest programs).
    exhausted: bool,
    /// Salvaged-prefix payloads with `lower > 0` (strictly tighter than
    /// the analytic fallback).
    salvaged_tighter: usize,
}

/// Canonical form of a `Bounds` (method included: salvage and analytic
/// payloads must not be conflated by oracle 3).
fn canon_bounds(b: &Bounds) -> String {
    format!("[{},{}]({})", b.lower, b.upper, b.method)
}

/// Folds an `AnalysisError` into the outcome being built.
fn absorb_error(out: &mut RunOutcome, quantity: Option<Quantity>, e: &AnalysisError) {
    match e {
        AnalysisError::Exhausted { partial, .. } => {
            out.exhausted = true;
            if partial.method == BoundsMethod::SalvagedPrefix && partial.lower > 0 {
                out.salvaged_tighter += 1;
            }
            if let Some(q) = quantity {
                out.claims.push((q, *partial));
            }
        }
        AnalysisError::NestPanicked { nest, message } => {
            out.panics.push((*nest, message.clone()));
        }
        AnalysisError::Overflow { .. } | AnalysisError::Invalid { .. } => {}
    }
}

/// Runs one case at one thread count and canonicalizes the result.
/// Panics escaping the governed entry point are themselves violations;
/// they are surfaced through the `canon` string so the caller can report
/// them with full case context.
fn run_case(
    program: &Program,
    nest0: Option<&LoopNest>,
    entry: Entry,
    spec: &FaultSpec,
    threads: usize,
    trace: Option<&Arc<dyn TraceSink>>,
) -> RunOutcome {
    let mut out = RunOutcome {
        canon: String::new(),
        claims: Vec::new(),
        panics: Vec::new(),
        exhausted: false,
        salvaged_tighter: 0,
    };
    let mut budget = spec.budget();
    if let Some(sink) = trace {
        budget = budget.with_trace(sink.clone());
    }
    // Each arm yields (canon, pool claim, errors to fold). Per-nest
    // degradations inside Ok payloads are errors too: their salvage, panic
    // and trip facts feed the oracles. A nest-0 degradation inside the
    // pipeline claims the Nest0Mws pool — its payload bounds that nest's
    // own MWS, giving a cross-entry differential against simulate/optimize.
    type Claims = Vec<(Quantity, Bounds)>;
    type Folds = Vec<(Option<Quantity>, AnalysisError)>;
    let caught = catch_unwind(AssertUnwindSafe(|| -> (String, Claims, Folds) {
        match entry {
            Entry::Simulate => {
                let nest = nest0.expect("simulate entry requires a nest");
                match try_simulate_with_threads(nest, false, threads, &budget) {
                    Ok(sim) => {
                        let mut per: Vec<(usize, u64, u64, u64)> = sim
                            .per_array
                            .iter()
                            .map(|(id, st)| (id.0, st.distinct, st.accesses, st.mws))
                            .collect();
                        per.sort_unstable();
                        (
                            format!(
                                "ok iters={} mws={} per_array={per:?}",
                                sim.iterations, sim.mws_total
                            ),
                            vec![(Quantity::Nest0Mws, Bounds::exact(sim.mws_total))],
                            Vec::new(),
                        )
                    }
                    Err(e) => (
                        format!("err {e}"),
                        Vec::new(),
                        vec![(Some(Quantity::Nest0Mws), e)],
                    ),
                }
            }
            Entry::Optimize => {
                let nest = nest0.expect("optimize entry requires a nest");
                // Interchange+reversal keeps the candidate space small (the
                // chaos matrix re-runs the search dozens of times); the
                // governed machinery under test — shared tracker, parallel
                // candidate evaluation, error normalization — is identical
                // to the compound mode's.
                let mode = SearchMode::InterchangeReversal;
                match try_minimize_mws_with_threads(nest, mode, threads, &budget) {
                    // `cache_hits` is volatile by contract (always 0 on the
                    // governed path) and excluded from the canonical form.
                    Ok(opt) => (
                        format!(
                            "ok before={} after={} considered={} transform={:?}",
                            opt.mws_before, opt.mws_after, opt.candidates_considered, opt.transform
                        ),
                        vec![(Quantity::Nest0Mws, Bounds::exact(opt.mws_before))],
                        Vec::new(),
                    ),
                    Err(e) => (
                        format!("err {e}"),
                        Vec::new(),
                        vec![(Some(Quantity::Nest0Mws), e)],
                    ),
                }
            }
            Entry::Pipeline => match try_simulate_program_with_threads(program, threads, &budget) {
                Ok(gov) => {
                    let per: Vec<String> = gov
                        .per_nest
                        .iter()
                        .map(|r| match r {
                            Ok(iters) => format!("ok:{iters}"),
                            Err(e) => format!("err:{e}"),
                        })
                        .collect();
                    let mut distinct: Vec<(usize, u64)> =
                        gov.sim.distinct.iter().map(|(id, n)| (id.0, *n)).collect();
                    distinct.sort_unstable();
                    let folds: Folds = gov
                        .per_nest
                        .iter()
                        .enumerate()
                        .filter_map(|(k, r)| {
                            r.as_ref().err().cloned().map(|e| {
                                (
                                    if k == 0 {
                                        Some(Quantity::Nest0Mws)
                                    } else {
                                        None
                                    },
                                    e,
                                )
                            })
                        })
                        .collect();
                    (
                        format!(
                            "ok bounds={} per_nest={per:?} mws={} per_nest_mws={:?} distinct={distinct:?}",
                            canon_bounds(&gov.mws_bounds),
                            gov.sim.mws_total,
                            gov.sim.per_nest_mws
                        ),
                        vec![(Quantity::ProgramMws, gov.mws_bounds)],
                        folds,
                    )
                }
                Err(e) => (
                    format!("err {e}"),
                    Vec::new(),
                    vec![(Some(Quantity::ProgramMws), e)],
                ),
            },
            Entry::Scratchpad => {
                match try_scratchpad_program_with_threads(program, threads, &budget) {
                    Ok(gov) => {
                        let per: Vec<String> = gov
                            .per_nest
                            .iter()
                            .map(|r| match r {
                                Ok(term) => format!("ok:{}+{}", term.mws, term.live_through),
                                Err(e) => format!("err:{e}"),
                            })
                            .collect();
                        // Scratchpad per-nest payloads bound nest MWS terms,
                        // not words — folded for panic/salvage facts only.
                        let folds: Folds = gov
                            .per_nest
                            .iter()
                            .filter_map(|r| r.as_ref().err().cloned().map(|e| (None, e)))
                            .collect();
                        (
                            format!("ok words={} per_nest={per:?}", canon_bounds(&gov.words)),
                            vec![(Quantity::Words, gov.words)],
                            folds,
                        )
                    }
                    // Top-level scratchpad errors carry nest-level bounds, not
                    // words-level ones — no pool claim.
                    Err(e) => (format!("err {e}"), Vec::new(), vec![(None, e)]),
                }
            }
        }
    }));
    match caught {
        Ok((canon, claims, folds)) => {
            out.canon = canon;
            out.claims = claims;
            for (q, e) in &folds {
                absorb_error(&mut out, *q, e);
            }
        }
        Err(_) => out.canon = "PANIC-ESCAPED".to_string(),
    }
    out
}

/// Expands the fault column of the matrix for a program with `nnests`
/// nests: baseline, two exhaust timings, one cancel, one overflow, table
/// rejection, and injected panics targeting nest 0 plus a seed-chosen
/// other nest when the program has one.
fn fault_specs(seed: u64, nnests: usize) -> Vec<FaultSpec> {
    let mut rng = Lcg::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    // The early timing stays within a few poll quanta so injected trips
    // land even on the paper's small kernels; the late one probes deeper.
    let n1 = rng.range_i64(1, 4) as u64;
    let n2 = n1 + rng.range_i64(1, 8) as u64;
    let mut specs = vec![
        FaultSpec {
            kind: None,
            at_poll: 1,
            nest: 0,
        },
        FaultSpec {
            kind: Some(FaultKind::Exhaust),
            at_poll: n1,
            nest: 0,
        },
        FaultSpec {
            kind: Some(FaultKind::Exhaust),
            at_poll: n2,
            nest: 0,
        },
        FaultSpec {
            kind: Some(FaultKind::Cancel),
            at_poll: n1,
            nest: 0,
        },
        FaultSpec {
            kind: Some(FaultKind::Overflow),
            at_poll: n1,
            nest: 0,
        },
        FaultSpec {
            kind: Some(FaultKind::RejectTables),
            at_poll: 1,
            nest: 0,
        },
        FaultSpec {
            kind: Some(FaultKind::PanicNest),
            at_poll: 1,
            nest: 0,
        },
    ];
    if nnests > 1 {
        let k = 1 + rng.range_usize(0, nnests - 2);
        specs.push(FaultSpec {
            kind: Some(FaultKind::PanicNest),
            at_poll: 1,
            nest: k,
        });
    }
    specs
}

/// Chaos-sweeps one already-parsed program. See [`chaos_source`].
pub fn chaos_program(name: &str, program: &Program, seed: u64) -> ChaosReport {
    let mut report = ChaosReport::default();
    let nest0 = program.nests().first();
    let nnests = program.nests().len();

    // Fault-free exact baselines (oracle 2's ground truth). Each may be
    // unobtainable (the corpus includes astronomically large nests); the
    // intersection oracle still applies then.
    let exact_budget = AnalysisBudget::unlimited().with_max_iterations(EXACT_ITER_CAP);
    let exact_nest0 = nest0.and_then(|n| {
        report.runs += 1;
        try_simulate_with_threads(n, false, 1, &exact_budget)
            .ok()
            .map(|s| s.mws_total)
    });
    report.runs += 1;
    let exact_program = try_simulate_program_with_threads(program, 1, &exact_budget)
        .ok()
        .filter(|g| g.all_exact())
        .map(|g| g.sim.mws_total);
    report.runs += 1;
    let exact_words = try_scratchpad_program_with_threads(program, 1, &exact_budget)
        .ok()
        .filter(|g| g.words.is_exact())
        .map(|g| g.words.lower);
    let exact_of = |q: Quantity| match q {
        Quantity::Nest0Mws => exact_nest0,
        Quantity::ProgramMws => exact_program,
        Quantity::Words => exact_words,
    };

    let entries: Vec<Entry> = if nest0.is_some() {
        vec![
            Entry::Simulate,
            Entry::Optimize,
            Entry::Pipeline,
            Entry::Scratchpad,
        ]
    } else {
        vec![Entry::Pipeline, Entry::Scratchpad]
    };
    let mut pools: Vec<(Quantity, String, Bounds)> = Vec::new();
    // Oracle 5's dedup set, program-wide: checking a certificate is pure
    // in (program, quantity, bounds), and the analytic enclosures recur
    // identically across most of the fault matrix, so replaying each
    // distinct claim once covers every case that produced it.
    let mut certified: Vec<(Quantity, Bounds)> = Vec::new();

    for entry in &entries {
        for spec in fault_specs(seed, nnests) {
            report.cases += 1;
            let case = format!("{name}/{}/{}", entry.label(), spec.label());
            let mut outcomes: Vec<(usize, RunOutcome)> = Vec::new();
            // Oracle 6 replays: per thread count, the same run with a
            // collecting sink attached — `(threads, ndjson, canon)`.
            let mut traced: Vec<(usize, String, String)> = Vec::new();
            for &t in &THREADS {
                report.runs += 1;
                let out = run_case(program, nest0, *entry, &spec, t, None);
                report.runs += 1;
                let sink = Arc::new(CollectingSink::new());
                let dyn_sink: Arc<dyn TraceSink> = sink.clone();
                let traced_out = run_case(program, nest0, *entry, &spec, t, Some(&dyn_sink));
                if traced_out.canon == "PANIC-ESCAPED" {
                    report.violations.push(format!(
                        "{case} t={t}: panic escaped the governed entry point under tracing"
                    ));
                }
                traced.push((t, sink.drain().render_ndjson(), traced_out.canon));
                // Oracle 1: containment — nothing unwinds past a governed
                // entry point, faulted or not.
                if out.canon == "PANIC-ESCAPED" {
                    report.violations.push(format!(
                        "{case} t={t}: panic escaped the governed entry point"
                    ));
                }
                // Oracle 4: injected panics surface with the target index
                // and the fixed message; real (non-injected) panics in this
                // corpus only come from the injection.
                for (nest, message) in &out.panics {
                    if message == INJECTED_PANIC {
                        let want = if matches!(*entry, Entry::Simulate | Entry::Optimize) {
                            0
                        } else {
                            spec.nest
                        };
                        if spec.kind != Some(FaultKind::PanicNest) {
                            report.violations.push(format!(
                                "{case} t={t}: injected panic message without a panic fault"
                            ));
                        } else if *nest != want {
                            report.violations.push(format!(
                                "{case} t={t}: injected panic surfaced at nest {nest}, expected {want}"
                            ));
                        }
                    }
                }
                // Every claimed interval must be internally sane and flows
                // into oracle 2's pools.
                for (q, b) in &out.claims {
                    if b.lower > b.upper {
                        report.violations.push(format!(
                            "{case} t={t}: inverted bounds {} for {}",
                            canon_bounds(b),
                            q.label()
                        ));
                    }
                    pools.push((*q, format!("{case} t={t}"), *b));
                }
                report.salvaged_tighter += out.salvaged_tighter;
                outcomes.push((t, out));
            }
            // Oracle 5: degraded outcomes must still certify. Every
            // `Exhausted` claim is converted into a bounds certificate and
            // replayed by the independent checker; a rejection means the
            // degradation path produced evidence it cannot back up.
            // Claims are deduplicated program-wide first (the same
            // analytic enclosure recurs across most cases and thread
            // counts) to keep the replay work bounded.
            for (t, out) in &outcomes {
                if !out.exhausted {
                    continue;
                }
                for (q, b) in &out.claims {
                    if certified.contains(&(*q, *b)) {
                        continue;
                    }
                    certified.push((*q, *b));
                    let cert = match q {
                        Quantity::Nest0Mws => crate::cert::certify_bounds(
                            Some(0),
                            "nest-mws",
                            b,
                            "degraded under chaos",
                        ),
                        Quantity::Words => crate::cert::certify_bounds(
                            None,
                            "program-words",
                            b,
                            "degraded under chaos",
                        ),
                        // Program-MWS intervals bound a quantity the
                        // certificate vocabulary does not carry (words
                        // dominate it, so containment would be vacuous).
                        Quantity::ProgramMws => continue,
                    };
                    for v in
                        loopmem_verify::check_certificates(program, std::slice::from_ref(&cert))
                    {
                        report.violations.push(format!(
                            "{case} t={t}: degraded bounds certificate rejected: {} {}",
                            v.code, v.message
                        ));
                    }
                }
            }
            // Oracle 3: determinism across thread counts. Always for
            // single-nest quantities (one nest's Ok/Err outcome depends
            // only on the cumulative counter, not the schedule). For
            // multi-nest programs, only when per-nest attribution is
            // schedule-free: nests run concurrently at t > 1, so a global
            // counter-triggered fault (injected exhaust/cancel/overflow,
            // or a real cap trip) lands in a schedule-dependent *nest* —
            // those cases answer to the intersection oracle instead.
            let any_exhausted = outcomes.iter().any(|(_, o)| o.exhausted);
            let counter_fault = matches!(
                spec.kind,
                Some(FaultKind::Exhaust) | Some(FaultKind::Cancel) | Some(FaultKind::Overflow)
            );
            let single_nest_quantity =
                matches!(*entry, Entry::Simulate | Entry::Optimize) || nnests == 1;
            let determinism_scope = single_nest_quantity || (!counter_fault && !any_exhausted);
            if determinism_scope {
                let (t0, first) = &outcomes[0];
                for (t, o) in &outcomes[1..] {
                    if o.canon != first.canon {
                        report.violations.push(format!(
                            "{case}: t={t0} and t={t} disagree:\n  t={t0}: {}\n  t={t}: {}",
                            first.canon, o.canon
                        ));
                    }
                }
            }
            // Oracle 6a: wherever the answer is promised deterministic,
            // attaching a sink must not perturb it — the traced run's
            // canonical result equals the untraced one at every t.
            if determinism_scope {
                for ((t, _, traced_canon), (tu, out)) in traced.iter().zip(&outcomes) {
                    debug_assert_eq!(t, tu);
                    if traced_canon != &out.canon {
                        report.violations.push(format!(
                            "{case} t={t}: tracing perturbed the answer:\n  untraced: {}\n  traced:   {}",
                            out.canon, traced_canon
                        ));
                    }
                }
            }
            // Oracle 6b: the canonical NDJSON trace is bit-identical
            // across thread counts wherever the event multiset is
            // schedule-free. The optimizer entry under a fire-once fault
            // is the one exception even for single-nest quantities: the
            // fault lands in whichever candidate simulation polls first,
            // so the set of completed (flushed) candidate sweeps is
            // scheduler-chosen although the normalized answer is not.
            let fire_once_fault = matches!(
                spec.kind,
                Some(FaultKind::Exhaust)
                    | Some(FaultKind::Cancel)
                    | Some(FaultKind::Overflow)
                    | Some(FaultKind::PanicNest)
            );
            let trace_scope = match *entry {
                Entry::Optimize => !fire_once_fault && !any_exhausted,
                _ => determinism_scope,
            };
            if trace_scope {
                let (t0, first, _) = &traced[0];
                for (t, ndjson, _) in &traced[1..] {
                    if ndjson != first {
                        report.violations.push(format!(
                            "{case}: trace bytes differ between t={t0} and t={t}"
                        ));
                    }
                }
            }
        }
    }

    // Oracle 2: every pooled interval contains the exact answer when known,
    // and all intervals for one quantity pairwise intersect.
    for q in [Quantity::Nest0Mws, Quantity::ProgramMws, Quantity::Words] {
        let claims: Vec<&(Quantity, String, Bounds)> =
            pools.iter().filter(|(pq, _, _)| *pq == q).collect();
        if claims.is_empty() {
            continue;
        }
        if let Some(exact) = exact_of(q) {
            for (_, case, b) in &claims {
                if !b.contains(exact) {
                    report.violations.push(format!(
                        "{case}: bounds {} exclude the fault-free exact {} = {exact}",
                        canon_bounds(b),
                        q.label()
                    ));
                }
            }
        }
        let (max_lower, min_upper) = claims.iter().fold((0u64, u64::MAX), |(lo, hi), (_, _, b)| {
            (lo.max(b.lower), hi.min(b.upper))
        });
        if max_lower > min_upper {
            report.violations.push(format!(
                "{name}: {} intervals do not intersect (max lower {max_lower} > min upper {min_upper})",
                q.label()
            ));
        }
    }
    report
}

/// Parses `src` and chaos-sweeps it; `name` labels violations. Parse
/// failures are reported as an error, not a violation — the chaos corpus
/// is expected to be syntactically valid.
///
/// # Errors
///
/// Returns the parse diagnostic when `src` is not a valid program.
pub fn chaos_source(name: &str, src: &str, seed: u64) -> Result<ChaosReport, String> {
    let program = parse_program(src).map_err(|e| format!("{name}: {e}"))?;
    Ok(chaos_program(name, &program, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE8: &str = r#"
        array X[200]
        for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }
    "#;

    const TWO_PHASE: &str = r#"
        array A[64][64]
        for i = 1 to 64 { for j = 1 to 64 { A[i][j] = A[i][j] + 1; } }
        for i = 1 to 64 { for j = 1 to 64 { A[i][j] = A[j][i]; } }
    "#;

    #[test]
    fn example8_sweep_is_clean() {
        let report = chaos_source("example8", EXAMPLE8, 42).unwrap();
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(
            report.cases >= 28,
            "matrix too small: {} cases",
            report.cases
        );
    }

    #[test]
    fn two_phase_program_sweep_is_clean() {
        let report = chaos_source("two-phase", TWO_PHASE, 7).unwrap();
        assert!(report.passed(), "violations: {:#?}", report.violations);
        // The multi-nest matrix includes the second panic target.
        assert!(
            report.cases >= 32,
            "matrix too small: {} cases",
            report.cases
        );
    }

    #[test]
    fn salvage_produces_strictly_tighter_lower_bounds() {
        // A nest big enough that every exhaust timing leaves a non-trivial
        // completed prefix: the salvaged lower bound must beat the analytic
        // fallback's 0 somewhere in the sweep.
        let src = r#"
            array A[300][300]
            for i = 1 to 300 { for j = 1 to 300 { A[i][j] = A[i][j] + A[j][i]; } }
        "#;
        let report = chaos_source("big-transpose", src, 3).unwrap();
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(
            report.salvaged_tighter > 0,
            "expected at least one salvaged-prefix bound tighter than analytic"
        );
    }

    #[test]
    fn parse_errors_are_reported_not_panicked() {
        let err = chaos_source("bad", "not a program", 1).unwrap_err();
        assert!(err.starts_with("bad: "), "got: {err}");
    }
}
