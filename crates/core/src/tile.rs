//! Loop tiling (§4: "we require that the loop nest be tileable; this
//! permits us to use block transfers").
//!
//! The paper insists the minimizing transformation leave the nest fully
//! permutable so the result can be tiled and the window streamed through
//! on-chip memory in blocks. This module supplies that last step: it
//! rewrites a rectangular `n`-deep nest into the `2n`-deep tiled form
//! (tile loops outer, intra-tile loops inner) as a *perfect* nest — the
//! intra bounds are affine `max`/`min` pieces over the tile indices, which
//! the IR supports natively — so every analysis and the simulator apply
//! unchanged to tiled code.
//!
//! Legality is the caller's obligation and is exactly
//! [`loopmem_dep::is_tileable`] on the original nest (full permutability,
//! Irigoin–Triolet).

use loopmem_ir::bounds::BoundPiece;
use loopmem_ir::{Affine, ArrayRef, Bound, Loop, LoopNest, Statement};
use loopmem_linalg::IMat;
use std::error::Error;
use std::fmt;

/// Failure to tile a nest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TileError {
    /// Tiling needs constant bounds (tile a nest *before* skewing it, or
    /// re-tile the transformed space when its bounds are constant).
    NotRectangular,
    /// One tile size per loop is required.
    WrongArity {
        /// Sizes given.
        given: usize,
        /// Nest depth.
        depth: usize,
    },
    /// Tile sizes must be positive.
    NonPositiveTile(i64),
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::NotRectangular => write!(f, "tiling requires constant loop bounds"),
            TileError::WrongArity { given, depth } => {
                write!(f, "{given} tile sizes for a {depth}-deep nest")
            }
            TileError::NonPositiveTile(b) => write!(f, "tile size {b} is not positive"),
        }
    }
}

impl Error for TileError {}

/// Tiles a rectangular nest with the given per-loop tile sizes.
///
/// Loop `k` over `lo..=hi` becomes a tile loop `tt_k = 0 ..= ⌊(hi−lo)/B⌋`
/// and an intra loop `i_k = lo + B·tt_k ..= min(hi, lo + B·tt_k + B − 1)`.
/// The result executes exactly the same accesses (tests verify the access
/// multiset), grouped into `Π ⌈N_k/B_k⌉` tiles.
///
/// # Errors
///
/// See [`TileError`]. Legality (full permutability) is not checked here —
/// gate on [`loopmem_dep::is_tileable`] first.
pub fn tile(nest: &LoopNest, tile_sizes: &[i64]) -> Result<LoopNest, TileError> {
    let n = nest.depth();
    if tile_sizes.len() != n {
        return Err(TileError::WrongArity {
            given: tile_sizes.len(),
            depth: n,
        });
    }
    if let Some(&bad) = tile_sizes.iter().find(|&&b| b <= 0) {
        return Err(TileError::NonPositiveTile(bad));
    }
    let ranges = nest.rectangular_ranges().ok_or(TileError::NotRectangular)?;

    let nn = 2 * n; // new depth: tile loops then intra loops
    let mut loops = Vec::with_capacity(nn);
    // Tile loops (variables 0..n in the new nest).
    for (k, (&(lo, hi), &b)) in ranges.iter().zip(tile_sizes).enumerate() {
        let trip = (hi - lo).max(0) / b;
        loops.push(Loop {
            var: format!("{}{}", TILE_PREFIX, nest.loops()[k].var),
            lower: Bound::constant(nn, 0),
            upper: Bound::constant(nn, trip),
        });
    }
    // Intra loops (variables n..2n).
    for (k, (&(lo, hi), &b)) in ranges.iter().zip(tile_sizes).enumerate() {
        // lower: lo + b*tt_k ; upper: min(hi, lo + b*tt_k + b - 1).
        let mut base = vec![0i64; nn];
        base[k] = b;
        let lower = Bound::single(Affine::new(base.clone(), lo));
        let upper = Bound::from_pieces(vec![
            BoundPiece::simple(Affine::constant(nn, hi)),
            BoundPiece::simple(Affine::new(base, lo + b - 1)),
        ]);
        loops.push(Loop {
            var: nest.loops()[k].var.clone(),
            lower,
            upper,
        });
    }

    // References: subscripts read the intra variables only.
    let statements = nest
        .statements()
        .iter()
        .map(|s| {
            Statement::new(
                s.refs()
                    .iter()
                    .map(|r| {
                        let mut m = IMat::zeros(r.rank(), nn);
                        for row in 0..r.rank() {
                            for col in 0..n {
                                m[(row, n + col)] = r.matrix[(row, col)];
                            }
                        }
                        ArrayRef::new(r.array, m, r.offset.clone(), r.kind)
                    })
                    .collect(),
            )
        })
        .collect();

    Ok(LoopNest::new(loops, nest.arrays().to_vec(), statements)
        .expect("tiled nest is structurally valid"))
}

const TILE_PREFIX: &str = "tt_";

/// Number of tiles the tiled nest executes.
pub fn tile_count(nest: &LoopNest, tile_sizes: &[i64]) -> Result<i64, TileError> {
    let ranges = nest.rectangular_ranges().ok_or(TileError::NotRectangular)?;
    if tile_sizes.len() != ranges.len() {
        return Err(TileError::WrongArity {
            given: tile_sizes.len(),
            depth: ranges.len(),
        });
    }
    Ok(ranges
        .iter()
        .zip(tile_sizes)
        .map(|(&(lo, hi), &b)| (hi - lo).max(0) / b + 1)
        .product())
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_dep::{analyze, is_tileable};
    use loopmem_ir::parse;
    use loopmem_sim::{count_iterations, misses, simulate, Policy, Trace};

    fn matmult() -> LoopNest {
        parse(
            "array C[16][16]\narray A[16][16]\narray B[16][16]\n\
             for i = 1 to 16 { for j = 1 to 16 { for k = 1 to 16 {\n\
               C[i][j] = C[i][j] + A[i][k] * B[k][j];\n\
             } } }",
        )
        .unwrap()
    }

    #[test]
    fn tiled_nest_preserves_work() {
        let nest = matmult();
        let tiled = tile(&nest, &[4, 4, 4]).unwrap();
        assert_eq!(tiled.depth(), 6);
        assert_eq!(count_iterations(&tiled), count_iterations(&nest));
        let (a, b) = (simulate(&nest), simulate(&tiled));
        assert_eq!(a.distinct_total(), b.distinct_total());
        for (id, sa) in &a.per_array {
            assert_eq!(sa.accesses, b.per_array[id].accesses);
        }
    }

    #[test]
    fn partial_tiles_are_handled() {
        // 10 iterations with tile size 4: tiles of 4, 4, 2.
        let nest =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j]; } }").unwrap();
        let tiled = tile(&nest, &[4, 3]).unwrap();
        assert_eq!(count_iterations(&tiled), 100);
        assert_eq!(tile_count(&nest, &[4, 3]).unwrap(), 3 * 4);
    }

    #[test]
    fn tiling_cuts_lru_misses_for_matmult() {
        // The §4 block-transfer motivation, measured: at a buffer of
        // 3·B²-ish words, tiled matmult hits where untiled thrashes.
        let nest = matmult();
        let tiled = tile(&nest, &[4, 4, 4]).unwrap();
        let capacity = 3 * 16 + 32; // three 4x4 tiles + slack
        let untiled_misses = misses(&Trace::from_nest(&nest), capacity, Policy::Lru);
        let tiled_misses = misses(&Trace::from_nest(&tiled), capacity, Policy::Lru);
        assert!(
            2 * tiled_misses <= untiled_misses,
            "tiled {tiled_misses} vs untiled {untiled_misses}"
        );
    }

    #[test]
    fn matmult_is_tileable() {
        let nest = matmult();
        let deps = analyze(&nest);
        assert!(is_tileable(&loopmem_linalg::IMat::identity(3), &deps));
    }

    #[test]
    fn error_cases() {
        let nest = matmult();
        assert_eq!(
            tile(&nest, &[4, 4]).unwrap_err(),
            TileError::WrongArity { given: 2, depth: 3 }
        );
        assert_eq!(
            tile(&nest, &[4, 0, 4]).unwrap_err(),
            TileError::NonPositiveTile(0)
        );
        let tri =
            parse("array A[10][10]\nfor i = 1 to 10 { for j = i to 10 { A[i][j]; } }").unwrap();
        assert_eq!(tile(&tri, &[2, 2]).unwrap_err(), TileError::NotRectangular);
    }

    #[test]
    fn tile_size_one_and_full() {
        let nest = parse("array A[6][6]\nfor i = 1 to 6 { for j = 1 to 6 { A[i][j]; } }").unwrap();
        // B = 1: every iteration its own tile.
        let t1 = tile(&nest, &[1, 1]).unwrap();
        assert_eq!(count_iterations(&t1), 36);
        assert_eq!(tile_count(&nest, &[1, 1]).unwrap(), 36);
        // B = full extent: a single tile.
        let tf = tile(&nest, &[6, 6]).unwrap();
        assert_eq!(count_iterations(&tf), 36);
        assert_eq!(tile_count(&nest, &[6, 6]).unwrap(), 1);
    }
}
