//! Seeded byte-identity: the NDJSON stream a [`CollectingSink`] drains is
//! identical for every worker-thread count, on a clean run and under an
//! injected fault. This is the contract the chaos harness's oracle 6
//! sweeps at scale; here it is pinned as a plain test with fixed inputs.

use loopmem_ir::parse_program;
use loopmem_obs::{CollectingSink, TraceSink};
use loopmem_sim::{try_simulate_program_with_threads, AnalysisBudget, FaultKind, FaultPlan};
use std::sync::Arc;

/// A triangular nest plus a rectangular one, so chunking is uneven and a
/// naive unsorted drain would interleave differently per thread count.
/// The triangular nest sweeps 64·65/2 = 2080 iterations — past the
/// 1024-iteration poll quantum, so a fault armed at poll 1 really fires.
const SRC: &str = "array A[64][64]\narray X[200]\n\
     for i = 1 to 64 { for j = i to 64 { A[i][j] = A[j][i]; } }\n\
     for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }";

/// Runs the governed program simulation at `threads` with a fresh
/// collecting sink (and optionally a fresh fault plan), returning the
/// drained canonical NDJSON.
fn traced_ndjson(threads: usize, fault: Option<(FaultKind, u64, usize)>) -> String {
    let program = parse_program(SRC).unwrap();
    let sink = Arc::new(CollectingSink::new());
    let dyn_sink: Arc<dyn TraceSink> = sink.clone();
    let mut budget = AnalysisBudget::unlimited()
        .with_max_iterations(1_000_000)
        .with_trace(dyn_sink);
    if let Some((kind, at_poll, nest)) = fault {
        // Plans carry fire-once state, so each run builds its own.
        budget = budget.with_fault_plan(Arc::new(FaultPlan::new(kind, at_poll, nest)));
    }
    let _ = try_simulate_program_with_threads(&program, threads, &budget);
    sink.drain().render_ndjson()
}

#[test]
fn clean_run_trace_bytes_identical_across_thread_counts() {
    let baseline = traced_ndjson(1, None);
    assert!(
        baseline.contains("\"event\":\"chunk-commit\""),
        "trace should carry chunk commits:\n{baseline}"
    );
    for threads in [2, 4] {
        assert_eq!(baseline, traced_ndjson(threads, None), "threads={threads}");
    }
}

#[test]
fn fault_tripped_run_trace_bytes_identical_across_thread_counts() {
    // Exhaust at the first poll quantum: the run degrades immediately and
    // the trip itself must appear in the trace, at the same byte offset
    // for every thread count.
    let fault = Some((FaultKind::Exhaust, 1, 0));
    let baseline = traced_ndjson(1, fault);
    assert!(
        baseline.contains("\"event\":\"fault-trip\""),
        "trace should record the injected trip:\n{baseline}"
    );
    for threads in [2, 4] {
        assert_eq!(baseline, traced_ndjson(threads, fault), "threads={threads}");
    }
}
