#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `loopmem-obs` — zero-cost observability for the loopmem engine.
//!
//! Every prior layer of the stack made the analysis faster (lane-split
//! pass 1, work-stealing chunks), wider (program batches, scratchpad
//! fusion), or safer (governed budgets, fault injection, certificates) —
//! this crate makes it *visible*. It defines a span/event/counter model
//! ([`TraceEvent`]) and a sink trait ([`TraceSink`]) that the engine
//! threads through its existing seams: `POLL_INTERVAL` budget polls,
//! chunk commits in the dense engine, memo lookups in the optimizer,
//! cone prunes in branch-and-bound, fault trips and prefix salvage,
//! fusion steps and sizing terms, and certificate emission.
//!
//! # Zero cost when off
//!
//! The engine stores the sink as `Option<Arc<dyn TraceSink>>`. With no
//! sink (or the [`NullSink`]) attached, instrumentation reduces to one
//! branch per `POLL_INTERVAL` (1024) iterations or per chunk — below
//! measurement noise; the perfsuite `trace` section pins this at ≤ 2%.
//!
//! # Determinism when on
//!
//! The [`CollectingSink`] buffers events in per-thread shards and merges
//! them by a schedule-independent sort key — `(epoch, phase, nest, ord)`
//! with the canonical NDJSON line as the final tiebreak — so the merged
//! stream is bit-identical at every thread count. Engine code cooperates
//! by (a) assigning `ord` from deterministic quantities only (chunk
//! index, serial sequence numbers), (b) buffering chunk-local events and
//! flushing them only in chunk-commit order after a sweep *succeeds*,
//! and (c) emitting nothing schedule-dependent on failure paths beyond
//! the fire-once fault trip itself. Thread ids and wall-clock micros are
//! carried on events for the human-readable report but are **excluded**
//! from the canonical NDJSON rendering.
//!
//! # Quickstart
//!
//! ```
//! use loopmem_obs::{CollectingSink, EventKind, Phase, TraceEvent, TraceSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(CollectingSink::new());
//! sink.begin_epoch();
//! sink.record(TraceEvent {
//!     phase: Phase::Pass1,
//!     nest: Some(0),
//!     ord: (0, 0),
//!     thread: 0,
//!     kind: EventKind::Poll { delta: 1024 },
//! });
//! let report = sink.drain();
//! assert_eq!(report.counters.polls, 1);
//! assert_eq!(report.counters.charged_iterations, 1024);
//! ```

mod collect;
mod report;

pub use collect::CollectingSink;
pub use report::{TraceCounters, TraceReport};

/// Engine phase an event belongs to. The discriminant order is the
/// canonical sort order used by the deterministic merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Source parsing and static classification.
    Parse,
    /// Dense engine pass 1: first/last touch tables.
    Pass1,
    /// Dense engine pass 2: difference-array prefix sum.
    Pass2,
    /// Transformation search (candidate enumeration, memo, B&B).
    Search,
    /// Scratchpad sizing and fusion.
    Sizing,
    /// Certificate emission and checking.
    Verify,
}

impl Phase {
    /// Stable lower-case label used in the NDJSON rendering.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Pass1 => "pass1",
            Phase::Pass2 => "pass2",
            Phase::Search => "search",
            Phase::Sizing => "sizing",
            Phase::Verify => "verify",
        }
    }
}

/// What happened. Payloads carry only the quantities the engine can
/// derive deterministically at the emission site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase-scoped span opened (e.g. one nest's pass-1 sweep).
    SpanBegin {
        /// Static span label, e.g. `"pass1"` or `"fusion-search"`.
        label: &'static str,
    },
    /// The matching span closed. `micros` is wall-clock and excluded
    /// from the canonical rendering; `charged` is the governed
    /// iteration/node count attributed to the span and is canonical.
    SpanEnd {
        /// Static span label matching the [`EventKind::SpanBegin`].
        label: &'static str,
        /// Wall-clock duration — informational, not canonical.
        micros: u64,
        /// Charged iterations (or search nodes) attributed to the span.
        charged: u64,
    },
    /// A `POLL_INTERVAL` budget poll charged `delta` iterations.
    Poll {
        /// Iterations charged at this poll site.
        delta: u64,
    },
    /// A dense-engine chunk was folded into the merge state.
    ChunkCommit {
        /// First outer-loop value of the chunk (inclusive).
        lo: i64,
        /// Last outer-loop value of the chunk (inclusive).
        hi: i64,
        /// Iterations the chunk executed.
        iters: u64,
    },
    /// One canonical-key memo probe in the optimizer.
    MemoLookup {
        /// Whether the probe hit.
        hit: bool,
    },
    /// Branch-and-bound discarded boxes under a rank-1 dependence cone.
    ConePrune {
        /// Boxes discarded by the cone certificate.
        boxes: u64,
        /// Nodes the search explored.
        explored: u64,
        /// Nodes pruned by bounding (cone prunes included).
        pruned: u64,
    },
    /// An injected fault fired (fire-once, keyed to the charged-iteration
    /// threshold, so deterministic at every thread count).
    FaultTrip {
        /// Fault kind label from `FaultKind`.
        kind: &'static str,
        /// The plan's poll threshold.
        at_poll: u64,
    },
    /// A governed failure salvaged a deterministic prefix bound.
    Salvage {
        /// Iterations the salvage sweep replayed.
        iterations: u64,
        /// The salvaged lower bound on MWS.
        lower: u64,
    },
    /// One per-nest term of a scratchpad sizing.
    SizingTerm {
        /// The nest's maximum window size.
        mws: u64,
        /// Words live through (but not accessed by) the nest.
        live_through: u64,
    },
    /// One accepted step of the greedy fusion search.
    FusionStep {
        /// Nest index the step fused at.
        at: u64,
        /// Scratchpad words before the step.
        before: u64,
        /// Scratchpad words after the step.
        after: u64,
    },
    /// A certificate was emitted.
    Certificate {
        /// Certificate kind label, e.g. `"legality"` or `"bounds"`.
        kind: &'static str,
    },
}

impl EventKind {
    /// Stable kebab-case label used in the NDJSON rendering.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::SpanBegin { .. } => "span-begin",
            EventKind::SpanEnd { .. } => "span-end",
            EventKind::Poll { .. } => "poll",
            EventKind::ChunkCommit { .. } => "chunk-commit",
            EventKind::MemoLookup { .. } => "memo-lookup",
            EventKind::ConePrune { .. } => "cone-prune",
            EventKind::FaultTrip { .. } => "fault-trip",
            EventKind::Salvage { .. } => "salvage",
            EventKind::SizingTerm { .. } => "sizing-term",
            EventKind::FusionStep { .. } => "fusion-step",
            EventKind::Certificate { .. } => "certificate",
        }
    }
}

/// One observability event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Engine phase the event belongs to.
    pub phase: Phase,
    /// Program nest index, when the event is nest-scoped.
    pub nest: Option<u32>,
    /// Deterministic ordering key *within* `(epoch, phase, nest)`:
    /// engine code assigns this from schedule-independent quantities
    /// only (chunk index, serial sequence number), never from timing.
    pub ord: (u64, u64),
    /// Worker index that emitted the event. Informational only —
    /// excluded from the canonical rendering because it is
    /// schedule-dependent.
    pub thread: u32,
    /// The payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The canonical single-line JSON rendering of this event: every
    /// schedule-independent field, and **only** those (no thread id, no
    /// wall-clock micros). This is both the NDJSON output format and the
    /// final tiebreak of the deterministic merge.
    pub fn canonical_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"phase\":\"");
        s.push_str(self.phase.label());
        s.push_str("\",\"nest\":");
        match self.nest {
            Some(n) => s.push_str(&n.to_string()),
            None => s.push_str("null"),
        }
        s.push_str(",\"ord\":[");
        s.push_str(&self.ord.0.to_string());
        s.push(',');
        s.push_str(&self.ord.1.to_string());
        s.push_str("],\"event\":\"");
        s.push_str(self.kind.label());
        s.push('"');
        match &self.kind {
            EventKind::SpanBegin { label } => {
                push_str_field(&mut s, "label", label);
            }
            EventKind::SpanEnd { label, charged, .. } => {
                push_str_field(&mut s, "label", label);
                push_u64_field(&mut s, "charged", *charged);
            }
            EventKind::Poll { delta } => push_u64_field(&mut s, "delta", *delta),
            EventKind::ChunkCommit { lo, hi, iters } => {
                push_i64_field(&mut s, "lo", *lo);
                push_i64_field(&mut s, "hi", *hi);
                push_u64_field(&mut s, "iters", *iters);
            }
            EventKind::MemoLookup { hit } => {
                s.push_str(",\"hit\":");
                s.push_str(if *hit { "true" } else { "false" });
            }
            EventKind::ConePrune {
                boxes,
                explored,
                pruned,
            } => {
                push_u64_field(&mut s, "boxes", *boxes);
                push_u64_field(&mut s, "explored", *explored);
                push_u64_field(&mut s, "pruned", *pruned);
            }
            EventKind::FaultTrip { kind, at_poll } => {
                push_str_field(&mut s, "kind", kind);
                push_u64_field(&mut s, "at_poll", *at_poll);
            }
            EventKind::Salvage { iterations, lower } => {
                push_u64_field(&mut s, "iterations", *iterations);
                push_u64_field(&mut s, "lower", *lower);
            }
            EventKind::SizingTerm { mws, live_through } => {
                push_u64_field(&mut s, "mws", *mws);
                push_u64_field(&mut s, "live_through", *live_through);
            }
            EventKind::FusionStep { at, before, after } => {
                push_u64_field(&mut s, "at", *at);
                push_u64_field(&mut s, "before", *before);
                push_u64_field(&mut s, "after", *after);
            }
            EventKind::Certificate { kind } => push_str_field(&mut s, "kind", kind),
        }
        s.push('}');
        s
    }
}

fn push_u64_field(s: &mut String, key: &str, v: u64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

fn push_i64_field(s: &mut String, key: &str, v: i64) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(&v.to_string());
}

fn push_str_field(s: &mut String, key: &str, v: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":\"");
    // Labels are static kebab-case identifiers today, but escape anyway
    // so the line is valid JSON for any future payload.
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Destination for engine trace events.
///
/// Implementations must be cheap when disabled: the engine guards every
/// emission site with [`TraceSink::enabled`], so a `false` return keeps
/// the hot path to a single predictable branch.
pub trait TraceSink: Send + Sync {
    /// Whether the sink wants events at all. The engine skips event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool;

    /// Record one event.
    fn record(&self, event: TraceEvent);

    /// Record a pre-ordered batch (e.g. one chunk's buffered events,
    /// flushed at commit). The default forwards to [`TraceSink::record`].
    fn record_all(&self, events: Vec<TraceEvent>) {
        for e in events {
            self.record(e);
        }
    }

    /// Open a new epoch: events recorded after this call sort strictly
    /// after events recorded before it. The engine calls this once per
    /// top-level operation (per nest sweep, per search, per sizing).
    fn begin_epoch(&self) {}
}

/// The no-op sink: [`TraceSink::enabled`] is `false` and every record is
/// discarded. Attaching it is indistinguishable from attaching nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: TraceEvent) {}

    fn record_all(&self, _events: Vec<TraceEvent>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_line_excludes_thread() {
        let mk = |thread| TraceEvent {
            phase: Phase::Pass1,
            nest: Some(3),
            ord: (1, 2),
            thread,
            kind: EventKind::Poll { delta: 1024 },
        };
        assert_eq!(mk(0).canonical_line(), mk(7).canonical_line());
        assert_eq!(
            mk(0).canonical_line(),
            "{\"phase\":\"pass1\",\"nest\":3,\"ord\":[1,2],\"event\":\"poll\",\"delta\":1024}"
        );
    }

    #[test]
    fn canonical_line_excludes_span_micros() {
        let mk = |micros| TraceEvent {
            phase: Phase::Search,
            nest: None,
            ord: (0, 0),
            thread: 0,
            kind: EventKind::SpanEnd {
                label: "search",
                micros,
                charged: 250,
            },
        };
        assert_eq!(mk(1).canonical_line(), mk(999_999).canonical_line());
        assert!(mk(1).canonical_line().contains("\"charged\":250"));
        assert!(!mk(1).canonical_line().contains("micros"));
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.record(TraceEvent {
            phase: Phase::Parse,
            nest: None,
            ord: (0, 0),
            thread: 0,
            kind: EventKind::SpanBegin { label: "parse" },
        });
    }
}
