//! Aggregated trace reports: counters derived from the event stream,
//! rendered as text or NDJSON.

use crate::{EventKind, Phase, TraceEvent};

/// Counters aggregated from an event stream. Every field is *derived*
/// from the events at report time — there is no second bookkeeping path
/// to drift out of sync, which is what lets CI assert internal
/// consistency (e.g. `memo_hits + memo_misses == memo_lookups`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Spans opened (`span-begin` events).
    pub spans: u64,
    /// Budget polls observed.
    pub polls: u64,
    /// Iterations charged across all polls.
    pub charged_iterations: u64,
    /// Dense-engine chunks committed.
    pub chunks_committed: u64,
    /// Iterations executed by committed chunks.
    pub chunk_iterations: u64,
    /// Memo probes (`memo-lookup` events).
    pub memo_lookups: u64,
    /// Memo probes that hit.
    pub memo_hits: u64,
    /// Memo probes that missed.
    pub memo_misses: u64,
    /// Boxes discarded by cone prunes.
    pub cone_boxes: u64,
    /// Injected faults that fired.
    pub fault_trips: u64,
    /// Salvaged prefix bounds.
    pub salvages: u64,
    /// Scratchpad sizing terms.
    pub sizing_terms: u64,
    /// Accepted fusion steps.
    pub fusion_steps: u64,
    /// Certificates emitted.
    pub certificates: u64,
}

impl TraceCounters {
    /// Derive counters from `events`.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut c = TraceCounters::default();
        for e in events {
            match &e.kind {
                EventKind::SpanBegin { .. } => c.spans += 1,
                EventKind::SpanEnd { .. } => {}
                EventKind::Poll { delta } => {
                    c.polls += 1;
                    c.charged_iterations += delta;
                }
                EventKind::ChunkCommit { iters, .. } => {
                    c.chunks_committed += 1;
                    c.chunk_iterations += iters;
                }
                EventKind::MemoLookup { hit } => {
                    c.memo_lookups += 1;
                    if *hit {
                        c.memo_hits += 1;
                    } else {
                        c.memo_misses += 1;
                    }
                }
                EventKind::ConePrune { boxes, .. } => c.cone_boxes += boxes,
                EventKind::FaultTrip { .. } => c.fault_trips += 1,
                EventKind::Salvage { .. } => c.salvages += 1,
                EventKind::SizingTerm { .. } => c.sizing_terms += 1,
                EventKind::FusionStep { .. } => c.fusion_steps += 1,
                EventKind::Certificate { .. } => c.certificates += 1,
            }
        }
        c
    }

    /// The canonical single-line JSON rendering (fixed key order).
    pub fn canonical_line(&self) -> String {
        format!(
            "{{\"counters\":{{\"spans\":{},\"polls\":{},\"charged_iterations\":{},\
             \"chunks_committed\":{},\"chunk_iterations\":{},\"memo_lookups\":{},\
             \"memo_hits\":{},\"memo_misses\":{},\"cone_boxes\":{},\"fault_trips\":{},\
             \"salvages\":{},\"sizing_terms\":{},\"fusion_steps\":{},\"certificates\":{}}}}}",
            self.spans,
            self.polls,
            self.charged_iterations,
            self.chunks_committed,
            self.chunk_iterations,
            self.memo_lookups,
            self.memo_hits,
            self.memo_misses,
            self.cone_boxes,
            self.fault_trips,
            self.salvages,
            self.sizing_terms,
            self.fusion_steps,
            self.certificates,
        )
    }
}

/// A drained, deterministically ordered event stream plus its derived
/// counters.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Events in canonical merge order.
    pub events: Vec<TraceEvent>,
    /// Counters derived from `events`.
    pub counters: TraceCounters,
}

impl TraceReport {
    /// Build a report from an already canonically ordered event stream.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        let counters = TraceCounters::from_events(&events);
        TraceReport { events, counters }
    }

    /// NDJSON rendering: a header line, one canonical line per event,
    /// and a trailing counters line. Bit-identical across thread counts
    /// for deterministic operations (no thread ids, no wall-clock).
    pub fn render_ndjson(&self) -> String {
        let mut out = String::with_capacity(64 + 96 * self.events.len());
        out.push_str(&format!(
            "{{\"suite\":\"loopmem-trace\",\"version\":1,\"events\":{}}}\n",
            self.events.len()
        ));
        for e in &self.events {
            out.push_str(&e.canonical_line());
            out.push('\n');
        }
        out.push_str(&self.counters.canonical_line());
        out.push('\n');
        out
    }

    /// Human-readable rendering: per-phase event totals followed by the
    /// counters. Wall-clock span totals are included here (and only
    /// here — the NDJSON stays canonical).
    pub fn render_text(&self) -> String {
        const PHASES: [Phase; 6] = [
            Phase::Parse,
            Phase::Pass1,
            Phase::Pass2,
            Phase::Search,
            Phase::Sizing,
            Phase::Verify,
        ];
        let mut out = String::new();
        out.push_str(&format!("trace: {} events\n", self.events.len()));
        out.push_str("phase    events  charged      span-micros\n");
        for phase in PHASES {
            let mut events = 0u64;
            let mut charged = 0u64;
            let mut micros = 0u64;
            for e in self.events.iter().filter(|e| e.phase == phase) {
                events += 1;
                match &e.kind {
                    EventKind::Poll { delta } => charged += delta,
                    EventKind::SpanEnd { micros: m, .. } => micros += m,
                    _ => {}
                }
            }
            if events > 0 {
                out.push_str(&format!(
                    "{:<8} {:>6}  {:>11}  {:>11}\n",
                    phase.label(),
                    events,
                    charged,
                    micros
                ));
            }
        }
        let c = &self.counters;
        out.push_str(&format!(
            "polls {} (charged {}) · chunks {} (iters {}) · memo {}/{} hit · \
             cone boxes {} · faults {} · salvages {} · sizing terms {} · \
             fusion steps {} · certificates {}\n",
            c.polls,
            c.charged_iterations,
            c.chunks_committed,
            c.chunk_iterations,
            c.memo_hits,
            c.memo_lookups,
            c.cone_boxes,
            c.fault_trips,
            c.salvages,
            c.sizing_terms,
            c.fusion_steps,
            c.certificates,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent {
            phase: Phase::Search,
            nest: Some(0),
            ord: (0, 0),
            thread: 0,
            kind,
        }
    }

    #[test]
    fn memo_counters_are_internally_consistent() {
        let events = vec![
            ev(EventKind::MemoLookup { hit: true }),
            ev(EventKind::MemoLookup { hit: false }),
            ev(EventKind::MemoLookup { hit: true }),
        ];
        let c = TraceCounters::from_events(&events);
        assert_eq!(c.memo_lookups, 3);
        assert_eq!(c.memo_hits + c.memo_misses, c.memo_lookups);
    }

    #[test]
    fn ndjson_has_header_events_and_counters() {
        let report = TraceReport::from_events(vec![ev(EventKind::Poll { delta: 7 })]);
        let nd = report.render_ndjson();
        let lines: Vec<&str> = nd.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"suite\":\"loopmem-trace\""));
        assert!(lines[1].contains("\"event\":\"poll\""));
        assert!(lines[2].starts_with("{\"counters\":"));
        assert!(lines[2].contains("\"charged_iterations\":7"));
    }

    #[test]
    fn text_report_names_active_phases_only() {
        let report = TraceReport::from_events(vec![ev(EventKind::Poll { delta: 7 })]);
        let text = report.render_text();
        assert!(text.contains("search"));
        assert!(!text.contains("sizing\n"));
    }
}
