//! The collecting sink: per-thread shard buffers merged into a
//! deterministic event stream.

use crate::report::TraceReport;
use crate::{TraceEvent, TraceSink};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of shard buffers. Threads hash to shards by `ThreadId`, so
/// recording never contends on one global lock in the common case.
const SHARDS: usize = 16;

/// A sink that buffers events in per-thread shards and merges them into
/// a schedule-independent order on [`CollectingSink::drain`].
///
/// # Determinism
///
/// The merge sorts by `(epoch, phase, nest, ord, canonical_line)` —
/// every component is schedule-independent (the engine assigns `ord`
/// from chunk indices and serial sequence numbers; the canonical line
/// excludes thread ids and wall-clock). Two runs of the same governed
/// operation at different thread counts therefore drain to bit-identical
/// reports, which chaos oracle 6 and the perfsuite trace section pin.
pub struct CollectingSink {
    shards: Vec<Mutex<Vec<(u64, TraceEvent)>>>,
    epoch: AtomicU64,
}

impl CollectingSink {
    /// An empty sink at epoch 0.
    pub fn new() -> Self {
        CollectingSink {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            epoch: AtomicU64::new(0),
        }
    }

    fn shard(&self) -> &Mutex<Vec<(u64, TraceEvent)>> {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        let i = (h.finish() as usize) % SHARDS;
        &self.shards[i]
    }

    /// Number of events currently buffered (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().map(|v| v.len()).unwrap_or(0))
            .sum()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take every buffered event, merge deterministically, and build the
    /// report. The sink is left empty (epoch is *not* reset, so a drained
    /// sink can keep collecting with strictly later epochs).
    pub fn drain(&self) -> TraceReport {
        let mut all: Vec<(u64, TraceEvent)> = Vec::new();
        for shard in &self.shards {
            if let Ok(mut v) = shard.lock() {
                all.append(&mut v);
            }
        }
        all.sort_by(|(ea, a), (eb, b)| {
            (*ea, a.phase, a.nest, a.ord)
                .cmp(&(*eb, b.phase, b.nest, b.ord))
                .then_with(|| a.canonical_line().cmp(&b.canonical_line()))
        });
        TraceReport::from_events(all.into_iter().map(|(_, e)| e).collect())
    }
}

impl Default for CollectingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for CollectingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        let epoch = self.epoch.load(Ordering::Acquire);
        if let Ok(mut v) = self.shard().lock() {
            v.push((epoch, event));
        }
    }

    fn record_all(&self, events: Vec<TraceEvent>) {
        let epoch = self.epoch.load(Ordering::Acquire);
        if let Ok(mut v) = self.shard().lock() {
            v.extend(events.into_iter().map(|e| (epoch, e)));
        }
    }

    fn begin_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Phase};

    fn poll(nest: u32, ord: (u64, u64), thread: u32) -> TraceEvent {
        TraceEvent {
            phase: Phase::Pass1,
            nest: Some(nest),
            ord,
            thread,
            kind: EventKind::Poll { delta: 1024 },
        }
    }

    #[test]
    fn merge_is_schedule_independent() {
        // Same logical events recorded in two different arrival orders
        // (as different thread interleavings would produce) drain to the
        // same NDJSON bytes.
        let a = CollectingSink::new();
        a.begin_epoch();
        a.record(poll(0, (0, 0), 0));
        a.record(poll(0, (2, 0), 1));
        a.record(poll(0, (1, 0), 2));

        let b = CollectingSink::new();
        b.begin_epoch();
        b.record(poll(0, (2, 0), 5));
        b.record(poll(0, (1, 0), 5));
        b.record(poll(0, (0, 0), 5));

        assert_eq!(a.drain().render_ndjson(), b.drain().render_ndjson());
    }

    #[test]
    fn epochs_order_operations() {
        let s = CollectingSink::new();
        s.begin_epoch();
        s.record(poll(1, (9, 9), 0));
        s.begin_epoch();
        s.record(poll(0, (0, 0), 0));
        let report = s.drain();
        // Epoch 1's nest-1 event sorts before epoch 2's nest-0 event.
        assert_eq!(report.events[0].nest, Some(1));
        assert_eq!(report.events[1].nest, Some(0));
        assert!(s.is_empty());
    }

    #[test]
    fn cross_thread_recording_is_deterministic() {
        let runs: Vec<String> = (0..2)
            .map(|_| {
                let s = std::sync::Arc::new(CollectingSink::new());
                s.begin_epoch();
                std::thread::scope(|scope| {
                    for t in 0..4u64 {
                        let s = &s;
                        scope.spawn(move || {
                            for k in 0..8u64 {
                                s.record(poll(0, (t, k), t as u32));
                            }
                        });
                    }
                });
                s.drain().render_ndjson()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }
}
