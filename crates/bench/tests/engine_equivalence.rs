//! Differential tests: the dense-event simulator engine must agree with
//! the legacy hashmap engine on every paper kernel, for every thread
//! count, and the parallel optimizer must match its serial path exactly.

use loopmem_bench::all_kernels;
use loopmem_core::optimize::{minimize_mws_with_threads, SearchMode};
use loopmem_ir::parse;
use loopmem_sim::{simulate_hashmap_with_profile, simulate_with_threads, SimResult};

fn assert_same(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.iterations, b.iterations, "{what}: iterations");
    assert_eq!(a.mws_total, b.mws_total, "{what}: mws_total");
    assert_eq!(a.per_array, b.per_array, "{what}: per_array");
    assert_eq!(a.profile, b.profile, "{what}: profile");
}

#[test]
fn dense_engine_matches_hashmap_on_every_kernel() {
    for k in all_kernels() {
        let nest = k.nest();
        let legacy = simulate_hashmap_with_profile(&nest);
        let dense = simulate_with_threads(&nest, true, 1);
        assert_same(&dense, &legacy, k.name);
    }
}

#[test]
fn thread_count_is_invisible_on_every_kernel() {
    for k in all_kernels() {
        let nest = k.nest();
        let one = simulate_with_threads(&nest, true, 1);
        for threads in [2, 3, 4, 8] {
            let n = simulate_with_threads(&nest, true, threads);
            assert_same(&n, &one, &format!("{} x{}", k.name, threads));
        }
    }
}

/// Paper Examples 7–10 as DSL text.
fn paper_examples() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "example7",
            "array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }",
        ),
        (
            "example8",
            "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        ),
        (
            "example9",
            "array X[200]\narray Y[100]\n\
             for i = 1 to 20 { for j = 1 to 20 {\n\
               X[2i + 3j + 2] = Y[i + j];\n\
               Y[i + j + 1] = X[2i + 3j + 3];\n\
             } }",
        ),
        (
            "example10",
            "array A[61][51]\n\
             for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        ),
    ]
}

#[test]
fn compound_search_is_deterministic_across_thread_counts() {
    for (name, src) in paper_examples() {
        let nest = parse(src).unwrap();
        let serial = minimize_mws_with_threads(&nest, SearchMode::default(), 1)
            .unwrap_or_else(|e| panic!("{name}: serial search failed: {e}"));
        for threads in [2, 4, 8] {
            let par = minimize_mws_with_threads(&nest, SearchMode::default(), threads)
                .unwrap_or_else(|e| panic!("{name}: parallel search failed: {e}"));
            assert_eq!(
                par.transform, serial.transform,
                "{name} x{threads}: transform"
            );
            assert_eq!(par.mws_before, serial.mws_before, "{name} x{threads}");
            assert_eq!(par.mws_after, serial.mws_after, "{name} x{threads}");
            assert_eq!(
                par.candidates_considered, serial.candidates_considered,
                "{name} x{threads}"
            );
            assert_eq!(
                loopmem_ir::print_nest(&par.transformed),
                loopmem_ir::print_nest(&serial.transformed),
                "{name} x{threads}: transformed nest"
            );
        }
    }
}

#[test]
fn memoization_reports_hits_on_repeated_search() {
    let nest = parse(
        "array X[300]\nfor i = 1 to 23 { for j = 1 to 19 { X[4i - 5j + 100] = X[4i - 5j + 96]; } }",
    )
    .unwrap();
    let first = minimize_mws_with_threads(&nest, SearchMode::default(), 2).unwrap();
    let again = minimize_mws_with_threads(&nest, SearchMode::default(), 2).unwrap();
    assert!(first.cache_hits > 0, "identity candidate must hit the memo");
    assert!(
        again.cache_hits > first.cache_hits,
        "repeat must be mostly cached"
    );
    assert_eq!(again.transform, first.transform);
    assert_eq!(again.mws_after, first.mws_after);
}
