//! One function per table/figure of the paper.
//!
//! Every function returns a structured result whose `Display` renders the
//! table the corresponding binary prints; EXPERIMENTS.md archives the
//! output next to the paper's numbers.

use crate::kernels::all_kernels;
use loopmem_core::optimize::{minimize_mws, OptimizeError, SearchMode};
use loopmem_core::{analyze_memory, two_level_objective};
use loopmem_dep::analyze;
use loopmem_ir::{parse, LoopNest};
use loopmem_linalg::IMat;
use loopmem_sim::simulate;
use std::fmt;

// ---------------------------------------------------------------- fig 2 --

/// One row of Figure 2.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Kernel name.
    pub name: &'static str,
    /// Declared memory (words).
    pub default_words: i64,
    /// Exact MWS before optimization.
    pub mws_unopt: u64,
    /// Exact MWS after the compound-transformation search.
    pub mws_opt: u64,
    /// The transformation the optimizer chose.
    pub transform: IMat,
}

impl Fig2Row {
    /// Percentage reduction of the unoptimized MWS vs. the default size.
    pub fn pct_unopt(&self) -> f64 {
        100.0 * (1.0 - self.mws_unopt as f64 / self.default_words as f64)
    }

    /// Percentage reduction of the optimized MWS vs. the default size.
    pub fn pct_opt(&self) -> f64 {
        100.0 * (1.0 - self.mws_opt as f64 / self.default_words as f64)
    }
}

/// Figure 2: per-kernel default size vs. MWS before/after optimization.
#[derive(Clone, Debug)]
pub struct Fig2 {
    /// One row per kernel, in the paper's order.
    pub rows: Vec<Fig2Row>,
}

impl Fig2 {
    /// Average reduction of the unoptimized column (paper: 81.9 %).
    pub fn avg_unopt(&self) -> f64 {
        self.rows.iter().map(Fig2Row::pct_unopt).sum::<f64>() / self.rows.len() as f64
    }

    /// Average reduction of the optimized column (paper: 92.3 %).
    pub fn avg_opt(&self) -> f64 {
        self.rows.iter().map(Fig2Row::pct_opt).sum::<f64>() / self.rows.len() as f64
    }
}

/// Runs the Figure 2 experiment on all seven kernels.
pub fn figure2() -> Fig2 {
    let rows = all_kernels()
        .into_iter()
        .map(|k| {
            let nest = k.nest();
            let opt = minimize_mws(&nest, SearchMode::default())
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            Fig2Row {
                name: k.name,
                default_words: nest.default_memory(),
                mws_unopt: opt.mws_before,
                mws_opt: opt.mws_after,
                transform: opt.transform,
            }
        })
        .collect();
    Fig2 { rows }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>8} {:>10} {:>8} {:>10} {:>8}",
            "code", "default", "MWS_unopt", "(red.)", "MWS_opt", "(red.)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>8} {:>10} {:>7.1}% {:>10} {:>7.1}%",
                r.name,
                r.default_words,
                r.mws_unopt,
                r.pct_unopt(),
                r.mws_opt,
                r.pct_opt()
            )?;
        }
        writeln!(
            f,
            "{:<12} {:>8} {:>10} {:>7.1}% {:>10} {:>7.1}%",
            "average",
            "",
            "",
            self.avg_unopt(),
            "",
            self.avg_opt()
        )
    }
}

// ------------------------------------------------------- examples table --

/// One worked example of §2–§3 with the paper's number, our formula's
/// number, and the exact count.
#[derive(Clone, Debug)]
pub struct ExampleRow {
    /// Which example (paper numbering).
    pub example: &'static str,
    /// What is measured.
    pub quantity: &'static str,
    /// The paper's reported value.
    pub paper: i64,
    /// Our implementation of the paper's formula.
    pub formula: i64,
    /// Ground truth by enumeration/simulation.
    pub exact: i64,
}

/// §2.2–§3.2 worked examples (1a, 1b, 2, 3, 4, 5, 6).
pub fn examples_table() -> Vec<ExampleRow> {
    let mut rows = Vec::new();

    // Example 1(a)/(b): reuse volume of dependence (3,2) over 10x10.
    let reuse = loopmem_core::distinct::reuse_volume(&[10, 10], &[3, 2]);
    rows.push(ExampleRow {
        example: "1(a)/1(b)",
        quantity: "reuse of dep (3,2), 10x10",
        paper: 56,
        formula: reuse,
        exact: 56,
    });

    let table: [(&'static str, &'static str, i64, &'static str); 4] = [
        (
            "2",
            "A_d, A[i][j]=A[i-1][j+2], 10x10",
            128,
            "array A[12][12]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j+2]; } }",
        ),
        (
            "3",
            "A_d, 4-ref stencil, 10x10",
            139,
            "array A[11][11]\nfor i = 1 to 10 { for j = 1 to 10 { A[i][j] = A[i-1][j] + A[i][j-1] + A[i-1][j-1]; } }",
        ),
        (
            "4",
            "A_d, A[2i+5j+1], 20x10",
            80,
            "array A[111]\nfor i = 1 to 20 { for j = 1 to 10 { A[2i + 5j + 1]; } }",
        ),
        (
            "5",
            "A_d, A[3i+k][j+k], 10x20x30",
            1869,
            "array A[61][51]\nfor i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
        ),
    ];
    for (example, quantity, paper, src) in table {
        let nest = parse(src).expect("example sources parse");
        let est = loopmem_core::estimate_distinct(&nest);
        let id = loopmem_ir::ArrayId(0);
        let formula = est[&id].upper;
        let exact = loopmem_poly::count::distinct_accesses_for(&nest, id) as i64;
        rows.push(ExampleRow {
            example,
            quantity,
            paper,
            formula,
            exact,
        });
    }

    // Example 6: bounds for non-uniformly generated references.
    let nest = parse(
        "array A[200]\nfor i = 1 to 20 { for j = 1 to 20 { A[3i + 7j - 10] = A[4i - 3j + 60]; } }",
    )
    .expect("example 6 parses");
    let id = loopmem_ir::ArrayId(0);
    let est = loopmem_core::estimate_distinct(&nest)[&id];
    let exact = loopmem_poly::count::distinct_accesses_for(&nest, id) as i64;
    rows.push(ExampleRow {
        example: "6 (lower bound)",
        quantity: "LB, non-uniform pair, 20x20",
        paper: 179,
        formula: est.lower,
        exact,
    });
    rows.push(ExampleRow {
        example: "6 (upper bound)",
        quantity: "UB, non-uniform pair, 20x20",
        paper: 191,
        formula: est.upper,
        exact,
    });
    rows
}

/// Renders the examples table.
pub fn format_examples(rows: &[ExampleRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<34} {:>7} {:>8} {:>7}",
        "example", "quantity", "paper", "formula", "exact"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<16} {:<34} {:>7} {:>8} {:>7}",
            r.example, r.quantity, r.paper, r.formula, r.exact
        );
    }
    out
}

// ------------------------------------------------------------- example 7 --

/// One transformation of the Example 7 comparison.
#[derive(Clone, Debug)]
pub struct Ex7Row {
    /// Label.
    pub label: &'static str,
    /// Transformation applied.
    pub transform: IMat,
    /// Closed-form estimate (eq. 2).
    pub estimate: i64,
    /// Exact MWS from the simulator.
    pub exact: u64,
    /// Cost reported by the paper (Eisenbeis et al. window metric).
    pub paper_cost: i64,
}

/// Example 7: `X[2i−3j]` over 20×30 under interchange, reversal, both,
/// and the compound transformation (paper costs 89/41/86/36 → 1).
pub fn example7_comparison() -> Vec<Ex7Row> {
    let nest = parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap();
    let alpha = (2i64, -3i64);
    let n = (20i64, 30i64);
    let cases: [(&'static str, Vec<Vec<i64>>, i64); 5] = [
        ("original", vec![vec![1, 0], vec![0, 1]], 89),
        ("interchange", vec![vec![0, 1], vec![1, 0]], 41),
        ("reversal", vec![vec![1, 0], vec![0, -1]], 86),
        ("interchange+reversal", vec![vec![0, -1], vec![1, 0]], 36),
        ("compound (ours)", vec![vec![2, -3], vec![1, -1]], 1),
    ];
    cases
        .into_iter()
        .map(|(label, rows, paper_cost)| {
            let t = IMat::from_rows(&rows);
            let estimate = loopmem_core::two_level_estimate(alpha, (t[(0, 0)], t[(0, 1)]), n);
            let out = loopmem_core::apply_transform(&nest, &t).expect("unimodular");
            let exact = simulate(&out).mws_total;
            Ex7Row {
                label,
                transform: t,
                estimate,
                exact,
                paper_cost,
            }
        })
        .collect()
}

/// Renders the Example 7 table.
pub fn format_ex7(rows: &[Ex7Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>10} {:>7} {:>12}",
        "transformation", "estimate", "exact", "paper cost"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>7} {:>12}",
            r.label, r.estimate, r.exact, r.paper_cost
        );
    }
    out
}

// ------------------------------------------------------------- example 8 --

/// The §4/§4.2 Example 8 study.
#[derive(Clone, Debug)]
pub struct Ex8Study {
    /// Dependence distances found (paper: (3,−2), (2,0), (5,−2)).
    pub distances: Vec<Vec<i64>>,
    /// Branch-and-bound objective value at the optimum (paper: 22).
    pub objective_at_optimum: loopmem_linalg::Rational,
    /// Exact MWS of the original loop (formula estimates 50).
    pub mws_before: u64,
    /// Exact MWS after the compound search (paper: 21).
    pub mws_after: u64,
    /// The chosen transformation.
    pub transform: IMat,
    /// The Li–Pingali baseline's outcome (paper: no legal completion).
    pub li_pingali: Result<u64, OptimizeError>,
    /// The interchange/reversal baseline's best MWS (paper: unchanged).
    pub interchange_reversal: u64,
}

/// Runs the Example 8 / §4.2 study.
pub fn example8_study() -> Ex8Study {
    let nest = parse(
        "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
    )
    .unwrap();
    let deps = analyze(&nest);
    let opt = minimize_mws(&nest, SearchMode::default()).expect("compound search succeeds");
    let li = minimize_mws(&nest, SearchMode::LiPingali).map(|o| o.mws_after);
    let ir =
        minimize_mws(&nest, SearchMode::InterchangeReversal).expect("identity is always available");
    Ex8Study {
        distances: deps.distances(true),
        objective_at_optimum: two_level_objective((2, 5), (2, 3), (25, 10)),
        mws_before: opt.mws_before,
        mws_after: opt.mws_after,
        transform: opt.transform,
        li_pingali: li,
        interchange_reversal: ir.mws_after,
    }
}

impl fmt::Display for Ex8Study {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "distances (legality-constraining): {:?}", self.distances)?;
        writeln!(
            f,
            "branch-and-bound objective at (a,b) = (2,3): {} (paper: 22)",
            self.objective_at_optimum
        )?;
        writeln!(
            f,
            "MWS original: {} exact (formula 50); after compound: {} (paper: 21)",
            self.mws_before, self.mws_after
        )?;
        writeln!(f, "chosen T:\n{}", self.transform)?;
        match &self.li_pingali {
            Ok(m) => writeln!(f, "Li-Pingali: reaches {m} (paper expected failure!)")?,
            Err(e) => writeln!(f, "Li-Pingali: {e} (matches the paper)")?,
        }
        writeln!(
            f,
            "interchange+reversal best: {} (paper: cannot improve)",
            self.interchange_reversal
        )
    }
}

// ------------------------------------------------------------ example 10 --

/// The §4.3 Example 10 study: 3-deep nest, window collapse.
#[derive(Clone, Debug)]
pub struct Ex10Study {
    /// Reuse vector of the access matrix (paper: (1,3,3) in magnitude).
    pub reuse_vector: Vec<i64>,
    /// §4.3 closed-form MWS of the original order (paper: 540).
    pub estimate: i64,
    /// Exact MWS of the original order.
    pub exact_before: u64,
    /// Exact MWS after the access-matrix transformation (paper: 1).
    pub exact_after: u64,
    /// The transformation used.
    pub transform: IMat,
}

/// Runs the Example 10 study.
pub fn example10_study() -> Ex10Study {
    let nest = parse(
        "array A[61][51]\n\
         for i = 1 to 10 { for j = 1 to 20 { for k = 1 to 30 { A[3i + k][j + k]; } } }",
    )
    .unwrap();
    let reuse = loopmem_dep::reuse_vectors(&nest)[0].1.clone();
    let estimate = loopmem_core::three_level_estimate((reuse[0], reuse[1], reuse[2]), (10, 20, 30));
    let exact_before = simulate(&nest).mws_total;
    let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
    Ex10Study {
        reuse_vector: reuse,
        estimate,
        exact_before,
        exact_after: opt.mws_after,
        transform: opt.transform,
    }
}

impl fmt::Display for Ex10Study {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reuse vector: {:?} (paper magnitude: (1,3,3))",
            self.reuse_vector
        )?;
        writeln!(
            f,
            "MWS estimate (§4.3 formula): {} (paper: 540)",
            self.estimate
        )?;
        writeln!(f, "MWS exact before: {}", self.exact_before)?;
        writeln!(f, "MWS exact after: {} (paper: 1)", self.exact_after)?;
        writeln!(f, "transformation:\n{}", self.transform)
    }
}

// --------------------------------------------------------------- accuracy --

/// Accuracy of the distinct-access estimators on one kernel (§5's claim:
/// exact everywhere except `rasta_flt`).
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Kernel name.
    pub name: &'static str,
    /// Paper-faithful estimate (summed upper bounds).
    pub estimate: i64,
    /// Our improved estimate (inclusion–exclusion for full-rank
    /// multi-reference groups).
    pub estimate_exact: i64,
    /// Exact distinct accesses (simulator).
    pub exact: u64,
    /// `true` when every per-array estimate was a closed form (no
    /// enumeration fallback).
    pub all_closed_form: bool,
}

/// Runs the estimator-accuracy experiment over the seven kernels.
pub fn accuracy_table() -> Vec<AccuracyRow> {
    all_kernels()
        .into_iter()
        .map(|k| {
            let nest = k.nest();
            let m = analyze_memory(&nest);
            let improved: i64 = loopmem_core::estimate_distinct_exact(&nest)
                .values()
                .map(|e| e.upper)
                .sum();
            let all_closed_form = m
                .distinct
                .values()
                .all(|e| e.method != loopmem_core::Method::Enumerated);
            AccuracyRow {
                name: k.name,
                estimate: m.distinct_estimate_total(),
                estimate_exact: improved,
                exact: m.distinct_exact_total,
                all_closed_form,
            }
        })
        .collect()
}

/// Renders the accuracy table.
pub fn format_accuracy(rows: &[AccuracyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>8} {:>10} {:>12}",
        "code", "paper est", "improved", "err %", "exact", "closed form"
    );
    for r in rows {
        let err = if r.exact > 0 {
            100.0 * (r.estimate as f64 - r.exact as f64) / r.exact as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>7.1}% {:>10} {:>12}",
            r.name, r.estimate, r.estimate_exact, err, r.exact, r.all_closed_form
        );
    }
    out
}

// -------------------------------------------------------- capacity sweep --

/// Operational validation of the MWS: buffer-miss behaviour around the
/// window size, per kernel (an extension experiment; the paper argues the
/// window is the needed capacity, this measures it).
#[derive(Clone, Debug)]
pub struct CapacityRow {
    /// Kernel name.
    pub name: &'static str,
    /// Exact MWS (per the window tracker).
    pub mws: u64,
    /// Cold misses (= distinct elements).
    pub cold: u64,
    /// Smallest capacity with cold-misses-only under Belady-optimal
    /// replacement.
    pub perfect_opt: usize,
    /// Same under LRU.
    pub perfect_lru: usize,
    /// Misses at half the MWS under OPT (capacity starvation).
    pub misses_at_half_opt: u64,
}

/// Runs the capacity sweep on all kernels.
pub fn capacity_sweep() -> Vec<CapacityRow> {
    use loopmem_sim::{min_perfect_capacity, misses, Policy, Trace};
    all_kernels()
        .into_iter()
        .map(|k| {
            let nest = k.nest();
            let mws = simulate(&nest).mws_total;
            let t = Trace::from_nest(&nest);
            CapacityRow {
                name: k.name,
                mws,
                cold: t.distinct() as u64,
                perfect_opt: min_perfect_capacity(&t, Policy::Opt),
                perfect_lru: min_perfect_capacity(&t, Policy::Lru),
                misses_at_half_opt: misses(&t, (mws as usize / 2).max(1), Policy::Opt),
            }
        })
        .collect()
}

/// Renders the capacity-sweep table.
pub fn format_capacity(rows: &[CapacityRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>7} {:>12} {:>12} {:>14}",
        "code", "MWS", "cold", "perfect(OPT)", "perfect(LRU)", "misses@MWS/2"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>7} {:>12} {:>12} {:>14}",
            r.name, r.mws, r.cold, r.perfect_opt, r.perfect_lru, r.misses_at_half_opt
        );
    }
    out
}

// ---------------------------------------------------------- layout study --

/// Line-granular effect of array storage order on one kernel (the §7
/// future-work extension, implemented).
#[derive(Clone, Debug)]
pub struct LayoutRow {
    /// Kernel name.
    pub name: &'static str,
    /// Line-window size, row-major arrays.
    pub mws_lines_rm: u64,
    /// Line-window size, column-major arrays.
    pub mws_lines_cm: u64,
    /// LRU misses with a line buffer of 1/4 the row-major line footprint,
    /// row-major.
    pub misses_rm: u64,
    /// Same capacity, column-major.
    pub misses_cm: u64,
}

/// Runs the layout study on all kernels with 8-word lines.
pub fn layout_study() -> Vec<LayoutRow> {
    use loopmem_sim::{line_analysis, misses, Layout, Policy};
    all_kernels()
        .into_iter()
        .map(|k| {
            let nest = k.nest();
            let narrays = nest.arrays().len();
            let rm = vec![Layout::RowMajor; narrays];
            let cm = vec![Layout::ColMajor; narrays];
            let (rm_stats, rm_trace) = line_analysis(&nest, &rm, 8);
            let (cm_stats, cm_trace) = line_analysis(&nest, &cm, 8);
            let capacity = (rm_stats.distinct_lines as usize / 4).max(2);
            LayoutRow {
                name: k.name,
                mws_lines_rm: rm_stats.mws_lines,
                mws_lines_cm: cm_stats.mws_lines,
                misses_rm: misses(&rm_trace, capacity, Policy::Lru),
                misses_cm: misses(&cm_trace, capacity, Policy::Lru),
            }
        })
        .collect()
}

/// Renders the layout table.
pub fn format_layout(rows: &[LayoutRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "code", "lineMWS(rm)", "lineMWS(cm)", "misses(rm)", "misses(cm)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>12} {:>12}",
            r.name, r.mws_lines_rm, r.mws_lines_cm, r.misses_rm, r.misses_cm
        );
    }
    out
}

// ---------------------------------------------------------------- fig 1 --

/// Figure 1: ASCII rendering of the reused region a dependence vector
/// induces on a 2-deep iteration space. An iteration is marked `#` when it
/// re-accesses an element some earlier iteration already touched (it is
/// the *sink* of a dependence); the `#` count is exactly the paper's
/// shaded-area reuse `Σ (N_k − |d_k|)`-product.
pub fn figure1(nest: &LoopNest) -> String {
    use std::fmt::Write as _;
    assert_eq!(nest.depth(), 2, "figure 1 is a 2-deep illustration");
    let ranges = nest.rectangular_ranges().expect("rectangular");
    let mut seen: std::collections::HashSet<(loopmem_ir::ArrayId, Vec<i64>)> =
        std::collections::HashSet::new();
    let mut marks = Vec::new();
    let mut reuse_count = 0u64;
    loopmem_sim::for_each_iteration(nest, |it| {
        let mut reuses = false;
        for r in nest.refs() {
            if !seen.insert((r.array, r.index_at(it))) {
                reuses = true;
                reuse_count += 1;
            }
        }
        marks.push(reuses);
    });
    let mut out = String::new();
    let width = (ranges[1].1 - ranges[1].0 + 1) as usize;
    for (idx, reused) in marks.iter().enumerate() {
        out.push(if *reused { '#' } else { '.' });
        if (idx + 1) % width == 0 {
            out.push('\n');
        }
    }
    let _ = writeln!(
        out,
        "reuse (accesses to already-touched elements): {} of {} accesses, {} distinct",
        reuse_count,
        marks.len() * nest.refs().count(),
        seen.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn examples_rows_match_paper() {
        for r in examples_table() {
            assert_eq!(r.formula, r.paper, "example {}: {}", r.example, r.quantity);
        }
    }

    #[test]
    fn example7_rows() {
        let rows = example7_comparison();
        assert_eq!(rows.len(), 5);
        // Compound transformation reaches 1 both estimated and exact.
        let last = rows.last().unwrap();
        assert_eq!(last.estimate, 1);
        assert_eq!(last.exact, 1);
        // Exact MWS never exceeds the eq.-2 estimate.
        for r in &rows {
            assert!(r.exact as i64 <= r.estimate, "{}", r.label);
        }
        // Same ordering as the paper's cost metric.
        assert!(rows[4].exact < rows[3].exact);
        assert!(rows[3].exact < rows[1].exact);
        assert!(rows[1].exact < rows[0].exact);
    }

    #[test]
    fn example8_matches_paper() {
        let s = example8_study();
        assert_eq!(s.mws_after, 21);
        assert_eq!(s.objective_at_optimum, loopmem_linalg::Rational::from(22));
        assert!(s.li_pingali.is_err());
        assert_eq!(s.interchange_reversal, s.mws_before);
    }

    #[test]
    fn example10_matches_paper() {
        let s = example10_study();
        assert_eq!(s.estimate, 540);
        assert_eq!(s.exact_after, 1);
        assert_eq!(
            s.reuse_vector.iter().map(|x| x.abs()).collect::<Vec<_>>(),
            vec![1, 3, 3]
        );
    }

    #[test]
    fn figure1_region_has_56_reuses() {
        // Example 1(b): A[2i+3j] over 10x10, dependence (3,-2):
        // reuse = (10-3)(10-2) = 56.
        let nest =
            parse("array A[70]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i + 3j]; } }").unwrap();
        let art = figure1(&nest);
        assert!(
            art.contains("already-touched elements): 56 of 100 accesses, 44 distinct"),
            "{art}"
        );
    }
}
