#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Benchmark kernels and experiment harness.
//!
//! This crate reproduces every table and figure of the paper's evaluation:
//!
//! * [`kernels`] — the seven image/video-processing codes of §5
//!   (`2_point`, `3_point`, `sor`, `matmult`, `3step_log`, `full_search`,
//!   `rasta_flt`) written in the `loopmem-ir` DSL;
//! * [`experiments`] — one function per table/figure, each returning a
//!   structured result with a `Display` that prints the paper-formatted
//!   table; the `src/bin/*` binaries are thin wrappers:
//!
//! | experiment | binary |
//! |---|---|
//! | Figure 1 (reuse region) | `fig1_reuse_region` |
//! | Figure 2 (results table) | `fig2_table` |
//! | Examples 1–6 (distinct-access estimates) | `examples_table` |
//! | Example 7 (transformation comparison) | `ex7_transform_comparison` |
//! | Example 8 / §4.2 (Li–Pingali comparison, branch and bound) | `ex8_li_pingali` |
//! | Example 10 / §4.3 (3-deep window collapse) | `ex10_three_level` |
//! | Example 9 / eq. (2) (estimate vs. exact sweep) | `ex9_eq2_sweep` |
//! | §5 accuracy claim (estimate vs. exact) | `accuracy_table` |
//! | §6 speed claim (estimate vs. enumeration) | `cargo bench` |
//! | MWS capacity validation (extension) | `capacity_sweep` |
//! | window profiles (extension) | `window_profiles` |
//! | layout effects (§7 future work) | `layout_effects` |
//! | LRU miss curves (extension) | `miss_curves` |
//! | extended kernel suite | `fig2_extended` |
//! | symbolic formulas | `symbolic_formulas` |

pub mod experiments;
pub mod extended;
pub mod kernels;

pub use extended::extended_kernels;
pub use kernels::{all_kernels, kernel_by_name, Kernel};
