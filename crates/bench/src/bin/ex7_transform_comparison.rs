//! Example 7: MWS under interchange/reversal vs. the compound transformation.
fn main() {
    let rows = loopmem_bench::experiments::example7_comparison();
    println!("Example 7 — X[2i-3j], 20x30");
    print!("{}", loopmem_bench::experiments::format_ex7(&rows));
    println!("\npaper costs use the Eisenbeis window metric; our 'exact' column is simulated.");
}
