//! Regenerates the §2–§3 worked examples (1a/1b, 2, 3, 4, 5, 6).
fn main() {
    let rows = loopmem_bench::experiments::examples_table();
    print!("{}", loopmem_bench::experiments::format_examples(&rows));
    println!(
        "\nnote: example 3's formula value (139) reproduces the paper; the exact union is 121."
    );
    println!(
        "note: example 6's paper 'actual' is 181; brute force gives 182 (see EXPERIMENTS.md)."
    );
}
