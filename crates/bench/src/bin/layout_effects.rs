//! Extension experiment (§7 future work): storage-order effects at cache-
//! line granularity, per kernel (8-word lines; LRU buffer of a quarter of
//! the row-major line footprint).
fn main() {
    let rows = loopmem_bench::experiments::layout_study();
    println!("Array layout effects (8-word lines)");
    print!("{}", loopmem_bench::experiments::format_layout(&rows));
    println!("\nrow-major suits the row-streaming kernels; the line-window and miss");
    println!("columns quantify the spatial-locality effect element counting misses.");
}
