//! Example 10 / §4.3: 3-deep window estimate (540) and collapse to 1.
fn main() {
    println!("Example 10 — A[3i+k][j+k], 10x20x30");
    println!("{}", loopmem_bench::experiments::example10_study());
}
