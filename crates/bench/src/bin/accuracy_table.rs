//! §5 accuracy claim: distinct-access estimates vs. exact counts.
fn main() {
    let rows = loopmem_bench::experiments::accuracy_table();
    println!("Estimator accuracy on the seven kernels");
    print!("{}", loopmem_bench::experiments::format_accuracy(&rows));
    println!("\npaper: 'except for rasta_flt, our estimations were exact'.");
}
