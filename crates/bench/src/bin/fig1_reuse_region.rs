//! Figure 1: the reused region induced by dependence (3,-2) on a 10x10 space.
fn main() {
    let nest =
        loopmem_ir::parse("array A[70]\nfor i = 1 to 10 { for j = 1 to 10 { A[2i + 3j]; } }")
            .expect("kernel parses");
    println!("Figure 1 — iteration space of a 2-nested loop, dependence (3,-2)");
    println!("('#' marks iterations that re-access an already-touched element)\n");
    print!("{}", loopmem_bench::experiments::figure1(&nest));
}
