//! Validates perfsuite bench reports (`BENCH_loopmem.json`,
//! `ci/bench_baseline.json`) with the workspace's own JSON parser, so a
//! malformed or hand-mangled report can never silently pass the CI
//! regression gate.
//!
//! Usage:
//!
//! ```text
//! benchcheck <report.json>... [--require-multicore]
//! ```
//!
//! Default checks, per file: the document parses (the in-tree parser
//! rejects `NaN`/`Infinity` outright — they are not JSON), the suite
//! header is present, every result row carries the required keys with
//! sane values (`bench`/`subject` non-empty, `threads >= 1`, finite
//! non-negative `millis`, a known `outcome` token), the governed
//! pathological row is recorded as `bounded`, the pass-1 and scratchpad
//! sections exist, and every speedup is finite and strictly positive.
//!
//! `--require-multicore` additionally asserts the report was recorded on
//! a multi-core host: `available_parallelism >= 2`, the t ∈ {2, 4} sweep
//! rows of every sweeping section are present, their `mws_total` matches
//! the 1-thread row bit for bit, and their wall time is within tolerance
//! of the 1-thread row (a generous 10× + 50 ms — the point is catching
//! accidental serialization or a skipped sweep, not micro-benchmarking a
//! shared runner).

use loopmem_analyze::json::{parse_json, Json};
use std::process::ExitCode;

/// Outcome tokens a perfsuite row may carry.
const OUTCOMES: &[&str] = &["exact", "bounded", "failed", "overflow"];

/// `(bench, subject)` sections that sweep the 1/2/4-thread matrix on
/// multi-core hosts.
const SWEEP_SECTIONS: &[(&str, &str)] = &[
    ("simulate-dense", "synth-stream"),
    ("simulate-dense", "synth-reuse"),
    ("program-batch", "pipeline4"),
    ("optimize-program", "ex7-twice"),
    ("scratchpad", "pipeline4-size"),
];

/// Multi-thread rows may be at most `10 * millis_1t + 50ms`.
const MULTICORE_TOLERANCE_FACTOR: f64 = 10.0;
const MULTICORE_TOLERANCE_GRACE_MS: f64 = 50.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let require_multicore = args.iter().any(|a| a == "--require-multicore");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("usage: benchcheck <report.json>... [--require-multicore]");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in files {
        match check_file(path, require_multicore) {
            Ok((summary, warnings)) => {
                println!("ok   {path}: {summary}");
                for w in warnings {
                    println!("warn {path}: {w}");
                }
            }
            Err(problems) => {
                failed = true;
                for p in &problems {
                    println!("FAIL {path}: {p}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Validates one report; `Ok` carries a one-line summary plus any
/// non-fatal warnings, `Err` every problem found (the whole file is
/// checked, not just the first slip).
fn check_file(path: &str, require_multicore: bool) -> Result<(String, Vec<String>), Vec<String>> {
    let src = std::fs::read_to_string(path).map_err(|e| vec![format!("unreadable: {e}")])?;
    let doc = parse_json(&src)
        .ok_or_else(|| vec!["invalid JSON (NaN/Infinity are rejected by design)".to_string()])?;
    let mut problems = Vec::new();

    if doc.get("suite").and_then(Json::as_str) != Some("loopmem-perfsuite") {
        problems.push("missing or wrong \"suite\" header".to_string());
    }
    let avail = doc
        .get("available_parallelism")
        .and_then(Json::as_i64)
        .unwrap_or(0);
    if avail < 1 {
        problems.push("available_parallelism must be >= 1".to_string());
    }
    if doc
        .get("threads_default")
        .and_then(Json::as_i64)
        .unwrap_or(0)
        < 1
    {
        problems.push("threads_default must be >= 1".to_string());
    }

    let rows = match doc.get("results") {
        Some(Json::Arr(rows)) if !rows.is_empty() => rows,
        _ => {
            problems.push("\"results\" missing or empty".to_string());
            return Err(problems);
        }
    };
    for (k, row) in rows.iter().enumerate() {
        check_row(k, row, &mut problems);
    }

    // Section-presence checks: a report with the governed, pass-1, or
    // scratchpad section silently dropped must not pass.
    let governed: Vec<&Json> = rows
        .iter()
        .filter(|r| r.get("bench").and_then(Json::as_str) == Some("governed"))
        .collect();
    if governed.is_empty() {
        problems.push("no governed pathological row recorded".to_string());
    }
    for g in governed {
        if g.get("outcome").and_then(Json::as_str) != Some("bounded") {
            problems.push("governed pathological row must be 'bounded'".to_string());
        }
    }
    for section in ["pass1-", "scratchpad"] {
        if !rows.iter().any(|r| {
            r.get("bench")
                .and_then(Json::as_str)
                .is_some_and(|b| b.starts_with(section))
        }) {
            problems.push(format!("no '{section}' rows recorded"));
        }
    }

    let speedups = match doc.get("speedups") {
        Some(Json::Obj(m)) if !m.is_empty() => m,
        _ => {
            problems.push("\"speedups\" missing or empty".to_string());
            return Err(problems);
        }
    };
    for (name, v) in speedups {
        match v.as_f64() {
            Some(x) if x > 0.0 => {}
            Some(x) => problems.push(format!("speedup {name} is {x} (must be > 0)")),
            None => problems.push(format!("speedup {name} is not a number")),
        }
    }
    for required in [
        "dense1t_vs_hashmap",
        "lanesplit_vs_interleaved",
        "trace_overhead",
    ] {
        if !speedups.keys().any(|k| k.ends_with(required)) {
            problems.push(format!("no *_{required} speedup recorded"));
        }
    }

    if require_multicore {
        check_multicore(avail, rows, &mut problems);
    }

    if problems.is_empty() {
        // Provenance, not validity: a 1-CPU recording is well-formed but
        // its thread-sweep speedups carry no scaling signal, so flag it
        // without failing (the multicore gate fails it explicitly).
        let mut warnings = Vec::new();
        if !require_multicore && avail == 1 {
            warnings.push(
                "recorded on a 1-CPU host: thread-sweep rows absent and \
                 speedups reflect no real parallelism"
                    .to_string(),
            );
        }
        Ok((
            format!(
                // Always name the recording host's parallelism: a stale
                // baseline re-recorded on different hardware is the #1
                // source of phantom regressions, and the provenance should
                // be visible without opening the JSON.
                "{} rows, {} speedups, recorded with available_parallelism={avail}{}",
                rows.len(),
                speedups.len(),
                if require_multicore {
                    ", multicore sweep verified".to_string()
                } else {
                    String::new()
                }
            ),
            warnings,
        ))
    } else {
        Err(problems)
    }
}

fn check_row(k: usize, row: &Json, problems: &mut Vec<String>) {
    for key in ["bench", "subject"] {
        if row
            .get(key)
            .and_then(Json::as_str)
            .is_none_or(str::is_empty)
        {
            problems.push(format!("row {k}: '{key}' missing or empty"));
        }
    }
    if row.get("threads").and_then(Json::as_i64).unwrap_or(0) < 1 {
        problems.push(format!("row {k}: 'threads' missing or < 1"));
    }
    match row.get("millis").and_then(Json::as_f64) {
        Some(ms) if ms >= 0.0 => {}
        _ => problems.push(format!("row {k}: 'millis' missing or negative")),
    }
    if row.get("iterations").and_then(Json::as_i64).unwrap_or(-1) < 0 {
        problems.push(format!("row {k}: 'iterations' missing or negative"));
    }
    match row.get("mws_total") {
        Some(Json::Null) => {}
        Some(v) if v.as_i64().is_some_and(|m| m >= 0) => {}
        _ => problems.push(format!("row {k}: 'mws_total' must be null or a count")),
    }
    match row.get("outcome").and_then(Json::as_str) {
        Some(o) if OUTCOMES.contains(&o) => {}
        other => problems.push(format!("row {k}: bad outcome {other:?}")),
    }
}

/// The multi-core assertions behind the `bench-multicore` CI job: the
/// sweep actually ran at t ∈ {2, 4}, agreed with the 1-thread answers,
/// and did not serialize.
fn check_multicore(avail: i64, rows: &[Json], problems: &mut Vec<String>) {
    if avail < 2 {
        problems.push(format!(
            "--require-multicore: available_parallelism is {avail} (need >= 2)"
        ));
        return; // a 1-CPU recording legitimately has no sweep rows
    }
    for &(bench, subject) in SWEEP_SECTIONS {
        let find = |threads: i64| {
            rows.iter().find(|r| {
                r.get("bench").and_then(Json::as_str) == Some(bench)
                    && r.get("subject").and_then(Json::as_str) == Some(subject)
                    && r.get("threads").and_then(Json::as_i64) == Some(threads)
            })
        };
        let Some(base) = find(1) else {
            problems.push(format!("{bench}/{subject}: no 1-thread row"));
            continue;
        };
        let base_ms = base.get("millis").and_then(Json::as_f64).unwrap_or(0.0);
        let base_mws = base.get("mws_total").and_then(Json::as_i64);
        for t in [2i64, 4] {
            let Some(row) = find(t) else {
                problems.push(format!("{bench}/{subject}: {t}-thread sweep row missing"));
                continue;
            };
            let mws = row.get("mws_total").and_then(Json::as_i64);
            if mws != base_mws {
                problems.push(format!(
                    "{bench}/{subject}: t={t} answer {mws:?} != 1t answer {base_mws:?}"
                ));
            }
            let ms = row.get("millis").and_then(Json::as_f64).unwrap_or(f64::MAX);
            let cap = MULTICORE_TOLERANCE_FACTOR * base_ms + MULTICORE_TOLERANCE_GRACE_MS;
            if ms > cap {
                problems.push(format!(
                    "{bench}/{subject}: t={t} took {ms:.3}ms, over tolerance \
                     ({MULTICORE_TOLERANCE_FACTOR}x * {base_ms:.3}ms 1t + \
                     {MULTICORE_TOLERANCE_GRACE_MS}ms = {cap:.3}ms)"
                ));
            }
        }
    }
}
