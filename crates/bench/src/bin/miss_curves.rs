//! Extension experiment: full LRU miss curves per kernel from a single
//! reuse-distance histogram pass — misses at every capacity, with the MWS
//! marked. The knee of each curve sits at (or just past) the window size.

use loopmem_sim::{simulate, ReuseHistogram, Trace};

fn main() {
    for k in loopmem_bench::all_kernels() {
        let nest = k.nest();
        let mws = simulate(&nest).mws_total as usize;
        let t = Trace::from_nest(&nest);
        let h = ReuseHistogram::from_trace(&t);
        println!("{} (cold {}, MWS {mws}):", k.name, h.cold());
        let mut caps: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
        caps.push(mws.saturating_sub(1).max(1));
        caps.push(mws);
        caps.push(mws + 1);
        caps.sort_unstable();
        caps.dedup();
        for c in caps {
            let m = h.lru_misses(c);
            let marker = if c == mws { "  <- MWS" } else { "" };
            println!("  C={c:>5}  misses={m:>7}{marker}");
        }
        println!();
    }
}
