//! Extension experiment: operational validation of the MWS as the needed
//! buffer capacity (miss behaviour under OPT and LRU replacement).
fn main() {
    let rows = loopmem_bench::experiments::capacity_sweep();
    println!("Buffer capacity needed for cold-misses-only, vs. the analytical MWS");
    print!("{}", loopmem_bench::experiments::format_capacity(&rows));
    println!("\n'perfect' capacities near the MWS confirm the window is the working set;");
    println!("misses at MWS/2 show the cliff below it.");
}
