//! Example 9 / eq. (2): how well the closed-form window tracks the exact
//! one across the space of legal unimodular transformations.
//!
//! For the §2.3 uniformly generated loop (two X references of the form
//! 2i + 3j + c), every legal transformation with small coefficients is
//! applied; the table reports eq. (2) vs. the simulated MWS.

use loopmem_core::{apply_transform, two_level_estimate};
use loopmem_dep::{analyze, is_legal};
use loopmem_linalg::gcd::gcd_i64;
use loopmem_linalg::IMat;
use loopmem_sim::simulate;

fn main() {
    sweep(
        "§2.3 loop, X alpha = (2,3), Y alpha = (1,1); 20x20",
        "array X[200]\narray Y[100]\n\
         for i = 1 to 20 { for j = 1 to 20 {\n\
           X[2i + 3j + 2] = Y[i + j];\n\
           Y[i + j + 1] = X[2i + 3j + 3];\n\
         } }",
        &[((2, 3), ()), ((1, 1), ())],
        (20, 20),
    );
    println!();
    sweep(
        "Example 8 loop, X alpha = (2,5); 25x10",
        "array X[200]\n\
         for i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
        &[((2, 5), ())],
        (25, 10),
    );
}

fn sweep(title: &str, src: &str, alphas: &[((i64, i64), ())], n: (i64, i64)) {
    let nest = loopmem_ir::parse(src).expect("sweep kernel parses");
    let deps = analyze(&nest);
    println!("{title}");
    println!(
        "{:>3} {:>3} {:>3} {:>3} {:>10} {:>10} {:>7}",
        "a", "b", "c", "d", "eq2(X)+eq2(Y)", "exact", "ratio"
    );
    let mut printed = 0;
    for a in -2i64..=2 {
        for b in -2i64..=2 {
            for c in -2i64..=2 {
                for d in -2i64..=2 {
                    if a * d - b * c != 1 || gcd_i64(a, b) != 1 {
                        continue;
                    }
                    let t = IMat::from_rows(&[vec![a, b], vec![c, d]]);
                    if !is_legal(&t, &deps) {
                        continue;
                    }
                    let est: i64 = alphas
                        .iter()
                        .map(|&(alpha, ())| two_level_estimate(alpha, (a, b), n))
                        .sum();
                    let out = apply_transform(&nest, &t).expect("unimodular");
                    let exact = simulate(&out).mws_total;
                    println!(
                        "{:>3} {:>3} {:>3} {:>3} {:>13} {:>10} {:>7.2}",
                        a,
                        b,
                        c,
                        d,
                        est,
                        exact,
                        est as f64 / exact.max(1) as f64
                    );
                    printed += 1;
                }
            }
        }
    }
    println!("\n{printed} legal transformations; eq. (2) is a close upper estimate throughout.");
}
