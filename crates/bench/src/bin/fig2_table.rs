//! Regenerates Figure 2: default vs. MWS_unopt vs. MWS_opt per kernel.
fn main() {
    let fig2 = loopmem_bench::experiments::figure2();
    println!("Figure 2 — default and estimated memory requirements (exact MWS)");
    println!("{fig2}");
    println!("paper: averages 81.9% (unopt) and 92.3% (opt); matmult row 768/273/273");
    for r in &fig2.rows {
        println!("\n{}: chosen transformation\n{}", r.name, r.transform);
    }
}
