//! Figure 2 methodology applied to the extended kernel suite (generality
//! check beyond the paper's seven codes).
use loopmem_core::optimize::{minimize_mws, SearchMode};

fn main() {
    println!("Extended suite — default vs MWS before/after optimization");
    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>10} {:>8}",
        "code", "default", "MWS_unopt", "(red.)", "MWS_opt", "(red.)"
    );
    for k in loopmem_bench::extended_kernels() {
        let nest = k.nest();
        let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
        let default = nest.default_memory();
        let pct = |v: u64| 100.0 * (1.0 - v as f64 / default as f64);
        println!(
            "{:<12} {:>8} {:>10} {:>7.1}% {:>10} {:>7.1}%",
            k.name,
            default,
            opt.mws_before,
            pct(opt.mws_before),
            opt.mws_after,
            pct(opt.mws_after)
        );
    }
}
