//! Dependency-free performance suite for the `loopmem` workspace.
//!
//! Times the simulator (dense engine vs the legacy hashmap engine, 1..=N
//! worker threads), the per-iteration profile, each optimizer search mode
//! on the paper kernels plus two ≥10⁷-iteration synthetic nests, and the
//! sharded program-batch engine (per-nest serial baselines vs the
//! whole-program sharded path). Prints a table and writes
//! machine-readable results to `BENCH_loopmem.json` at the repository
//! root.
//!
//! Usage:
//!
//! ```text
//! perfsuite [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the synthetics to ~10⁵ iterations so CI can assert
//! the harness end-to-end in seconds; the JSON shape is identical.
//! Worker threads come from `LOOPMEM_THREADS` (default: available
//! parallelism). On a single-CPU host the multi-thread sweep rows are
//! skipped with a note — they would only report scheduler noise.

use loopmem_bench::all_kernels;
use loopmem_core::optimize::{minimize_mws_with_threads, SearchMode};
use loopmem_core::{
    optimize_program_with_threads, scratchpad_program_with_threads, scratchpad_with_fusion,
};
use loopmem_ir::{parse, parse_program, LoopNest, Program};
use loopmem_obs::NullSink;
use loopmem_sim::{
    bench_pass1, bench_pass1_interleaved, simulate_hashmap, simulate_program_with_threads,
    simulate_with_profile, simulate_with_threads, thread_count, try_simulate,
    try_simulate_with_threads, AnalysisBudget,
};
use std::sync::Arc;
use std::time::Instant;

/// One timed measurement.
struct Row {
    bench: String,
    subject: String,
    threads: usize,
    millis: f64,
    iterations: u64,
    mws_total: Option<u64>,
    /// How the analysis ended: `exact` for a completed run, `bounded`
    /// when a resource budget tripped and the answer degraded to
    /// analytical bounds, `failed` for contained errors.
    outcome: &'static str,
}

fn time_ms<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64() * 1e3, out)
}

/// Median-of-3 timing for cheap subjects; single-shot for expensive ones.
fn time_median3<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let (a, _) = time_ms(&mut f);
    let (b, _) = time_ms(&mut f);
    let (c, out) = time_ms(&mut f);
    let mut v = [a, b, c];
    v.sort_by(f64::total_cmp);
    (v[1], out)
}

fn synthetic_stream(smoke: bool) -> LoopNest {
    // Element-heavy row stencil: ~12M iterations (~1M distinct elements),
    // the dense engine's best case against per-access hashing.
    let (t, n) = if smoke { (2, 100) } else { (12, 1000) };
    parse(&format!(
        "array A[{}][{}]\nfor t = 1 to {t} {{ for i = 2 to {n} {{ for j = 1 to {n} {{ A[i][j] = A[i-1][j]; }} }} }}",
        n + 2,
        n + 2,
    ))
    .expect("synthetic parses")
}

fn synthetic_reuse(smoke: bool) -> LoopNest {
    // Reuse-heavy 1-D nest (Example 8 scaled up): 10M iterations over a
    // ~20k-element footprint, stressing touch-table updates.
    let (i, j) = if smoke { (400, 250) } else { (4000, 2500) };
    parse(&format!(
        "array X[{}]\nfor i = 1 to {i} {{ for j = 1 to {j} {{ X[2i + 5j + 1] = X[2i + 5j + 5]; }} }}",
        2 * i + 5 * j + 8,
    ))
    .expect("synthetic parses")
}

/// Multi-nest batch workload: a four-phase pipeline over shared arrays.
/// Nest 2 repeats nest 0's kernel under different loop-variable names
/// (exercising the canonical-key memo), and nest 1 is triangular
/// (exercising volume-balanced chunking inside a nest).
fn synthetic_program(smoke: bool) -> Program {
    let n = if smoke { 60 } else { 400 };
    parse_program(&format!(
        "array A[{m}][{m}]\narray B[{m}][{m}]\n\
         for i = 2 to {n} {{ for j = 1 to {n} {{ A[i][j] = A[i-1][j]; }} }}\n\
         for i = 1 to {n} {{ for j = i to {n} {{ B[i][j] = A[i][j]; }} }}\n\
         for p = 2 to {n} {{ for q = 1 to {n} {{ A[p][q] = A[p-1][q]; }} }}\n\
         for i = 1 to {n} {{ for j = 1 to {n} {{ B[i][j] = B[i][j] + A[i][j]; }} }}",
        m = n + 2,
    ))
    .expect("synthetic program parses")
}

/// One nest per pass-1 kernel class, sized so the lane-split vs legacy
/// interleaved comparison measures the inner loop rather than planning
/// overhead: stride-0 (innermost-invariant subscript), stride ±1
/// (contiguous runs, sole and stencil-pair variants), general stride
/// (Example 8's interleaving), and the sparse hashmap fallback.
fn pass1_synthetics(smoke: bool) -> Vec<(&'static str, LoopNest)> {
    let (i1, j1) = if smoke { (300, 300) } else { (2000, 2000) };
    let (si, sj) = if smoke { (40, 40) } else { (400, 400) };
    vec![
        (
            "stride0",
            parse(&format!(
                "array A[{}]\nfor i = 1 to {i1} {{ for j = 1 to {j1} {{ A[i]; }} }}",
                i1 + 1
            ))
            .expect("pass1 synthetic parses"),
        ),
        (
            "stride1",
            parse(&format!(
                "array X[{}]\nfor i = 1 to {i1} {{ for j = 1 to {j1} {{ X[i + j]; }} }}",
                i1 + j1 + 1
            ))
            .expect("pass1 synthetic parses"),
        ),
        // Two-reference stride +1 stencil (the synth-stream kernel).
        ("stencil2", synthetic_stream(smoke)),
        (
            "stride-1",
            parse(&format!(
                "array X[{}]\nfor i = 1 to {i1} {{ for j = 1 to {j1} {{ X[{j1} - j + i]; }} }}",
                i1 + j1 + 2
            ))
            .expect("pass1 synthetic parses"),
        ),
        // Two-reference general stride 5 (the synth-reuse kernel).
        ("general5", synthetic_reuse(smoke)),
        (
            "sparse",
            parse(&format!(
                "array X[2000000000]\nfor i = 1 to {si} {{ for j = 1 to {sj} {{ X[100000000i + j]; }} }}"
            ))
            .expect("pass1 synthetic parses"),
        ),
    ]
}

fn optimizer_examples() -> Vec<(&'static str, LoopNest)> {
    vec![
        (
            "example7",
            parse("array X[100]\nfor i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }").unwrap(),
        ),
        (
            "example8",
            parse(
                "array X[200]\nfor i = 1 to 25 { for j = 1 to 10 { X[2i + 5j + 1] = X[2i + 5j + 5]; } }",
            )
            .unwrap(),
        ),
    ]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(
    path: &std::path::Path,
    rows: &[Row],
    speedups: &[(String, f64)],
    threads: usize,
    avail: usize,
) {
    let mut out = String::from("{\n");
    out.push_str("  \"suite\": \"loopmem-perfsuite\",\n");
    out.push_str(&format!("  \"threads_default\": {threads},\n"));
    out.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    out.push_str("  \"results\": [\n");
    for (k, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"subject\": \"{}\", \"threads\": {}, \"millis\": {:.3}, \"iterations\": {}, \"mws_total\": {}, \"outcome\": \"{}\"}}{}\n",
            json_escape(&r.bench),
            json_escape(&r.subject),
            r.threads,
            r.millis,
            r.iterations,
            r.mws_total.map_or("null".to_string(), |m| m.to_string()),
            r.outcome,
            if k + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n  \"speedups\": {\n");
    for (k, (name, v)) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.3}{}\n",
            json_escape(name),
            v,
            if k + 1 == speedups.len() { "" } else { "," },
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|k| args.get(k + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            // crates/bench -> repository root.
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_loopmem.json")
        });
    let nthreads = thread_count();
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // On a single-CPU host a 2- or 4-thread sweep measures scheduler
    // noise, not scaling; record only the serial rows and say so.
    let sweep: Vec<usize> = if avail == 1 { vec![1] } else { vec![1, 2, 4] };
    let mut rows: Vec<Row> = Vec::new();
    let mut speedups: Vec<(String, f64)> = Vec::new();

    println!(
        "loopmem perfsuite ({}, {} worker threads, {} CPUs available)",
        if smoke { "smoke" } else { "full" },
        nthreads,
        avail
    );
    if avail == 1 {
        println!(
            "note: single-CPU host — skipping multi-thread sweep rows (no real scaling to measure)"
        );
    }
    println!();
    println!(
        "{:<34} {:>7} {:>12} {:>14}",
        "bench", "threads", "millis", "iterations"
    );

    let record = |rows: &mut Vec<Row>,
                  bench: &str,
                  subject: &str,
                  threads: usize,
                  millis: f64,
                  iterations: u64,
                  mws: Option<u64>| {
        println!(
            "{:<34} {:>7} {:>12.3} {:>14}",
            format!("{bench}/{subject}"),
            threads,
            millis,
            iterations
        );
        rows.push(Row {
            bench: bench.to_string(),
            subject: subject.to_string(),
            threads,
            millis,
            iterations,
            mws_total: mws,
            outcome: "exact",
        });
    };

    // --- paper kernels: dense vs hashmap, plus the profile variant -------
    for k in all_kernels() {
        let nest = k.nest();
        let (ms, s) = time_median3(|| simulate_with_threads(&nest, false, 1));
        record(
            &mut rows,
            "simulate",
            k.name,
            1,
            ms,
            s.iterations,
            Some(s.mws_total),
        );
        let (ms, s) = time_median3(|| simulate_hashmap(&nest));
        record(
            &mut rows,
            "simulate-hashmap",
            k.name,
            1,
            ms,
            s.iterations,
            Some(s.mws_total),
        );
        let (ms, s) = time_median3(|| simulate_with_profile(&nest));
        record(
            &mut rows,
            "simulate-profile",
            k.name,
            nthreads,
            ms,
            s.iterations,
            Some(s.mws_total),
        );
    }

    // --- synthetics: engine comparison and thread scaling ----------------
    for (name, nest) in [
        ("synth-stream", synthetic_stream(smoke)),
        ("synth-reuse", synthetic_reuse(smoke)),
    ] {
        // Median-of-3 on both engines: the dense/hashmap ratio feeds the
        // CI bench-regression gate, so tame scheduler noise at the source.
        let (hash_ms, s) = time_median3(|| simulate_hashmap(&nest));
        let baseline = s.mws_total;
        record(
            &mut rows,
            "simulate-hashmap",
            name,
            1,
            hash_ms,
            s.iterations,
            Some(s.mws_total),
        );
        for &threads in &sweep {
            let (ms, s) = time_median3(|| simulate_with_threads(&nest, false, threads));
            assert_eq!(s.mws_total, baseline, "engines disagree on {name}");
            record(
                &mut rows,
                "simulate-dense",
                name,
                threads,
                ms,
                s.iterations,
                Some(s.mws_total),
            );
            speedups.push((format!("{name}_dense{threads}t_vs_hashmap"), hash_ms / ms));
        }
        let (profile_ms, s) = time_ms(|| simulate_with_profile(&nest));
        record(
            &mut rows,
            "simulate-profile",
            name,
            nthreads,
            profile_ms,
            s.iterations,
            Some(s.mws_total),
        );
    }

    // --- pass-1 throughput: lane-split kernels vs legacy interleaved ------
    for (name, nest) in pass1_synthetics(smoke) {
        let (lane_ms, iters) = time_median3(|| bench_pass1(&nest, 1));
        record(&mut rows, "pass1-lanesplit", name, 1, lane_ms, iters, None);
        let (old_ms, old_iters) = time_median3(|| bench_pass1_interleaved(&nest));
        assert_eq!(iters, old_iters, "pass-1 engines disagree on {name}");
        record(&mut rows, "pass1-interleaved", name, 1, old_ms, iters, None);
        println!(
            "  pass1/{name}: {:.1} Miters/s lane-split vs {:.1} Miters/s interleaved ({:.2}x)",
            iters as f64 / lane_ms / 1e3,
            iters as f64 / old_ms / 1e3,
            old_ms / lane_ms
        );
        // The sparse class is a fallback-parity check (both engines run
        // the same hashmap loop), not a lane-split kernel — recording a
        // ~1.0x ratio would only add noise to the regression gate.
        if name != "sparse" {
            speedups.push((
                format!("pass1_{name}_lanesplit_vs_interleaved"),
                old_ms / lane_ms,
            ));
        }
    }

    // --- program batch: sharded multi-nest engine ------------------------
    {
        let program = synthetic_program(smoke);
        // Per-nest serial baselines (the nest-by-nest path a caller
        // without the batch API would take).
        let mut nests_total_ms = 0.0;
        for (k, nest) in program.nests().iter().enumerate() {
            let (ms, s) = time_ms(|| simulate_with_threads(nest, false, 1));
            nests_total_ms += ms;
            record(
                &mut rows,
                "program-nest",
                &format!("nest{k}"),
                1,
                ms,
                s.iterations,
                Some(s.mws_total),
            );
        }
        // Whole-program sharded runs across the thread sweep.
        let mut program_1t_ms = f64::NAN;
        let mut baseline_mws = None;
        for &threads in &sweep {
            let (ms, s) = time_ms(|| simulate_program_with_threads(&program, threads));
            let iters: u64 = s.per_nest_iterations.iter().sum();
            match baseline_mws {
                None => baseline_mws = Some(s.mws_total),
                Some(b) => assert_eq!(s.mws_total, b, "batch engine disagrees across threads"),
            }
            if threads == 1 {
                program_1t_ms = ms;
            }
            record(
                &mut rows,
                "program-batch",
                "pipeline4",
                threads,
                ms,
                iters,
                Some(s.mws_total),
            );
            if threads > 1 {
                speedups.push((
                    format!("program_batch_{threads}t_vs_1t"),
                    program_1t_ms / ms,
                ));
            }
        }
        speedups.push((
            "program_batch_1t_vs_nest_sum".to_string(),
            nests_total_ms / program_1t_ms,
        ));
        // Batch optimizer over a program that repeats Example 7 under
        // renamed variables: the shared memo pays for the search once.
        let opt_program = parse_program(
            "array X[100]\n\
             for i = 1 to 20 { for j = 1 to 30 { X[2i - 3j]; } }\n\
             for p = 1 to 20 { for q = 1 to 30 { X[2p - 3q]; } }",
        )
        .expect("optimizer program parses");
        for &threads in &sweep {
            let (ms, r) = time_ms(|| {
                optimize_program_with_threads(&opt_program, SearchMode::default(), threads)
            });
            let mws = r.as_ref().ok().map(|o| o.mws_after);
            record(
                &mut rows,
                "optimize-program",
                "ex7-twice",
                threads,
                ms,
                0,
                mws,
            );
        }
    }

    // --- scratchpad: inter-nest sizing + fusion search --------------------
    {
        // Sizing the 4-phase pipeline across the thread sweep (the
        // underlying batch simulation shards; the fold is serial and the
        // size must be bit-identical at every width).
        let program = synthetic_program(smoke);
        let mut baseline_words = None;
        for &threads in &sweep {
            let (ms, s) = time_median3(|| scratchpad_program_with_threads(&program, threads));
            let iters: u64 = simulate_program_with_threads(&program, threads)
                .per_nest_iterations
                .iter()
                .sum();
            match baseline_words {
                None => baseline_words = Some(s.words),
                Some(b) => assert_eq!(s.words, b, "scratchpad size differs across threads"),
            }
            record(
                &mut rows,
                "scratchpad",
                "pipeline4-size",
                threads,
                ms,
                iters,
                Some(s.words),
            );
        }
        // Fusion search over a producer/consumer pair: the boundary set is
        // the whole array until fusion collapses it.
        let n = if smoke { 60 } else { 400 };
        let pc = parse_program(&format!(
            "array A[{m}][{m}]\narray B[{m}][{m}]\narray C[{m}][{m}]\n\
             for i = 1 to {n} {{ for j = 1 to {n} {{ A[i][j] = B[i][j]; }} }}\n\
             for i = 1 to {n} {{ for j = 1 to {n} {{ C[i][j] = A[i][j] + A[i][j]; }} }}",
            m = n + 1,
        ))
        .expect("producer/consumer parses");
        let (ms, plan) = time_median3(|| scratchpad_with_fusion(&pc, 1));
        assert!(
            plan.fused.words < plan.unfused.words,
            "fusion must shrink the producer/consumer scratchpad"
        );
        record(
            &mut rows,
            "scratchpad",
            "fuse-producer-consumer",
            1,
            ms,
            0,
            Some(plan.fused.words),
        );
        // Words-ratio, not a timing: how much scratchpad the fusion saved
        // (`max(1)` keeps the ratio finite when everything dies in-place).
        speedups.push((
            "scratchpad_fuse_reduction".to_string(),
            plan.unfused.words as f64 / plan.fused.words.max(1) as f64,
        ));
    }

    // --- optimizer search modes ------------------------------------------
    for (name, nest) in optimizer_examples() {
        for (mode_name, mode) in [
            ("compound", SearchMode::default()),
            ("interchange-reversal", SearchMode::InterchangeReversal),
            ("li-pingali", SearchMode::LiPingali),
        ] {
            let (ms, r) = time_median3(|| minimize_mws_with_threads(&nest, mode, nthreads));
            let mws = r.as_ref().ok().map(|o| o.mws_after);
            record(
                &mut rows,
                &format!("optimize-{mode_name}"),
                name,
                nthreads,
                ms,
                0,
                mws,
            );
        }
    }
    // --- governed: a pathological nest under a budget ---------------------
    // A ~10¹² iteration stencil is unsimulatable at any thread count; the
    // governed path must return analytical bounds in (approximately) the
    // time it takes to sweep the iteration cap, not hang.
    {
        let pathological = parse(
            "array X[2000001]\n\
             for i = 1 to 1000000 { for j = 1 to 1000000 { X[i + j] = X[i + j - 1]; } }",
        )
        .expect("pathological nest parses");
        let budget = AnalysisBudget::unlimited().with_max_iterations(1_000_000);
        let (ms, r) = time_ms(|| try_simulate(&pathological, &budget));
        let (outcome, mws) = match &r {
            Ok(s) => ("exact", Some(s.mws_total)),
            Err(loopmem_ir::AnalysisError::Exhausted { partial, .. }) => {
                ("bounded", Some(partial.upper))
            }
            Err(_) => ("failed", None),
        };
        println!(
            "{:<34} {:>7} {:>12.3} {:>14}",
            "governed/pathological-1e12", 1, ms, 1_000_000u64
        );
        rows.push(Row {
            bench: "governed".to_string(),
            subject: "pathological-1e12".to_string(),
            threads: 1,
            millis: ms,
            iterations: 1_000_000,
            mws_total: mws,
            outcome,
        });
    }

    // --- trace: a disabled NullSink must be free ---------------------------
    // `NullSink::enabled()` is false, so `budget.trace()` stays `None` and
    // both runs take the identical untraced fast path. The gated ratio
    // (~1.0) pins the "zero-cost when disabled" claim against structural
    // drift — e.g. an emission site that stops consulting the sink, or a
    // future budget change that routes disabled sinks onto the governed
    // path. Repeats per sample tame scheduler noise on the sub-ms smoke
    // subject.
    {
        let nest = synthetic_reuse(smoke);
        let repeats: u32 = if smoke { 16 } else { 2 };
        let plain_budget = AnalysisBudget::unlimited();
        let null_budget = AnalysisBudget::unlimited().with_trace(Arc::new(NullSink));
        let run = |budget: &AnalysisBudget| {
            let mut last = None;
            for _ in 0..repeats {
                last = Some(try_simulate_with_threads(&nest, false, 1, budget));
            }
            last.unwrap().expect("unlimited budget is exact")
        };
        // Alternate the two configurations and keep each one's best
        // round: scheduler noise only ever adds time, so min-of-N is the
        // stable estimator for a ratio expected to sit at ~1.0 (a median
        // over separate blocks still lets one noisy block skew the gate).
        let mut plain_ms = f64::INFINITY;
        let mut null_ms = f64::INFINITY;
        let mut answers = (None, None);
        for _ in 0..5 {
            let (ms, s) = time_ms(|| run(&plain_budget));
            plain_ms = plain_ms.min(ms);
            answers.0 = Some(s);
            let (ms, s) = time_ms(|| run(&null_budget));
            null_ms = null_ms.min(ms);
            answers.1 = Some(s);
        }
        let (s, s2) = (answers.0.unwrap(), answers.1.unwrap());
        record(
            &mut rows,
            "trace-plain",
            "synth-reuse",
            1,
            plain_ms,
            s.iterations * repeats as u64,
            Some(s.mws_total),
        );
        assert_eq!(s2.mws_total, s.mws_total, "NullSink changed the answer");
        record(
            &mut rows,
            "trace-nullsink",
            "synth-reuse",
            1,
            null_ms,
            s2.iterations * repeats as u64,
            Some(s2.mws_total),
        );
        println!(
            "  trace/nullsink: {plain_ms:.3}ms plain vs {null_ms:.3}ms with NullSink ({:.3}x)",
            plain_ms / null_ms
        );
        speedups.push(("trace_overhead".to_string(), plain_ms / null_ms));
    }

    let (hits, misses) = loopmem_core::optimize::memo_stats();
    println!();
    println!("optimizer memo: {hits} hits / {misses} misses");
    speedups.push(("optimizer_memo_hits".to_string(), hits as f64));

    write_json(&out_path, &rows, &speedups, nthreads, avail);
    println!("wrote {}", out_path.display());
}
