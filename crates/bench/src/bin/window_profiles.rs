//! Figure-style output: the live-set (reference window) profile of each
//! kernel over execution, before and after optimization — the dynamic view
//! behind Figure 2's static MWS numbers.

use loopmem_core::optimize::{minimize_mws, SearchMode};
use loopmem_sim::simulate_with_profile;

fn sparkline(profile: &[u64], width: usize) -> String {
    if profile.is_empty() {
        return String::new();
    }
    let max = *profile.iter().max().unwrap_or(&1) as f64;
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let step = (profile.len() as f64 / width as f64).max(1.0);
    let mut out = String::new();
    let mut idx = 0.0;
    while (idx as usize) < profile.len() && out.len() < width {
        let w = profile[idx as usize] as f64;
        let level = if max == 0.0 {
            0
        } else {
            ((w / max) * 9.0).round() as usize
        };
        out.push(glyphs[level.min(9)]);
        idx += step;
    }
    out
}

fn main() {
    println!("Reference-window profiles (peak = the MWS; 64-char sparklines)\n");
    for k in loopmem_bench::all_kernels() {
        let nest = k.nest();
        let before = simulate_with_profile(&nest);
        let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
        let after = simulate_with_profile(&opt.transformed);
        let pb = before.profile.expect("profile");
        let pa = after.profile.expect("profile");
        println!(
            "{:<12} unopt |{}| peak {}",
            k.name,
            sparkline(&pb, 64),
            before.mws_total
        );
        println!(
            "{:<12}   opt |{}| peak {}\n",
            "",
            sparkline(&pa, 64),
            after.mws_total
        );
    }
}
