//! Chaos-differential gate: runs the deterministic fault-injection sweep
//! (`loopmem_core::chaos`) over a corpus of `.loop` files and fails the
//! process on any oracle violation.
//!
//! Usage:
//!
//! ```text
//! chaossuite <file.loop>... [--seed N]
//! ```
//!
//! Per file, every governed entry point (simulate / optimize / pipeline /
//! scratchpad) is driven through a seeded matrix of injected faults —
//! budget exhaustion and cancellation at fixed poll quanta, forced
//! touch-table rejection, forced u32 time-stamp overflow, and injected
//! per-nest panics — each replayed at 1, 2 and 4 worker threads. The four
//! oracles: no panic escapes a governed entry point; every returned
//! interval contains the fault-free exact answer (and all intervals for
//! one quantity pairwise intersect); the same logical fault point gives
//! bit-identical results for every thread count wherever the engine
//! promises determinism; injected panics surface at exactly the targeted
//! nest index with the fixed marker message.
//!
//! The summary's `violations : N` line is what CI greps; exit status is
//! 0 only when N is 0. The run also counts salvaged-prefix bounds that
//! beat the analytic fallback, proving partial-result salvage engages.

use std::process::ExitCode;

fn main() -> ExitCode {
    // Injected panics are contained by the engines and re-raised only as
    // typed errors; the default hook would spam stderr with each one.
    std::panic::set_hook(Box::new(|_| {}));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed: u64 = match args.iter().position(|a| a == "--seed") {
        None => 0xC0FFEE,
        Some(pos) => match args.get(pos + 1).map(|s| s.parse()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("chaossuite: --seed needs an integer");
                return ExitCode::FAILURE;
            }
        },
    };
    let mut files: Vec<&String> = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--seed" {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            eprintln!("chaossuite: unknown flag {a}");
            return ExitCode::FAILURE;
        }
        files.push(a);
    }
    if files.is_empty() {
        eprintln!("usage: chaossuite <file.loop>... [--seed N]");
        return ExitCode::FAILURE;
    }

    let mut cases = 0usize;
    let mut runs = 0usize;
    let mut violations = 0usize;
    let mut salvaged = 0usize;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("chaossuite: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match loopmem_core::chaos_source(path, &src, seed) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chaossuite: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "{path}: {} cases, {} runs, {} violations, {} salvaged-tighter",
            report.cases,
            report.runs,
            report.violations.len(),
            report.salvaged_tighter
        );
        for v in &report.violations {
            println!("  VIOLATION {v}");
        }
        cases += report.cases;
        runs += report.runs;
        violations += report.violations.len();
        salvaged += report.salvaged_tighter;
    }
    println!("seed       : {seed}");
    println!("cases      : {cases}");
    println!("runs       : {runs}");
    println!("salvaged   : {salvaged}");
    println!("violations : {violations}");
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
