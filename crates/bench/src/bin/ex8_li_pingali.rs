//! Example 8 / §4.2: branch-and-bound optimum, Li–Pingali failure.
fn main() {
    println!("Example 8 — X[2i+5j+1] = X[2i+5j+5], 25x10");
    println!("{}", loopmem_bench::experiments::example8_study());
}
