//! Parametric distinct-access formulas per kernel — the symbolic view the
//! paper presents its §3 results in, derived automatically.
use loopmem_core::distinct_formulas;

fn main() {
    println!("Symbolic distinct-access formulas (over loop extents N1..Nn)\n");
    for k in loopmem_bench::all_kernels()
        .into_iter()
        .chain(loopmem_bench::extended_kernels())
    {
        let nest = k.nest();
        let fs = distinct_formulas(&nest);
        if fs.is_empty() {
            println!("{:<12} (no closed form: bounds/enumeration case)", k.name);
            continue;
        }
        let mut ids: Vec<_> = fs.keys().copied().collect();
        ids.sort();
        for id in ids {
            println!(
                "{:<12} A_d({}) = {}",
                k.name,
                nest.array(id).name,
                fs[&id].formula
            );
        }
    }
}
