//! Validates `loopmem trace` NDJSON streams with the workspace's own
//! JSON parser, the way `benchcheck` validates perfsuite reports: a
//! truncated, hand-mangled, or internally inconsistent trace must never
//! silently pass the CI trace gate.
//!
//! Usage:
//!
//! ```text
//! tracecheck <trace.ndjson>...
//! ```
//!
//! Per file: the header line carries the right suite/version and an
//! `events` count matching the number of event lines; every line parses
//! as JSON (the in-tree parser rejects `NaN`/`Infinity` outright); every
//! event line names a known event kind and a well-formed `(epoch, seq)`
//! ord; and the trailing counters line agrees with an independent
//! recount of the event lines — e.g. `memo_hits + memo_misses` must
//! equal `memo_lookups`, and `charged_iterations` must equal the sum of
//! the poll deltas.

use loopmem_analyze::json::{parse_json, Json};
use std::process::ExitCode;

/// Every canonical event name an NDJSON line may carry.
const EVENTS: &[&str] = &[
    "span-begin",
    "span-end",
    "poll",
    "chunk-commit",
    "memo-lookup",
    "cone-prune",
    "fault-trip",
    "salvage",
    "sizing-term",
    "fusion-step",
    "certificate",
];

/// Counters recounted from the event lines, mirroring
/// `TraceCounters::from_events` but derived from the serialized stream
/// alone — so the check is independent of the emitting process.
#[derive(Default, PartialEq, Debug)]
struct Recount {
    spans: u64,
    polls: u64,
    charged_iterations: u64,
    chunks_committed: u64,
    chunk_iterations: u64,
    memo_lookups: u64,
    memo_hits: u64,
    memo_misses: u64,
    cone_boxes: u64,
    fault_trips: u64,
    salvages: u64,
    sizing_terms: u64,
    fusion_steps: u64,
    certificates: u64,
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: tracecheck <trace.ndjson>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &files {
        match check_file(path) {
            Ok(summary) => println!("ok   {path}: {summary}"),
            Err(problems) => {
                failed = true;
                for p in &problems {
                    println!("FAIL {path}: {p}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn u64_field(line: &Json, key: &str) -> Option<u64> {
    line.get(key)
        .and_then(Json::as_i64)
        .map(|v| v.max(0) as u64)
}

/// Validates one NDJSON stream; `Ok` carries a one-line summary, `Err`
/// every problem found.
fn check_file(path: &str) -> Result<String, Vec<String>> {
    let src = std::fs::read_to_string(path).map_err(|e| vec![format!("unreadable: {e}")])?;
    let lines: Vec<&str> = src.lines().collect();
    if lines.len() < 2 {
        return Err(vec![format!(
            "stream has {} lines (need at least a header and a counters line)",
            lines.len()
        )]);
    }
    let mut problems = Vec::new();

    let header =
        parse_json(lines[0]).ok_or_else(|| vec!["header line is not valid JSON".to_string()])?;
    if header.get("suite").and_then(Json::as_str) != Some("loopmem-trace") {
        problems.push("missing or wrong \"suite\" header".to_string());
    }
    if header.get("version").and_then(Json::as_i64) != Some(1) {
        problems.push("missing or wrong \"version\" header".to_string());
    }
    let declared = header.get("events").and_then(Json::as_i64).unwrap_or(-1);
    let event_lines = &lines[1..lines.len() - 1];
    if declared != event_lines.len() as i64 {
        problems.push(format!(
            "header declares {declared} events, stream carries {}",
            event_lines.len()
        ));
    }

    let mut recount = Recount::default();
    for (k, line) in event_lines.iter().enumerate() {
        let Some(e) = parse_json(line) else {
            problems.push(format!("event line {}: not valid JSON", k + 1));
            continue;
        };
        match e.get("event").and_then(Json::as_str) {
            Some(name) if EVENTS.contains(&name) => tally(&mut recount, name, &e),
            other => problems.push(format!("event line {}: bad event {other:?}", k + 1)),
        }
        if e.get("phase").and_then(Json::as_str).is_none() {
            problems.push(format!("event line {}: 'phase' missing", k + 1));
        }
        // `span-end` ords carry u64::MAX (sorts last in the group), which
        // the parser holds as a float — accept any finite number.
        match e.get("ord") {
            Some(Json::Arr(ord)) if ord.len() == 2 && ord.iter().all(|v| v.as_f64().is_some()) => {}
            _ => problems.push(format!("event line {}: 'ord' is not [epoch, seq]", k + 1)),
        }
    }

    let counters_line = parse_json(lines[lines.len() - 1])
        .ok_or_else(|| vec!["counters line is not valid JSON".to_string()])?;
    let Some(counters) = counters_line.get("counters") else {
        problems.push("trailing line carries no \"counters\" object".to_string());
        return Err(problems);
    };
    let declared = Recount {
        spans: u64_field(counters, "spans").unwrap_or(u64::MAX),
        polls: u64_field(counters, "polls").unwrap_or(u64::MAX),
        charged_iterations: u64_field(counters, "charged_iterations").unwrap_or(u64::MAX),
        chunks_committed: u64_field(counters, "chunks_committed").unwrap_or(u64::MAX),
        chunk_iterations: u64_field(counters, "chunk_iterations").unwrap_or(u64::MAX),
        memo_lookups: u64_field(counters, "memo_lookups").unwrap_or(u64::MAX),
        memo_hits: u64_field(counters, "memo_hits").unwrap_or(u64::MAX),
        memo_misses: u64_field(counters, "memo_misses").unwrap_or(u64::MAX),
        cone_boxes: u64_field(counters, "cone_boxes").unwrap_or(u64::MAX),
        fault_trips: u64_field(counters, "fault_trips").unwrap_or(u64::MAX),
        salvages: u64_field(counters, "salvages").unwrap_or(u64::MAX),
        sizing_terms: u64_field(counters, "sizing_terms").unwrap_or(u64::MAX),
        fusion_steps: u64_field(counters, "fusion_steps").unwrap_or(u64::MAX),
        certificates: u64_field(counters, "certificates").unwrap_or(u64::MAX),
    };
    if declared != recount {
        problems.push(format!(
            "counters line disagrees with the event stream:\n  declared {declared:?}\n  recount  {recount:?}"
        ));
    }
    if recount.memo_hits + recount.memo_misses != recount.memo_lookups {
        problems.push(format!(
            "memo_hits {} + memo_misses {} != memo_lookups {}",
            recount.memo_hits, recount.memo_misses, recount.memo_lookups
        ));
    }

    if problems.is_empty() {
        Ok(format!(
            "{} events, counters consistent ({} polls, {} charged iterations)",
            event_lines.len(),
            recount.polls,
            recount.charged_iterations
        ))
    } else {
        Err(problems)
    }
}

/// Accumulates one event line into the recount.
fn tally(c: &mut Recount, name: &str, e: &Json) {
    match name {
        "span-begin" => c.spans += 1,
        "poll" => {
            c.polls += 1;
            c.charged_iterations += u64_field(e, "delta").unwrap_or(0);
        }
        "chunk-commit" => {
            c.chunks_committed += 1;
            c.chunk_iterations += u64_field(e, "iters").unwrap_or(0);
        }
        "memo-lookup" => {
            c.memo_lookups += 1;
            match e.get("hit") {
                Some(Json::Bool(true)) => c.memo_hits += 1,
                _ => c.memo_misses += 1,
            }
        }
        "cone-prune" => c.cone_boxes += u64_field(e, "boxes").unwrap_or(0),
        "fault-trip" => c.fault_trips += 1,
        "salvage" => c.salvages += 1,
        "sizing-term" => c.sizing_terms += 1,
        "fusion-step" => c.fusion_steps += 1,
        "certificate" => c.certificates += 1,
        _ => {}
    }
}
