//! The seven benchmark codes of §5, as `loopmem-ir` DSL sources.
//!
//! The paper's Figure 2 names the codes but the surviving scan garbles most
//! of the *default*/*MWS_unopt* numerals, so the kernels below reconstruct
//! each code from its algorithmic structure and size it to the legible
//! digits (see EXPERIMENTS.md for the cell-by-cell comparison):
//!
//! * `matmult` is pinned exactly by the table: `MWS_opt = 273 = 16²+16+1`
//!   and identical 64.4 % figures in both columns force `N = 16`
//!   (default `3·16² = 768`);
//! * `rasta_flt`'s default column survives as 5 152, which the
//!   band × frame signal layout `X[23][200] + Y[23][24]` matches exactly
//!   (23 critical-band channels is the RASTA-PLP constant);
//! * the stencils use the classic in-place forms whose windows are a row
//!   (`N+1`) or two rows (`2N+3`) wide before optimization.

use loopmem_ir::{parse, LoopNest};

/// One benchmark kernel: a stable name and its DSL source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Kernel {
    /// Name as it appears in Figure 2.
    pub name: &'static str,
    /// DSL source text.
    pub source: &'static str,
    /// One-line description of what the code does.
    pub description: &'static str,
}

impl Kernel {
    /// Parses the kernel into a nest.
    ///
    /// # Panics
    ///
    /// Panics on parse errors — kernel sources are compile-time constants
    /// covered by tests.
    pub fn nest(&self) -> LoopNest {
        parse(self.source).unwrap_or_else(|e| panic!("kernel {}: {e}", self.name))
    }
}

/// `2_point`: in-place two-point vertical stencil on a 64×64 image
/// (default 4 096 words). The dependence `(1,0)` is carried by the outer
/// loop, keeping a whole row live; interchange collapses the window.
pub const TWO_POINT: Kernel = Kernel {
    name: "2_point",
    description: "two-point stencil, 64x64 image",
    source: "array A[64][64]\n\
             for i = 2 to 64 {\n\
               for j = 1 to 64 {\n\
                 A[i][j] = A[i-1][j] + A[i][j];\n\
               }\n\
             }",
};

/// `3_point`: in-place vertical three-point stencil over a 32×32 grid
/// (default 1 024 words). Reading the *next* row keeps two rows live
/// (window `≈ 2N+1`, the paper's 6x cell); interchange walks columns and
/// collapses the window to a few elements.
pub const THREE_POINT: Kernel = Kernel {
    name: "3_point",
    description: "three-point stencil, 32x32 grid",
    source: "array A[32][32]\n\
             for i = 2 to 31 {\n\
               for j = 1 to 32 {\n\
                 A[i][j] = A[i-1][j] + A[i][j] + A[i+1][j];\n\
               }\n\
             }",
};

/// `sor`: successive over-relaxation, five-point in-place sweep over a
/// 32×32 grid (default 1 024 words). Reads of the *next* row make the
/// window two rows wide.
pub const SOR: Kernel = Kernel {
    name: "sor",
    description: "successive over-relaxation, 32x32 grid",
    source: "array A[32][32]\n\
             for i = 2 to 31 {\n\
               for j = 2 to 31 {\n\
                 A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);\n\
               }\n\
             }",
};

/// `matmult`: 16×16 matrix multiply (default 3·256 = 768 words). All of
/// `B` stays live across the `i` loop: `MWS = 256 + 16 + 1 = 273`, and no
/// unimodular reordering beats it — exactly the paper's identical
/// 64.4 % / 64.4 % row.
pub const MATMULT: Kernel = Kernel {
    name: "matmult",
    description: "matrix multiply, N = 16",
    source: "array C[16][16]\narray A[16][16]\narray B[16][16]\n\
             for i = 1 to 16 {\n\
               for j = 1 to 16 {\n\
                 for k = 1 to 16 {\n\
                   C[i][j] = C[i][j] + A[i][k] * B[k][j];\n\
                 }\n\
               }\n\
             }",
};

/// `3step_log`: first (widest) step of three-step logarithmic motion
/// estimation — a 3×3 candidate grid at stride 8 matched against a 16×16
/// current block inside a 40×40 reference window
/// (default 1 600 + 256 + 9 = 1 865 words).
pub const THREE_STEP_LOG: Kernel = Kernel {
    name: "3step_log",
    description: "3-step logarithmic motion estimation (widest step)",
    source: "array R[40][40]\narray C[16][16]\narray S[3][3]\n\
             for cy = 1 to 3 {\n\
               for cx = 1 to 3 {\n\
                 for py = 1 to 16 {\n\
                   for px = 1 to 16 {\n\
                     S[cy][cx] = S[cy][cx] + R[8*cy + py][8*cx + px] + C[py][px];\n\
                   }\n\
                 }\n\
               }\n\
             }",
};

/// `full_search`: exhaustive block-matching motion estimation — an 8×8
/// current block against every candidate of a ±16 search area in a 40×40
/// reference window (default 1 600 + 64 + 1 024 = 2 688 words).
pub const FULL_SEARCH: Kernel = Kernel {
    name: "full_search",
    description: "full-search motion estimation, 8x8 block, 32x32 candidates",
    source: "array R[40][40]\narray C[8][8]\narray S[32][32]\n\
             for dy = 1 to 32 {\n\
               for dx = 1 to 32 {\n\
                 for py = 1 to 8 {\n\
                   for px = 1 to 8 {\n\
                     S[dy][dx] = S[dy][dx] + R[dy + py][dx + px] + C[py][px];\n\
                   }\n\
                 }\n\
               }\n\
             }",
};

/// `rasta_flt`: RASTA-style band filtering from MediaBench — 23
/// critical-band channels, a decimating FIR with an overlapping 16-tap
/// window over 200 input frames (default 23·200 + 23·24 = 5 152 words,
/// matching the paper's legible cell). Written in the real-time
/// (time-outer) order, which keeps every band's history live at once; the
/// optimizer restores the band-outer order.
pub const RASTA_FLT: Kernel = Kernel {
    name: "rasta_flt",
    description: "RASTA band filtering, 23 bands, decimating 16-tap FIR",
    source: "array X[23][200]\narray Y[23][24]\n\
             for t = 1 to 24 {\n\
               for b = 1 to 23 {\n\
                 for k = 1 to 16 {\n\
                   Y[b][t] = Y[b][t] + X[b][8*t - k + 9];\n\
                 }\n\
               }\n\
             }",
};

/// The seven kernels, in Figure 2's row order.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        TWO_POINT,
        THREE_POINT,
        SOR,
        MATMULT,
        THREE_STEP_LOG,
        FULL_SEARCH,
        RASTA_FLT,
    ]
}

/// Kernel lookup by Figure 2 name.
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    all_kernels().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_parse() {
        for k in all_kernels() {
            let nest = k.nest();
            assert!(nest.depth() >= 2, "{}", k.name);
            assert!(!nest.statements().is_empty(), "{}", k.name);
        }
    }

    #[test]
    fn default_memory_sizes() {
        let expect = [
            ("2_point", 4096),
            ("3_point", 1024),
            ("sor", 1024),
            ("matmult", 768),
            ("3step_log", 1865),
            ("full_search", 2688),
            ("rasta_flt", 5152),
        ];
        for (name, words) in expect {
            let k = kernel_by_name(name).unwrap();
            assert_eq!(k.nest().default_memory(), words, "{name}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(kernel_by_name("sor").is_some());
        assert!(kernel_by_name("nope").is_none());
    }

    #[test]
    fn matmult_mws_is_273() {
        // The one cell of Figure 2 that is fully pinned by the scan.
        let s = loopmem_sim::simulate(&MATMULT.nest());
        assert_eq!(s.mws_total, 273);
    }

    #[test]
    fn rasta_reads_stay_in_bounds() {
        let nest = RASTA_FLT.nest();
        let x = nest.array_by_name("X").unwrap();
        loopmem_sim::for_each_iteration(&nest, |it| {
            for r in nest.refs().filter(|r| r.array == x) {
                let idx = r.index_at(it);
                assert!(idx[0] >= 1 && idx[0] <= 23, "band {idx:?}");
                assert!(idx[1] >= 1 && idx[1] <= 200, "frame {idx:?}");
            }
        });
    }
}
