//! Extended kernel suite — codes beyond the paper's seven, exercising the
//! same analysis on other classic array-dominated shapes. Used by the
//! `fig2_extended` binary and by generality tests.

use crate::kernels::Kernel;

/// Jacobi-style two-array 5-point smoother (out-of-place `sor`): the
/// variant whose window *can* be reduced, unlike the in-place form.
pub const JACOBI_2D: Kernel = Kernel {
    name: "jacobi_2d",
    description: "out-of-place 5-point smoother, 24x24 grids",
    source: "array B[24][24]\narray A[24][24]\n\
             for i = 2 to 23 {\n\
               for j = 2 to 23 {\n\
                 B[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);\n\
               }\n\
             }",
};

/// 2-D convolution with a 3×3 kernel over a 32×32 image.
pub const CONV2D: Kernel = Kernel {
    name: "conv2d",
    description: "3x3 convolution, 32x32 image",
    source: "array OUT[30][30]\narray IN[32][32]\narray K[3][3]\n\
             for i = 1 to 30 {\n\
               for j = 1 to 30 {\n\
                 for ki = 1 to 3 {\n\
                   for kj = 1 to 3 {\n\
                     OUT[i][j] = OUT[i][j] + IN[i + ki - 1][j + kj - 1] * K[ki][kj];\n\
                   }\n\
                 }\n\
               }\n\
             }",
};

/// 64-tap FIR filter over a 1-D signal.
pub const FIR: Kernel = Kernel {
    name: "fir",
    description: "64-tap FIR over 1024 samples",
    source: "array Y[960]\narray X[1024]\narray H[64]\n\
             for t = 1 to 960 {\n\
               for k = 1 to 64 {\n\
                 Y[t] = Y[t] + X[t + k - 1] * H[k];\n\
               }\n\
             }",
};

/// Out-of-place matrix transpose (pure permutation access, no element
/// reuse at all — the window should be zero).
pub const TRANSPOSE: Kernel = Kernel {
    name: "transpose",
    description: "32x32 out-of-place transpose",
    source: "array B[32][32]\narray A[32][32]\n\
             for i = 1 to 32 {\n\
               for j = 1 to 32 {\n\
                 B[j][i] = A[i][j];\n\
               }\n\
             }",
};

/// Band-matrix times vector (rank-deficient accesses in both operands).
pub const BANDED_MV: Kernel = Kernel {
    name: "banded_mv",
    description: "banded (bandwidth 9) matrix-vector product, N = 64",
    source: "array Y[64]\narray D[64][9]\narray X[72]\n\
             for i = 1 to 64 {\n\
               for b = 1 to 9 {\n\
                 Y[i] = Y[i] + D[i][b] * X[i + b - 1];\n\
               }\n\
             }",
};

/// The extended suite.
pub fn extended_kernels() -> Vec<Kernel> {
    vec![JACOBI_2D, CONV2D, FIR, TRANSPOSE, BANDED_MV]
}

#[cfg(test)]
mod tests {
    use super::*;
    use loopmem_core::optimize::{minimize_mws, SearchMode};
    use loopmem_sim::simulate;

    #[test]
    fn extended_kernels_parse_and_analyze() {
        for k in extended_kernels() {
            let nest = k.nest();
            let s = simulate(&nest);
            assert!(s.iterations > 0, "{}", k.name);
            assert!(
                s.mws_total <= s.distinct_total(),
                "{}: window exceeds footprint",
                k.name
            );
        }
    }

    #[test]
    fn transpose_has_zero_window() {
        // Every element is touched exactly once: nothing is ever reused.
        let s = simulate(&TRANSPOSE.nest());
        assert_eq!(s.mws_total, 0);
    }

    #[test]
    fn jacobi_window_is_two_rows_in_every_order() {
        // Out-of-place stencils have only input "dependences" on A, so
        // any reordering is legal — but a 5-point read set keeps two rows
        // (or two columns, or two anti-diagonals) of A live in every
        // order, so the optimizer correctly reports no improvement.
        let nest = JACOBI_2D.nest();
        let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
        assert_eq!(opt.mws_before, 44); // ~2 rows of the 22-wide interior
        assert_eq!(opt.mws_after, opt.mws_before);
    }

    #[test]
    fn fir_window_is_tap_sized() {
        // All 64 coefficients stay live, the sliding X window holds ~63
        // samples, and Y is live one t at a time: MWS ≈ 127.
        let s = simulate(&FIR.nest());
        assert!((126..=129).contains(&s.mws_total), "{}", s.mws_total);
        let h = FIR.nest();
        let h_id = h.array_by_name("H").expect("H declared");
        assert_eq!(simulate(&h).array(h_id).mws, 64, "all taps resident");
    }

    #[test]
    fn optimizer_never_regresses_on_extended_suite() {
        for k in extended_kernels() {
            let nest = k.nest();
            let opt = minimize_mws(&nest, SearchMode::default()).expect("search succeeds");
            assert!(opt.mws_after <= opt.mws_before, "{}", k.name);
        }
    }
}
